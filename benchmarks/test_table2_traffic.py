"""Table 2 — message-traffic overhead of the piggybacked CGC/LLT data.

Paper: the control traffic is 0.15-0.25 % of base protocol traffic. We
assert it stays a small single-digit percentage on the scaled runs
(smaller messages make the relative overhead a little larger here).
"""

from conftest import emit

from repro.harness.experiment import paper_setups, run_ft
from repro.harness.tables import table2


def test_table2(experiments, results_dir, benchmark):
    t = benchmark.pedantic(lambda: table2(experiments), rounds=1, iterations=1)
    emit(results_dir, "table2", t.render())
    for name, (_base, ft) in experiments.items():
        pct = ft.result.traffic.ft_overhead_percent()
        assert pct < 5.0, f"{name}: piggyback overhead {pct:.2f}% too high"
        assert ft.result.traffic.ft_bytes > 0, f"{name}: no control data flowed"


def test_bench_ft_run_with_piggyback(benchmark):
    setup = [s for s in paper_setups("smoke") if s.name == "water-spatial"][0]
    benchmark.pedantic(lambda: run_ft(setup), rounds=1, iterations=1)
