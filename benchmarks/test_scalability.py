"""Scalability sweep: the paper's headline claim.

"the fault tolerance support itself must be both light-weight and
scalable" (§1) — independent checkpointing needs no global coordination,
so its overhead should stay roughly flat as the cluster grows. We sweep
cluster sizes and compare the FT execution-time overhead and the
piggyback traffic share.
"""

from conftest import emit

from repro import DsmCluster, DsmConfig
from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig
from repro.core import LogOverflowPolicy
from repro.harness.experiment import HARNESS_DISK
from repro.metrics.report import Table, format_pct

SIZES = [2, 4, 8, 16]


def app():
    return WaterSpatialApp(
        WaterSpatialConfig(
            n_molecules=343, steps=5, cell_capacity=96, pair_cost=40e-6
        )
    )


def run(n, ft):
    cluster = DsmCluster(
        DsmConfig(num_procs=n),
        disk_config=HARNESS_DISK,
        ft=ft,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.1, fp),
    )
    return cluster, cluster.run(app())


def test_ft_overhead_scales_flat(results_dir, benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        "Scalability: FT overhead vs cluster size (water-spatial)",
        [
            "Nodes",
            "Base time (s)",
            "FT time (s)",
            "FT overhead",
            "Ckpts/node",
            "Piggyback share",
            "Wmax",
        ],
        note="No global coordination: the overhead does not blow up with "
        "the node count (the piggyback share grows mildly because vector "
        "timestamps are O(n)).",
    )
    overheads = {}
    for n, base_t, ft_t, cks, pb, wmax in rows:
        ov = 100 * (ft_t - base_t) / base_t
        overheads[n] = ov
        t.add(n, f"{base_t:.3f}", f"{ft_t:.3f}", format_pct(max(ov, 0)),
              cks, format_pct(pb), wmax)
    emit(results_dir, "scalability", t.render())
    # flat-ish: overhead at 16 nodes stays within a small factor of the
    # overhead at 4 (and absolutely small)
    assert overheads[16] < max(4 * max(overheads[4], 1.0), 15.0), overheads
    assert overheads[16] < 20.0


def _sweep():
    rows = []
    for n in SIZES:
        _, r_base = run(n, ft=False)
        c_ft, r_ft = run(n, ft=True)
        cks = [s.checkpoints_taken for s in r_ft.ft_stats]
        wmax = max(h.ckpt_mgr.max_window for h in c_ft.hosts)
        rows.append(
            (
                n,
                r_base.wall_time,
                r_ft.wall_time,
                f"{min(cks)}-{max(cks)}",
                r_ft.traffic.ft_overhead_percent(),
                wmax,
            )
        )
    return rows
