"""Meta-cluster benchmark: the paper's §1 motivation, quantified.

"For very large clusters and meta-clusters, coordinated checkpointing is
much less practical because of the increasing cost of global
coordination." We sweep the WAN latency of a 2×4 meta-cluster and
measure (a) the commit latency of a coordinated checkpoint round and
(b) the execution-time overhead of both schemes, plus the recovery cost
asymmetry (single-victim replay vs global rollback).
"""

from conftest import emit

from repro import DsmCluster, DsmConfig
from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig
from repro.baselines import coordinated_cluster
from repro.core import LogOverflowPolicy
from repro.harness.experiment import HARNESS_DISK
from repro.metrics.report import Table
from repro.sim.network import MetaClusterConfig, NetworkConfig


def app():
    return WaterSpatialApp(
        WaterSpatialConfig(n_molecules=216, steps=5, pair_cost=20e-6)
    )


def _net(wan):
    if wan == 0:
        return NetworkConfig()
    return MetaClusterConfig(cluster_size=4, wan_latency=wan, wan_bandwidth=50e6)


def _independent(wan):
    return DsmCluster(
        DsmConfig(num_procs=8),
        net_config=_net(wan),
        disk_config=HARNESS_DISK,
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.08, fp),
    )


def _coordinated(wan):
    return coordinated_cluster(
        DsmConfig(num_procs=8),
        l_fraction=0.08,
        net_config=_net(wan),
        disk_config=HARNESS_DISK,
    )


WANS = [0, 1e-3, 5e-3, 20e-3]


def test_coordination_cost_vs_wan_latency(results_dir, benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    t = Table(
        "Meta-cluster sweep: independent vs coordinated checkpointing "
        "(water-spatial, 2 clusters x 4 nodes)",
        [
            "WAN latency",
            "indep ckpts",
            "indep time (s)",
            "coord rounds",
            "coord round latency (s)",
            "coord time (s)",
        ],
        note="The coordinated round latency tracks the WAN latency (the "
        "paper's argument against global coordination on meta-clusters); "
        "the independent scheme has no coordination round at all.",
    )
    for r in rows:
        t.add(*r)
    emit(results_dir, "metacluster_sweep", t.render())
    # the motivating claim, asserted
    lat_by_wan = {r[0]: r[4] for r in rows}
    assert lat_by_wan["20.0 ms"] > lat_by_wan["LAN"]


def _run_sweep():
    rows = []
    for wan in WANS:
        ind = _independent(wan)
        r_ind = ind.run(app())
        ind_ck = sum(s.checkpoints_taken for s in r_ind.ft_stats)
        co = _coordinated(wan)
        r_co = co.run(app())
        ft0 = co.hosts[0].ft
        lat = min(ft0.coord.round_latencies) if ft0.coord.round_latencies else 0.0
        rows.append(
            (
                "LAN" if wan == 0 else f"{wan * 1e3:.1f} ms",
                ind_ck,
                f"{r_ind.wall_time:.3f}",
                ft0.coord.rounds_committed,
                f"{lat:.4f}",
                f"{r_co.wall_time:.3f}",
            )
        )
    return rows


def test_recovery_asymmetry(results_dir, benchmark):
    """Independent: one victim replays. Coordinated: everyone rolls back."""

    def run():
        ind = _independent(0)
        T = ind.run(app()).wall_time
        ind2 = _independent(0)
        ind2.schedule_crash(3, at_time=T * 0.6)
        t_ind = ind2.run(app()).wall_time

        co = _coordinated(0)
        Tc = co.run(app()).wall_time
        co2 = _coordinated(0)
        co2.schedule_crash(3, at_time=Tc * 0.6)
        t_co = co2.run(app()).wall_time
        return T, t_ind, Tc, t_co, co2

    T, t_ind, Tc, t_co, co2 = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        "Recovery asymmetry (water-spatial, crash at 60%)",
        ["Scheme", "Failure-free (s)", "With crash (s)", "Stretch (s)",
         "Nodes restarted"],
    )
    t.add("independent (paper)", f"{T:.3f}", f"{t_ind:.3f}", f"{t_ind - T:.3f}", 1)
    t.add(
        "coordinated rollback",
        f"{Tc:.3f}",
        f"{t_co:.3f}",
        f"{t_co - Tc:.3f}",
        sum(h.recovered_count for h in co2.hosts),
    )
    emit(results_dir, "recovery_asymmetry", t.render())
    assert sum(h.recovered_count for h in co2.hosts) == 8
