"""Shared fixtures for the benchmark harness.

The paper experiments (base + FT run per app) execute once per session
and are shared by every table/figure benchmark. Set ``REPRO_BENCH_SCALE``
to ``smoke`` for a fast pass or ``default`` (the calibrated scale used in
EXPERIMENTS.md).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def experiments():
    from repro.harness.tables import run_all_experiments

    return run_all_experiments(scale=SCALE)


@pytest.fixture(scope="session")
def results_dir():
    out = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(out, exist_ok=True)
    return out


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print("\n" + text)
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
