"""Microbenchmarks for the hot primitives (pytest-benchmark proper)."""

import numpy as np

from repro.dsm.diff import apply_diff, compute_diff
from repro.dsm.interval import NoticeTable
from repro.dsm.messages import WriteNotice
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

PAGE = 4096


def _page_pair(change_fraction=0.1, seed=0):
    rng = np.random.default_rng(seed)
    twin = rng.integers(0, 256, PAGE, dtype=np.uint8)
    cur = twin.copy()
    n = int(PAGE * change_fraction)
    idx = rng.choice(PAGE, n, replace=False)
    cur[idx] = cur[idx] + 1  # uint8 wraps around naturally
    return twin, cur


def test_bench_compute_diff_sparse(benchmark):
    twin, cur = _page_pair(0.02)
    d = benchmark(compute_diff, twin, cur)
    assert not d.empty


def test_bench_compute_diff_dense(benchmark):
    twin, cur = _page_pair(0.5)
    d = benchmark(compute_diff, twin, cur)
    assert d.payload_bytes > 1000


def test_bench_compute_diff_identical(benchmark):
    twin, _ = _page_pair()
    d = benchmark(compute_diff, twin, twin.copy())
    assert d.empty


def test_bench_apply_diff(benchmark):
    twin, cur = _page_pair(0.1)
    d = compute_diff(twin, cur)
    target = twin.copy()

    def run():
        apply_diff(target, d)

    benchmark(run)


def test_bench_vclock_join(benchmark):
    a = VClock(range(8))
    b = VClock(range(8, 0, -1))
    out = benchmark(lambda: a.join(b).leq(a))
    assert out is False


def test_bench_notice_table_between(benchmark):
    t = NoticeTable(8)
    for c in range(8):
        for i in range(1, 101):
            vt = VClock.zero(8).with_component(c, i)
            t.add(WriteNotice(c, i, PageId(0, i % 16), vt))
    low = VClock((20,) * 8)
    high = VClock((80,) * 8)
    out = benchmark(t.between, low, high)
    assert len(out) == 8 * 60
