"""Table 3 — performance of independent checkpointing with CGC and LLT.

Shape targets from the paper: checkpoints actually get taken under the
OF policy; the direct logging+disk overhead is small (< 10 % here,
< 7 % in the paper); and Barnes — irregular, barrier-intensive,
imbalanced — pays the largest total execution-time increase, driven by
checkpoint interference with barriers rather than by the direct cost.
"""

from conftest import emit

from repro.harness.experiment import paper_setups, run_ft
from repro.harness.tables import table3


def test_table3(experiments, results_dir, benchmark):
    t = benchmark.pedantic(lambda: table3(experiments), rounds=1, iterations=1)
    emit(results_dir, "table3", t.render())

    increases = {}
    for name, (base, ft) in experiments.items():
        ckpts = sum(s.checkpoints_taken for s in ft.result.ft_stats)
        assert ckpts > 0, f"{name}: OF policy never checkpointed"
        base_t, ft_t = base.result.wall_time, ft.result.wall_time
        increases[name] = 100 * (ft_t - base_t) / base_t
        direct = (
            sum(s.time_logging + s.time_disk for s in ft.result.ft_stats)
            / len(ft.result.ft_stats)
        )
        assert 100 * direct / base_t < 10.0, f"{name}: direct overhead too high"
    # Barnes is the paper's stress case: largest relative slowdown
    assert increases["barnes"] == max(increases.values()), increases


def test_barnes_slowdown_is_barrier_driven(experiments, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The Barnes slowdown must come from barrier waiting, not from the
    direct log/disk time — the paper's §5.2 diagnosis."""
    from repro.sim.node import TimeBucket

    base, ft = experiments["barnes"]
    bw_base = base.result.mean_time_stats.seconds[TimeBucket.BARRIER_WAIT]
    bw_ft = ft.result.mean_time_stats.seconds[TimeBucket.BARRIER_WAIT]
    lc_ft = ft.result.mean_time_stats.seconds[TimeBucket.LOG_CKPT]
    assert bw_ft > bw_base, "FT Barnes should wait longer at barriers"
    assert (bw_ft - bw_base) > 0.5 * lc_ft, (
        "barrier-wait inflation should be comparable to or larger than "
        "the direct log/ckpt time (amplification through barriers)"
    )


def test_bench_ft_run_barnes(benchmark):
    setup = [s for s in paper_setups("smoke") if s.name == "barnes"][0]
    benchmark.pedantic(lambda: run_ft(setup), rounds=1, iterations=1)
