"""Figure 3 — normalized execution-time breakdown, base vs fault-tolerant.

Shape targets: base bars sum to 100 %; the FT bars add a visible
Log & Ckp component; and for Barnes the dominant FT delta is the
*barrier wait* (paper: 12 % → 28 % of execution time), which is the
signature of independent checkpointing interfering with global
synchronization.
"""

from conftest import emit

from repro.harness.figures import figure3, figure3_table


def test_figure3(experiments, results_dir, benchmark):
    t = benchmark.pedantic(lambda: figure3_table(experiments), rounds=1, iterations=1)
    emit(results_dir, "figure3", t.render())

    data = figure3(experiments)
    for name, bars in data.items():
        assert abs(sum(bars["base"].values()) - 100.0) < 1e-6
        assert sum(bars["ft"].values()) >= 100.0 - 1e-6
        assert bars["ft"]["Log & Ckp"] > 0.0, f"{name}: FT added no log/ckp time"
        assert bars["base"]["Log & Ckp"] == 0.0


def test_barnes_barrier_wait_inflates(experiments, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = figure3(experiments)
    bars = data["barnes"]
    deltas = {
        k: bars["ft"][k] - bars["base"][k] for k in bars["base"] if k != "Log & Ckp"
    }
    assert bars["ft"]["Barrier wait"] > bars["base"]["Barrier wait"]
    assert deltas["Barrier wait"] == max(deltas.values()), deltas


def test_waters_ft_bars_close_to_base(experiments, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The Water apps' total FT bar stays within ~15 % of base (paper:
    0.6 % and 7 %)."""
    data = figure3(experiments)
    for name in ("water-nsq", "water-spatial"):
        total_ft = sum(data[name]["ft"].values())
        assert total_ft < 115.0, f"{name}: FT bar {total_ft:.1f}%"


def test_critical_path_totals_reconcile_with_figure3(results_dir, benchmark):
    """The two time-attribution systems — figure3()'s TimeBucket bars
    and the span tracer's per-node self-times — must agree on the same
    run, or one of them is lying. Cross-checked on the counter app,
    which exercises every bucket (locks, barriers, fetches, ckpts)."""
    from repro.apps.counter import CounterApp, CounterConfig
    from repro.core import LogOverflowPolicy
    from repro.harness.experiment import (
        HARNESS_DISK,
        NUM_PROCS,
        AppSetup,
        ExperimentResult,
        run_base,
    )
    from repro.harness.figures import BREAKDOWN
    from repro.observe.tracing import (
        SpanTracer,
        compute_critical_path,
        node_time_totals,
        reconcile_with_time_stats,
        render_critpath_report,
    )
    from repro import DsmCluster, DsmConfig

    setup = AppSetup(
        "counter",
        lambda: CounterApp(CounterConfig(steps=3, n_elements=512)),
        l_fraction=0.1,
        problem_size="512 elements, 3 steps",
    )

    def run_pair():
        base = run_base(setup)
        # FT run like run_ft(), but with the span tracer riding along
        cluster = DsmCluster(
            DsmConfig(num_procs=NUM_PROCS),
            disk_config=HARNESS_DISK,
            ft=True,
            policy_factory=lambda pid, fp: LogOverflowPolicy(
                setup.l_fraction, fp
            ),
        )
        tracer = SpanTracer(cluster)
        result = cluster.run(setup.make_app())
        return base, ExperimentResult(setup, cluster, result), tracer

    base, ft_exp, tracer = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    # the hard invariant first: per-node span self-times == TimeStats
    assert tracer.validate() == []
    assert reconcile_with_time_stats(tracer) == []

    # then the figure-level cross-check: rebuild figure3's FT bars from
    # the span DAG alone and compare percentage points
    data = figure3({"counter": (base, ft_exp)})
    totals = node_time_totals(tracer)
    n = len(ft_exp.cluster.hosts)
    norm = base.result.mean_time_stats.total or 1.0
    checked = 0
    for label, bucket in BREAKDOWN:
        if bucket.value not in next(iter(totals.values())):
            continue  # Overhead / Log & Ckp have no dedicated spans
        span_pct = (
            100.0
            * sum(totals[pid][bucket.value] for pid in totals)
            / n
            / norm
        )
        fig_pct = data["counter"]["ft"][label]
        assert abs(span_pct - fig_pct) < 0.5, (
            f"{label}: span DAG says {span_pct:.2f}%, "
            f"figure3 says {fig_pct:.2f}%"
        )
        checked += 1
    assert checked == 4  # Computation + the three wait components

    report = render_critpath_report(tracer, compute_critical_path(tracer))
    emit(results_dir, "critpath_counter", report)
