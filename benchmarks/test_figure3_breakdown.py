"""Figure 3 — normalized execution-time breakdown, base vs fault-tolerant.

Shape targets: base bars sum to 100 %; the FT bars add a visible
Log & Ckp component; and for Barnes the dominant FT delta is the
*barrier wait* (paper: 12 % → 28 % of execution time), which is the
signature of independent checkpointing interfering with global
synchronization.
"""

from conftest import emit

from repro.harness.figures import figure3, figure3_table


def test_figure3(experiments, results_dir, benchmark):
    t = benchmark.pedantic(lambda: figure3_table(experiments), rounds=1, iterations=1)
    emit(results_dir, "figure3", t.render())

    data = figure3(experiments)
    for name, bars in data.items():
        assert abs(sum(bars["base"].values()) - 100.0) < 1e-6
        assert sum(bars["ft"].values()) >= 100.0 - 1e-6
        assert bars["ft"]["Log & Ckp"] > 0.0, f"{name}: FT added no log/ckp time"
        assert bars["base"]["Log & Ckp"] == 0.0


def test_barnes_barrier_wait_inflates(experiments, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = figure3(experiments)
    bars = data["barnes"]
    deltas = {
        k: bars["ft"][k] - bars["base"][k] for k in bars["base"] if k != "Log & Ckp"
    }
    assert bars["ft"]["Barrier wait"] > bars["base"]["Barrier wait"]
    assert deltas["Barrier wait"] == max(deltas.values()), deltas


def test_waters_ft_bars_close_to_base(experiments, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The Water apps' total FT bar stays within ~15 % of base (paper:
    0.6 % and 7 %)."""
    data = figure3(experiments)
    for name in ("water-nsq", "water-spatial"):
        total_ft = sum(data[name]["ft"].values())
        assert total_ft < 115.0, f"{name}: FT bar {total_ft:.1f}%"
