"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — LLT off: the stable log grows without bound (vs flattening with it).
A2 — coordinated (barrier) checkpointing vs independent OF for Barnes:
     the §5.4 suggestion; coordinated checkpoints amortize the barrier
     interference.
A3 — diff logging vs whole-page logging (related work [25]): diffs cut
     the log volume by a large factor.
"""

from conftest import SCALE, emit

from repro import DsmCluster, DsmConfig
from repro.baselines import page_logging_cluster
from repro.core import BarrierCoordinatedPolicy, FtConfig, LogOverflowPolicy
from repro.harness.experiment import HARNESS_DISK, paper_setups, run_ft
from repro.metrics.report import Table


def _setup(name):
    return [s for s in paper_setups(SCALE) if s.name == name][0]


def test_ablation_a1_no_llt(results_dir, benchmark):
    setup = _setup("water-spatial")
    with_llt = benchmark.pedantic(lambda: run_ft(setup), rounds=1, iterations=1)
    without = run_ft(setup, ft_config=FtConfig(llt_enabled=False))

    def max_disk(res):
        return max(s.max_log_disk for s in res.result.ft_stats)

    t = Table(
        "Ablation A1: LLT on vs off (water-spatial)",
        ["Variant", "Max stable log (B)", "Discarded (B)", "Exec time (s)"],
    )
    t.add(
        "LLT on",
        max_disk(with_llt),
        sum(h.ft.logs.diff.bytes_discarded for h in with_llt.hosts),
        f"{with_llt.result.wall_time:.3f}",
    )
    t.add(
        "LLT off",
        max_disk(without),
        0,
        f"{without.result.wall_time:.3f}",
    )
    emit(results_dir, "ablation_a1_no_llt", t.render())
    assert max_disk(without) > max_disk(with_llt)
    assert all(h.ft.logs.diff.bytes_discarded == 0 for h in without.hosts)


def test_ablation_a2_coordinated_vs_independent(results_dir, benchmark):
    setup = _setup("barnes")
    independent = benchmark.pedantic(lambda: run_ft(setup), rounds=1, iterations=1)
    coordinated = run_ft(
        setup,
        policy_factory=lambda pid, fp: BarrierCoordinatedPolicy(
            every_barriers=12
        ),
    )
    t = Table(
        "Ablation A2: independent (OF) vs barrier-coordinated ckpts (barnes)",
        ["Variant", "Ckpts (min-max/node)", "Exec time (s)", "Wmax"],
        note="Coordinated checkpoints all land at the same barriers, so "
        "the window collapses and barrier interference is amortized "
        "(the paper's §5.4 suggestion).",
    )
    for label, ex in (("independent OF", independent), ("coordinated", coordinated)):
        cks = [s.checkpoints_taken for s in ex.result.ft_stats]
        t.add(
            label,
            f"{min(cks)}-{max(cks)}",
            f"{ex.result.wall_time:.3f}",
            max(h.ckpt_mgr.max_window for h in ex.hosts),
        )
    emit(results_dir, "ablation_a2_coordinated", t.render())
    cks = [s.checkpoints_taken for s in coordinated.result.ft_stats]
    assert min(cks) == max(cks), "coordinated checkpoints must align"
    # aligned checkpoints keep the window minimal
    assert max(h.ckpt_mgr.max_window for h in coordinated.hosts) <= max(
        h.ckpt_mgr.max_window for h in independent.hosts
    )


def test_ablation_a3_page_vs_diff_logging(results_dir, benchmark):
    setup = _setup("water-nsq")
    diff_ex = benchmark.pedantic(lambda: run_ft(setup), rounds=1, iterations=1)

    cluster = page_logging_cluster(
        DsmConfig(num_procs=8),
        l_fraction=setup.l_fraction,
        disk_config=HARNESS_DISK,
    )
    cluster.run(setup.make_app())

    created_diff = sum(h.ft.logs.diff.bytes_created for h in diff_ex.hosts)
    created_page = sum(h.ft.logs.diff.bytes_created for h in cluster.hosts)
    t = Table(
        "Ablation A3: diff logging vs whole-page logging (water-nsq)",
        ["Variant", "Logs created (B)", "Ratio"],
        note="The paper (§2) criticizes whole-page logging [25] as 'very "
        "expensive'; diffs log only the changed bytes.",
    )
    t.add("diff logging", created_diff, "1.0x")
    t.add("page logging", created_page, f"{created_page / created_diff:.1f}x")
    emit(results_dir, "ablation_a3_page_logging", t.render())
    assert created_page > 2 * created_diff


def test_bench_recovery_cost(results_dir, benchmark):
    """Crash mid-run and measure the recovery's virtual-time cost; the
    paper argues replay is cheaper than original execution (§4.3)."""
    setup = _setup("water-spatial")
    golden = run_ft(setup)
    T = golden.result.wall_time

    def crashed_run():
        cluster = DsmCluster(
            DsmConfig(num_procs=8),
            disk_config=HARNESS_DISK,
            ft=True,
            policy_factory=lambda pid, fp: LogOverflowPolicy(
                setup.l_fraction, fp
            ),
        )
        cluster.schedule_crash(3, at_time=T * 0.5)
        return cluster.run(setup.make_app())

    res = benchmark.pedantic(crashed_run, rounds=1, iterations=1)
    stretch = res.wall_time - T
    detection = 50e-3
    t = Table(
        "Recovery cost (water-spatial, crash at 50%)",
        ["Metric", "Value"],
    )
    t.add("failure-free time (s)", f"{T:.3f}")
    t.add("with crash+recovery (s)", f"{res.wall_time:.3f}")
    t.add("stretch (s)", f"{stretch:.3f}")
    t.add("of which detection delay (s)", f"{detection:.3f}")
    emit(results_dir, "recovery_cost", t.render())
    # replay re-executes roughly the lost half; the total stretch stays
    # below detection + the lost segment (replay is not slower than the
    # original execution)
    assert stretch < detection + 0.9 * T
