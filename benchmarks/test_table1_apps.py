"""Table 1 — application characteristics (footprint, base execution time).

Regenerates the paper's Table 1 on the scaled workloads and benchmarks
one full base-protocol run of each application.
"""

from conftest import SCALE, emit

from repro.harness.experiment import paper_setups, run_base
from repro.harness.tables import table1


def test_table1(experiments, results_dir, benchmark):
    t = benchmark.pedantic(lambda: table1(experiments), rounds=1, iterations=1)
    emit(results_dir, "table1", t.render())
    # shape assertions: Barnes runs longest (it did in the paper's wall
    # clock too, per-step), Water-Spatial has the largest footprint of
    # the two Waters (paper: 257 MB vs 12.6 MB)
    rows = {r[0]: r for r in t.rows}
    assert set(rows) == {"barnes", "water-nsq", "water-spatial"}
    base_times = {n: experiments[n][0].result.wall_time for n in rows}
    assert base_times["barnes"] == max(base_times.values())
    fp = {n: experiments[n][0].result.footprint_bytes for n in rows}
    assert fp["water-spatial"] > fp["water-nsq"] or SCALE == "smoke"


def test_bench_base_run_barnes(benchmark):
    setup = [s for s in paper_setups("smoke") if s.name == "barnes"][0]
    benchmark.pedantic(lambda: run_base(setup), rounds=1, iterations=1)


def test_bench_base_run_water_nsq(benchmark):
    setup = [s for s in paper_setups("smoke") if s.name == "water-nsq"][0]
    benchmark.pedantic(lambda: run_base(setup), rounds=1, iterations=1)


def test_bench_base_run_water_spatial(benchmark):
    setup = [s for s in paper_setups("smoke") if s.name == "water-spatial"][0]
    benchmark.pedantic(lambda: run_base(setup), rounds=1, iterations=1)
