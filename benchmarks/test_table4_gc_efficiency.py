"""Table 4 — overall efficiency of CGC and LLT.

Shape targets: the checkpoint window stays small (paper: never more than
3 checkpoints; ours counts the initial seed, so ≤ 5), most created logs
reach stable storage, and LLT discards a substantial fraction of the
created logs (paper: 58-80 %).
"""

from conftest import emit

from repro.harness.tables import table4


def test_table4(experiments, results_dir, benchmark):
    t = benchmark.pedantic(lambda: table4(experiments), rounds=1, iterations=1)
    emit(results_dir, "table4", t.render())

    for name, (_base, ft) in experiments.items():
        wmax = max(h.ckpt_mgr.max_window for h in ft.hosts)
        assert wmax <= 5, f"{name}: checkpoint window {wmax} not bounded"
        created = sum(h.ft.logs.diff.bytes_created for h in ft.hosts)
        saved = sum(s.logs_saved_bytes for s in ft.result.ft_stats)
        assert created > 0
        assert saved > 0.3 * created, f"{name}: almost nothing saved?"
    # the apps with several checkpoints per node discard a large fraction
    for name in ("barnes", "water-spatial"):
        ft = experiments[name][1]
        created = sum(h.ft.logs.diff.bytes_created for h in ft.hosts)
        discarded = sum(h.ft.logs.diff.bytes_discarded for h in ft.hosts)
        pct = 100 * discarded / created
        assert pct > 15, f"{name}: LLT discarded only {pct:.0f}%"


def test_stable_log_bounded_by_window(experiments, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """At no point does a node's stable diff log exceed a small multiple
    of the per-checkpoint increment — the 'bounded log' headline claim."""
    for name, (_base, ft) in experiments.items():
        for h, s in zip(ft.hosts, ft.result.ft_stats):
            if s.checkpoints_taken < 3:
                continue
            threshold = h.ft.policy.threshold
            # window of ~Wmax checkpoints' worth of log, with slack for
            # the sampling overshoot the paper also observes
            assert s.max_log_disk < 6 * threshold + 64 * 1024, (
                f"{name}/p{h.pid}: stable log {s.max_log_disk} vs "
                f"threshold {threshold}"
            )


def test_bench_llt_trim_throughput(benchmark):
    """Microbenchmark: LLT trim pass over a populated diff log."""
    import numpy as np

    from repro.core.logs import DiffLog
    from repro.dsm.diff import compute_diff
    from repro.dsm.pages import PageId
    from repro.dsm.vclock import VClock

    twin = np.zeros(1024, dtype=np.uint8)
    cur = twin.copy()
    cur[100:200] = 7
    diff = compute_diff(twin, cur)

    def build():
        log = DiffLog()
        for p in range(32):
            for i in range(1, 51):
                log.append(PageId(0, p), diff, VClock((i, 0, 0, 0)))
        return log

    def trim():
        log = build()
        for p in range(32):
            log.trim_page(PageId(0, p), 0, 25)
        return log

    result = benchmark(trim)
    assert result.bytes_discarded > 0
