"""Figure 4 — stable-storage log size vs checkpoint number.

The measured curves come from the observability registry: the
``ClusterObserver`` attached by ``run_ft`` records a per-node
``ft.log_disk_bytes`` point at every checkpoint, and :func:`figure4`
aggregates the max across nodes per checkpoint number.

Shape targets from the paper: the measured log grows over the first few
checkpoints and then *flattens out* under LLT, falling below (or staying
far below) the theoretical unbounded L-bytes-per-checkpoint line; within
three checkpoints of the start the measured curve is under that line.
"""

from conftest import emit

from repro.harness.figures import figure4, figure4_render


def test_registry_backs_figure4(experiments, benchmark):
    """The FT runs carry a populated registry, and its per-node
    ``ft.log_disk_bytes`` series agree with the FT layer's own record."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, (_base, ft) in experiments.items():
        assert ft.registry is not None, f"{name}: run_ft attached no registry"
        series = ft.registry.series_by_name("ft.log_disk_bytes")
        assert series, f"{name}: no checkpoints observed"
        for pid, points in series.items():
            expected = [
                (float(k), float(v)) for k, v in ft.hosts[pid].ft.stats.log_points
            ]
            got = [(float(x), float(v)) for x, v in points]
            assert got == expected, f"{name} p{pid}: registry != FtStats"


def test_figure4(experiments, results_dir, benchmark):
    text = benchmark.pedantic(lambda: figure4_render(experiments), rounds=1, iterations=1)
    emit(results_dir, "figure4", text)

    data = figure4(experiments)
    for name, series in data.items():
        measured = series["measured"]
        unbounded = series["unbounded"]
        assert measured, f"{name}: no checkpoints recorded"
        if len(measured) < 3:
            continue  # too few checkpoints for a trend
        # flattening: the last step's growth is well below the first's
        first_growth = measured[1][1] - measured[0][1]
        last_growth = measured[-1][1] - measured[-2][1]
        assert last_growth < first_growth or last_growth <= 0, (
            f"{name}: log still growing at full slope "
            f"({first_growth} -> {last_growth})"
        )
        # bounded: by the third checkpoint the measured size is below the
        # theoretical no-LLT growth (the paper's observation)
        k, size = measured[min(2, len(measured) - 1)]
        theory = dict(unbounded)[k]
        assert size <= theory * 1.5, f"{name}: {size} vs unbounded {theory}"
        # and at the end it is clearly bounded
        k_end, size_end = measured[-1]
        assert size_end < dict(unbounded)[k_end] * 1.01


def test_water_spatial_self_synchronizing(experiments, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """§5.3: after start-up, Water-Spatial's per-checkpoint log additions
    stabilize (the 'self-synchronizing' effect)."""
    data = figure4(experiments)
    measured = data["water-spatial"]["measured"]
    if len(measured) < 4:
        return
    sizes = [s for _, s in measured]
    tail = sizes[2:]
    assert max(tail) - min(tail) < 0.5 * max(sizes), (
        f"tail not flat: {sizes}"
    )
