"""Regeneration of the paper's Tables 1-4 (§5).

Each function runs the required experiments (or reuses supplied results)
and returns a :class:`~repro.metrics.report.Table` whose rows mirror the
paper's columns, with the paper's reported values alongside where they
exist. Absolute numbers differ (scaled problems, simulated hardware);
the *shape* — which app pays most, roughly what percentages, Wmax ≤ 3,
large discarded-log fractions — is the reproduction target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.harness.experiment import (
    PAPER,
    AppSetup,
    ExperimentResult,
    paper_setups,
    run_base,
    run_ft,
)
from repro.render import Table, format_bytes, format_pct

__all__ = ["table1", "table2", "table3", "table4", "run_all_experiments"]


def run_all_experiments(
    scale: str = "default",
) -> Dict[str, Tuple[ExperimentResult, ExperimentResult]]:
    """(base, ft) result pairs per app — shared by all tables/figures."""
    out = {}
    for setup in paper_setups(scale):
        out[setup.name] = (run_base(setup), run_ft(setup))
    return out


def table1(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> Table:
    """Table 1: applications and their characteristics."""
    experiments = experiments or run_all_experiments(scale)
    t = Table(
        "Table 1: Applications used and their characteristics",
        [
            "Application",
            "Problem size",
            "Shared memory",
            "Base exec time (s)",
            "Paper: size",
            "Paper: mem",
            "Paper: time (s)",
        ],
        note="Measured columns are from the scaled simulation; Paper columns "
        "are the original 8-node Myrinet cluster values.",
    )
    for name, (base, _ft) in experiments.items():
        p = PAPER[name]
        t.add(
            name,
            base.setup.problem_size,
            format_bytes(base.result.footprint_bytes),
            f"{base.result.wall_time:.3f}",
            p.problem_size,
            f"{p.footprint_mb} MB",
            f"{p.base_time_s:,.0f}",
        )
    return t


def table2(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> Table:
    """Table 2: message traffic overhead of CGC/LLT control data."""
    experiments = experiments or run_all_experiments(scale)
    t = Table(
        "Table 2: Message traffic overhead of CGC and LLT (piggybacked)",
        [
            "Application",
            "HLRC traffic",
            "CGC traffic",
            "% overhead",
            "Paper: % overhead",
        ],
        note="CGC traffic = piggybacked checkpoint timestamps + p0.v "
        "advertisements; the paper reports 0.15-0.25 %.",
    )
    for name, (_base, ft) in experiments.items():
        traffic = ft.result.traffic
        t.add(
            name,
            format_bytes(traffic.base_bytes),
            format_bytes(traffic.ft_bytes),
            format_pct(traffic.ft_overhead_percent()),
            format_pct(PAPER[name].cgc_traffic_overhead_pct),
        )
    return t


def table3(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> Table:
    """Table 3: performance of independent checkpointing with CGC+LLT."""
    experiments = experiments or run_all_experiments(scale)
    t = Table(
        "Table 3: Performance of independent checkpointing with CGC and LLT",
        [
            "Application",
            "Ckp policy",
            "Ckpts taken",
            "Exec time FT (s)",
            "% increase",
            "Time logging (s)",
            "Time disk (s)",
            "% log+disk overh.",
            "Paper: % incr",
            "Paper: % overh.",
        ],
    )
    for name, (base, ft) in experiments.items():
        p = PAPER[name]
        base_t = base.result.wall_time
        ft_t = ft.result.wall_time
        ckpts = [s.checkpoints_taken for s in ft.result.ft_stats if s]
        t_log = sum(s.time_logging for s in ft.result.ft_stats if s) / len(ckpts)
        t_disk = sum(s.time_disk for s in ft.result.ft_stats if s) / len(ckpts)
        t.add(
            name,
            f"OF L = {ft.setup.l_fraction}",
            f"{min(ckpts)} - {max(ckpts)}" if min(ckpts) != max(ckpts) else str(ckpts[0]),
            f"{ft_t:.3f}",
            format_pct(100 * (ft_t - base_t) / base_t),
            f"{t_log:.4f}",
            f"{t_disk:.4f}",
            format_pct(100 * (t_log + t_disk) / base_t),
            format_pct(p.exe_increase_pct),
            format_pct(p.log_disk_overhead_pct),
        )
    return t


def table4(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> Table:
    """Table 4: overall efficiency of CGC and LLT."""
    experiments = experiments or run_all_experiments(scale)
    t = Table(
        "Table 4: Overall efficiency of CGC and LLT",
        [
            "Application",
            "Wmax",
            "Max log disk",
            "Total disk traffic",
            "Logs created",
            "Saved logs",
            "% saved",
            "Discarded logs",
            "% disc.",
            "Paper: Wmax",
            "Paper: % disc.",
        ],
        note="Wmax counts retained checkpoints per home (including the "
        "initial seed); the paper reports at most 3.",
    )
    for name, (_base, ft) in experiments.items():
        p = PAPER[name]
        hosts = ft.hosts
        wmax = max(h.ckpt_mgr.max_window for h in hosts)
        max_log_disk = max(s.max_log_disk for s in ft.result.ft_stats)
        disk_traffic = sum(b for b, _ in ft.result.disk_stats)
        created = sum(h.ft.logs.diff.bytes_created for h in hosts)
        saved = sum(s.logs_saved_bytes for s in ft.result.ft_stats)
        discarded = sum(h.ft.logs.diff.bytes_discarded for h in hosts)
        t.add(
            name,
            wmax,
            format_bytes(max_log_disk),
            format_bytes(disk_traffic),
            format_bytes(created),
            format_bytes(saved),
            format_pct(100 * saved / created if created else 0),
            format_bytes(discarded),
            format_pct(100 * discarded / created if created else 0),
            p.wmax,
            format_pct(p.pct_logs_discarded),
        )
    return t
