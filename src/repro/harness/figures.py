"""Regeneration of the paper's Figures 3 and 4 (§5.2, §5.3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.harness.experiment import (
    AppSetup,
    ExperimentResult,
    paper_setups,
    run_base,
    run_ft,
)
from repro.render import Table, ascii_series, format_pct
from repro.sim.node import TimeBucket

__all__ = ["figure3", "figure3_table", "figure4", "figure4_render"]

#: Figure 3 bar components, in the paper's stacking order
BREAKDOWN = [
    ("Computation", TimeBucket.COMPUTE),
    ("Page wait", TimeBucket.PAGE_WAIT),
    ("Lock wait", TimeBucket.LOCK_WAIT),
    ("Barrier wait", TimeBucket.BARRIER_WAIT),
    ("Overhead", TimeBucket.OVERHEAD),
    ("Log & Ckp", TimeBucket.LOG_CKPT),
]


def figure3(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 3 data: normalized execution-time breakdown per app.

    Returns ``{app: {"base"|"ft": {component: percent-of-base-time}}}``:
    the left/right bars of the paper's figure, both normalized to the
    base run's mean execution time (the left bar sums to 100).
    """
    from repro.harness.tables import run_all_experiments

    experiments = experiments or run_all_experiments(scale)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, (base, ft) in experiments.items():
        base_mean = base.result.mean_time_stats
        ft_mean = ft.result.mean_time_stats
        norm = base_mean.total or 1.0
        out[name] = {
            "base": {
                label: 100.0 * base_mean.seconds[bucket] / norm
                for label, bucket in BREAKDOWN
            },
            "ft": {
                label: 100.0 * ft_mean.seconds[bucket] / norm
                for label, bucket in BREAKDOWN
            },
        }
    return out


def figure3_table(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> Table:
    """Figure 3 rendered as a table (base | FT columns per component)."""
    data = figure3(experiments, scale)
    t = Table(
        "Figure 3: Normalized execution time breakdown (% of base run)",
        ["Component"]
        + [f"{name} {kind}" for name in data for kind in ("base", "FT")],
        note="Left/right column pairs correspond to the paper's "
        "left (base) / right (fault-tolerant) bars.",
    )
    for label, _bucket in BREAKDOWN:
        row: List[str] = [label]
        for name in data:
            row.append(f"{data[name]['base'][label]:6.1f}")
            row.append(f"{data[name]['ft'][label]:6.1f}")
        t.add(*row)
    totals: List[str] = ["TOTAL"]
    for name in data:
        totals.append(f"{sum(data[name]['base'].values()):6.1f}")
        totals.append(f"{sum(data[name]['ft'].values()):6.1f}")
    t.add(*totals)
    return t


def figure4(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Figure 4 data: stable-storage log size vs checkpoint number.

    Returns ``{app: {"measured": [(ckpt#, bytes)], "unbounded":
    [(ckpt#, bytes)]}}`` where "unbounded" is the paper's dotted
    L-bytes-per-checkpoint growth line without LLT. The measured curve
    comes from the observability registry's per-node
    ``ft.log_disk_bytes`` series (recorded at every checkpoint by the
    attached :class:`~repro.observe.ClusterObserver`).
    """
    from repro.harness.experiment import PAPER
    from repro.harness.tables import run_all_experiments

    experiments = experiments or run_all_experiments(scale)
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for name, (_base, ft) in experiments.items():
        if ft.registry is None:
            raise ValueError(
                f"{name}: FT experiment has no metrics registry; run it "
                "through harness.experiment.run_ft"
            )
        # per checkpoint number, the max stable log size across nodes
        per_ckpt: Dict[int, float] = {}
        for _node, points in ft.registry.series_by_name(
            "ft.log_disk_bytes"
        ).items():
            for ckpt_no, size in points:
                per_ckpt[int(ckpt_no)] = max(
                    per_ckpt.get(int(ckpt_no), 0.0), float(size)
                )
        measured = sorted(per_ckpt.items())
        l_bytes = PAPER[name].l_fraction * ft.result.footprint_bytes
        unbounded = [(k, k * l_bytes) for k, _ in measured]
        out[name] = {"measured": measured, "unbounded": unbounded}
    return out


def figure4_render(
    experiments: Optional[Dict[str, Tuple[ExperimentResult, ExperimentResult]]] = None,
    scale: str = "default",
) -> str:
    data = figure4(experiments, scale)
    charts = []
    for name, series in data.items():
        charts.append(
            ascii_series(
                f"Figure 4 ({name}): log size in stable storage vs checkpoint",
                {"with LLT": series["measured"], "no LLT (theory)": series["unbounded"]},
                xlabel="checkpoint number",
                ylabel="bytes",
            )
        )
    return "\n\n".join(charts)
