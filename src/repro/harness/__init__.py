"""Experiment harness regenerating every table and figure of §5."""

from repro.harness.experiment import (
    PAPER,
    AppSetup,
    ExperimentResult,
    paper_setups,
    run_base,
    run_ft,
)
from repro.harness.tables import table1, table2, table3, table4
from repro.harness.figures import figure3, figure4

__all__ = [
    "PAPER",
    "AppSetup",
    "ExperimentResult",
    "paper_setups",
    "run_base",
    "run_ft",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure3",
    "figure4",
]
