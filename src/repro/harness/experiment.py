"""Standard experiment setups mirroring §5 of the paper.

The paper runs three SPLASH-2 applications on an 8-node Myrinet cluster
with the log-overflow (OF) checkpointing policy — L = 1.0 for Barnes
(largest log volume per byte of footprint) and L = 0.1 for the Water
apps. We keep the same cluster size and L values and scale the problem
sizes so that each experiment runs in seconds of host time; the paper's
reported values are bundled for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import DsmCluster, DsmConfig
from repro.apps.barnes import BarnesApp, BarnesConfig
from repro.apps.water_nsq import WaterNsqApp, WaterNsqConfig
from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig
from repro.cluster import RunResult
from repro.core import FtConfig, LogOverflowPolicy
from repro.sim.storage import DiskConfig

__all__ = [
    "PAPER",
    "AppSetup",
    "ExperimentResult",
    "paper_setups",
    "run_base",
    "run_ft",
]

NUM_PROCS = 8  # the paper's cluster size

#: Disk model for the harness. The scaled problems run for virtual
#: seconds rather than the paper's thousands of seconds, so fixed seek
#: costs are scaled down proportionally to keep the checkpoint-cost to
#: runtime ratio in the paper's regime (see EXPERIMENTS.md, calibration).
HARNESS_DISK = DiskConfig(seek_time=2e-3, write_bandwidth=30e6, read_bandwidth=40e6)


@dataclass(frozen=True)
class PaperValues:
    """The values reported in the paper, for comparison columns."""

    problem_size: str
    footprint_mb: float
    base_time_s: float
    l_fraction: float
    ckpts_taken: str
    exe_increase_pct: float
    log_disk_overhead_pct: float
    cgc_traffic_overhead_pct: float
    wmax: int
    pct_logs_discarded: float


#: Table 1-4 values from the paper, keyed by app name.
PAPER: Dict[str, PaperValues] = {
    "barnes": PaperValues(
        problem_size="256 k bodies, 60 steps",
        footprint_mb=43.0,
        base_time_s=1663.0,
        l_fraction=1.0,
        ckpts_taken="6-10",
        exe_increase_pct=61.0,
        log_disk_overhead_pct=6.8,
        cgc_traffic_overhead_pct=0.15,
        wmax=3,
        pct_logs_discarded=76.0,
    ),
    "water-nsq": PaperValues(
        problem_size="19,683 molecules",
        footprint_mb=12.6,
        base_time_s=1634.0,
        l_fraction=0.1,
        ckpts_taken="9",
        exe_increase_pct=0.6,
        log_disk_overhead_pct=0.4,
        cgc_traffic_overhead_pct=0.2,
        wmax=3,
        pct_logs_discarded=80.0,
    ),
    "water-spatial": PaperValues(
        problem_size="256 k molecules",
        footprint_mb=257.3,
        base_time_s=2569.0,
        l_fraction=0.1,
        ckpts_taken="5",
        exe_increase_pct=7.0,
        log_disk_overhead_pct=3.6,
        cgc_traffic_overhead_pct=0.25,
        wmax=3,
        pct_logs_discarded=58.0,
    ),
}


@dataclass
class AppSetup:
    """One benchmarkable application configuration."""

    name: str
    make_app: Callable[[], Any]
    l_fraction: float
    problem_size: str


def paper_setups(scale: str = "default") -> List[AppSetup]:
    """The three paper workloads at the given scale.

    ``scale`` is ``"smoke"`` (fast; CI) or ``"default"`` (the benchmark
    harness scale).
    """
    if scale == "smoke":
        barnes = BarnesConfig(
            n_bodies=96, steps=3, force_cost=30e-6, insert_cost=10e-6, com_cost=2e-6
        )
        nsq = WaterNsqConfig(
            n_molecules=48, steps=3, pair_cost=40e-6, static_elements=1024
        )
        spatial = WaterSpatialConfig(
            n_molecules=125, steps=3, pair_cost=40e-6, static_elements=1024
        )
    elif scale == "default":
        barnes = BarnesConfig(
            n_bodies=160,
            steps=16,
            force_cost=30e-6,
            insert_cost=10e-6,
            com_cost=2e-6,
        )
        nsq = WaterNsqConfig(
            n_molecules=96, steps=8, pair_cost=120e-6, static_elements=8192
        )
        # NOTE: the paper uses L = 1.0 for Barnes because its full-scale
        # run logs ~10x its footprint per node; the scaled run logs
        # ~2-3x, so the equivalent policy pressure (6-10 checkpoints per
        # node) needs a proportionally smaller L (EXPERIMENTS.md).
        spatial = WaterSpatialConfig(
            n_molecules=343,
            steps=8,
            cell_capacity=96,
            pair_cost=40e-6,
            static_elements=1024,
        )
    else:
        raise ValueError(f"unknown scale {scale!r}")
    return [
        AppSetup(
            "barnes",
            lambda c=barnes: BarnesApp(c),
            l_fraction=0.25,
            problem_size=f"{barnes.n_bodies} bodies, {barnes.steps} steps",
        ),
        AppSetup(
            "water-nsq",
            lambda c=nsq: WaterNsqApp(c),
            l_fraction=0.1,
            problem_size=f"{nsq.n_molecules} molecules, {nsq.steps} steps",
        ),
        AppSetup(
            "water-spatial",
            lambda c=spatial: WaterSpatialApp(c),
            l_fraction=0.1,
            problem_size=f"{spatial.n_molecules} molecules, {spatial.steps} steps",
        ),
    ]


@dataclass
class ExperimentResult:
    """A finished run plus the cluster it ran on (for deep inspection)."""

    setup: AppSetup
    cluster: DsmCluster
    result: RunResult
    #: metrics registry sampled during the run (FT runs only); the
    #: figure/table layer reads series from here instead of bespoke probes
    registry: Optional[Any] = None

    @property
    def hosts(self):
        return self.cluster.hosts


def run_base(setup: AppSetup, num_procs: int = NUM_PROCS) -> ExperimentResult:
    """Run with the base protocol (no fault tolerance)."""
    cluster = DsmCluster(DsmConfig(num_procs=num_procs), disk_config=HARNESS_DISK)
    result = cluster.run(setup.make_app())
    return ExperimentResult(setup, cluster, result)


def run_ft(
    setup: AppSetup,
    num_procs: int = NUM_PROCS,
    ft_config: Optional[FtConfig] = None,
    policy_factory: Optional[Callable[[int, int], Any]] = None,
) -> ExperimentResult:
    """Run with fault tolerance (OF policy at the setup's L)."""
    from repro.observe import ClusterObserver

    factory = policy_factory or (
        lambda pid, fp: LogOverflowPolicy(setup.l_fraction, fp)
    )
    cluster = DsmCluster(
        DsmConfig(num_procs=num_procs),
        disk_config=HARNESS_DISK,
        ft=True,
        ft_config=ft_config,
        policy_factory=factory,
    )
    # event-driven observation only (no time ticker): checkpoint and
    # barrier recording are passive reads, so the run stays bit-identical
    observer = ClusterObserver(cluster, interval=None, sample_on_barrier=True)
    result = cluster.run(setup.make_app())
    observer.sample()
    return ExperimentResult(setup, cluster, result, registry=observer.registry)
