"""Checkpointing policies (§5.1 and the §5.4 discussion).

The decision of *when* a node checkpoints is purely local and pluggable.
The paper evaluates the **log-overflow (OF)** policy: checkpoint when the
volatile log exceeds a fraction ``L`` of the shared-memory footprint
(L = 1.0 for Barnes, 0.1 for the Water apps). The conclusions sketch two
alternatives we also provide: a **barrier-coordinated** policy (every
process checkpoints at the same barriers, amortizing the coordination the
application already performs) and a **manual** application-driven policy
(the exported checkpoint API, enabling memory-exclusion style
optimizations). An **interval** policy (every k flushed intervals) is a
simple baseline.

Policies are consulted at synchronization points only — matching the
paper's restriction that all logging/trimming happens at sync points —
and may inspect the whole FT manager.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ftmanager import FtManager

__all__ = [
    "CheckpointPolicy",
    "LogOverflowPolicy",
    "IntervalPolicy",
    "BarrierCoordinatedPolicy",
    "ManualPolicy",
    "NeverPolicy",
]


class CheckpointPolicy:
    """Decides at each sync point whether to take a checkpoint now."""

    name = "abstract"

    def should_checkpoint(self, ft: "FtManager", at_barrier: bool) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class LogOverflowPolicy(CheckpointPolicy):
    """Checkpoint when the volatile diff log exceeds ``L × footprint``.

    The paper's OF policy. ``L`` trades checkpoint frequency against
    retained log volume; the sampling happens only at sync points, so the
    log can overshoot the threshold (the "imprecision" discussed with
    Figure 4).
    """

    name = "log_overflow"

    def __init__(self, l_fraction: float, footprint_bytes: int) -> None:
        if l_fraction <= 0:
            raise ValueError("L must be positive")
        if footprint_bytes <= 0:
            raise ValueError("footprint must be positive")
        self.l_fraction = l_fraction
        self.threshold = int(l_fraction * footprint_bytes)

    def should_checkpoint(self, ft: "FtManager", at_barrier: bool) -> bool:
        # the log accumulated since the last save: this is what grows by
        # up to L between checkpoints (the paper's Figure 4 slope)
        return ft.logs.diff.unsaved_bytes >= self.threshold

    def describe(self) -> str:
        return f"OF L = {self.l_fraction}"


class IntervalPolicy(CheckpointPolicy):
    """Checkpoint every ``k`` flushed intervals."""

    name = "interval"

    def __init__(self, every_intervals: int) -> None:
        if every_intervals < 1:
            raise ValueError("interval count must be >= 1")
        self.every = every_intervals
        self._last = 0

    def should_checkpoint(self, ft: "FtManager", at_barrier: bool) -> bool:
        cur = ft.proc.vt[ft.proc.pid]
        if cur - self._last >= self.every:
            self._last = cur
            return True
        return False

    def describe(self) -> str:
        return f"every {self.every} intervals"


class BarrierCoordinatedPolicy(CheckpointPolicy):
    """Checkpoint at every ``k``-th barrier (all processes together).

    Because every process applies the same deterministic rule at the same
    barrier episodes, the checkpoints are effectively coordinated without
    any extra messages — the §5.4 suggestion for barrier-heavy
    applications like Barnes.
    """

    name = "barrier_coordinated"

    def __init__(self, every_barriers: int = 1) -> None:
        if every_barriers < 1:
            raise ValueError("barrier count must be >= 1")
        self.every = every_barriers

    def should_checkpoint(self, ft: "FtManager", at_barrier: bool) -> bool:
        if not at_barrier:
            return False
        episode = ft.proc.barrier_episode
        return episode > 0 and episode % self.every == 0


class ManualPolicy(CheckpointPolicy):
    """Only the application's explicit ``proc.checkpoint()`` checkpoints."""

    name = "manual"

    def should_checkpoint(self, ft: "FtManager", at_barrier: bool) -> bool:
        return False


class NeverPolicy(CheckpointPolicy):
    """No checkpoints at all (logging-only runs, for ablations)."""

    name = "never"

    def should_checkpoint(self, ft: "FtManager", at_barrier: bool) -> bool:
        return False
