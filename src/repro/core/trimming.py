"""LLT / CGC bounds from lazily propagated information (§4.4).

Each process maintains, for every peer ``j``, the last *known* checkpoint
timestamp ``T̂ckp_j`` (and checkpointed barrier episode), plus — for every
page it writes that is homed elsewhere — the last known version
``p0.v[self]`` of the home's maximal starting copy. All of it arrives
piggybacked on ordinary protocol messages, so it may be stale; the rules
remain *correct* with stale values and merely trim less (§4.4.4).

The rules:

* **Rule 1** (wn_log): retain own write notices created in intervals
  ``>= min_{j≠i} T̂ckp_j[i] + 1``.
* **Rule 2** (rel/acq logs): retain ``rel_log[j]`` entries with
  ``acq_t[j] > T̂ckp_j[j]``; retain ``acq_log`` entries with
  ``acq_t[i] > Tckp_i[i]`` (own last checkpoint).
* **Rule 3.1** (CGC): a home retains page copies back to the newest one
  with ``version <= Tmin = min_{j≠H} T̂ckp_j``.
* **Rule 3.2** (LLT): a writer retains ``diff_log(p)`` entries with
  ``diff.T[i] > p0.v[i]``.

Incremental bounds
------------------
The derived bounds used to rescan all N peers on every query; with every
trim decision consulting them, that put an O(N) Python loop on the
checkpoint path. The knowledge is monotone — ``learn_tckp`` only ever
raises components, ``learn_p0v`` only raises versions — so the bounds
are maintained incrementally instead: a peer-row matrix mirror carries a
per-column running (min, argmin), updated in :meth:`learn_tckp` and
recomputed for a column only when the argmin row itself advances (each
column recompute is vectorized and amortizes against the frontier
actually moving). Every Rule 1/2/3.2 bound query — and :meth:`tmin` off
the cached column mins — is then O(1). The previous rescan
implementations survive as ``_rescan_*`` reference oracles for the
equivalence tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

__all__ = ["TrimmingInfo"]


class TrimmingInfo:
    """Per-process view of the (stale-tolerant) trimming bounds."""

    def __init__(self, pid: int, num_procs: int) -> None:
        self.pid = pid
        self.n = num_procs
        #: last known checkpoint timestamp per process (own is exact)
        self.tckp: List[VClock] = [VClock.zero(num_procs) for _ in range(num_procs)]
        #: last known checkpointed barrier episode per process
        self.bar_ep: List[int] = [0] * num_procs
        #: page -> last known p0.v[self] at the page's home (Rule 3.2 input)
        self.p0v: Dict[PageId, int] = {}
        #: bumped on every actual tckp/bar_ep change; lets the gossip
        #: encoder skip its per-destination delta scan when nothing moved
        self.gen = 0
        #: gen at the last change of each (tckp, bar_ep) row — the gossip
        #: encoder ships exactly the rows newer than a destination's
        #: last-synced gen instead of rescanning all N
        self.row_gen = np.zeros(num_procs, dtype=np.int64)
        # --- incremental Rule 1 / 3.1 state (peers only) ---------------
        self._peer_rows = np.array(
            [j for j in range(num_procs) if j != pid], dtype=np.int64
        )
        #: row j mirrors tckp[j] for peer rows (own row stays zero: it
        #: never participates in the peer minima)
        self._mat = np.zeros((num_procs, num_procs), dtype=np.int64)
        #: per-column min/argmin over peer rows of ``_mat``
        self._col_min = np.zeros(num_procs, dtype=np.int64)
        self._col_arg = np.full(
            num_procs, self._peer_rows[0] if len(self._peer_rows) else 0,
            dtype=np.int64,
        )
        self._tmin_cache: Optional[VClock] = (
            VClock.zero(num_procs) if len(self._peer_rows) else None
        )
        # --- incremental barrier bound ---------------------------------
        self._bar_min = 0
        self._bar_arg = int(self._peer_rows[0]) if len(self._peer_rows) else 0

    # ------------------------------------------------------------------
    # updates from piggybacked control data
    # ------------------------------------------------------------------
    def learn_tckp(self, proc: int, tckp: VClock, bar_ep: int = 0) -> None:
        """Monotone update of a peer's checkpoint timestamp."""
        cur = self.tckp[proc]
        new = cur.join(tckp)
        if new is not cur:  # join returns the operand when dominated
            self.tckp[proc] = new
            self.gen += 1
            self.row_gen[proc] = self.gen
            if proc != self.pid and self.n > 1:
                row = new.as_array()
                grew = np.flatnonzero(row > self._mat[proc])
                self._mat[proc] = row
                # a column min can only change when its argmin row grew
                stale = grew[self._col_arg[grew] == proc]
                if len(stale):
                    sub = self._mat[self._peer_rows[:, None], stale]
                    arg = sub.argmin(axis=0)
                    self._col_min[stale] = sub[arg, np.arange(len(stale))]
                    self._col_arg[stale] = self._peer_rows[arg]
                    self._tmin_cache = None
        if bar_ep > self.bar_ep[proc]:
            self.bar_ep[proc] = bar_ep
            self.gen += 1
            self.row_gen[proc] = self.gen
            if proc != self.pid and proc == self._bar_arg:
                peers = self._peer_rows
                vals = [self.bar_ep[j] for j in peers.tolist()]
                k = min(range(len(vals)), key=vals.__getitem__)
                self._bar_min = vals[k]
                self._bar_arg = int(peers[k])

    def learn_p0v(self, page: PageId, version_component: int) -> None:
        cur = self.p0v.get(page, 0)
        if version_component > cur:
            self.p0v[page] = version_component

    # ------------------------------------------------------------------
    # derived bounds
    # ------------------------------------------------------------------
    def tmin(self) -> VClock:
        """Rule 3.1 bound: componentwise min of *other* processes' T̂ckp."""
        if not len(self._peer_rows):  # single-process cluster
            return self.tckp[self.pid]
        out = self._tmin_cache
        if out is None:
            out = self._tmin_cache = VClock.from_array(self._col_min)
        return out

    def wn_keep_from(self) -> int:
        """Rule 1 bound: first own interval that must be retained."""
        if not len(self._peer_rows):
            return 1
        return int(self._col_min[self.pid]) + 1

    def rel_bound(self, acquirer: int) -> int:
        """Rule 2 bound for rel_log[acquirer]."""
        return self.tckp[acquirer][acquirer]

    def acq_bound(self) -> int:
        """Rule 2 bound for the own acq_log (own checkpoint component)."""
        return self.tckp[self.pid][self.pid]

    def diff_bound(self, page: PageId) -> int:
        """Rule 3.2 bound for diff_log(page)."""
        return self.p0v.get(page, 0)

    def bar_keep_from(self) -> int:
        """Barrier-log analogue of Rule 2: min checkpointed episode of peers."""
        if not len(self._peer_rows):
            return 0
        return self._bar_min

    # ------------------------------------------------------------------
    # rescan reference implementations (oracles for the incremental state)
    # ------------------------------------------------------------------
    def _rescan_tmin(self) -> VClock:
        out: Optional[VClock] = None
        for j in range(self.n):
            if j == self.pid:
                continue
            out = self.tckp[j] if out is None else out.meet(self.tckp[j])
        if out is None:
            return self.tckp[self.pid]
        return out

    def _rescan_wn_keep_from(self) -> int:
        vals = [self.tckp[j][self.pid] for j in range(self.n) if j != self.pid]
        if not vals:
            return 1
        return min(vals) + 1

    def _rescan_bar_keep_from(self) -> int:
        vals = [self.bar_ep[j] for j in range(self.n) if j != self.pid]
        return min(vals) if vals else 0
