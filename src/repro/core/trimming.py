"""LLT / CGC bounds from lazily propagated information (§4.4).

Each process maintains, for every peer ``j``, the last *known* checkpoint
timestamp ``T̂ckp_j`` (and checkpointed barrier episode), plus — for every
page it writes that is homed elsewhere — the last known version
``p0.v[self]`` of the home's maximal starting copy. All of it arrives
piggybacked on ordinary protocol messages, so it may be stale; the rules
remain *correct* with stale values and merely trim less (§4.4.4).

The rules:

* **Rule 1** (wn_log): retain own write notices created in intervals
  ``>= min_{j≠i} T̂ckp_j[i] + 1``.
* **Rule 2** (rel/acq logs): retain ``rel_log[j]`` entries with
  ``acq_t[j] > T̂ckp_j[j]``; retain ``acq_log`` entries with
  ``acq_t[i] > Tckp_i[i]`` (own last checkpoint).
* **Rule 3.1** (CGC): a home retains page copies back to the newest one
  with ``version <= Tmin = min_{j≠H} T̂ckp_j``.
* **Rule 3.2** (LLT): a writer retains ``diff_log(p)`` entries with
  ``diff.T[i] > p0.v[i]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

__all__ = ["TrimmingInfo"]


class TrimmingInfo:
    """Per-process view of the (stale-tolerant) trimming bounds."""

    def __init__(self, pid: int, num_procs: int) -> None:
        self.pid = pid
        self.n = num_procs
        #: last known checkpoint timestamp per process (own is exact)
        self.tckp: List[VClock] = [VClock.zero(num_procs) for _ in range(num_procs)]
        #: last known checkpointed barrier episode per process
        self.bar_ep: List[int] = [0] * num_procs
        #: page -> last known p0.v[self] at the page's home (Rule 3.2 input)
        self.p0v: Dict[PageId, int] = {}
        #: bumped on every actual tckp/bar_ep change; lets the gossip
        #: encoder skip its per-destination delta scan when nothing moved
        self.gen = 0

    # ------------------------------------------------------------------
    # updates from piggybacked control data
    # ------------------------------------------------------------------
    def learn_tckp(self, proc: int, tckp: VClock, bar_ep: int = 0) -> None:
        """Monotone update of a peer's checkpoint timestamp."""
        cur = self.tckp[proc]
        new = cur.join(tckp)
        if new is not cur:  # join returns the operand when dominated
            self.tckp[proc] = new
            self.gen += 1
        if bar_ep > self.bar_ep[proc]:
            self.bar_ep[proc] = bar_ep
            self.gen += 1

    def learn_p0v(self, page: PageId, version_component: int) -> None:
        cur = self.p0v.get(page, 0)
        if version_component > cur:
            self.p0v[page] = version_component

    # ------------------------------------------------------------------
    # derived bounds
    # ------------------------------------------------------------------
    def tmin(self) -> VClock:
        """Rule 3.1 bound: componentwise min of *other* processes' T̂ckp."""
        out: Optional[VClock] = None
        for j in range(self.n):
            if j == self.pid:
                continue
            out = self.tckp[j] if out is None else out.meet(self.tckp[j])
        if out is None:  # single-process cluster
            return self.tckp[self.pid]
        return out

    def wn_keep_from(self) -> int:
        """Rule 1 bound: first own interval that must be retained."""
        vals = [self.tckp[j][self.pid] for j in range(self.n) if j != self.pid]
        if not vals:
            return 1
        return min(vals) + 1

    def rel_bound(self, acquirer: int) -> int:
        """Rule 2 bound for rel_log[acquirer]."""
        return self.tckp[acquirer][acquirer]

    def acq_bound(self) -> int:
        """Rule 2 bound for the own acq_log (own checkpoint component)."""
        return self.tckp[self.pid][self.pid]

    def diff_bound(self, page: PageId) -> int:
        """Rule 3.2 bound for diff_log(page)."""
        return self.p0v.get(page, 0)

    def bar_keep_from(self) -> int:
        """Barrier-log analogue of Rule 2: min checkpointed episode of peers."""
        vals = [self.bar_ep[j] for j in range(self.n) if j != self.pid]
        return min(vals) if vals else 0
