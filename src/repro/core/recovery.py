"""Single-fault recovery by log-based replay (§4.3).

The paper's prototype implemented logging but not recovery; this module
implements the full procedure the paper specifies, which is also how the
test suite *proves* that LLT/CGC retain exactly enough state:

1. **Restart** from the restart checkpoint (or the virtual initial
   checkpoint): restore private state, vector time, homed pages + their
   version vectors, the saved logs, and the small protocol structures.
2. **Handshake** with every peer, collecting: ``rel_log[me]`` entries
   (grants to the failed process — drive acquire replay), ``acq_log``
   mirrors of the failed process's own grants (restore its ``rel_log``),
   peers' write-notice logs, barrier history (or mirrors, when the failed
   process managed the barrier), lock-manager self-grant mirrors, and
   all diffs peers retain for pages homed at the failed process.
3. **Replay**: the application re-runs from the restored state; the
   :class:`ReplayDriver` satisfies each synchronization operation from
   the logs and each page miss by *local emulation of a home* — an
   evolving page copy built from the maximal starting copy plus
   happened-before diffs applied in a linear extension of the vector-time
   partial order (componentwise-sum order).
4. **Live switch**: when a synchronization operation finds no log entry,
   the execution has caught up with the crash point; the driver finalizes
   (applies residual homed diffs, reconstructs lock-token placement from
   arrival/departure counts) and the process continues live. A
   ``RecoveryDone`` broadcast lets peers re-issue requests the failed
   incarnation consumed and lets lock managers repair lost forwards.

Known limitation: replay alignment of lock events relies on each
release-that-grants being distinguishable by vector time, which holds
whenever locks protect actual writes (true of all bundled applications
and of race-free programs doing useful work under locks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core.checkpoint import Checkpoint
from repro.core.ftmanager import FtManager
from repro.core.logs import RelEntry
from repro.dsm.diff import Diff, apply_diff, concat_diffs, merge_runs
from repro.dsm.interval import NoticeTable
from repro.dsm.messages import (
    GrantInfo,
    RecoveryDone,
    RecoveryQuery,
    RecoveryReply,
    WriteNotice,
)
from repro.dsm.pages import PageEntry, PageId, PageState
from repro.dsm.protocol import DsmProcess
from repro.dsm.vclock import VClock
from repro.sim.engine import Future
from repro.sim.node import TimeBucket

__all__ = [
    "OverlappingFailureError",
    "RecoveryResponder",
    "RecoveryManager",
    "ReplayDriver",
]


class OverlappingFailureError(RuntimeError):
    """A second failure overlapped this recovery in an unrecoverable way.

    The protocol's volatile rel/acq logs are *not* part of checkpoints —
    they are rebuilt from peers' mirrors during the handshake. If a peer
    we depend on failed at-or-after our own crash, its mirrors may no
    longer cover what our replay needs, and proceeding could silently
    diverge. The paper assumes single failures (§2); we detect the
    violated assumption and fail loudly instead of hanging or diverging.
    """

REL_ENTRY_WIRE = 40  # lock id + vt, modeled
NOTICE_WIRE = 16
VT_WIRE = 32


def _sum_key(t: VClock) -> int:
    """Componentwise sum: a linear extension of the vector-time order."""
    return sum(t.v)


# ======================================================================
# peer side
# ======================================================================


class RecoveryResponder:
    """Serves recovery queries from a peer's live state.

    Responses are computed in the message handler ("recovery of a process
    does not interfere with other operational processes") and their CPU
    cost is accrued as handler debt.
    """

    def __init__(self, host: Any) -> None:
        self.host = host

    def handle(self, src: int, query: RecoveryQuery) -> None:
        kind = query.kind
        if kind.startswith("replica_"):
            # serve from the volatile replica tier: ``src`` lost a peer
            # to an overlapping failure and fetches that peer's mirrored
            # FT state from us (its buddy). detail = (protected, inner)
            from repro.core.replica import serve_replica_query

            protected, inner = query.detail
            payload, size = serve_replica_query(
                self.host, protected, src, kind[len("replica_") :], inner
            )
        elif kind == "handshake":
            payload, size = self._handshake(src)
        elif kind == "page_diffs":
            payload, size = self._page_diffs(query.detail)
        elif kind == "home_diffs":
            payload, size = self._home_diffs(src)
        elif kind == "starting_copy":
            payload, size = self._starting_copy(query.detail)
        else:
            raise RuntimeError(f"unknown recovery query kind {kind!r}")
        reply = RecoveryReply(
            kind=kind,
            responder=self.host.pid,
            payload=payload,
            payload_size=size,
            qid=query.qid,
            responder_crash_time=self.host.last_crash_time,
            responder_recovering=self.host.recovering,
        )
        self.host.proto.cpu.accrue_handler(20e-6)
        self.host.cluster.send(self.host.pid, src, reply)

    # ------------------------------------------------------------------
    def _handshake(self, src: int) -> Tuple[Dict[str, Any], int]:
        host = self.host
        proto: DsmProcess = host.proto
        ft: FtManager = host.ft
        rel_entries = ft.logs.rel.for_acquirer(src)
        acq_mirror = ft.logs.acq.for_grantor(src)
        wn = proto.notices.own_after(proto.pid, 0)
        self_grants: Dict[int, List[VClock]] = {}
        for lock_id in proto.locks.managed_locks():
            mgr = proto.locks.manager(lock_id)
            entries = mgr.self_grants.get(src)
            if entries:
                self_grants[lock_id] = list(entries)
        # buddy mirrors of self-grants for locks `src` manages itself
        for lock_id, entries in ft.buddy_selfgrants.get(src, {}).items():
            if entries:
                self_grants.setdefault(lock_id, []).extend(entries)
        bar_history: Dict[int, VClock] = {}
        if proto.barrier_mgr is not None:
            bar_history = dict(proto.barrier_mgr.history)
        bar_mirror = [(b.episode, b.global_vt) for b in ft.logs.bar]
        tokens = proto.locks.chain_snapshot()
        managed_owners = {
            lock_id: proto.locks.manager(lock_id).owner()
            for lock_id in proto.locks.managed_locks()
        }
        payload = {
            "managed_owners": managed_owners,
            "rel_entries": rel_entries,
            "acq_mirror": acq_mirror,
            "wn": wn,
            "self_grants": self_grants,
            "bar_history": bar_history,
            "bar_mirror": bar_mirror,
            "tckp": ft.trim.tckp[proto.pid],
            "bar_ep": ft.trim.bar_ep[proto.pid],
            "tokens": tokens,
            "completed_seq": dict(proto._completed_seq),
        }
        size = (
            (len(rel_entries) + len(acq_mirror)) * REL_ENTRY_WIRE
            + len(wn) * NOTICE_WIRE
            + sum(len(v) for v in self_grants.values()) * VT_WIRE
            + (len(bar_history) + len(bar_mirror)) * VT_WIRE
            + len(tokens) * 8
            + VT_WIRE
        )
        return payload, size

    def _page_diffs(self, page: PageId) -> Tuple[List[Tuple[VClock, Diff]], int]:
        ft: FtManager = self.host.ft
        entries = [(e.t, e.diff) for e in ft.logs.diff.entries_for(page)]
        size = sum(d.size_bytes + VT_WIRE for _, d in entries)
        return entries, size

    def _home_diffs(self, src: int) -> Tuple[Dict[PageId, List[Tuple[VClock, Diff]]], int]:
        ft: FtManager = self.host.ft
        proto: DsmProcess = self.host.proto
        out: Dict[PageId, List[Tuple[VClock, Diff]]] = {}
        size = 0
        for page in ft.logs.diff.pages():
            if proto.regions.home_of(page) != src:
                continue
            entries = [(e.t, e.diff) for e in ft.logs.diff.entries_for(page)]
            if entries:
                out[page] = entries
                size += sum(d.size_bytes + VT_WIRE for _, d in entries)
        return out, size

    def _starting_copy(
        self, detail: Tuple[PageId, VClock]
    ) -> Tuple[Tuple[bytes, VClock], int]:
        page, ceiling = detail
        copy = self.host.ckpt_mgr.maximal_starting_copy(page, ceiling)
        return (copy.data, copy.version), len(copy.data) + VT_WIRE


# ======================================================================
# recovering side
# ======================================================================


class RecoveryManager:
    """Drives the recovery of one failed process."""

    def __init__(self, host: Any) -> None:
        self.host = host
        self.cluster = host.cluster
        self.pid = host.pid
        #: when the incarnation this manager recovers crashed; replies
        #: from peers that failed at-or-after this instant signal overlap
        self.crash_time = host.last_crash_time
        self._pending: Dict[int, Future] = {}
        #: phase-boundary virtual times (recovery anatomy, DESIGN.md §12):
        #: begin / restore end / handshake end, filled as the procedure
        #: advances; a killed incarnation's partial marks die with it
        self._t_begin = -1.0
        self._t_restored = -1.0
        self._t_handshake = -1.0
        #: buddy-replica fetch accounting (the stable-store-vs-replica
        #: split of the restore/replay work)
        self.replica_fetches = 0
        self.replica_fetch_s = 0.0

    # -- query plumbing -------------------------------------------------
    def query(self, dst: int, kind: str, detail: Any = None) -> Iterator[Any]:
        while True:
            # qids are host-level monotonic: a restarted recovery must
            # never reuse a qid a killed incarnation has in flight, or a
            # stale reply could resolve the wrong future
            qid = self.host.next_qid()
            fut = Future(f"recovery {kind} -> {dst}")
            self._pending[qid] = fut
            self.cluster.send(
                self.pid,
                dst,
                RecoveryQuery(kind=kind, requester=self.pid, detail=detail, qid=qid),
            )
            reply: RecoveryReply = yield fut
            if kind.startswith("replica_"):
                # replica fetches are served from the holder's volatile
                # replica tier, which is valid regardless of the holder's
                # own failure history — no overlap check applies
                return reply.payload
            if not self.cluster.replication:
                self._check_overlap(reply)
                return reply.payload
            if (
                reply.responder_crash_time >= 0
                and reply.responder_crash_time >= self.crash_time
            ):
                # overlapping failure: the responder lost the mirrors we
                # need — fall back to its buddy's replica of them
                payload = yield from self._query_replica(dst, kind, detail)
                return payload
            if reply.responder_recovering:
                # the responder crashed strictly before us and is still
                # rebuilding: its mirrors of *us* are intact but possibly
                # not yet drained into its state — retry until it is
                # live.  Deadlock-free: in any mutually-recovering pair
                # exactly one side sees overlap (>= above) and completes
                # via the replica path, unblocking the other.
                from repro.sim.engine import Delay

                yield Delay(self.cluster.config.failure_detection_delay)
                continue
            return reply.payload

    def _query_replica(self, lost: int, kind: str, detail: Any) -> Iterator[Any]:
        """Fetch what ``lost`` would have answered from a replica holder.

        Tries holders in ring order; a holder whose record is missing or
        torn answers with the NO_REPLICA sentinel and the next one is
        tried. No holder left = the replica chain itself was lost
        (e.g. both ends crashed before a re-sync) — that is the residual,
        explicitly-diagnosed unrecoverable overlap.
        """
        from repro.core.replica import NO_REPLICA

        cluster = self.cluster
        tried: List[int] = []
        while True:
            holder = cluster.replica_holder(lost, exclude=tuple(tried))
            if holder is None:
                raise OverlappingFailureError(
                    f"recovery of p{self.pid} (crashed t={self.crash_time:.6f}) "
                    f"depends on p{lost}, which failed too, and no live "
                    f"replica of p{lost}'s FT state survives — the replica "
                    "chain was lost before a re-sync could repair it "
                    "(overlapping failures exceed what one buddy covers)"
                )
            if cluster.probe is not None:
                cluster.probe(
                    self.pid, "repl", f"fetch kind={kind} lost={lost} holder={holder}"
                )
            t0 = cluster.engine.now
            payload = yield from self.query(holder, "replica_" + kind, (lost, detail))
            self.replica_fetches += 1
            self.replica_fetch_s += cluster.engine.now - t0
            if isinstance(payload, str) and payload == NO_REPLICA:
                tried.append(holder)
                continue
            return payload

    def _check_overlap(self, reply: RecoveryReply) -> None:
        # Only the *ordering* of the failures matters. A responder that
        # crashed strictly before us rebuilt (or is rebuilding) its logs
        # from mirrors recorded while we were still alive, and queries it
        # cannot yet answer are held until it can — that interleaving is
        # the workable mutual-recovery dance. A responder that failed
        # at-or-after us lost the very mirrors our replay depends on, and
        # its own rebuild cannot reach us for them (we are down): that is
        # the unrecoverable overlap.
        if (
            reply.responder_crash_time >= 0
            and reply.responder_crash_time >= self.crash_time
        ):
            raise OverlappingFailureError(
                f"recovery of p{self.pid} (crashed t={self.crash_time:.6f}) "
                f"depends on p{reply.responder}, which failed at "
                f"t={reply.responder_crash_time:.6f} — its volatile logs "
                "may no longer cover this replay (overlapping failures "
                "exceed the single-fault model, §2)"
            )

    def query_all(self, kind: str, detail: Any = None) -> Iterator[Any]:
        """Query every live peer; returns {pid: payload}."""
        out: Dict[int, Any] = {}
        for j in range(self.cluster.config.num_procs):
            if j == self.pid:
                continue
            out[j] = yield from self.query(j, kind, detail)
        return out

    def on_reply(self, src: int, reply: RecoveryReply) -> None:
        fut = self._pending.pop(reply.qid, None)
        if fut is not None:
            fut.resolve(reply)

    # ------------------------------------------------------------------
    # the recovery procedure
    # ------------------------------------------------------------------
    def _rphase(self, detail: str) -> None:
        """Announce a recovery-phase boundary on the probe hook."""
        if self.cluster.probe is not None:
            self.cluster.probe(self.pid, "rphase", detail)

    def recover_and_resume(self) -> Iterator[Any]:
        host = self.host
        cluster = self.cluster
        host.recovery_mgr = self
        self._t_begin = cluster.engine.now
        self._rphase("restore begin")

        # 1. rebuild volatile infrastructure -----------------------------
        proto = host.make_protocol()
        proto.rebind_homes()
        host.proto = proto
        cluster._install_ft(host)  # fresh FtManager over the surviving store
        ft: FtManager = host.ft

        if cluster.replication:
            # answer recovery queries held while we were down *now*, not
            # at go-live: a peer recovering concurrently retries its
            # queries against us and would otherwise wait forever while
            # we wait on it (replies carry responder_recovering=True, so
            # the peer knows to retry / fall back as appropriate)
            held = [(s, m) for (s, m) in host.queued if isinstance(m, RecoveryQuery)]
            if held:
                host.queued = [
                    e for e in host.queued if not isinstance(e[1], RecoveryQuery)
                ]
                for s, m in held:
                    host.responder.handle(s, m)

        # a crash during a checkpoint disk write leaves a marker-less
        # (torn) record on stable storage; it must not be a restart point
        torn = host.ckpt_mgr.discard_torn()
        if torn and cluster.probe is not None:
            cluster.probe(self.pid, "recovery", f"discarded_torn n={torn}")

        ckpt: Optional[Checkpoint] = host.ckpt_mgr.restart_checkpoint()
        if ckpt is not None:
            self._restore_from_checkpoint(proto, ft, ckpt)
            host.state = ckpt.restore_app_state()
            if cluster.probe is not None:
                cluster.probe(
                    self.pid, "recovery", f"restart_ckpt seqno={ckpt.seqno}"
                )
        else:
            # restart from the virtual checkpoint 0: initial private
            # state and the *seeded* initial contents of homed pages
            host.state = cluster.app.init_state(self.pid)
            for page, copies in host.ckpt_mgr.page_copies.items():
                seed = copies[0]
                proto.page_bytes(page)[:] = np.frombuffer(
                    seed.data, dtype=np.uint8
                )
                proto.home[page].version = seed.version
                proto.have_v[page] = seed.version
        ft.app_state_fn = lambda h=host: h.state
        tckp = ckpt.tckp if ckpt is not None else VClock.zero(proto.n)

        # disk read: restart checkpoint + saved logs
        restore_bytes = host.store.used_bytes
        yield from proto.cpu.charge(
            TimeBucket.LOG_CKPT, host.disk.read_cost(restore_bytes)
        )
        self._t_restored = cluster.engine.now
        self._rphase("restore end")

        # 2. handshake ----------------------------------------------------
        self._rphase("handshake begin")
        replies = yield from self.query_all("handshake")
        driver = ReplayDriver(proto, ft, self, tckp, ckpt)
        driver.ingest_handshakes(replies)

        home_diffs = yield from self.query_all("home_diffs")
        driver.ingest_home_diffs(home_diffs)
        self._t_handshake = cluster.engine.now
        self._rphase("handshake end")

        # 3. replay -------------------------------------------------------
        self._rphase("replay begin")
        proto.replay = driver
        driver.apply_eligible_home_diffs()
        driver.on_live = self._go_live

        yield from cluster._app_main(host)
        # if the app finished while still in replay mode (every remaining
        # operation was logged before the crash), the live switch still
        # must happen: peers need the RecoveryDone and the queued messages
        if not driver.live:
            driver.go_live()
        host.recovery_mgr = None

    def _finish_phases(self) -> None:
        """Record this incarnation's completed recovery anatomy.

        Emitted at the live switch, *before* the ``recovery live`` probe
        so the span tracer closes the replay child span while its parent
        recovery span is still open. Phase durations (all virtual time):

        * ``detect``    — fail-stop to recovery start (the cluster's
          failure-detection delay);
        * ``restore``   — infrastructure rebuild + stable-store read of
          the restart checkpoint and saved logs;
        * ``handshake`` — the two ``query_all`` rounds (handshake and
          home-diff collection), including any buddy-replica fallback
          fetches (counted separately in ``replica_fetches``/
          ``replica_fetch_s``);
        * ``replay``    — log-guided re-execution up to the live switch;
        * ``resume``    — the live switch itself (RecoveryDone broadcast,
          forwarded-lock repair, queue drain); it runs synchronously in
          zero virtual time today but is recorded so the schema names
          every phase of the recovery path.
        """
        host = self.host
        t_live = self.cluster.engine.now
        self._rphase("replay end")
        rec = {
            "incarnation": host.crashed_count,
            "crash_time": self.crash_time,
            "detect": self._t_begin - self.crash_time,
            "restore": self._t_restored - self._t_begin,
            "handshake": self._t_handshake - self._t_restored,
            "replay": t_live - self._t_handshake,
            "resume": 0.0,
            "total": t_live - self.crash_time,
            "replica_fetches": self.replica_fetches,
            "replica_fetch_s": self.replica_fetch_s,
        }
        host.recovery_phases.append(rec)
        obs = self.cluster.observer
        if obs is not None:
            obs.on_recovery_phases(self.pid, rec)

    def _go_live(self) -> None:
        """Called by the driver at the live switch."""
        host = self.host
        cluster = self.cluster
        self._finish_phases()
        host.recovering = False
        host.live = True
        cluster.recoveries += 1
        host.recovered_count += 1
        if cluster.probe is not None:
            cluster.probe(self.pid, "recovery", "live")
        for j in range(cluster.config.num_procs):
            if j != self.pid:
                cluster.send(self.pid, j, RecoveryDone(proc=self.pid))
        # repair our own managed locks / pending ops
        assert host.proto is not None
        host.proto.repair_forwards_for(self.pid)
        if cluster.replication:
            # re-enter the replication ring: our new incarnation picks a
            # buddy and full-syncs; peers that had re-buddied away from
            # us (or to a now-suboptimal ring position) re-evaluate
            cluster._recompute_buddies()
        host.drain_queue()

    # ------------------------------------------------------------------
    def _restore_from_checkpoint(
        self, proto: DsmProcess, ft: FtManager, ckpt: Checkpoint
    ) -> None:
        proto.vt = ckpt.tckp
        # homed pages: contents + version vectors from the restart ckpt
        for page, version in ckpt.homed_versions.items():
            copies = ft.ckpt_mgr.page_copies[page]
            data = None
            for c in copies:
                if c.ckpt_seqno == ckpt.seqno:
                    data = c.data
                    break
            if data is None:
                raise RuntimeError(
                    f"restart checkpoint {ckpt.seqno} lost page {page} "
                    "(CGC must never collect the latest checkpoint)"
                )
            proto.page_bytes(page)[:] = np.frombuffer(data, dtype=np.uint8)
            hp = proto.home[page]
            hp.version = version
            hp.drop_snapshot()
            proto.have_v[page] = version
        # own write notices
        for wn in ckpt.own_notices:
            proto.notices.add(wn)
        # saved diff log
        for page, entries in ckpt.diff_log.items():
            for e in entries:
                ft.logs.diff.append(page, e.diff, e.t, saved=True)
            # restoring is not creating: undo the double count
            ft.logs.diff.bytes_created -= sum(e.size_bytes for e in entries)
        # protocol bookkeeping
        for lock_id, (has_token, held) in ckpt.lock_tokens.items():
            st = proto.locks.token(lock_id)
            st.has_token = has_token
            st.held = held
            if has_token and not held:
                st.rel_vt = ckpt.tckp  # conservative release snapshot
        proto._acq_seq = dict(ckpt.acq_seq)
        proto._completed_seq = dict(ckpt.acq_seq)
        proto.barrier_episode = ckpt.barrier_episode
        proto.last_barrier_global = ckpt.last_barrier_global
        ft.trim.learn_tckp(self.pid, ckpt.tckp, ckpt.barrier_episode)


# ======================================================================
# replay
# ======================================================================


@dataclass
class _PoolEntry:
    creator: int
    t: VClock
    diff: Diff
    applied: bool = False


class ReplayDriver:
    """Satisfies DSM operations from recovered logs during replay."""

    def __init__(
        self,
        proto: DsmProcess,
        ft: FtManager,
        rm: RecoveryManager,
        tckp: VClock,
        ckpt: Optional[Checkpoint],
    ) -> None:
        self.proto = proto
        self.ft = ft
        self.rm = rm
        self.tckp = tckp
        self.pid = proto.pid
        #: lock -> ordered pending acquire records: (acq_t, grantor|None)
        #: grantor None means a self-grant record
        self.acquire_records: Dict[int, List[Tuple[VClock, Optional[int]]]] = {}
        #: lock -> number of post-checkpoint token departures (grants by me)
        self.departures: Dict[int, int] = {}
        #: lock -> arrivals replayed (non-self acquires consumed)
        self.arrivals: Dict[int, int] = {}
        #: lock -> initial token presence at restart
        self.initial_token: Dict[int, bool] = {}
        #: lock -> owner as tracked by its (live) manager via GrantInfo —
        #: the authoritative token-placement source (the rel/acq mirrors
        #: may be legitimately trimmed under Rule 2)
        self.owner_reports: Dict[int, int] = {}
        #: lock -> peer currently reporting the token (for locks the
        #: recovering process manages itself)
        self.peer_token_holders: Dict[int, int] = {}
        #: lock -> {proc: (successor, seq)} pointers, for chain rebuilds
        self.succ_edges: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self.bar_history: Dict[int, VClock] = {}
        #: collected peers' write notices (NOT merged into proto.notices:
        #: only happened-before ones are surfaced, at vt advances)
        self.peer_notices = NoticeTable(proto.n)
        #: page -> evolving home-emulation copy
        self.evolving: Dict[PageId, np.ndarray] = {}
        self.evolving_v: Dict[PageId, VClock] = {}
        #: page -> diff pool for home emulation (sum-ordered)
        self.pool: Dict[PageId, List[_PoolEntry]] = {}
        self.pool_fetched: Set[PageId] = set()
        #: pools for the pages homed at the recovering process
        self.home_pool: Dict[PageId, List[_PoolEntry]] = {}
        self.live = False
        self.on_live = lambda: None
        self.stats_replayed_acquires = 0
        self.stats_replayed_barriers = 0
        self.stats_replayed_fetches = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest_handshakes(self, replies: Dict[int, Dict[str, Any]]) -> None:
        proto = self.proto
        me = self.pid
        for src, payload in replies.items():
            for entry in payload["rel_entries"]:
                if entry.acq_t[me] > self.tckp[me]:
                    self.acquire_records.setdefault(entry.lock_id, []).append(
                        (entry.acq_t, src)
                    )
            for entry in payload["acq_mirror"]:
                # grants the failed process made: restore rel_log + count
                # post-checkpoint departures
                self.ft.logs.rel.append(src, entry.lock_id, entry.acq_t)
                if entry.acq_t[me] > self.tckp[me]:
                    self.departures[entry.lock_id] = (
                        self.departures.get(entry.lock_id, 0) + 1
                    )
            for wn in payload["wn"]:
                self.peer_notices.add(wn)
            for lock_id, entries in payload["self_grants"].items():
                for acq_t in entries:
                    if acq_t[me] > self.tckp[me]:
                        self.acquire_records.setdefault(lock_id, []).append(
                            (acq_t, None)
                        )
            self.bar_history.update(payload["bar_history"])
            for episode, global_vt in payload["bar_mirror"]:
                self.bar_history.setdefault(episode, global_vt)
            self.ft.trim.learn_tckp(src, payload["tckp"], payload["bar_ep"])
            self.owner_reports.update(payload["managed_owners"])
            for lock_id, (has_token, held, succ, succ_seq) in payload[
                "tokens"
            ].items():
                if has_token:
                    self.peer_token_holders[lock_id] = src
                if succ is not None:
                    self.succ_edges.setdefault(lock_id, {})[src] = (succ, succ_seq)
            for lock_id, seq in payload["completed_seq"].items():
                if proto.locks.manages(lock_id):
                    mgr = proto.locks.manager(lock_id)
                    mgr.last_seq[src] = max(mgr.last_seq.get(src, -1), seq)
        # snapshot pre-replay token presence for the finalize arithmetic
        for lock_id in set(self.acquire_records) | set(self.departures):
            self.initial_token[lock_id] = proto.locks.token(lock_id).has_token
        for records in self.acquire_records.values():
            records.sort(key=lambda r: r[0][me])


        # if we are the barrier manager, rebuild its episode state
        if proto.barrier_mgr is not None and self.bar_history:
            mgr = proto.barrier_mgr
            mgr.history = dict(self.bar_history)
            last = max(self.bar_history)
            mgr.next_episode = last + 1
            mgr.last_global = self.bar_history[last]

    def ingest_home_diffs(
        self, replies: Dict[int, Dict[PageId, List[Tuple[VClock, Diff]]]]
    ) -> None:
        for src, pages in replies.items():
            for page, entries in pages.items():
                pool = self.home_pool.setdefault(page, [])
                for t, diff in entries:
                    pool.append(_PoolEntry(src, t, diff))
        for pool in self.home_pool.values():
            pool.sort(key=lambda e: _sum_key(e.t))

    # ------------------------------------------------------------------
    # vt advancement: invalidations + homed-page diff application
    # ------------------------------------------------------------------
    def advance_vt(self, new_vt: VClock) -> None:
        proto = self.proto
        old = proto.vt
        joined = old.join(new_vt)
        notices = self.peer_notices.between(old, joined)
        for wn in notices:
            if wn.creator == self.pid:
                continue
            if proto.notices.add(wn):
                proto._note_invalidation(wn)
        proto.vt = joined
        self.apply_eligible_home_diffs()

    def apply_eligible_home_diffs(self) -> None:
        """Apply collected diffs for our homed pages that happened before
        the current replay point.

        Newly eligible entries are batched per page: when the coverage
        union (:func:`merge_runs`) proves their byte ranges disjoint —
        the common case, since HLRC writers of a page partition it — the
        batch collapses into one concatenated diff applied with a single
        vectorized scatter; overlapping batches fall back to sequential
        application in pool (componentwise-sum) order.
        """
        proto = self.proto
        vt = proto.vt
        for page, pool in self.home_pool.items():
            hp = proto.home[page]
            batch = []
            for e in pool:
                if e.applied:
                    continue
                interval = e.t[e.creator]
                if e.t[e.creator] > vt[e.creator]:
                    continue
                e.applied = True
                if hp.is_duplicate(e.creator, interval):
                    continue
                batch.append((e, interval))
            if batch:
                buf = proto.page_bytes(page)
                diffs = [e.diff for e, _ in batch]
                if len(diffs) > 1 and sum(
                    hi - lo for lo, hi in merge_runs(diffs)
                ) == sum(d.payload_bytes for d in diffs):
                    apply_diff(buf, concat_diffs(diffs))
                else:
                    for d in diffs:
                        apply_diff(buf, d)
                for e, interval in batch:
                    hp.advance(e.creator, interval)
            proto.have_v[page] = proto.have_v[page].join(hp.version)

    def apply_all_home_diffs(self) -> None:
        """Finalize: bring every homed page fully up to the crash point."""
        proto = self.proto
        for page, pool in self.home_pool.items():
            hp = proto.home[page]
            buf = proto.page_bytes(page)
            for e in pool:
                if e.applied:
                    continue
                e.applied = True
                interval = e.t[e.creator]
                if hp.is_duplicate(e.creator, interval):
                    continue
                apply_diff(buf, e.diff)
                hp.advance(e.creator, interval)
            proto.have_v[page] = proto.have_v[page].join(hp.version)

    # ------------------------------------------------------------------
    # replayed operations
    # ------------------------------------------------------------------
    def replay_acquire(self, lock_id: int, seq: int) -> Iterator[Any]:
        records = self.acquire_records.get(lock_id)
        if not records:
            self.go_live()
            return False
        acq_t, grantor = records.pop(0)
        proto = self.proto
        st = proto.locks.token(lock_id)
        if grantor is None:
            # self-grant: the token was already resting here
            if not st.has_token:
                raise RuntimeError(
                    f"replay: self-grant of lock {lock_id} without token at "
                    f"{self.pid}"
                )
            st.held = True
            st.rel_vt = None
        else:
            st.has_token = True
            st.held = True
            st.rel_vt = None
            self.arrivals[lock_id] = self.arrivals.get(lock_id, 0) + 1
            # rebuild the acq_log mirror (of the grantor's rel_log)
            self.ft.logs.acq.append(grantor, lock_id, acq_t)
        proto._completed_seq[lock_id] = seq
        self.advance_vt(acq_t)
        self.stats_replayed_acquires += 1
        return True
        yield  # pragma: no cover — generator form for protocol symmetry

    def replay_barrier(self, episode: int) -> Iterator[Any]:
        global_vt = self.bar_history.get(episode)
        if global_vt is None:
            self.go_live()
            return False
        proto = self.proto
        self.advance_vt(global_vt)
        proto.last_barrier_global = global_vt
        self.ft.logs.log_barrier(episode, global_vt)
        self.stats_replayed_barriers += 1
        return True
        yield  # pragma: no cover

    def replay_fetch(self, page: PageId, entry: PageEntry) -> Iterator[Any]:
        """Resolve a page miss by local emulation of the page's home."""
        proto = self.proto
        if page not in self.pool_fetched:
            yield from self._collect_page(page)
        buf, version = self._advance_evolving(page)
        proto.page_bytes(page)[:] = buf
        entry.state = PageState.RO
        entry.needed_v = None
        proto.have_v[page] = version
        self.stats_replayed_fetches += 1

    def _collect_page(self, page: PageId) -> Iterator[Any]:
        """First miss on ``page``: fetch starting copy + all diff logs."""
        proto = self.proto
        home = proto.regions.home_of(page)
        data, version = yield from self.rm.query(
            home, "starting_copy", (page, proto.vt)
        )
        self.evolving[page] = np.frombuffer(data, dtype=np.uint8).copy()
        self.evolving_v[page] = version
        pool: List[_PoolEntry] = []
        diffs = yield from self.rm.query_all("page_diffs", page)
        for src, entries in diffs.items():
            for t, diff in entries:
                pool.append(_PoolEntry(src, t, diff))
        pool.sort(key=lambda e: _sum_key(e.t))
        self.pool[page] = pool
        self.pool_fetched.add(page)

    def _advance_evolving(self, page: PageId) -> Tuple[np.ndarray, VClock]:
        """Apply newly happened-before diffs to the evolving copy.

        Includes the recovering process's own diffs (restored + rebuilt),
        read straight from its diff log.
        """
        proto = self.proto
        vt = proto.vt
        buf = self.evolving[page]
        version = self.evolving_v[page]
        pool = self.pool[page]
        # merge own log entries lazily (they grow as replay flushes)
        own = [
            _PoolEntry(self.pid, e.t, e.diff)
            for e in self.ft.logs.diff.entries_for(page)
        ]
        merged = sorted(pool + own, key=lambda e: _sum_key(e.t))
        for e in merged:
            interval = e.t[e.creator]
            if interval <= version[e.creator]:
                continue  # already reflected
            if interval > vt[e.creator]:
                continue  # did not happen before the current point
            apply_diff(buf, e.diff)
            version = version.with_component(e.creator, interval)
        self.evolving_v[page] = version
        return buf, version

    def replay_home_access(self, page: PageId, entry: PageEntry) -> Iterator[Any]:
        proto = self.proto
        self.apply_eligible_home_diffs()
        hp = proto.home[page]
        if entry.needed_v is not None and not hp.ready_for(entry.needed_v):
            raise RuntimeError(
                f"replay: homed page {page} cannot reach {entry.needed_v} "
                f"(version {hp.version}); writers trimmed needed diffs "
                "(Rule 3 violated)"
            )
        entry.needed_v = None
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # live switch
    # ------------------------------------------------------------------
    def go_live(self) -> None:
        if self.live:
            return
        self.live = True
        self.finalize()
        self.on_live()

    def finalize(self) -> None:
        proto = self.proto
        proto.replay = None
        self.apply_all_home_diffs()
        # For locks this process manages, the GrantInfo stream that queued
        # while it was down IS its own owner tracking: every transfer the
        # grantors performed after their handshake replies went out is
        # recorded there, so the last queued entry per lock supersedes any
        # token snapshot a (possibly long-stale) reply carried. Without
        # this, a transfer races the sequential handshake round and the
        # manager resurrects the token at itself.
        queued_owner: Dict[int, int] = {}
        for _src, qmsg in self.rm.host.queued:
            if isinstance(qmsg, GrantInfo) and proto.locks.manages(qmsg.lock_id):
                queued_owner[qmsg.lock_id] = qmsg.grantee
        # reconstruct token placement. Preference order:
        #   1. the lock manager's owner tracking (GrantInfo) — robust,
        #   2. for locks we manage ourselves: peers' token snapshots,
        #      corrected by the queued GrantInfo stream above,
        #   3. fall back to initial + arrivals - departures arithmetic
        #      (can undercount departures whose mirrors Rule 2 trimmed).
        all_locks = (
            set(self.initial_token)
            | set(self.departures)
            | set(self.arrivals)
            | set(self.owner_reports)
            | set(queued_owner)
            | set(proto.locks.known_locks())
        )
        for lock_id in all_locks:
            st = proto.locks.token(lock_id)
            if st.held:
                st.has_token = True
                continue
            owner = self.owner_reports.get(lock_id)
            if owner is not None:
                st.has_token = owner == self.pid
            elif proto.locks.manages(lock_id):
                if lock_id in queued_owner:
                    st.has_token = queued_owner[lock_id] == self.pid
                else:
                    st.has_token = lock_id not in self.peer_token_holders
            else:
                initial = self.initial_token.get(lock_id, st.has_token)
                present = (
                    int(initial)
                    + self.arrivals.get(lock_id, 0)
                    - self.departures.get(lock_id, 0)
                )
                st.has_token = present > 0
            if st.has_token and st.rel_vt is None:
                st.rel_vt = proto.vt
        # rebuild manager chains for this process's own managed locks,
        # now that its own token placement is known
        managed = set(proto.locks.managed_locks()) | {
            l for l in all_locks if proto.locks.manages(l)
        } | {l for l in self.succ_edges if proto.locks.manages(l)}
        for lock_id in managed:
            holder = queued_owner.get(
                lock_id, self.peer_token_holders.get(lock_id)
            )
            if holder is None:
                holder = self.pid  # at/heading to the recovering process
            proto.locks.restore_chain(
                lock_id, holder, self.succ_edges.get(lock_id, {})
            )
