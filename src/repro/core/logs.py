"""Volatile logs for sender-based message logging (§4.2).

Per process the FT layer keeps:

* ``wn_log`` — write notices it generated. This is physically the base
  protocol's notice table (own-creator slice); the FT layer only adds the
  Rule 1 trimming and the obligation to save it with checkpoints.
* ``rel_log[i]`` — one entry per lock grant to process ``i`` (the
  acquirer's vector time after the acquire). Needed to replay *other*
  processes' acquires.
* ``acq_log[i]`` — mirror entries for this process's own acquires granted
  by ``i``; restores ``i``'s ``rel_log`` after a crash of ``i``. The
  rel/acq pair is replicated on two distinct nodes, so neither needs to
  reach stable storage (§4.2.1).
* ``selfgrant_log`` — grantor-side mirror of local re-acquires (our
  addition; the remote copy lives at the lock manager).
* ``bar_log`` — (episode, global vt) for each barrier passed; mirror of
  the barrier manager's history.
* ``diff_log(p)`` — per page, every diff this process created, stamped
  with the creator's vector time. The dominant log by volume and the one
  LLT targets (§5: "We consider only the diff logs for trimming").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dsm.diff import Diff
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

__all__ = [
    "RelEntry",
    "RelLog",
    "AcqLog",
    "DiffLogEntry",
    "DiffLog",
    "VolatileLogs",
]


@dataclass(frozen=True)
class RelEntry:
    """One logged lock grant: the acquirer's vt after the acquire."""

    lock_id: int
    acq_t: VClock


#: modeled in-memory/wire size of one rel/acq entry
REL_ENTRY_BYTES = 8


class RelLog:
    """Grants made by this process, bucketed per acquirer."""

    def __init__(self, num_procs: int) -> None:
        self.n = num_procs
        self.entries: List[List[RelEntry]] = [[] for _ in range(num_procs)]

    def append(self, acquirer: int, lock_id: int, acq_t: VClock) -> None:
        self.entries[acquirer].append(RelEntry(lock_id, acq_t))

    def for_acquirer(self, acquirer: int) -> List[RelEntry]:
        return list(self.entries[acquirer])

    def trim(self, acquirer: int, tckp_component: int) -> int:
        """Rule 2: keep entries with ``acq_t[acquirer] > Tckp_acquirer[acquirer]``."""
        old = self.entries[acquirer]
        kept = [e for e in old if e.acq_t[acquirer] > tckp_component]
        self.entries[acquirer] = kept
        return len(old) - len(kept)

    def restore_for(self, acquirer: int, entries: Iterable[RelEntry]) -> None:
        self.entries[acquirer] = list(entries)

    def confirm(
        self, acquirer: int, lock_id: int, actual_t: VClock, own_pid: int
    ) -> bool:
        """An AcqAck landed: replace the predicted timestamp with the
        acquirer's actual one (§4.2.1 pair symmetry).

        The grantor's own component is identical in the prediction and
        the actual vt (both equal ``rel_vt[grantor]`` bumped nowhere), so
        ``(lock_id, acq_t[grantor])`` identifies the grant. Returns False
        when the entry was already trimmed under Rule 2 (the acquirer
        checkpointed past it — nothing left to fix).
        """
        lst = self.entries[acquirer]
        comp = actual_t[own_pid]
        for i in range(len(lst) - 1, -1, -1):
            e = lst[i]
            if e.lock_id == lock_id and e.acq_t[own_pid] == comp:
                if e.acq_t is not actual_t and e.acq_t != actual_t:
                    lst[i] = RelEntry(lock_id, actual_t)
                return True
        return False

    def count(self) -> int:
        return sum(len(e) for e in self.entries)


class AcqLog:
    """This process's own remote acquires, bucketed per grantor (mirror)."""

    def __init__(self, num_procs: int) -> None:
        self.n = num_procs
        self.entries: List[List[RelEntry]] = [[] for _ in range(num_procs)]
        #: grantors with entries — the trim pass visits only these instead
        #: of scanning all N buckets at every checkpoint
        self._nonempty: set = set()

    def append(self, grantor: int, lock_id: int, acq_t: VClock) -> None:
        self.entries[grantor].append(RelEntry(lock_id, acq_t))
        self._nonempty.add(grantor)

    def for_grantor(self, grantor: int) -> List[RelEntry]:
        return list(self.entries[grantor])

    def trim(self, own_pid: int, own_tckp_component: int) -> int:
        """Rule 2: keep entries with ``acq_t[self] > Tckp_self[self]``.

        Entries at or below the own checkpoint cut restore portions of a
        crashed grantor's rel_log that no recovery can need any more.
        """
        dropped = 0
        for g in sorted(self._nonempty):
            old = self.entries[g]
            kept = [e for e in old if e.acq_t[own_pid] > own_tckp_component]
            dropped += len(old) - len(kept)
            self.entries[g] = kept
            if not kept:
                self._nonempty.discard(g)
        return dropped

    def count(self) -> int:
        return sum(len(e) for e in self.entries)


@dataclass
class DiffLogEntry:
    """One logged diff with its creation timestamp ``diff.T`` (§4.2.2)."""

    page: PageId
    diff: Diff
    t: VClock  # creator's vt at interval flush
    saved: bool = False  # already written to stable storage

    @property
    def size_bytes(self) -> int:
        return self.diff.size_bytes + 16  # encoded diff + log record header


class DiffLog:
    """All diffs created by this process, per page.

    ``volatile_bytes``/``unsaved_bytes``/``saved_bytes`` are backed by
    incrementally maintained counters: the log-overflow policy reads them
    at every sync point, and summing over all entries there dominated
    profiles. All mutation goes through the methods below so that the
    counters stay exact.
    """

    def __init__(self) -> None:
        self.per_page: Dict[PageId, List[DiffLogEntry]] = {}
        # lifetime accounting for Table 4
        self.bytes_created = 0
        self.bytes_discarded = 0
        self.bytes_discarded_saved = 0  # subset that had reached the disk
        # current-footprint counters (kept in lockstep with per_page)
        self._volatile = 0
        self._unsaved = 0

    def append(
        self, page: PageId, diff: Diff, t: VClock, saved: bool = False
    ) -> DiffLogEntry:
        entry = DiffLogEntry(page, diff, t, saved)
        self.per_page.setdefault(page, []).append(entry)
        size = entry.size_bytes
        self.bytes_created += size
        self._volatile += size
        if not saved:
            self._unsaved += size
        return entry

    def entries_for(self, page: PageId) -> List[DiffLogEntry]:
        return list(self.per_page.get(page, ()))

    def pages(self) -> List[PageId]:
        return list(self.per_page.keys())

    def trim_page(self, page: PageId, creator: int, min_keep_interval: int) -> int:
        """Rule 3.2: keep entries with ``diff.T[creator] > p0.v[creator]``.

        ``min_keep_interval`` is ``p0.v[creator]`` learned (possibly
        stale) from the page's home. Returns bytes discarded.
        """
        entries = self.per_page.get(page)
        if not entries:
            return 0
        kept: List[DiffLogEntry] = []
        dropped_bytes = 0
        for e in entries:
            if e.t[creator] > min_keep_interval:
                kept.append(e)
            else:
                dropped_bytes += e.size_bytes
                if e.saved:
                    self.bytes_discarded_saved += e.size_bytes
                else:
                    self._unsaved -= e.size_bytes
        self.per_page[page] = kept
        self.bytes_discarded += dropped_bytes
        self._volatile -= dropped_bytes
        return dropped_bytes

    def clear(self) -> int:
        """Discard the whole log (coordinated checkpointing commits do
        this: a consistent global cut obsoletes every volatile diff).
        Returns bytes discarded."""
        discarded = self._volatile
        self.per_page.clear()
        self.bytes_discarded += discarded
        self._volatile = 0
        self._unsaved = 0
        return discarded

    @property
    def volatile_bytes(self) -> int:
        return self._volatile

    @property
    def unsaved_bytes(self) -> int:
        return self._unsaved

    @property
    def saved_bytes(self) -> int:
        """Current stable-storage footprint of this log."""
        return self._volatile - self._unsaved

    def mark_all_saved(self) -> int:
        """Flush: mark unsaved entries saved; returns bytes newly written."""
        written = 0
        for es in self.per_page.values():
            for e in es:
                if not e.saved:
                    e.saved = True
                    written += e.size_bytes
        self._unsaved -= written
        return written

    def snapshot(self) -> Dict[PageId, List[DiffLogEntry]]:
        """Deep-enough copy for inclusion in a checkpoint (entries are
        immutable apart from the ``saved`` flag, which checkpointed copies
        never flip)."""
        return {
            page: [DiffLogEntry(e.page, e.diff, e.t, True) for e in es]
            for page, es in self.per_page.items()
        }


@dataclass
class BarEntry:
    episode: int
    global_vt: VClock


class VolatileLogs:
    """Bundle of all volatile logs of one process."""

    def __init__(self, pid: int, num_procs: int) -> None:
        self.pid = pid
        self.n = num_procs
        self.rel = RelLog(num_procs)
        self.acq = AcqLog(num_procs)
        self.diff = DiffLog()
        self.selfgrants: Dict[int, List[VClock]] = {}  # lock -> [acq_t]
        self.bar: List[BarEntry] = []

    # -- barrier log --------------------------------------------------------
    def log_barrier(self, episode: int, global_vt: VClock) -> None:
        self.bar.append(BarEntry(episode, global_vt))

    def trim_barriers(self, min_keep_episode: int) -> int:
        old = len(self.bar)
        self.bar = [b for b in self.bar if b.episode >= min_keep_episode]
        return old - len(self.bar)

    # -- self-grant mirror ---------------------------------------------------
    def log_self_grant(self, lock_id: int, acq_t: VClock) -> None:
        self.selfgrants.setdefault(lock_id, []).append(acq_t)

    def trim_self_grants(self, own_tckp_component: int) -> int:
        dropped = 0
        for lock_id, entries in self.selfgrants.items():
            kept = [t for t in entries if t[self.pid] > own_tckp_component]
            dropped += len(entries) - len(kept)
            self.selfgrants[lock_id] = kept
        return dropped
