"""Independent checkpointing and checkpoint garbage collection (§4.2, §4.4).

A checkpoint of process ``i`` contains the "processor state" (here: the
application's pickled private state), the pages homed at ``i`` with their
version vectors, the vector timestamp ``Tckp`` (stamped per §4.4 with the
local vector time at the moment the checkpoint is taken), the saved
volatile logs, and the small protocol structures needed to restart (lock
token snapshot, acquire sequence numbers, barrier position).

Homes additionally retain a *sequence* ``pckp`` of page copies from past
checkpoints; Rule 3.1 (CGC) bounds that sequence to a window ending at
the *maximal starting copy* — the newest copy whose version is ≤ the
componentwise minimum ``Tmin`` of all other processes' (last known)
checkpoint timestamps.

A virtual "checkpoint 0" holds the initial page contents with a zero
version vector, so recovery is well defined before a process's first real
checkpoint and Rule 3.1 always has a candidate copy.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.logs import DiffLogEntry
from repro.dsm.messages import WriteNotice
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock
from repro.sim.storage import CheckpointStore

__all__ = ["PageCopy", "Checkpoint", "CheckpointManager"]


@dataclass
class PageCopy:
    """One checkpointed copy of a homed page."""

    ckpt_seqno: int
    version: VClock
    data: bytes


@dataclass
class Checkpoint:
    """Everything needed to restart a process (restart checkpoint)."""

    pid: int
    seqno: int
    tckp: VClock
    app_state_blob: bytes
    own_notices: List[WriteNotice]
    diff_log: Dict[PageId, List[DiffLogEntry]]
    lock_tokens: Dict[int, Tuple[bool, bool]]  # lock -> (has_token, held)
    acq_seq: Dict[int, int]
    barrier_episode: int
    last_barrier_global: VClock
    #: page -> version of the homed copy saved with this checkpoint
    homed_versions: Dict[PageId, VClock] = field(default_factory=dict)

    def restore_app_state(self) -> Any:
        return pickle.loads(self.app_state_blob)

    def size_bytes(self, page_bytes: int, log_bytes: int) -> int:
        meta = (
            len(self.tckp) * 4
            + len(self.own_notices) * 16
            + len(self.lock_tokens) * 6
            + len(self.acq_seq) * 8
            + 64
        )
        return len(self.app_state_blob) + page_bytes + log_bytes + meta


class CheckpointManager:
    """Stable-storage side of checkpointing for one process.

    Owns the page-copy sequences (``pckp``) and implements CGC. The
    object lives in the node's :class:`CheckpointStore`, so it survives a
    fail-stop of the process.
    """

    def __init__(self, pid: int, num_procs: int, store: CheckpointStore) -> None:
        self.pid = pid
        self.n = num_procs
        self.store = store
        self.next_seqno = 1
        self.page_copies: Dict[PageId, List[PageCopy]] = {}
        self.checkpoints: Dict[int, Checkpoint] = {}
        self.latest: Optional[Checkpoint] = None
        # accounting
        self.window_size = 1  # includes virtual checkpoint 0
        self.max_window = 1
        self.pages_retained_bytes = 0
        self.pages_discarded_bytes = 0
        #: torn (uncommitted) checkpoints discarded by recovery
        self.torn_discarded = 0

    # ------------------------------------------------------------------
    # seeding (virtual checkpoint 0)
    # ------------------------------------------------------------------
    def seed_initial_pages(self, pages: Dict[PageId, bytes]) -> None:
        zero = VClock.zero(self.n)
        for page, data in pages.items():
            if page in self.page_copies:
                continue  # re-install after recovery: stable state persists
            self.page_copies[page] = [PageCopy(0, zero, data)]
            self.pages_retained_bytes += len(data)

    # ------------------------------------------------------------------
    # taking a checkpoint (two-phase: stage -> disk write -> commit)
    # ------------------------------------------------------------------
    def stage(
        self,
        ckpt: Checkpoint,
        homed_pages: Dict[PageId, Tuple[bytes, VClock]],
    ) -> int:
        """Start writing a checkpoint to stable storage (no commit marker).

        The staged record consumes a seqno and lands in the store as a
        *pending* key; until :meth:`commit_staged` adds the commit
        marker, a crash leaves it torn and recovery will discard it
        (restarting from the previous stable checkpoint). Returns the
        page bytes that will be written.
        """
        if ckpt.seqno != self.next_seqno:
            raise ValueError(
                f"checkpoint seqno {ckpt.seqno}, expected {self.next_seqno}"
            )
        self.next_seqno += 1
        page_bytes = 0
        for page, (data, version) in homed_pages.items():
            ckpt.homed_versions[page] = version
            page_bytes += len(data)
        self.store.begin_put(("ckpt", ckpt.seqno), ckpt, page_bytes)
        return page_bytes

    def commit_staged(
        self,
        ckpt: Checkpoint,
        homed_pages: Dict[PageId, Tuple[bytes, VClock]],
    ) -> None:
        """The disk write finished: mark the checkpoint stable.

        Only now do the page copies join ``pckp`` and does ``latest``
        advance — a torn checkpoint must never influence recovery.
        """
        if ("ckpt", ckpt.seqno) not in self.store:
            raise RuntimeError(f"commit of unstaged checkpoint {ckpt.seqno}")
        for page, (data, version) in homed_pages.items():
            self.page_copies.setdefault(page, []).append(
                PageCopy(ckpt.seqno, version, data)
            )
            self.pages_retained_bytes += len(data)
        self.checkpoints[ckpt.seqno] = ckpt
        self.latest = ckpt
        self.store.commit_put(("ckpt", ckpt.seqno))
        self._update_window()

    def commit(
        self,
        ckpt: Checkpoint,
        homed_pages: Dict[PageId, Tuple[bytes, VClock]],
    ) -> int:
        """Record a checkpoint atomically; returns the page bytes written.

        ``homed_pages`` maps each page homed here to (contents, version).
        Convenience wrapper over :meth:`stage` + :meth:`commit_staged`
        for callers whose write cannot be interrupted (tests, the
        coordinated baseline).
        """
        page_bytes = self.stage(ckpt, homed_pages)
        self.commit_staged(ckpt, homed_pages)
        return page_bytes

    def discard_torn(self) -> int:
        """Drop store keys whose commit marker is missing (torn writes).

        Called at the start of recovery: a crash during a checkpoint
        disk write leaves a marker-less record that must not be used as
        a restart point. Returns the number of keys discarded.
        """
        torn = self.store.pending_keys()
        for key in torn:
            self.store.delete(key)
        self.torn_discarded += len(torn)
        return len(torn)

    def _update_window(self) -> None:
        live = {
            c.ckpt_seqno for copies in self.page_copies.values() for c in copies
        }
        self.window_size = max(1, len(live))
        self.max_window = max(self.max_window, self.window_size)

    # ------------------------------------------------------------------
    # Rule 3.1 — checkpoint garbage collection
    # ------------------------------------------------------------------
    def collect(self, tmin: VClock, seqno_ceiling: Optional[int] = None) -> int:
        """Run CGC against ``Tmin``; returns page bytes discarded.

        For every page, the *maximal starting copy* is the newest copy
        with ``version <= Tmin``; all older copies are dropped. Old
        checkpoint records whose page copies are all gone are dropped too
        (their logs/state can no longer be the restart point of this
        process, which always restarts from ``latest``).

        ``seqno_ceiling`` is the buddy-replication ack gate: when set,
        the chosen maximal starting copy must additionally come from a
        checkpoint the buddy has acked (``ckpt_seqno <= ceiling``), so
        every copy CGC drops is superseded by one that is both
        disk-stable *and* buddy-held. The virtual checkpoint 0 (seqno 0,
        deterministically reconstructible seed contents) always
        qualifies; a ceiling of -1 (nothing acked yet) collects nothing.
        """
        freed = 0
        for page, copies in self.page_copies.items():
            max_idx = 0
            for i, copy in enumerate(copies):
                if copy.version.leq(tmin) and (
                    seqno_ceiling is None or copy.ckpt_seqno <= seqno_ceiling
                ):
                    max_idx = i
            if max_idx > 0:
                for dropped in copies[:max_idx]:
                    freed += len(dropped.data)
                    self.pages_discarded_bytes += len(dropped.data)
                    self.pages_retained_bytes -= len(dropped.data)
                del copies[:max_idx]
        # prune superseded checkpoint records (keep the latest always)
        live_seqnos = {
            c.ckpt_seqno for copies in self.page_copies.values() for c in copies
        }
        if self.latest is not None:
            live_seqnos.add(self.latest.seqno)
        for seqno in [s for s in self.checkpoints if s not in live_seqnos]:
            del self.checkpoints[seqno]
            if ("ckpt", seqno) in self.store:
                self.store.delete(("ckpt", seqno))
        self._update_window()
        return freed

    # ------------------------------------------------------------------
    # recovery-side queries
    # ------------------------------------------------------------------
    def maximal_starting_copy(self, page: PageId, needed_max: VClock) -> PageCopy:
        """Newest retained copy usable as ``p0`` for a given recovery.

        A copy is usable if its version is ≤ the recovering process's
        replay ceiling (``needed_max``) — nothing beyond what happened
        before the crash may be baked into the starting copy, or replay
        could observe future writes. Rule 3 guarantees a usable copy
        exists among the retained window.
        """
        copies = self.page_copies.get(page)
        if not copies:
            raise KeyError(f"no retained copies for page {page}")
        best: Optional[PageCopy] = None
        for copy in copies:
            if copy.version.leq(needed_max):
                best = copy
        if best is None:
            raise RuntimeError(
                f"CGC retained no usable starting copy for {page}: "
                f"oldest version {copies[0].version}, ceiling {needed_max} "
                "(Rule 3 violated)"
            )
        return best

    def restart_checkpoint(self) -> Optional[Checkpoint]:
        return self.latest

    @property
    def retained_seqnos(self) -> List[int]:
        out = {
            c.ckpt_seqno for copies in self.page_copies.values() for c in copies
        }
        return sorted(out)
