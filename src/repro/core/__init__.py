"""Fault tolerance for HLRC — the paper's contribution.

Independent checkpointing plus sender-based logging to volatile memory
(§4), with the two garbage-collection algorithms that make independent
checkpointing practical without global coordination:

* **LLT** — Lazy Log Trimming (Rules 1, 2 and 3.2),
* **CGC** — Checkpoint Garbage Collection (Rule 3.1),

both driven by lazily propagated, stale-tolerant checkpoint timestamps
(§4.4.4), and full single-fault recovery by log-based replay (§4.3 —
going beyond the paper's own prototype, which did not implement
recovery).
"""

from repro.core.logs import AcqLog, DiffLog, DiffLogEntry, RelLog, VolatileLogs
from repro.core.checkpoint import Checkpoint, CheckpointManager
from repro.core.policies import (
    BarrierCoordinatedPolicy,
    CheckpointPolicy,
    IntervalPolicy,
    LogOverflowPolicy,
    ManualPolicy,
    NeverPolicy,
)
from repro.core.trimming import TrimmingInfo
from repro.core.ftmanager import FtManager, FtConfig

__all__ = [
    "AcqLog",
    "DiffLog",
    "DiffLogEntry",
    "RelLog",
    "VolatileLogs",
    "Checkpoint",
    "CheckpointManager",
    "CheckpointPolicy",
    "LogOverflowPolicy",
    "IntervalPolicy",
    "BarrierCoordinatedPolicy",
    "ManualPolicy",
    "NeverPolicy",
    "TrimmingInfo",
    "FtManager",
    "FtConfig",
]
