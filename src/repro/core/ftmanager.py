"""The fault-tolerance manager: wires logging, checkpointing, LLT and CGC
into a :class:`~repro.dsm.protocol.DsmProcess` through the
:class:`~repro.dsm.protocol.FtHooks` interface.

Checkpoint discipline
---------------------
Policies are *evaluated* at every synchronization point (§4: "all logging
operations take place transparently, only at synchronization points"),
but the checkpoint itself is *taken* at the next application-declared
safe point (``proc.ckpt_point()``), where the application guarantees its
private state dict is resumable. This is the simulator's substitute for a
transparent processor-state snapshot (see DESIGN.md §1); the paper's own
system similarly supports checkpointing "at the request of the
application".

Taking a checkpoint (all at once, matching the paper's stress setup —
"log trimming, garbage collection of checkpoints and saving logs to
stable storage take place only at checkpoint time"):

1. flush the open interval and bump the vector time (so ``Tckp`` is a
   clean cut: everything after the checkpoint is strictly above it),
2. run LLT over all volatile logs (Rules 1, 2, 3.2),
3. write homed pages + still-live unsaved log entries + private state to
   the simulated disk,
4. commit the checkpoint and run CGC (Rule 3.1) against ``Tmin``,
5. queue the new ``p0.v`` values and ``Tckp`` for lazy propagation.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core.checkpoint import Checkpoint, CheckpointManager
from repro.core.logs import VolatileLogs
from repro.core.policies import CheckpointPolicy
from repro.core.replica import replica_apply
from repro.core.trimming import TrimmingInfo
from repro.dsm.diff import Diff
from repro.dsm.messages import AcqAck, Piggyback, ReplicaAck, ReplicaUpdate
from repro.dsm.pages import PageId
from repro.dsm.protocol import DsmProcess, FtHooks
from repro.dsm.vclock import VClock
from repro.sim.engine import Delay
from repro.sim.node import TimeBucket
from repro.sim.storage import Disk

__all__ = ["FtConfig", "FtStats", "FtManager"]


@dataclass
class FtConfig:
    """Feature switches and tuning of the FT layer."""

    llt_enabled: bool = True
    cgc_enabled: bool = True
    piggyback_enabled: bool = True
    #: max p0.v advertisements per message (bounds piggyback size)
    piggyback_max_page_versions: int = 16
    #: also save own write notices with each checkpoint (tiny; required
    #: for correctness, switchable only for ablation)
    save_wn_log: bool = True
    #: buddy-replication tier: mirror committed checkpoints + sender-log
    #: segments into the ring buddy's volatile memory, so recovery can
    #: proceed from the replica when overlapping failures would otherwise
    #: degrade (ROADMAP 3; see core/replica.py)
    replicate: bool = False


@dataclass
class FtStats:
    """Per-process FT accounting (Tables 3-4, Figure 4)."""

    checkpoints_taken: int = 0
    time_logging: float = 0.0
    time_disk: float = 0.0
    ckpt_page_bytes: int = 0
    ckpt_state_bytes: int = 0
    logs_saved_bytes: int = 0
    max_log_disk: int = 0
    #: Figure 4 series: (checkpoint number, stable-storage log bytes)
    log_points: List[Tuple[int, int]] = field(default_factory=list)
    rel_entries_trimmed: int = 0
    wn_trimmed: int = 0


class FtManager(FtHooks):
    """Fault tolerance for one process."""

    def __init__(
        self,
        proc: DsmProcess,
        policy: CheckpointPolicy,
        ckpt_mgr: CheckpointManager,
        disk: Disk,
        config: Optional[FtConfig] = None,
    ) -> None:
        self.proc = proc
        self.pid = proc.pid
        self.n = proc.n
        self.policy = policy
        self.ckpt_mgr = ckpt_mgr
        self.disk = disk
        self.config = config or FtConfig()
        self.logs = VolatileLogs(self.pid, self.n)
        self.trim = TrimmingInfo(self.pid, self.n)
        self.stats = FtStats()
        #: page -> writers that have sent diffs (advertisement targets)
        self.page_writers: Dict[PageId, Set[int]] = {}
        #: buddy mirrors of peer lock-managers' own self-grants:
        #: grantor -> lock -> [acq_t]
        self.buddy_selfgrants: Dict[int, Dict[int, List[VClock]]] = {}
        #: dst -> pending (page, p0.v[dst]) advertisements
        self.pending_adverts: Dict[int, List[Tuple[PageId, int]]] = {}
        #: dst -> trim.gen synced to that destination; paired with the
        #: per-row change stamps in ``trim.row_gen``, the delta encoder
        #: ships exactly the rows that changed since (no per-proc scan)
        self._sent_gen: Dict[int, int] = {}
        #: trim.gen as of the last LLT pass: the per-acquirer Rule-2 /
        #: mirror trims visit only rows changed since (row_gen delta)
        self._llt_gen = 0
        #: buddy replicator (attached by the cluster when
        #: ``config.replicate``; None = replication off)
        self.repl: Any = None
        #: a policy asked for a checkpoint; taken at the next safe point
        self.checkpoint_requested = False
        #: supplies the application's resumable private state
        self.app_state_fn: Callable[[], Any] = lambda: {}
        #: set by the cluster: the ProcHost we live on (None when the
        #: manager is driven directly, e.g. in unit tests)
        self.proc_host: Any = None
        #: observability sink (repro.observe.ClusterObserver); record-only
        self.obs: Any = None
        self._install()

    def _probe(self, kind: str, detail: str) -> None:
        """Emit a cluster probe event (fault-injection instrumentation).

        No-op unless a probe consumer (tracer / crash-sweep campaign) is
        attached to the cluster — two attribute checks when disabled.
        """
        host = self.proc_host
        if host is not None and host.cluster.probe is not None:
            host.cluster.probe(self.pid, kind, detail)

    def _install(self) -> None:
        self.proc.ft = self
        # seed virtual checkpoint 0 with the initial homed page contents
        self.ckpt_mgr.seed_initial_pages(
            {
                page: self.proc.page_bytes(page).tobytes()
                for page in self.proc.home.pages()
            }
        )

    # ==================================================================
    # FtHooks — logging (§4.2)
    # ==================================================================
    def home_wants_diffs(self) -> bool:
        return True

    def on_interval_flush(
        self, page: PageId, diff: Diff, vt: VClock, is_home: bool
    ) -> Iterator[Delay]:
        # empty diffs are logged too (header-only records): the write
        # notice they correspond to advances the page version at the
        # home, and replay must be able to advance the emulated copy to
        # that version
        entry = self.logs.diff.append(page, diff, vt)
        cost = entry.size_bytes * self.proc.cpu.costs.log_append_per_byte
        self.stats.time_logging += cost
        if self.repl is not None:
            self.repl.op(("diff", page, diff, vt))
        yield from self.proc.cpu.charge(TimeBucket.LOG_CKPT, cost)

    def on_grant(self, lock_id: int, acquirer: int, acq_t: VClock) -> None:
        self.logs.rel.append(acquirer, lock_id, acq_t)
        self.stats.time_logging += 0.5e-6
        self.proc.cpu.accrue_handler(0.5e-6)
        if self.repl is not None:
            self.repl.op(("rel", acquirer, lock_id, acq_t))

    def on_acquire_done(self, lock_id: int, grantor: int, acq_t: VClock) -> None:
        self.logs.acq.append(grantor, lock_id, acq_t)
        self.stats.time_logging += 0.5e-6
        if grantor != self.pid:
            # confirm the actual acquire timestamp to the grantor, whose
            # rel-entry holds a prediction (§4.2.1 / DESIGN.md §9)
            self.proc._send(
                grantor, AcqAck(lock_id=lock_id, acquirer=self.pid, acq_t=acq_t)
            )
        if self.repl is not None:
            seq = self.proc._completed_seq.get(lock_id, 0)
            self.repl.op(("acq", grantor, lock_id, acq_t, seq))

    def on_self_grant(self, lock_id: int, acq_t: VClock) -> None:
        self.logs.log_self_grant(lock_id, acq_t)
        self.stats.time_logging += 0.5e-6
        if self.repl is not None:
            seq = self.proc._completed_seq.get(lock_id, 0)
            self.repl.op(("self", lock_id, acq_t, seq))

    def on_buddy_self_grant(self, grantor: int, lock_id: int, acq_t: VClock) -> None:
        self.buddy_selfgrants.setdefault(grantor, {}).setdefault(
            lock_id, []
        ).append(acq_t)
        if self.repl is not None:
            self.repl.op(("mself", grantor, lock_id, acq_t))

    def on_mirror_self_grant(self, grantor: int, lock_id: int, acq_t: VClock) -> None:
        # managed-lock mirror of a peer's self-grant (already appended to
        # the manager state by the protocol); replicate for the buddy
        if self.repl is not None:
            self.repl.op(("mself", grantor, lock_id, acq_t))

    def on_owner_observed(self, lock_id: int, owner: int) -> None:
        # managed-lock owner pointer advanced: keep the buddy's mirror of
        # managed_owners current so replica-served recoveries agree
        if self.repl is not None:
            self.repl.op(("owner", lock_id, owner))

    def on_barrier_done(self, episode: int, global_vt: VClock) -> None:
        self.logs.log_barrier(episode, global_vt)
        self.stats.time_logging += 0.5e-6
        if self.repl is not None:
            self.repl.op(("bar", episode, global_vt))

    def on_diff_received(self, page: PageId, writer: int, diff_vt: VClock) -> None:
        self.page_writers.setdefault(page, set()).add(writer)

    def handle_ft_message(self, src: int, msg: Any) -> bool:
        if isinstance(msg, ReplicaUpdate):
            replica_apply(self.proc_host, src, msg)
            return True
        if isinstance(msg, ReplicaAck):
            if self.repl is not None:
                self.repl.on_ack(msg)
            return True
        if isinstance(msg, AcqAck):
            fixed = self.logs.rel.confirm(src, msg.lock_id, msg.acq_t, self.pid)
            self.stats.time_logging += 0.5e-6
            self.proc.cpu.accrue_handler(0.5e-6)
            if fixed and self.repl is not None:
                self.repl.op(("rel_fix", src, msg.lock_id, msg.acq_t))
            return True
        return False

    # ==================================================================
    # FtHooks — checkpoint policy evaluation
    # ==================================================================
    def at_sync_point(self, at_barrier: bool = False) -> Iterator[Delay]:
        if self.policy.should_checkpoint(self, at_barrier):
            self.checkpoint_requested = True
        return
        yield  # pragma: no cover - makes this a generator

    # ==================================================================
    # FtHooks — lazy propagation (§4.4.4)
    # ==================================================================
    def piggyback_for(self, dst: int) -> Optional[Piggyback]:
        if not self.config.piggyback_enabled:
            return None
        adverts: Tuple[Tuple[PageId, int], ...] = ()
        pending = self.pending_adverts.get(dst)
        if not pending and self._sent_gen.get(dst) == self.trim.gen:
            # nothing learned since the last scan for this destination:
            # the delta loop below would find every entry already sent
            return None
        if pending:
            k = self.config.piggyback_max_page_versions
            adverts = tuple(pending[:k])
            del pending[:k]
        # gossip with delta encoding: ship every known (own and learned)
        # checkpoint timestamp that this destination has not seen from us.
        # A row's change stamp (trim.row_gen) exceeds the destination's
        # synced gen exactly when that row changed since the last
        # piggyback there; unchanged (and still-zero) rows are skipped
        # without being visited.
        trim = self.trim
        changed = np.flatnonzero(trim.row_gen > self._sent_gen.get(dst, 0))
        tckps = []
        for proc in changed.tolist():
            if proc == dst:
                continue
            tckps.append((proc, trim.tckp[proc], trim.bar_ep[proc]))
        self._sent_gen[dst] = trim.gen
        if not tckps and not adverts:
            return None
        return Piggyback(tckps=tuple(tckps), page_versions=adverts)

    def on_piggyback(self, src: int, pb: Piggyback) -> None:
        for proc, tckp, bar_ep in pb.tckps:
            self.trim.learn_tckp(proc, tckp, bar_ep)
        for page, version in pb.page_versions:
            self.trim.learn_p0v(page, version)

    # ==================================================================
    # checkpointing
    # ==================================================================
    def request_checkpoint(self) -> None:
        """Application-initiated checkpoint request (manual policy)."""
        self.checkpoint_requested = True

    def at_safe_point(self) -> Iterator[Any]:
        """Called from ``proc.ckpt_point()``; takes a pending checkpoint."""
        if self.checkpoint_requested:
            self.checkpoint_requested = False
            yield from self.take_checkpoint()

    def take_checkpoint(self) -> Iterator[Any]:
        """The full checkpoint operation (see module docstring)."""
        proc = self.proc
        yield from proc.cpu.drain_debt()
        yield from proc._end_interval()
        proc.vt = proc.vt.bump(self.pid)  # clean cut: Tckp < everything after
        tckp = proc.vt

        if self.config.llt_enabled:
            self.run_llt()

        # -- snapshot ----------------------------------------------------
        state_blob = pickle.dumps(self.app_state_fn())
        homed: Dict[PageId, Tuple[bytes, VClock]] = {}
        for page in proc.home.pages():
            hp = proc.home[page]
            homed[page] = (proc.page_snapshot(page, hp), hp.version)
        pack_cost = sum(len(d) for d, _ in homed.values()) * (
            proc.cpu.costs.checkpoint_pack_per_byte
        )
        self.stats.time_logging += pack_cost
        yield from proc.cpu.charge(TimeBucket.LOG_CKPT, pack_cost)

        seqno = self.ckpt_mgr.next_seqno
        ckpt = Checkpoint(
            pid=self.pid,
            seqno=seqno,
            tckp=tckp,
            app_state_blob=state_blob,
            own_notices=(
                self.proc.notices.own_after(self.pid, 0)
                if self.config.save_wn_log
                else []
            ),
            diff_log=self.logs.diff.snapshot(),
            lock_tokens=proc.locks.token_snapshot(),
            acq_seq=dict(proc._acq_seq),
            barrier_episode=proc.barrier_episode,
            last_barrier_global=proc.last_barrier_global,
        )

        # -- stable storage ------------------------------------------------
        # two-phase write: the checkpoint record is *staged* (lands on
        # stable storage without a commit marker), then the disk write
        # runs, then the marker commits it. A crash during the write
        # leaves a torn record that recovery detects and discards,
        # restarting from the previous stable checkpoint.
        page_bytes = self.ckpt_mgr.stage(ckpt, homed)
        if self.repl is not None:
            # replicate the new base into the buddy *before* the disk
            # write: a crash during the write leaves both the disk record
            # and the replica record torn (two-phase on both media)
            self.repl.on_ckpt_begin(seqno, tckp, proc.barrier_episode, homed)
        new_log_bytes = self.logs.diff.unsaved_bytes
        total_write = page_bytes + new_log_bytes + len(state_blob)
        t0 = proc.engine.now
        write_cost = self.disk.write_cost(total_write)
        self.disk.bytes_written += total_write
        self.disk.write_time += write_cost
        self._probe(
            "ckpt_write", f"begin seqno={seqno} bytes={total_write}"
        )
        yield from proc.cpu.charge(TimeBucket.LOG_CKPT, write_cost)
        self._probe("ckpt_write", f"end seqno={seqno}")
        self.stats.time_disk += proc.engine.now - t0
        if self.obs is not None:
            # write+commit duration: the commit marker lands in zero
            # virtual time right after the write completes
            self.obs.on_ckpt_write(self.pid, proc.engine.now - t0)

        # -- commit marker ---------------------------------------------------
        self.logs.diff.mark_all_saved()
        self.stats.logs_saved_bytes += new_log_bytes
        self.ckpt_mgr.commit_staged(ckpt, homed)
        self.stats.ckpt_page_bytes += page_bytes
        self.stats.ckpt_state_bytes += len(state_blob)

        # -- CGC + advertisement -------------------------------------------
        self.trim.learn_tckp(self.pid, tckp, proc.barrier_episode)
        if self.repl is not None:
            self.repl.on_ckpt_commit(seqno)
        if self.config.cgc_enabled:
            self.run_cgc()

        self.stats.checkpoints_taken += 1
        disk_log = self.logs.diff.saved_bytes
        self.stats.max_log_disk = max(self.stats.max_log_disk, disk_log)
        self.stats.log_points.append((self.stats.checkpoints_taken, disk_log))
        if self.obs is not None:
            self.obs.on_checkpoint(self.pid, self.stats.checkpoints_taken, disk_log)

    # ==================================================================
    # LLT (Rules 1, 2, 3.2) — §4.4
    # ==================================================================
    def run_llt(self) -> Dict[str, int]:
        """Trim every log against the current (possibly stale) bounds."""
        out = {"diff_bytes": 0, "rel": 0, "acq": 0, "wn": 0, "bar": 0, "self": 0}
        # Rule 3.2 — the big one
        for page in self.logs.diff.pages():
            bound = self.trim.diff_bound(page)
            if bound > 0:
                out["diff_bytes"] += self.logs.diff.trim_page(page, self.pid, bound)
        # Rule 2 — visit only acquirer rows whose checkpoint knowledge
        # changed since the last pass (row_gen delta, same idiom as
        # piggyback_for): an unchanged bound can drop nothing, because
        # entries appended since then always exceed it (an acquire bumps
        # the acquirer past its own last checkpoint cut)
        trim = self.trim
        changed = np.flatnonzero(trim.row_gen > self._llt_gen).tolist()
        for j in changed:
            if j == self.pid:
                continue
            out["rel"] += self.logs.rel.trim(j, trim.rel_bound(j))
        out["acq"] += self.logs.acq.trim(self.pid, trim.acq_bound())
        out["self"] += self.logs.trim_self_grants(trim.acq_bound())
        # Rule 1
        out["wn"] += self.proc.notices.trim_creator_before(
            self.pid, self.trim.wn_keep_from()
        )
        # barrier log analogue
        out["bar"] += self.logs.trim_barriers(self.trim.bar_keep_from())
        if self.proc.barrier_mgr is not None:
            self.proc.barrier_mgr.trim_history(self.trim.bar_keep_from())
        # manager-held self-grant mirrors of peers (same delta argument:
        # a mirror entry from j postdates j's checkpoint known then)
        for lock_id in self.proc.locks.managed_locks():
            mgr = self.proc.locks.manager(lock_id)
            for j in changed:
                mgr.trim_self_grants(j, trim.tckp[j][j])
        # buddy-held self-grant mirrors (Rule 2 analogue)
        for grantor in changed:
            locks = self.buddy_selfgrants.get(grantor)
            if not locks:
                continue
            bound = trim.tckp[grantor][grantor]
            for lock_id, entries in locks.items():
                locks[lock_id] = [t for t in entries if t[grantor] > bound]
        self._llt_gen = trim.gen
        self.stats.rel_entries_trimmed += out["rel"] + out["acq"]
        self.stats.wn_trimmed += out["wn"]
        if self.obs is not None:
            self.obs.on_llt(self.pid, out)
        # fires synchronously at the end of the pass, so a probe consumer
        # (the invariant monitor) reads the logs exactly as LLT left them
        self._probe(
            "llt",
            f"diff_bytes={out['diff_bytes']} rel={out['rel']} "
            f"acq={out['acq']} wn={out['wn']}",
        )
        return out

    # ==================================================================
    # CGC (Rule 3.1) — §4.4
    # ==================================================================
    def cgc_seqno_ceiling(self) -> Optional[int]:
        """Buddy-ack gate for CGC: newest checkpoint seqno the buddy holds.

        ``None`` when replication is off (no gate); -1 right after a
        re-buddy (nothing acked yet — collect nothing newer than the
        virtual checkpoint 0).
        """
        return self.repl.acked_seqno if self.repl is not None else None

    def run_cgc(self) -> int:
        """Collect past checkpoints; queue new p0.v advertisements."""
        tmin = self.trim.tmin()
        freed = self.ckpt_mgr.collect(tmin, seqno_ceiling=self.cgc_seqno_ceiling())
        # after collection, advertise each page's maximal-starting-copy
        # version to its writers (they trim their diff logs with it)
        for page, copies in self.ckpt_mgr.page_copies.items():
            p0 = copies[0]  # oldest retained == maximal starting copy
            for writer in self.page_writers.get(page, ()):
                if writer == self.pid:
                    continue
                self.pending_adverts.setdefault(writer, []).append(
                    (page, p0.version[writer])
                )
            # the home is its own writer: trim its own diff log directly
            self.trim.learn_p0v(page, p0.version[self.pid])
        if self.obs is not None:
            self.obs.on_cgc(self.pid, freed)
        # synchronous end-of-pass probe: Tmin and the retained copies are
        # exactly the ones this pass computed when a consumer reads them
        self._probe(
            "cgc", f"freed={freed} window={self.ckpt_mgr.window_size}"
        )
        return freed

    # ==================================================================
    # convenience / accounting
    # ==================================================================
    @property
    def volatile_log_bytes(self) -> int:
        return self.logs.diff.volatile_bytes

    def log_append_cost(self, nbytes: int) -> float:
        return nbytes * self.proc.cpu.costs.log_append_per_byte
