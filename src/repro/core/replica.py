"""Buddy replication: in-memory checkpoint + sender-log mirrors (ROADMAP 3).

The paper's recovery protocol assumes at most one failure at a time: a
recovering process rebuilds its volatile logs from *peers'* mirrors, so a
second overlapping failure can take down exactly the responder whose
mirrors replay needs (``OverlappingFailureError``). Following the
in-memory-replication direction of Besta & Hoefler's resilient RMA model
and LLFT's leader/follower replication, each node optionally mirrors its
committed checkpoints and sender-log segments into a designated peer's
*volatile* memory — the ring buddy ``pid -> (pid+1) % N``, re-assigned
when a buddy dies — giving recovery a second source that survives the
loss of the node's own volatile state.

Three moving parts live here:

- :class:`Replicator` — the protected node's side: streams a full **base
  snapshot** at every checkpoint commit (two-phase ``begin``/``commit``
  bracketing the disk write, mirroring the stable-storage commit-marker
  discipline so a crash mid-replication leaves a detectably *torn*
  replica record) plus **incremental ops** for every FT log event in
  between; tracks replication acks, whose seqno is the ceiling CGC may
  trim up to (state must be disk-stable *and* buddy-held).
- :func:`replica_apply` — the buddy's side: applies updates into the
  host's :class:`~repro.sim.storage.ReplicaStore` and acks committed
  bases.
- :func:`serve_replica_query` — recovery's second source: answers the
  same four query kinds the live :class:`RecoveryResponder` serves
  (handshake / page_diffs / home_diffs / starting_copy), reconstructed
  from the newest committed base plus its op tail. Extra entries a live
  node would already have trimmed are harmless: the recovering side
  filters with the same predicates it applies to live answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.logs import RelEntry
from repro.dsm.messages import ReplicaAck, ReplicaUpdate, WriteNotice

__all__ = ["ReplicaRecord", "Replicator", "replica_apply", "serve_replica_query"]

NO_REPLICA = "__noreplica__"  # sentinel payload: holder has nothing usable

# modeled wire sizes (match repro.core.recovery's constants)
_REL_WIRE = 40
_NOTICE_WIRE = 16
_VT_WIRE = 32


@dataclass
class ReplicaRecord:
    """One replicated base generation plus the op tail appended since.

    Stored in the buddy's :class:`ReplicaStore` under ``("replica",
    seqno)``; ``gen`` is the protected node's re-buddying epoch, so a
    holder scan can prefer the freshest copy when several nodes held
    replicas of the same peer at different times.
    """

    seqno: int
    gen: int
    base: Dict[str, Any]
    ops: List[Tuple] = field(default_factory=list)
    base_size: int = 0


# ======================================================================
# base snapshots
# ======================================================================


def build_base(
    ft: Any,
    tckp: Any = None,
    bar_ep: Optional[int] = None,
    extra_copies: Optional[Dict[Any, Tuple[bytes, Any]]] = None,
    extra_seqno: int = 0,
) -> Tuple[Dict[str, Any], int]:
    """Snapshot everything a recovery handshake could ask this node for.

    ``extra_copies`` carries the homed pages of a checkpoint currently
    being staged (its copies join ``ckpt_mgr.page_copies`` only at
    commit, but the replica base for that seqno must include them).
    Returns ``(base, modeled_size_bytes)``.
    """
    proc = ft.proc
    pid = ft.pid
    rel = [
        (acquirer, e.lock_id, e.acq_t)
        for acquirer, entries in enumerate(ft.logs.rel.entries)
        for e in entries
    ]
    acq = [
        (grantor, e.lock_id, e.acq_t)
        for grantor, entries in enumerate(ft.logs.acq.entries)
        for e in entries
    ]
    wn = list(proc.notices.own_after(pid, 0))
    mirror_self: Dict[int, Dict[int, List[Any]]] = {}
    for lock_id in proc.locks.managed_locks():
        mgr = proc.locks.manager(lock_id)
        for grantor, entries in mgr.self_grants.items():
            if entries and grantor != pid:
                mirror_self.setdefault(grantor, {}).setdefault(
                    lock_id, []
                ).extend(entries)
    for grantor, locks in ft.buddy_selfgrants.items():
        for lock_id, entries in locks.items():
            if entries:
                mirror_self.setdefault(grantor, {}).setdefault(
                    lock_id, []
                ).extend(entries)
    bar_history: Dict[int, Any] = {}
    if proc.barrier_mgr is not None:
        bar_history = dict(proc.barrier_mgr.history)
    bar_mirror = [(b.episode, b.global_vt) for b in ft.logs.bar]
    diff: Dict[Any, List[Tuple[Any, Any]]] = {}
    for page in ft.logs.diff.pages():
        entries = [(e.t, e.diff) for e in ft.logs.diff.entries_for(page)]
        if entries:
            diff[page] = entries
    page_copies: Dict[Any, List[Tuple[int, Any, bytes]]] = {}
    for page, copies in ft.ckpt_mgr.page_copies.items():
        page_copies[page] = [(c.ckpt_seqno, c.version, c.data) for c in copies]
    if extra_copies:
        for page, (data, version) in extra_copies.items():
            page_copies.setdefault(page, []).append(
                (extra_seqno, version, data)
            )
    base = {
        "rel": rel,
        "acq": acq,
        "wn": wn,
        "mirror_self": mirror_self,
        "bar_history": bar_history,
        "bar_mirror": bar_mirror,
        "tckp": tckp if tckp is not None else ft.trim.tckp[pid],
        "bar_ep": bar_ep if bar_ep is not None else ft.trim.bar_ep[pid],
        "tokens": proc.locks.chain_snapshot(),
        "managed_owners": {
            lock_id: proc.locks.manager(lock_id).owner()
            for lock_id in proc.locks.managed_locks()
        },
        "completed_seq": dict(proc._completed_seq),
    }
    size = (
        (len(rel) + len(acq)) * _REL_WIRE
        + len(wn) * _NOTICE_WIRE
        + sum(
            len(v) for locks in mirror_self.values() for v in locks.values()
        )
        * _VT_WIRE
        + (len(bar_history) + len(bar_mirror)) * _VT_WIRE
        + sum(
            d.size_bytes + _VT_WIRE for es in diff.values() for _, d in es
        )
        + sum(
            len(data) + _VT_WIRE
            for copies in page_copies.values()
            for _, _, data in copies
        )
        + (len(base["tokens"]) + len(base["managed_owners"])) * 8
        + _VT_WIRE
    )
    base["diff"] = diff
    base["page_copies"] = page_copies
    return base, size


def _op_size(op: Tuple) -> int:
    if op[0] == "diff":
        return op[2].size_bytes + _VT_WIRE
    return _REL_WIRE


# ======================================================================
# protected node's side
# ======================================================================


class Replicator:
    """Streams one node's FT state into its ring buddy's volatile memory."""

    def __init__(self, ft: Any, host: Any) -> None:
        self.ft = ft
        self.host = host
        self.cluster = host.cluster
        self.pid = ft.pid
        self.n = ft.n
        self.buddy: Optional[int] = None
        #: re-buddying epoch; bumped on every retarget so holder scans and
        #: ack filtering can tell a fresh replica from a stale one
        self.gen = 0
        #: highest base seqno the *current* buddy has acked — the CGC trim
        #: ceiling (-1: nothing buddy-held yet, CGC must not collect)
        self.acked_seqno = -1
        # accounting
        self.bytes_sent = 0
        self.ops_sent = 0
        self.syncs_sent = 0
        #: commit-send virtual times per seqno, kept only while an
        #: observer is attached — popped on ack to feed the transfer/ack
        #: lag percentile distribution (observer-private accounting; the
        #: protocol never reads it)
        self._commit_sent: Dict[int, float] = {}

    # -- buddy assignment ----------------------------------------------
    def choose_buddy(self) -> Optional[int]:
        """First live, non-recovering host in ring order after ``pid``."""
        for k in range(1, self.n):
            j = (self.pid + k) % self.n
            h = self.cluster.hosts[j]
            if h.live and not h.recovering:
                return j
        return None

    def recompute(self) -> None:
        """Re-evaluate the buddy choice after a liveness change."""
        if self.host.recovering:
            return
        new = self.choose_buddy()
        if new == self.buddy:
            return
        old = self.buddy
        self.buddy = new
        self.gen += 1
        self.acked_seqno = -1  # nothing buddy-held until the new sync acks
        self._commit_sent.clear()  # stale-gen sends will never be acked
        if old is not None and self.cluster.hosts[old].live:
            self._send(
                ReplicaUpdate(kind="drop", protected=self.pid, gen=self.gen),
                dst=old,
            )
        self.ft._probe("repl", f"retarget old={old} new={new} gen={self.gen}")
        if new is not None:
            self.full_sync()

    # -- replication stream --------------------------------------------
    def _send(self, msg: ReplicaUpdate, dst: Optional[int] = None) -> None:
        dst = self.buddy if dst is None else dst
        if dst is None:
            return
        self.bytes_sent += msg.body_size + 16
        self.ft.proc._send(dst, msg)

    def _streaming(self) -> bool:
        return self.buddy is not None and not self.host.recovering

    def full_sync(self) -> None:
        """Replicate the complete current state as one committed base."""
        if not self._streaming():
            return
        base, size = build_base(self.ft)
        seqno = self.ft.ckpt_mgr.next_seqno - 1
        self.syncs_sent += 1
        self._send(
            ReplicaUpdate(
                kind="sync",
                protected=self.pid,
                seqno=seqno,
                gen=self.gen,
                body=base,
                body_size=size,
            )
        )
        self.ft._probe("repl", f"sync seqno={seqno} dst={self.buddy}")

    def on_ckpt_begin(
        self, seqno: int, tckp: Any, bar_ep: int, homed: Dict[Any, Tuple[bytes, Any]]
    ) -> None:
        """A checkpoint disk write is starting: stage the new base.

        Sent *before* the write so a crash during the vulnerable window
        leaves a pending (torn) replica record at the buddy, which
        recovery detects via the commit marker and falls back past.
        """
        if not self._streaming():
            return
        base, size = build_base(
            self.ft, tckp=tckp, bar_ep=bar_ep, extra_copies=homed,
            extra_seqno=seqno,
        )
        self._send(
            ReplicaUpdate(
                kind="begin",
                protected=self.pid,
                seqno=seqno,
                gen=self.gen,
                body=base,
                body_size=size,
            )
        )
        self.ft._probe("repl", f"begin seqno={seqno} dst={self.buddy}")

    def on_ckpt_commit(self, seqno: int) -> None:
        if not self._streaming():
            return
        self._send(
            ReplicaUpdate(
                kind="commit", protected=self.pid, seqno=seqno, gen=self.gen
            )
        )
        self.ft._probe("repl", f"commit seqno={seqno} dst={self.buddy}")
        # getattr: unit tests drive the replicator with a bare ft stub
        if getattr(self.ft, "obs", None) is not None:
            self._commit_sent[seqno] = self.ft.proc.engine.now

    def op(self, op: Tuple) -> None:
        """Mirror one incremental log event."""
        if not self._streaming():
            return
        self.ops_sent += 1
        self._send(
            ReplicaUpdate(
                kind="op",
                protected=self.pid,
                gen=self.gen,
                body=op,
                body_size=_op_size(op),
            )
        )

    def on_ack(self, msg: ReplicaAck) -> None:
        if msg.gen != self.gen:
            return  # ack from a previous buddy epoch: its records are gone
        if msg.seqno > self.acked_seqno:
            self.acked_seqno = msg.seqno
            self.ft._probe("repl", f"ack seqno={msg.seqno}")
            obs = getattr(self.ft, "obs", None)
            if obs is not None and self._commit_sent:
                # acks are cumulative: this one covers every commit sent
                # at or before msg.seqno (same-gen, so times are valid)
                now = self.ft.proc.engine.now
                for seqno in sorted(self._commit_sent):
                    if seqno > msg.seqno:
                        break
                    obs.on_replica_ack(
                        self.pid, now - self._commit_sent.pop(seqno)
                    )

    @property
    def lag(self) -> int:
        """Committed checkpoints not yet covered by a replica ack."""
        latest = self.ft.ckpt_mgr.next_seqno - 1
        return latest - self.acked_seqno if self.acked_seqno >= 0 else latest + 1


# ======================================================================
# buddy's side
# ======================================================================


def replica_apply(host: Any, src: int, msg: ReplicaUpdate) -> None:
    """Apply a replication update into this host's ReplicaStore."""
    rs = host.replica_store
    if msg.kind == "drop":
        rs.drop(msg.protected)
        return
    store = rs.store_for(msg.protected)
    key = ("replica", msg.seqno)
    if msg.kind == "sync":
        for k in store.keys():
            store.delete(k)
        store.put(
            key,
            ReplicaRecord(msg.seqno, msg.gen, msg.body, base_size=msg.body_size),
            msg.body_size,
        )
        _ack(host, src, msg)
    elif msg.kind == "begin":
        store.begin_put(
            key,
            ReplicaRecord(msg.seqno, msg.gen, msg.body, base_size=msg.body_size),
            msg.body_size,
        )
    elif msg.kind == "commit":
        if key not in store:
            return  # superseded by a later sync (FIFO makes this rare)
        store.commit_put(key)
        for k in store.keys():
            if k != key and k[1] < msg.seqno:
                store.delete(k)
        _ack(host, src, msg)
    elif msg.kind == "op":
        # append to every retained record: the previous committed base
        # needs the tail in case the in-flight one ends up torn
        for k in store.keys():
            store.get(k).ops.append(msg.body)
    else:
        raise RuntimeError(f"unknown replica update kind {msg.kind!r}")


def _ack(host: Any, src: int, msg: ReplicaUpdate) -> None:
    host.proto.cpu.accrue_handler(1e-6)
    host.proto._send(
        src, ReplicaAck(protected=msg.protected, seqno=msg.seqno, gen=msg.gen)
    )


def best_record(host: Any, protected: int) -> Optional[ReplicaRecord]:
    """The newest *committed* replica record this host holds, if any."""
    rs = host.replica_store
    if not rs.has(protected):
        return None
    store = rs.store_for(protected)
    best: Optional[ReplicaRecord] = None
    for k in store.keys():
        if store.is_pending(k):
            continue  # torn: begin seen, commit never arrived
        rec = store.get(k)
        if best is None or (rec.gen, rec.seqno) > (best.gen, best.seqno):
            best = rec
    return best


# ======================================================================
# recovery's second source
# ======================================================================


def _view(rec: ReplicaRecord, protected: int) -> Dict[str, Any]:
    """Materialize the record's base + op tail into handshake-shaped state.

    The op stream is exactly the FT logging hook stream of §4.2, so the
    overlay mirrors what the live node's handlers would have built.
    """
    base = rec.base
    rel = [list(t) for t in base["rel"]]
    acq = list(base["acq"])
    wn = list(base["wn"])
    mirror_self = {
        g: {l: list(v) for l, v in locks.items()}
        for g, locks in base["mirror_self"].items()
    }
    bar_mirror = list(base["bar_mirror"])
    diff = {p: list(es) for p, es in base["diff"].items()}
    tokens = dict(base["tokens"])
    owners = dict(base["managed_owners"])
    completed = dict(base["completed_seq"])
    for op in rec.ops:
        kind = op[0]
        if kind == "rel":
            # the protected node granted lock_id away: log + token left
            rel.append([op[1], op[2], op[3]])
            tokens[op[2]] = (False, False, None, 0)
        elif kind == "rel_fix":
            # AcqAck landed: the grantor's predicted timestamp became the
            # acquirer's actual one (matched by the grantor's own
            # component, identical in both)
            _, acquirer, lock_id, actual = op
            for e in reversed(rel):
                if (
                    e[0] == acquirer
                    and e[1] == lock_id
                    and e[2][protected] == actual[protected]
                ):
                    e[2] = actual
                    break
        elif kind == "acq":
            _, grantor, lock_id, acq_t, seq = op
            acq.append((grantor, lock_id, acq_t))
            tokens[lock_id] = (True, True, None, 0)
            completed[lock_id] = seq
        elif kind == "self":
            _, lock_id, acq_t, seq = op
            tokens[lock_id] = (True, True, None, 0)
            completed[lock_id] = seq
        elif kind == "mself":
            _, grantor, lock_id, acq_t = op
            mirror_self.setdefault(grantor, {}).setdefault(lock_id, []).append(
                acq_t
            )
        elif kind == "bar":
            bar_mirror.append((op[1], op[2]))
        elif kind == "diff":
            # a diff-log append and its 1:1 own write notice
            _, page, d, t = op
            diff.setdefault(page, []).append((t, d))
            wn.append(WriteNotice(protected, t[protected], page, t))
        elif kind == "owner":
            owners[op[1]] = op[2]
    return {
        "rel": rel,
        "acq": acq,
        "wn": wn,
        "mirror_self": mirror_self,
        "bar_history": dict(base["bar_history"]),
        "bar_mirror": bar_mirror,
        "diff": diff,
        "tokens": tokens,
        "managed_owners": owners,
        "completed_seq": completed,
        "tckp": base["tckp"],
        "bar_ep": base["bar_ep"],
        "page_copies": base["page_copies"],
    }


def serve_replica_query(
    host: Any, protected: int, requester: int, kind: str, detail: Any
) -> Tuple[Any, int]:
    """Answer a recovery query for ``protected`` from this host's replica.

    Mirrors ``RecoveryResponder`` shapes exactly; returns the
    ``NO_REPLICA`` sentinel when no committed record survives (the
    requester re-scans other holders or degrades with a stated reason).
    """
    rec = best_record(host, protected)
    if rec is None:
        return NO_REPLICA, 8
    view = _view(rec, protected)
    if kind == "handshake":
        rel_entries = [
            RelEntry(lock_id, acq_t)
            for acquirer, lock_id, acq_t in view["rel"]
            if acquirer == requester
        ]
        acq_mirror = [
            RelEntry(lock_id, acq_t)
            for grantor, lock_id, acq_t in view["acq"]
            if grantor == requester
        ]
        self_grants = {
            lock_id: list(entries)
            for lock_id, entries in view["mirror_self"].get(requester, {}).items()
        }
        payload = {
            "managed_owners": view["managed_owners"],
            "rel_entries": rel_entries,
            "acq_mirror": acq_mirror,
            "wn": view["wn"],
            "self_grants": self_grants,
            "bar_history": view["bar_history"],
            "bar_mirror": view["bar_mirror"],
            "tckp": view["tckp"],
            "bar_ep": view["bar_ep"],
            "tokens": view["tokens"],
            "completed_seq": view["completed_seq"],
        }
        size = (
            (len(rel_entries) + len(acq_mirror)) * _REL_WIRE
            + len(payload["wn"]) * _NOTICE_WIRE
            + sum(len(v) for v in self_grants.values()) * _VT_WIRE
            + (len(payload["bar_history"]) + len(payload["bar_mirror"]))
            * _VT_WIRE
            + len(payload["tokens"]) * 8
            + _VT_WIRE
        )
        return payload, size
    if kind == "page_diffs":
        entries = list(view["diff"].get(detail, []))
        return entries, sum(d.size_bytes + _VT_WIRE for _, d in entries)
    if kind == "home_diffs":
        proto = host.proto
        out: Dict[Any, List[Tuple[Any, Any]]] = {}
        size = 0
        for page, entries in view["diff"].items():
            if proto.regions.home_of(page) != requester:
                continue
            if entries:
                out[page] = list(entries)
                size += sum(d.size_bytes + _VT_WIRE for _, d in entries)
        return out, size
    if kind == "starting_copy":
        page, ceiling = detail
        copies = view["page_copies"].get(page)
        if not copies:
            return NO_REPLICA, 8
        best = None
        for seqno, version, data in copies:
            if version.leq(ceiling):
                best = (data, version)
        if best is None:
            return NO_REPLICA, 8
        return best, len(best[0]) + _VT_WIRE
    raise RuntimeError(f"unknown replica query kind {kind!r}")
