"""Command-line runner: ``python -m repro [options] <app>``.

Examples::

    python -m repro water-spatial
    python -m repro barnes --procs 8 --ft --l 0.25 --crash 3@0.5
    python -m repro counter --ft --coordinated --wan 5e-3 --trace lock,ckpt
    python -m repro tables --scale smoke
    python -m repro bench --smoke --check
    python -m repro crashsweep counter --every 40 --classes lock,ckpt_write
    python -m repro crashsweep counter --faults 2      # k=2, replication on
    python -m repro observe counter --procs 4 --interval 1e-3
    python -m repro observe session --rate 4000 --slo "p99(lat.request)<5ms"
    python -m repro observe session --crash 1@0.25 --replicate
    python -m repro trace counter --procs 4 --crash 2@0.5
    python -m repro monitor counter --procs 4 --crash 2@0.5
    python -m repro monitor counter --seed-violation cgc   # must exit 1
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Optional

from repro import DsmCluster, DsmConfig
from repro.core import LogOverflowPolicy
from repro.sim.network import MetaClusterConfig, NetworkConfig
from repro.sim.node import TimeBucket

APPS = [
    "counter", "kvstore", "session", "barnes", "water-nsq", "water-spatial",
    "lu", "tables", "bench",
]


def make_app(
    name: str,
    steps: Optional[int],
    size: Optional[int],
    rate: Optional[float] = None,
) -> Any:
    from repro.apps.barnes import BarnesApp, BarnesConfig
    from repro.apps.counter import CounterApp, CounterConfig
    from repro.apps.kvstore import KvStoreApp, KvStoreConfig
    from repro.apps.lu import LuApp, LuConfig
    from repro.apps.session import SessionApp, SessionConfig
    from repro.apps.water_nsq import WaterNsqApp, WaterNsqConfig
    from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig

    if name == "session":
        cfg = SessionConfig()
        if steps:
            cfg.steps = steps
        if size:
            cfg.n_keys = size
        if rate:
            cfg.rate = rate
        return SessionApp(cfg)
    if name == "counter":
        cfg = CounterConfig()
        if steps:
            cfg.steps = steps
        if size:
            cfg.n_elements = size
        return CounterApp(cfg)
    if name == "kvstore":
        cfg = KvStoreConfig()
        if steps:
            cfg.steps = steps
        if size:
            cfg.n_keys = size
        return KvStoreApp(cfg)
    if name == "barnes":
        cfg = BarnesConfig()
        if steps:
            cfg.steps = steps
        if size:
            cfg.n_bodies = size
        return BarnesApp(cfg)
    if name == "water-nsq":
        cfg = WaterNsqConfig()
        if steps:
            cfg.steps = steps
        if size:
            cfg.n_molecules = size
        return WaterNsqApp(cfg)
    if name == "water-spatial":
        cfg = WaterSpatialConfig()
        if steps:
            cfg.steps = steps
        if size:
            cfg.n_molecules = size
        return WaterSpatialApp(cfg)
    if name == "lu":
        cfg = LuConfig()
        if size:
            cfg.matrix_size = size
        return LuApp(cfg)
    raise ValueError(f"unknown app {name!r}")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a DSM workload on the simulated fault-tolerant "
        "HLRC cluster (SC 2000 reproduction).",
    )
    p.add_argument("app", choices=APPS, help="workload, or 'tables' for the paper harness")
    p.add_argument("--procs", type=int, default=8, help="cluster size (default 8)")
    p.add_argument("--steps", type=int, default=None, help="application steps")
    p.add_argument("--size", type=int, default=None, help="problem size (app-specific)")
    p.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate, requests per virtual second per "
        "process (session app only)",
    )
    p.add_argument("--ft", action="store_true", help="enable fault tolerance")
    p.add_argument(
        "--replicate", action="store_true",
        help="with --ft: buddy-replicate checkpoints + logs into the "
        "ring successor's memory (survives overlapping failures)",
    )
    p.add_argument("--l", type=float, default=0.1, help="OF policy L fraction")
    p.add_argument(
        "--coordinated",
        action="store_true",
        help="use the coordinated-checkpointing baseline instead of the "
        "paper's independent scheme",
    )
    p.add_argument(
        "--crash",
        metavar="PID@FRAC",
        default=None,
        help="fail-stop PID at FRAC of the failure-free runtime (e.g. 3@0.5)",
    )
    p.add_argument(
        "--wan",
        type=float,
        default=None,
        metavar="SECONDS",
        help="meta-cluster mode: split the cluster in two halves joined "
        "by a WAN link with this one-way latency",
    )
    from repro.sim.trace import Tracer

    p.add_argument(
        "--trace",
        default=None,
        metavar="KINDS",
        # derived from Tracer.KINDS so the help can never drift from
        # what the tracer actually accepts
        help="comma-separated trace kinds (" + ",".join(sorted(Tracer.KINDS)) + ")",
    )
    p.add_argument("--trace-limit", type=int, default=60)
    p.add_argument("--scale", default="smoke", choices=["smoke", "default"],
                   help="scale for the 'tables' harness")
    bench = p.add_argument_group("bench", "options for the 'bench' subcommand")
    bench.add_argument(
        "--suite", default="core", choices=["core", "scale"],
        help="bench: 'core' hot-path suite or the 'scale' node-count curve",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="bench: run the reduced smoke suite (used by CI)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="bench: attach cProfile to the app benches and print hot spots",
    )
    bench.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="bench: baseline file to record to / check against "
        "(default benchmarks/BENCH_core.json or BENCH_scale.json per suite)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="bench: compare against the committed baseline instead of "
        "recording; exit 1 if events/sec regressed more than the budget",
    )
    bench.add_argument(
        "--budget", type=float, default=0.30, metavar="FRAC",
        help="bench --check: tolerated events/sec regression (default 0.30)",
    )
    return p


def make_cluster(args: argparse.Namespace) -> DsmCluster:
    net = NetworkConfig()
    if args.wan is not None:
        net = MetaClusterConfig(
            cluster_size=max(1, args.procs // 2), wan_latency=args.wan
        )
    kwargs = dict(
        config=DsmConfig(num_procs=args.procs),
        net_config=net,
    )
    if not args.ft:
        return DsmCluster(**kwargs)
    if args.coordinated:
        from repro.baselines import coordinated_cluster

        kwargs.pop("config")
        return coordinated_cluster(
            DsmConfig(num_procs=args.procs), l_fraction=args.l, net_config=net
        )
    if getattr(args, "replicate", False):
        from repro.core.ftmanager import FtConfig

        kwargs["ft_config"] = FtConfig(replicate=True)
    return DsmCluster(
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(args.l, fp),
        **kwargs,
    )


def build_crashsweep_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro crashsweep",
        description="Crash-point sweep fault-injection campaign: enumerate "
        "crash points of a traced failure-free run, re-run the app once "
        "per point, and assert the recovery-equivalence oracle.",
    )
    p.add_argument("app", choices=[a for a in APPS if a not in ("tables", "bench")])
    p.add_argument("--procs", type=int, default=4, help="cluster size (default 4)")
    p.add_argument("--steps", type=int, default=None, help="application steps")
    p.add_argument("--size", type=int, default=None, help="problem size")
    p.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate, requests per virtual second per "
        "process (session app only)",
    )
    p.add_argument("--l", type=float, default=0.1, help="OF policy L fraction")
    p.add_argument(
        "--every", type=int, default=25,
        help="crash after every Nth traced protocol event (default 25)",
    )
    p.add_argument(
        "--classes", default=None,
        help="comma-separated crash-point classes (default: all classes "
        f"the --faults budget allows, out of {','.join(sweep_classes())})",
    )
    p.add_argument(
        "--faults", type=int, default=1, choices=(1, 2),
        help="fault budget: 2 adds the double/repl classes (second "
        "crashes inside recovery windows, crashes mid-replication); "
        "implies --replicate unless --no-replicate",
    )
    p.add_argument(
        "--replicate", action="store_true",
        help="enable the buddy-replication tier (FtConfig.replicate)",
    )
    p.add_argument(
        "--no-replicate", action="store_true",
        help="keep replication off even with --faults 2 (overlap points "
        "then degrade explicitly instead of recovering)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="summary JSON path (default benchmarks/SWEEP_<app>.json)",
    )
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print one line per injected run")
    return p


def sweep_classes() -> tuple:
    from repro.faultinject import campaign

    return campaign.CLASSES


def run_crashsweep(argv: list) -> int:
    import json

    from repro.faultinject import CrashSweep

    args = build_crashsweep_parser().parse_args(argv)
    replicate = (args.replicate or args.faults >= 2) and not args.no_replicate
    ns = argparse.Namespace(
        procs=args.procs, ft=True, coordinated=False, wan=None, l=args.l,
        replicate=replicate,
    )
    sweep = CrashSweep(
        cluster_factory=lambda: make_cluster(ns),
        app_factory=lambda: make_app(args.app, args.steps, args.size, args.rate),
        every=args.every,
        classes=tuple(args.classes.split(",")) if args.classes else None,
        faults=args.faults,
    )

    t0 = time.time()

    def progress(res) -> None:
        if args.verbose:
            p = res.point
            base = f" base=p{p.base[1]}@{p.base[0]}" if p.base else ""
            print(
                f"  {p.cls:<10} p{p.victim}@{p.step}{base}: {res.outcome}"
                + (f" ({res.error})" if res.error else "")
            )

    summary = sweep.run(progress=progress)
    host_s = time.time() - t0

    print(f"crash sweep   {args.app} on {args.procs} simulated nodes "
          f"({len(summary.results)} points, {host_s:.1f}s host time)")
    print(summary.render())
    for note in summary.notes:
        print(f"note: {note}")

    suffix = "_k2" if args.faults >= 2 else ""
    out = args.out or f"benchmarks/SWEEP_{args.app}{suffix}.json"
    payload = summary.to_dict(
        app=args.app, procs=args.procs, replicate=replicate
    )
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"written to {out}")
    if not summary.ok:
        from repro.faultinject.campaign import DEGRADABLE_CLASSES

        for r in summary.results:
            if r.outcome == "failed" or (
                r.outcome == "degraded"
                and r.point.cls not in DEGRADABLE_CLASSES
            ):
                print(
                    f"FAIL {r.point.cls} p{r.point.victim}@{r.point.step}: "
                    f"{r.error}", file=sys.stderr,
                )
        return 1
    return 0


def build_observe_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro observe",
        description="Run one workload with the observability layer attached "
        "and emit a run report: per-node time series (log sizes, diff "
        "traffic, simulator rates), wait histograms, and summary tables. "
        "The full report is written as JSONL; a rendered version is printed.",
    )
    p.add_argument("app", choices=[a for a in APPS if a not in ("tables", "bench")])
    p.add_argument("--procs", type=int, default=4, help="cluster size (default 4)")
    p.add_argument("--steps", type=int, default=None, help="application steps")
    p.add_argument("--size", type=int, default=None, help="problem size")
    p.add_argument("--l", type=float, default=0.1, help="OF policy L fraction")
    p.add_argument(
        "--no-ft", action="store_true",
        help="observe the base protocol instead of the fault-tolerant one",
    )
    p.add_argument(
        "--replicate", action="store_true",
        help="enable the buddy-replication tier and report the "
        "ft.replica_bytes / ft.replica_lag series",
    )
    p.add_argument(
        "--interval", type=float, default=1e-3, metavar="SECONDS",
        help="virtual-time sampling cadence (default 1e-3); 0 disables the "
        "ticker, leaving barrier-episode sampling only",
    )
    p.add_argument(
        "--window", type=float, default=1e-3, metavar="SECONDS",
        help="windowed tail-latency collection: rotate every latency op "
        "class into fixed virtual-time windows of this width (default "
        "1e-3); 0 disables windowing (and SLO evaluation)",
    )
    p.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate, requests per virtual second per "
        "process (session app only)",
    )
    p.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="declarative latency objective, e.g. 'p99(lat.request)<5ms' "
        "(repeatable); evaluated with multi-window burn-rate rules over "
        "the collected windows — any violation makes the exit code "
        "nonzero (the CI gate)",
    )
    p.add_argument(
        "--crash",
        metavar="PID@FRAC",
        default=None,
        help="fail-stop PID at FRAC of the failure-free runtime (e.g. "
        "1@0.5); the report then carries recovery records and the "
        "degradation timeline overlays the crash marks",
    )
    p.add_argument(
        "--crash2",
        metavar="PID@FRAC",
        default=None,
        help="schedule a second fail-stop (overlapping failures; pair "
        "with --replicate)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="JSONL report path (default benchmarks/OBSERVE_<app>.jsonl)",
    )
    return p


def run_observe(argv: list) -> int:
    from repro.observe import (
        ClusterObserver,
        build_report,
        evaluate_report_slos,
        parse_slo,
        render_report,
        validate_report,
        write_jsonl,
    )

    args = build_observe_parser().parse_args(argv)
    if (args.crash or args.crash2) and args.no_ft:
        print("--crash requires fault tolerance (drop --no-ft)", file=sys.stderr)
        return 2
    if args.crash2 and not args.crash:
        print("--crash2 requires --crash", file=sys.stderr)
        return 2
    objectives = []
    for spec in args.slo or ():
        try:
            objectives.append(parse_slo(spec))
        except ValueError as exc:
            print(f"bad --slo: {exc}", file=sys.stderr)
            return 2
    if objectives and not args.window:
        print("--slo requires windowed collection (drop --window 0)",
              file=sys.stderr)
        return 2
    ns = argparse.Namespace(
        procs=args.procs, ft=not args.no_ft, coordinated=False, wan=None,
        l=args.l, replicate=args.replicate and not args.no_ft,
    )

    # failure-free pass to learn the runtime if a crash is requested
    crash_specs = []
    if args.crash:
        golden = make_cluster(ns)
        t_free = golden.run(
            make_app(args.app, args.steps, args.size, args.rate)
        ).wall_time
        for spec in (args.crash, args.crash2):
            if spec:
                pid_s, frac_s = spec.split("@")
                crash_specs.append((int(pid_s), float(frac_s) * t_free))

    cluster = make_cluster(ns)
    observer = ClusterObserver(
        cluster,
        interval=args.interval or None,
        sample_on_barrier=True,
        window_s=args.window or None,
    )
    for spec in crash_specs:
        cluster.schedule_crash(*spec)

    from repro.core.recovery import OverlappingFailureError

    t0 = time.time()
    try:
        result = cluster.run(
            make_app(args.app, args.steps, args.size, args.rate)
        )
    except OverlappingFailureError as exc:
        print(f"overlapping failures: {exc}", file=sys.stderr)
        print("(the single-fault model cannot recover this schedule; "
              "pair --crash2 with --replicate)", file=sys.stderr)
        return 1
    host_s = time.time() - t0
    observer.sample()  # final snapshot at end-of-run virtual time

    meta = {
        "app": args.app,
        "procs": args.procs,
        "ft": not args.no_ft,
        "replicate": ns.replicate,
        "l_fraction": args.l,
        "interval_s": args.interval,
        "host_time_s": round(host_s, 3),
    }
    if args.rate is not None:
        meta["rate"] = args.rate
    if args.crash:
        meta["crash"] = args.crash
        meta["crash2"] = args.crash2

    # SLO evaluation needs the wlat records, so build the report twice:
    # once to evaluate against, once carrying the verdicts
    report = build_report(
        observer.registry, meta, result=result,
        recoveries=observer.recovery_records,
    )
    slos = (
        evaluate_report_slos(report, objectives) if objectives else None
    )
    if slos is not None:
        report = build_report(
            observer.registry, meta, result=result,
            recoveries=observer.recovery_records, slos=slos,
        )
    print(render_report(report))

    out = args.out or f"benchmarks/OBSERVE_{args.app}.jsonl"
    write_jsonl(out, report)
    print(f"\nwritten to {out}")

    errors = validate_report(report, require_ft=not args.no_ft)
    if errors:
        for e in errors:
            print(f"INVALID: {e}", file=sys.stderr)
        return 1
    failed = [s for s in slos or () if not s.ok]
    for s in failed:
        print(
            f"SLO GATE: {s.objective.spec} violated in "
            f"{len(s.violations)} window(s)", file=sys.stderr,
        )
    return 1 if failed else 0


def build_trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one workload with causal span tracing attached and "
        "emit a Chrome trace-event JSON (loadable in Perfetto / "
        "chrome://tracing) plus an ASCII critical-path report. Exits "
        "nonzero if the span DAG is malformed or its per-node self-times "
        "fail to reconcile with the TimeStats buckets.",
    )
    p.add_argument("app", choices=[a for a in APPS if a not in ("tables", "bench")])
    p.add_argument("--procs", type=int, default=4, help="cluster size (default 4)")
    p.add_argument("--steps", type=int, default=None, help="application steps")
    p.add_argument("--size", type=int, default=None, help="problem size")
    p.add_argument("--l", type=float, default=0.1, help="OF policy L fraction")
    p.add_argument(
        "--no-ft", action="store_true",
        help="trace the base protocol instead of the fault-tolerant one",
    )
    p.add_argument(
        "--crash",
        metavar="PID@FRAC",
        default=None,
        help="fail-stop PID at FRAC of the failure-free runtime (e.g. 2@0.5); "
        "requires fault tolerance",
    )
    p.add_argument(
        "--crash2",
        metavar="PID@FRAC",
        default=None,
        help="schedule a second fail-stop (overlapping-failure traces; "
        "pair with --replicate to see the buddy fetch on the recovery "
        "critical path)",
    )
    p.add_argument(
        "--replicate", action="store_true",
        help="enable the buddy-replication tier (adds repl spans: "
        "checkpoint begin→commit transfers, recovery buddy fetches)",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="trace JSON path (default benchmarks/results/TRACE_<app>.json)",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="critical-path report path "
        "(default benchmarks/results/TRACE_<app>_critpath.txt)",
    )
    p.add_argument(
        "--top", type=int, default=12,
        help="critical-path segments to list in the report (default 12)",
    )
    return p


def run_trace(argv: list) -> int:
    import json
    import os

    from repro.observe.tracing import (
        SpanTracer,
        compute_critical_path,
        reconcile_with_time_stats,
        render_critpath_report,
        to_chrome_trace,
    )

    args = build_trace_parser().parse_args(argv)
    if (args.crash or args.crash2) and args.no_ft:
        print("--crash requires fault tolerance (drop --no-ft)", file=sys.stderr)
        return 2
    if args.crash2 and not args.crash:
        print("--crash2 requires --crash", file=sys.stderr)
        return 2
    ns = argparse.Namespace(
        procs=args.procs, ft=not args.no_ft, coordinated=False, wan=None,
        l=args.l, replicate=args.replicate and not args.no_ft,
    )

    # failure-free pass to learn the runtime if a crash is requested
    crash_specs = []
    if args.crash:
        golden = make_cluster(ns)
        t_free = golden.run(make_app(args.app, args.steps, args.size)).wall_time
        for spec in (args.crash, args.crash2):
            if spec:
                pid_s, frac_s = spec.split("@")
                crash_specs.append((int(pid_s), float(frac_s) * t_free))

    cluster = make_cluster(ns)
    tracer = SpanTracer(cluster)
    for spec in crash_specs:
        cluster.schedule_crash(*spec)

    t0 = time.time()
    result = cluster.run(make_app(args.app, args.steps, args.size))
    host_s = time.time() - t0

    errors = tracer.validate()
    errors += reconcile_with_time_stats(tracer)
    segments = compute_critical_path(tracer)
    report = render_critpath_report(tracer, segments, top=args.top)

    print(f"app           {args.app} on {args.procs} simulated nodes "
          f"({host_s:.1f}s host time)")
    print(f"virtual time  {result.wall_time * 1e3:10.3f} ms")
    if result.crashes:
        print(f"failures      {result.crashes} crash(es), "
              f"{result.recoveries} recover(ies)")
    print()
    print(report)

    out = args.out or f"benchmarks/results/TRACE_{args.app}.json"
    report_path = args.report or f"benchmarks/results/TRACE_{args.app}_critpath.txt"
    for path in (out, report_path):
        d = os.path.dirname(path)
        if d:
            os.makedirs(d, exist_ok=True)
    trace_json = to_chrome_trace(
        tracer,
        meta={
            "app": args.app,
            "procs": args.procs,
            "ft": not args.no_ft,
            "replicate": ns.replicate,
            "crash": args.crash,
            "crash2": args.crash2,
            "wall_time_s": result.wall_time,
        },
    )
    with open(out, "w") as fh:
        json.dump(trace_json, fh)
        fh.write("\n")
    with open(report_path, "w") as fh:
        fh.write(report + "\n")
    print(f"\ntrace written to {out} ({len(trace_json['traceEvents'])} events)")
    print(f"critical-path report written to {report_path}")

    if errors:
        for e in errors:
            print(f"MALFORMED: {e}", file=sys.stderr)
        return 1
    return 0


def build_monitor_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro monitor",
        description="Run one fault-tolerant workload with the online "
        "invariant monitor attached: the paper's trimming/garbage-"
        "collection bounds, vector-clock monotonicity, per-channel FIFO "
        "and the structural recoverability precondition are checked "
        "continuously (DESIGN.md §9). Exits nonzero on any violation and "
        "writes a post-mortem flight record (last-events ring + node "
        "state snapshot) as JSON.",
    )
    p.add_argument("app", choices=[a for a in APPS if a not in ("tables", "bench")])
    p.add_argument("--procs", type=int, default=4, help="cluster size (default 4)")
    p.add_argument("--steps", type=int, default=None, help="application steps")
    p.add_argument("--size", type=int, default=None, help="problem size")
    p.add_argument("--l", type=float, default=0.1, help="OF policy L fraction")
    p.add_argument(
        "--crash",
        metavar="PID@FRAC",
        default=None,
        help="fail-stop PID at FRAC of the failure-free runtime (e.g. 2@0.5)",
    )
    p.add_argument(
        "--ring", type=int, default=256,
        help="flight-recorder ring size in events (default 256)",
    )
    p.add_argument(
        "--scan-every", type=int, default=None, metavar="N",
        help="run the structural recoverability scan every Nth message "
        "delivery (default: every delivery on small clusters, "
        "num_procs/16 on wide ones)",
    )
    p.add_argument(
        "--flight", default=None, metavar="PATH",
        help="flight-record JSON path, written on violation "
        "(default benchmarks/FLIGHT_<app>.json)",
    )
    p.add_argument(
        "--seed-violation",
        choices=["cgc", "llt", "vclock", "fifo", "recoverability"],
        default=None,
        help="deliberately sabotage the run so the named invariant class "
        "is violated (self-test: the exit code must be nonzero)",
    )
    return p


def run_monitor(argv: list) -> int:
    from repro.observe import (
        InvariantMonitor,
        render_flight_record,
        seed_violation,
        write_flight_record,
    )

    args = build_monitor_parser().parse_args(argv)
    # the monitored invariants are the FT layer's — plain mode has
    # nothing to check, so ft is always on here
    ns = argparse.Namespace(
        procs=args.procs, ft=True, coordinated=False, wan=None, l=args.l
    )

    crash_spec = None
    if args.crash:
        pid_s, frac_s = args.crash.split("@")
        golden = make_cluster(ns)
        t_free = golden.run(make_app(args.app, args.steps, args.size)).wall_time
        crash_spec = (int(pid_s), float(frac_s) * t_free)

    cluster = make_cluster(ns)
    monitor = InvariantMonitor(
        cluster, ring_size=args.ring, scan_every=args.scan_every
    )
    if args.seed_violation:
        # must come after the monitor attach: the fifo seed reorders
        # outside the monitor's observation point
        seed_violation(cluster, args.seed_violation)
    if crash_spec:
        cluster.schedule_crash(*crash_spec)

    t0 = time.time()
    result = None
    run_error = None
    try:
        result = cluster.run(make_app(args.app, args.steps, args.size))
    except Exception as exc:  # seeded sabotage can corrupt the run
        if not monitor.violations:
            raise
        run_error = exc
    host_s = time.time() - t0
    monitor.finish()

    print(f"app           {args.app} on {args.procs} simulated nodes "
          f"({host_s:.1f}s host time)")
    if result is not None:
        print(f"virtual time  {result.wall_time * 1e3:10.3f} ms")
        if result.crashes:
            print(f"failures      {result.crashes} crash(es), "
                  f"{result.recoveries} recover(ies)")
    else:
        print(f"run aborted   {type(run_error).__name__}: {run_error} "
              "(after first violation; expected under seeded sabotage)")
    print()
    print(monitor.render_summary())

    if not monitor.violations:
        return 0
    dump = monitor.violation_dump or monitor.flight_record("violations")
    out = args.flight or f"benchmarks/FLIGHT_{args.app}.json"
    write_flight_record(out, dump)
    print()
    print(render_flight_record(dump))
    print(f"\nflight record written to {out}")
    return 1


def build_report_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Aggregate every pipeline's artifacts (OBSERVE run "
        "reports, TRACE span DAGs, SWEEP campaign summaries, BENCH "
        "baselines, FLIGHT records) into one analytics dashboard. "
        "Read-only. Exits nonzero on any malformed artifact, failed "
        "sweep, present flight record, or bench throughput regression "
        "beyond the threshold.",
    )
    p.add_argument(
        "paths", nargs="*", default=["benchmarks"],
        help="artifact files and/or directories to scan "
        "(default: benchmarks/)",
    )
    p.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="fractional aggregate-throughput drop that fails a bench "
        "trend (default 0.10)",
    )
    p.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write the dashboard as a standalone HTML page",
    )
    return p


def run_report(argv: list) -> int:
    from repro.observe.analytics import (
        DEFAULT_THRESHOLD,
        build_dashboard,
        discover_artifacts,
        load_artifact,
        render_dashboard,
        render_html,
    )

    args = build_report_parser().parse_args(argv)
    paths = discover_artifacts(args.paths)
    if not paths:
        print(f"no artifacts found under {args.paths}", file=sys.stderr)
        return 1
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    dash = build_dashboard(
        [load_artifact(p) for p in paths], threshold=threshold
    )
    print(render_dashboard(dash))
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(render_html(dash))
        print(f"\nhtml dashboard written to {args.html}")
    return 0 if dash["ok"] else 1


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "crashsweep":
        return run_crashsweep(argv[1:])
    if argv and argv[0] == "observe":
        return run_observe(argv[1:])
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    if argv and argv[0] == "monitor":
        return run_monitor(argv[1:])
    if argv and argv[0] == "report":
        return run_report(argv[1:])
    args = build_parser().parse_args(argv)

    if args.app == "bench":
        from repro.metrics.bench import (
            check_report,
            check_scale_report,
            render_report,
            run_scale_suite,
            run_suite,
            write_report,
        )

        scale = args.suite == "scale"
        bench_json = args.bench_json or (
            "benchmarks/BENCH_scale.json" if scale
            else "benchmarks/BENCH_core.json"
        )
        runner = run_scale_suite if scale else run_suite
        report = runner(smoke=args.smoke, profile=args.profile)
        print(render_report(report))
        if args.check:
            checker = check_scale_report if scale else check_report
            ok, msg = checker(bench_json, report, budget=args.budget)
            print(("PASS " if ok else "FAIL ") + msg)
            return 0 if ok else 1
        if args.smoke or args.profile:
            # smoke/profiled numbers are not comparable to the full suite;
            # recording them would silently corrupt the committed baseline
            print("\n(smoke/profile run not recorded; run plain "
                  "`repro bench` to update " + bench_json + ")")
            return 0
        payload = write_report(bench_json, report)
        speedup = payload.get("speedup_events_per_sec")
        print(f"\nrecorded to {bench_json}"
              + (f" (x{speedup} vs baseline)" if speedup else ""))
        return 0

    if args.app == "tables":
        from repro.harness.figures import figure3_table, figure4_render
        from repro.harness.tables import (
            run_all_experiments,
            table1,
            table2,
            table3,
            table4,
        )

        ex = run_all_experiments(scale=args.scale)
        for fn in (table1, table2, table3, table4):
            print(fn(ex).render(), end="\n\n")
        print(figure3_table(ex).render(), end="\n\n")
        print(figure4_render(ex))
        return 0

    if args.crash and not args.ft:
        print("--crash requires --ft", file=sys.stderr)
        return 2

    # failure-free pass to learn the runtime if a crash is requested
    crash_spec = None
    if args.crash:
        pid_s, frac_s = args.crash.split("@")
        golden = make_cluster(args)
        t_free = golden.run(
            make_app(args.app, args.steps, args.size, args.rate)
        ).wall_time
        crash_spec = (int(pid_s), float(frac_s) * t_free)

    cluster = make_cluster(args)
    tracer = None
    if args.trace:
        from repro.sim.trace import Tracer

        kinds = set(args.trace.split(","))
        unknown = kinds - Tracer.KINDS
        if unknown:
            print(
                f"unknown trace kinds: {','.join(sorted(unknown))} "
                f"(choose from {','.join(sorted(Tracer.KINDS))})",
                file=sys.stderr,
            )
            return 2
        tracer = Tracer(cluster, kinds=kinds)
    if crash_spec:
        cluster.schedule_crash(*crash_spec)

    t0 = time.time()
    result = cluster.run(make_app(args.app, args.steps, args.size, args.rate))
    host_s = time.time() - t0

    print(f"app           {args.app} on {args.procs} simulated nodes")
    print(f"virtual time  {result.wall_time * 1e3:10.3f} ms")
    print(f"host time     {host_s * 1e3:10.0f} ms")
    print(f"messages      {result.traffic.total_msgs:10d}  "
          f"({result.traffic.total_bytes / 1e6:.2f} MB)")
    mean = result.mean_time_stats
    total = mean.total or 1.0
    breakdown = "  ".join(
        f"{b.value}={100 * mean.seconds[b] / total:.0f}%" for b in TimeBucket
    )
    print(f"time buckets  {breakdown}")
    if args.ft:
        ckpts = sum(s.checkpoints_taken for s in result.ft_stats if s)
        print(f"checkpoints   {ckpts:10d}")
        print(f"ft piggyback  {result.traffic.ft_bytes:10d} bytes "
              f"({result.traffic.ft_overhead_percent():.2f} %)")
    if result.crashes:
        print(f"failures      {result.crashes} crash(es), "
              f"{result.recoveries} recover(ies) — results verified")
    if tracer:
        print("\ntrace:")
        print(tracer.render(limit=args.trace_limit))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
