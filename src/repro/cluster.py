"""Cluster runtime: wires simulator, DSM protocol, FT layer and apps.

:class:`DsmCluster` owns the event engine, the network, one
:class:`ProcHost` per node (process + disk + crash-surviving checkpoint
store) and the failure/recovery orchestration. A run is fully
deterministic given (app, configs, failure schedule).

Typical use::

    cluster = DsmCluster(DsmConfig(num_procs=8), ft=True,
                         policy_factory=lambda pid, fp: LogOverflowPolicy(0.1, fp))
    app = WaterSpatialApp(WaterSpatialConfig(n_molecules=64, steps=3))
    result = cluster.run(app)
    print(result.wall_time, result.traffic.total_bytes)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.checkpoint import CheckpointManager
from repro.core.ftmanager import FtConfig, FtManager
from repro.core.policies import CheckpointPolicy, LogOverflowPolicy
from repro.dsm.config import DsmConfig
from repro.dsm.messages import Message, RecoveryDone, RecoveryQuery, RecoveryReply
from repro.dsm.pages import RegionSet, SharedRegion
from repro.dsm.protocol import DsmProcess
from repro.sim.engine import Engine, SimProcess
from repro.sim.network import Network, NetworkConfig, TrafficStats
from repro.sim.node import CpuModel, TimeStats
from repro.sim.storage import CheckpointStore, Disk, DiskConfig, ReplicaStore

__all__ = ["DsmCluster", "ProcHost", "RunResult", "PolicyFactory"]

PolicyFactory = Callable[[int, int], CheckpointPolicy]  # (pid, footprint) -> policy


class ProcHost:
    """Everything living on one node."""

    def __init__(self, cluster: "DsmCluster", pid: int) -> None:
        self.cluster = cluster
        self.pid = pid
        self.disk = Disk(cluster.disk_config)
        self.store = CheckpointStore(pid)  # stable storage: survives crashes
        #: volatile replica tier: peers' checkpoint/log mirrors held in
        #: this node's memory — wiped by a crash *of this node*
        self.replica_store = ReplicaStore(pid)
        self.ckpt_mgr: Optional[CheckpointManager] = None
        self.proto: Optional[DsmProcess] = None
        self.ft: Optional[FtManager] = None
        self.state: Dict[str, Any] = {}
        self.simproc: Optional[SimProcess] = None
        self.live = False
        self.recovering = False
        self.crashed_count = 0
        self.recovered_count = 0
        self.queued: List[Tuple[int, Message]] = []
        #: recovery responder installed by core.recovery when FT is on
        self.responder: Any = None
        #: active RecoveryManager while this host is recovering
        self.recovery_mgr: Any = None
        #: app-done flag (kept across crash/recovery incarnations)
        self.finished = False
        #: virtual time of the most recent fail-stop (-1: never crashed)
        self.last_crash_time = -1.0
        #: phase anatomy of every *completed* recovery (one record per
        #: incarnation that reached the live switch, DESIGN.md §12);
        #: host-level so crash-sweep readers can harvest it after the
        #: run — a recovery killed by a second crash records nothing
        self.recovery_phases: List[Dict[str, float]] = []
        #: monotonic recovery-query ids; host-level (not per incarnation)
        #: so replies to a killed recovery cannot collide with a restarted
        #: one's queries
        self._qid_counter = 0

    def next_qid(self) -> int:
        self._qid_counter += 1
        return self._qid_counter

    # ------------------------------------------------------------------
    def make_protocol(self) -> DsmProcess:
        cluster = self.cluster
        proto = DsmProcess(
            pid=self.pid,
            config=cluster.config,
            regions=cluster.regions,
            engine=cluster.engine,
            send_fn=cluster.send,
            cpu=CpuModel(),
        )
        if cluster.observer is not None:
            proto.obs = cluster.observer.node_probe(self.pid)
        return proto

    def deliver(self, src: int, msg: Message) -> None:
        if isinstance(msg, (RecoveryQuery, RecoveryReply, RecoveryDone)):
            self.cluster._handle_recovery_msg(self.pid, src, msg)
            return
        if not self.live:
            self.queued.append((src, msg))
            return
        assert self.proto is not None
        self.proto.handle_message(src, msg)

    def drain_queue(self) -> None:
        queued, self.queued = self.queued, []
        for src, msg in queued:
            self.deliver(src, msg)


@dataclass
class RunResult:
    """Outcome of one cluster run."""

    wall_time: float
    traffic: TrafficStats
    time_stats: List[TimeStats]
    proto_stats: List[Any]
    ft_stats: List[Any]
    disk_stats: List[Tuple[int, float]]  # (bytes written, write time) per node
    crashes: int
    recoveries: int
    footprint_bytes: int

    @property
    def mean_time_stats(self) -> TimeStats:
        out = TimeStats()
        for ts in self.time_stats:
            out = out.merged(ts)
        for b in out.seconds:
            out.seconds[b] /= max(1, len(self.time_stats))
        return out


class DsmCluster:
    """A simulated cluster running one DSM application."""

    def __init__(
        self,
        config: Optional[DsmConfig] = None,
        net_config: Optional[NetworkConfig] = None,
        disk_config: Optional[DiskConfig] = None,
        ft: bool = False,
        ft_config: Optional[FtConfig] = None,
        policy_factory: Optional[PolicyFactory] = None,
        ft_factory: Optional[Callable[..., FtManager]] = None,
    ) -> None:
        self.config = config or DsmConfig()
        self.net_config = net_config or NetworkConfig()
        self.disk_config = disk_config or DiskConfig()
        self.ft_enabled = ft
        self.ft_config = ft_config or FtConfig()
        self.policy_factory = policy_factory or (
            lambda pid, fp: LogOverflowPolicy(0.1, fp)
        )
        #: FtManager class/constructor (swap in baseline FT layers)
        self.ft_factory = ft_factory or FtManager
        self.engine = Engine()
        self.network = Network(self.engine, self.config.num_procs, self.net_config)
        self.regions = RegionSet(self.config)
        self.hosts: List[ProcHost] = [
            ProcHost(self, pid) for pid in range(self.config.num_procs)
        ]
        for host in self.hosts:
            self.network.register(host.pid, host.deliver)
        self.app: Any = None
        self._started = False
        self.crashes = 0
        self.recoveries = 0
        #: hosts whose app main has not returned yet (stop predicate)
        self._unfinished = 0
        #: pending failure injections: (time, pid)
        self._crash_schedule: List[Tuple[float, int]] = []
        #: "independent" (the paper's log-based single-process recovery)
        #: or "rollback" (coordinated baseline: everyone restarts from
        #: the last global cut)
        self.recovery_style = "independent"
        #: optional probe consumer (tracer / fault-injection campaign):
        #: called as probe(pid, kind, detail) at instrumented points
        self.probe: Optional[Callable[[int, str, str], None]] = None
        #: attached observability layer (repro.observe.ClusterObserver);
        #: set by the observer itself, consulted whenever a protocol or
        #: FT instance is (re)created so probes survive crash/recovery
        self.observer: Any = None
        #: recovery queries held because the responder was down (§4.3
        #: overlapping-failure message-hold path)
        self.held_recovery_msgs = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def allocate(self, name: str, num_elements: int, dtype: str = "float64") -> SharedRegion:
        return self.regions.allocate(name, num_elements, dtype)

    def send(self, src: int, dst: int, msg: Message) -> None:
        size = msg.size_bytes(self.config)
        ft_bytes = msg.ft_bytes(self.config)
        self.network.send(src, dst, msg, size, msg.category, ft_bytes)

    def schedule_crash(self, pid: int, at_time: float) -> None:
        """Fail-stop process ``pid`` at virtual time ``at_time``."""
        if not self.ft_enabled:
            raise RuntimeError("cannot recover from crashes without FT enabled")
        self._crash_schedule.append((at_time, pid))

    def schedule_crash_at_step(self, pid: int, step: int) -> None:
        """Fail-stop ``pid`` right after engine event ``step`` executes.

        Event-indexed injection is the crash-sweep primitive: unlike a
        virtual-time point, a step index names one exact position in the
        deterministic event order, so a sweep can enumerate *every*
        reachable crash point of a reference run.
        """
        if not self.ft_enabled:
            raise RuntimeError("cannot recover from crashes without FT enabled")
        self.engine.break_at_step(step, lambda: self.crash(pid))

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self, app: Any, max_steps: int = 500_000_000) -> RunResult:
        self.setup(app)
        self.start()
        for at_time, pid in self._crash_schedule:
            self.engine.schedule(
                max(0.0, at_time - self.engine.now), lambda p=pid: self.crash(p)
            )
        self._run_loop(max_steps)
        if self.app is not None:
            self.app.check_result(self)
        return self.result()

    def setup(self, app: Any) -> None:
        if self._started:
            raise RuntimeError("cluster already ran")
        self.app = app
        app.configure(self)
        self.regions.seal()
        for host in self.hosts:
            host.proto = host.make_protocol()
            host.proto.rebind_homes()
        app.init_shared(self)
        for host in self.hosts:
            host.state = app.init_state(host.pid)
            if self.ft_enabled:
                self._install_ft(host)

    def _install_ft(self, host: ProcHost) -> None:
        from repro.core.recovery import RecoveryResponder

        footprint = self.regions.total_bytes
        if host.ckpt_mgr is None:  # reused across recoveries (stable storage)
            host.ckpt_mgr = CheckpointManager(
                host.pid, self.config.num_procs, host.store
            )
        policy = self.policy_factory(host.pid, footprint)
        host.ft = self.ft_factory(
            host.proto, policy, host.ckpt_mgr, host.disk, self.ft_config
        )
        host.ft.proc_host = host
        host.ft.app_state_fn = lambda h=host: h.state
        if self.observer is not None:
            host.ft.obs = self.observer
        if self.replication:
            from repro.core.replica import Replicator

            host.ft.repl = Replicator(host.ft, host)
        host.responder = RecoveryResponder(host)

    @property
    def replication(self) -> bool:
        """True when the buddy-replication tier is active."""
        return (
            self.ft_enabled
            and self.ft_config.replicate
            and self.config.num_procs > 1
        )

    def _recompute_buddies(self) -> None:
        """Re-evaluate every live node's replication buddy (ring order).

        Called at start, at failure-detection time (survivors re-buddy
        away from the dead node), and when a recovered node goes live
        (it re-enters the ring and re-syncs its own replica).
        """
        for host in self.hosts:
            if host.ft is not None and host.ft.repl is not None:
                host.ft.repl.recompute()

    def replica_holder(
        self, lost: int, exclude: Tuple[int, ...] = ()
    ) -> Optional[int]:
        """Live node holding a replica of ``lost``'s FT state, if any.

        Ring order starting at ``lost``'s designated buddy, so the
        freshest copy is tried first; ``exclude`` lists holders already
        tried (stale gen / torn record).
        """
        n = self.config.num_procs
        for k in range(1, n):
            pid = (lost + k) % n
            host = self.hosts[pid]
            if pid in exclude or not host.live:
                continue
            if host.replica_store.has(lost):
                return pid
        return None

    def start(self) -> None:
        self._started = True
        for host in self.hosts:
            host.live = True
            host.simproc = self.engine.spawn(
                self._app_main(host), name=f"app{host.pid}"
            )
        if self.replication:
            self._recompute_buddies()

    def _app_main(self, host: ProcHost) -> Iterator[Any]:
        yield from self.app.run(host.proto, host.state)
        host.finished = True
        self._unfinished -= 1

    def _run_loop(self, max_steps: int) -> None:
        # the stop predicate runs after every event; a counter maintained
        # by _app_main keeps it O(1) instead of a scan over all hosts
        self._unfinished = sum(1 for h in self.hosts if not h.finished)
        self.engine.run(
            max_steps=max_steps, stop=lambda: self._unfinished == 0
        )
        pending = [h.pid for h in self.hosts if not h.finished]
        if pending:
            raise RuntimeError(
                f"deadlock: event queue drained, processes not finished: "
                f"{pending}\n{self.host_diagnostics()}"
            )

    def host_diagnostics(self) -> str:
        """Per-host liveness/wait state, for debuggable deadlock reports."""
        lines = []
        for h in self.hosts:
            parts = [
                f"p{h.pid}:",
                f"live={h.live}",
                f"recovering={h.recovering}",
                f"finished={h.finished}",
                f"crashes={h.crashed_count}",
                f"recoveries={h.recovered_count}",
                f"queued={len(h.queued)}",
            ]
            p = h.proto
            if p is not None:
                if p._lock_waiting:
                    parts.append(f"lock_waits={sorted(p._lock_waiting)}")
                if p._fetch_waiting:
                    parts.append(
                        f"fetch_waits={sorted(tuple(k) for k in p._fetch_waiting)}"
                    )
                if p._home_waiting:
                    parts.append(
                        f"home_waits={sorted(tuple(k) for k in p._home_waiting)}"
                    )
                if p._pending_arrive is not None:
                    parts.append(
                        f"barrier_wait=ep{p._pending_arrive.episode}"
                    )
            rm = h.recovery_mgr
            if rm is not None and rm._pending:
                parts.append(f"recovery_waits={sorted(rm._pending)}")
            lines.append("  " + " ".join(parts))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # failure / recovery orchestration
    # ------------------------------------------------------------------
    def crash(self, pid: int) -> None:
        """Fail-stop ``pid`` now; recovery starts after the detection delay.

        Safe at *any* execution point, including while ``pid`` is itself
        recovering: the recovery coroutine is killed like any other
        incarnation, its :class:`RecoveryManager` is detached (so replies
        addressed to the dead incarnation are dropped, not misdelivered),
        and a fresh recovery starts after the detection delay. Stable
        state (checkpoint store, peers' held ``queued`` entries) is
        untouched, so the restarted recovery sees exactly what the first
        one did.
        """
        host = self.hosts[pid]
        if host.finished or (not host.live and not host.recovering):
            return  # already done, or already down awaiting recovery
        # announce the fail-stop on the probe hook *before* the kill, so
        # observers (flat tracer, span tracer) see the failure while the
        # victim's state is still intact — the span tracer abandons the
        # victim's open spans on this event
        if self.probe is not None:
            self.probe(pid, "failure", "fail-stop")
        self.crashes += 1
        host.crashed_count += 1
        host.last_crash_time = self.engine.now
        host.live = False
        host.recovering = False
        # detach the (possibly mid-recovery) manager: stale RecoveryReply
        # messages in flight must not resolve a dead incarnation's futures
        host.recovery_mgr = None
        assert host.simproc is not None
        host.simproc.kill()
        # all volatile state dies with the process
        host.proto = None
        host.ft = None
        host.responder = None
        host.state = {}
        if self.replication:
            # the replicas this node held for peers die with its memory;
            # survivors re-buddy once the failure is detected
            host.replica_store.clear()
            self.engine.schedule(
                self.config.failure_detection_delay, self._recompute_buddies
            )
        if self.recovery_style == "rollback":
            self.engine.schedule(
                self.config.failure_detection_delay, self._global_rollback
            )
        else:
            self.engine.schedule(
                self.config.failure_detection_delay,
                lambda: self._start_recovery(pid),
            )

    def _global_rollback(self) -> None:
        from repro.baselines.coordinated import global_rollback

        global_rollback(self)

    def _start_recovery(self, pid: int) -> None:
        from repro.core.recovery import RecoveryManager

        host = self.hosts[pid]
        if host.live or host.finished or host.recovering:
            return  # already back (or a restarted recovery is underway)
        host.recovering = True
        if self.probe is not None:
            self.probe(pid, "recovery", f"begin incarnation={host.crashed_count}")
        rm = RecoveryManager(host)
        host.simproc = self.engine.spawn(rm.recover_and_resume(), name=f"rec{pid}")

    def _handle_recovery_msg(self, dst: int, src: int, msg: Message) -> None:
        host = self.hosts[dst]
        if isinstance(msg, RecoveryDone):
            # a peer finished recovering: re-issue possibly swallowed
            # requests and repair lock forwards
            if host.live and host.proto is not None:
                host.proto.resend_pending(msg.proc)
                host.proto.repair_forwards_for(msg.proc)
            return
        if isinstance(msg, RecoveryReply):
            if host.recovery_mgr is None:
                return  # stale reply (recovery finished); drop
            host.recovery_mgr.on_reply(src, msg)
            return
        if host.responder is None:
            if not self.ft_enabled:
                raise RuntimeError(
                    f"recovery query for node {dst} but FT is not enabled"
                )
            # query addressed to a host that is itself down: hold it
            # until that host has recovered (single-fault assumption
            # makes overlap rare; the requester simply blocks, §4.3)
            self.held_recovery_msgs += 1
            host.queued.append((src, msg))
            return
        host.responder.handle(src, msg)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result(self) -> RunResult:
        return RunResult(
            wall_time=self.engine.now,
            traffic=self.network.traffic,
            time_stats=[
                h.proto.cpu.stats if h.proto else TimeStats() for h in self.hosts
            ],
            proto_stats=[h.proto.stats if h.proto else None for h in self.hosts],
            ft_stats=[h.ft.stats if h.ft else None for h in self.hosts],
            disk_stats=[(h.disk.bytes_written, h.disk.write_time) for h in self.hosts],
            crashes=self.crashes,
            recoveries=self.recoveries,
            footprint_bytes=self.regions.total_bytes,
        )

    def write_initial(self, region: SharedRegion, values: np.ndarray) -> None:
        """Install identical initial contents in every process's copy.

        Stand-in for the sequential initialization phase of SPLASH-2
        programs; must be called from ``app.init_shared`` (before any
        sharing, so all copies and the virtual checkpoint 0 agree).
        """
        values = np.asarray(values, dtype=region.dtype).ravel()
        if len(values) > region.num_elements:
            raise ValueError("initial data larger than region")
        for host in self.hosts:
            assert host.proto is not None
            view = host.proto.typed_view(region)
            view[: len(values)] = values

    # convenience for tests: final shared memory as seen by homes
    def shared_snapshot(self, region: SharedRegion) -> np.ndarray:
        """Authoritative region contents assembled from the home copies."""
        out = np.zeros(region.nbytes, dtype=np.uint8)
        for i in range(region.num_pages):
            home = region.home_of(i)
            proto = self.hosts[home].proto
            assert proto is not None
            lo, hi = region.page_slice(i)
            out[lo:hi] = proto.backing[region.region_id][lo:hi]
        return out.view(region.dtype)[: region.num_elements]
