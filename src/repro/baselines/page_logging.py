"""Whole-page logging baseline (Richard & Singhal style, paper ref [25]).

Instead of logging only the diff, every flushed page is logged in full:
each log entry is *costed* as one whole-page record (log volume, append
time, log-flush disk writes, recovery transfer sizes), which is exactly
what the ablation benchmark measures. The paper's criticism: "Whole
pages are logged, and logs are flushed to stable storage on every
outgoing page transfer which, combined with their large size, makes the
scheme very expensive."

The entry *applies* as the precise byte runs of the real diff. Replaying
a literal full-page overwrite is not equivalent: a writer's local copy
can be stale in page regions it never touched (invalidations only arrive
at its own sync points), so when two processes under different locks
write disjoint parts of one page concurrently, a full-page replay of one
clobbers the other's bytes with that stale view — recovery at an
unlucky crash point silently loses writes the live run kept. Applying
the true runs while charging whole-page sizes keeps the baseline's cost
model intact and its recovery exact.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro import DsmCluster, DsmConfig
from repro.core.ftmanager import FtConfig, FtManager
from repro.core.policies import CheckpointPolicy, LogOverflowPolicy
from repro.dsm.diff import RUN_HEADER_BYTES, Diff
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock
from repro.sim.engine import Delay
from repro.sim.node import TimeBucket

__all__ = ["PageLoggingFt", "page_logging_cluster"]


def _page_costed(diff: Diff, page_bytes: int) -> Diff:
    """The same runs as ``diff``, costed as one whole-page log record."""
    out = Diff.from_arrays(diff.offsets, diff.lengths, diff.payload)
    out.payload_bytes = page_bytes
    out.size_bytes = page_bytes + RUN_HEADER_BYTES
    return out


class PageLoggingFt(FtManager):
    """FT manager that logs whole pages instead of diffs."""

    def on_interval_flush(
        self, page: PageId, diff: Diff, vt: VClock, is_home: bool
    ) -> Iterator[Delay]:
        full = _page_costed(diff, len(self.proc.page_bytes(page)))
        entry = self.logs.diff.append(page, full, vt)
        cost = entry.size_bytes * self.proc.cpu.costs.log_append_per_byte
        self.stats.time_logging += cost
        if self.repl is not None:
            self.repl.op(("diff", page, full, vt))
        yield from self.proc.cpu.charge(TimeBucket.LOG_CKPT, cost)


def page_logging_cluster(
    config: Optional[DsmConfig] = None,
    l_fraction: float = 0.1,
    **cluster_kw,
) -> DsmCluster:
    """A cluster whose FT layer uses whole-page logging."""
    return DsmCluster(
        config or DsmConfig(),
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(l_fraction, fp),
        ft_factory=PageLoggingFt,
        **cluster_kw,
    )
