"""Whole-page logging baseline (Richard & Singhal style, paper ref [25]).

Instead of logging only the diff, every flushed page is logged in full.
Because a full-page "diff" (one run covering the page) applies to the
same effect as the real diff, recovery continues to work unchanged — the
only difference is the log volume and logging time, which is exactly
what the ablation benchmark measures. The paper's criticism: "Whole
pages are logged, and logs are flushed to stable storage on every
outgoing page transfer which, combined with their large size, makes the
scheme very expensive."
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from repro import DsmCluster, DsmConfig
from repro.core.ftmanager import FtConfig, FtManager
from repro.core.policies import CheckpointPolicy, LogOverflowPolicy
from repro.dsm.diff import Diff
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock
from repro.sim.engine import Delay
from repro.sim.node import TimeBucket

__all__ = ["PageLoggingFt", "page_logging_cluster"]


class PageLoggingFt(FtManager):
    """FT manager that logs whole pages instead of diffs."""

    def on_interval_flush(
        self, page: PageId, diff: Diff, vt: VClock, is_home: bool
    ) -> Iterator[Delay]:
        contents = self.proc.page_bytes(page).tobytes()
        full = Diff(((0, contents),))
        entry = self.logs.diff.append(page, full, vt)
        cost = entry.size_bytes * self.proc.cpu.costs.log_append_per_byte
        self.stats.time_logging += cost
        yield from self.proc.cpu.charge(TimeBucket.LOG_CKPT, cost)


def page_logging_cluster(
    config: Optional[DsmConfig] = None,
    l_fraction: float = 0.1,
    **cluster_kw,
) -> DsmCluster:
    """A cluster whose FT layer uses whole-page logging."""
    return DsmCluster(
        config or DsmConfig(),
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(l_fraction, fp),
        ft_factory=PageLoggingFt,
        **cluster_kw,
    )
