"""Coordinated checkpointing baseline (paper §1, §2; Costa et al. style).

The scheme the paper argues against for very large clusters and
meta-clusters: all processes take a *globally consistent* checkpoint,
after which every log and every older checkpoint is discarded — no LLT
or CGC needed, but every checkpoint requires a global coordination round
whose latency scales with the slowest process and the widest link (the
WAN benchmark quantifies exactly that), and recovery from any single
failure rolls **all** processes back to the last cut.

Design (barrier-anchored consistent cut + channel-state markers):

1. The coordinator's policy fires; it broadcasts ``CoordPrepare`` naming
   a *cut episode* (a barrier index ahead of everyone). Anchoring the cut
   just after a barrier guarantees no lock is held or awaited across the
   cut, so no lock token can be lost in it.
2. Each process snapshots at its first checkpoint-safe point past the
   cut episode (application state, homed pages, lock/barrier manager
   bookkeeping), then sends a ``CoordMarker`` on every channel and keeps
   running.
3. Messages that arrive from a peer whose marker is still outstanding
   were sent before that peer's cut but received after ours — classic
   in-flight channel state. They are processed normally (live execution
   is past the cut) *and* recorded in the snapshot for re-injection
   after a rollback. Races in the small window where a fast process's
   post-cut sends reach a not-yet-cut peer are absorbed by the
   protocol's idempotence (version-checked diffs, seq-checked lock
   messages, episode-checked barrier messages).
4. Acks flow to the coordinator; ``CoordCommit`` discards all volatile
   logs and all pre-round stable state everywhere.

Recovery is **global rollback** (:func:`global_rollback`): every process
is restarted from the last committed cut, recorded channel-state
messages are re-injected, in-flight messages of the aborted epoch are
flushed, and execution resumes live — no logs, no replay, but all
processes lose all work since the cut.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.core.checkpoint import Checkpoint
from repro.core.ftmanager import FtConfig, FtManager
from repro.core.policies import LogOverflowPolicy
from repro.dsm.config import DsmConfig
from repro.dsm.messages import Message
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock
from repro.sim.engine import Delay
from repro.sim.node import TimeBucket

__all__ = [
    "CoordPrepare",
    "CoordMarker",
    "CoordAck",
    "CoordCommit",
    "CoordinatedFt",
    "CoordStats",
    "coordinated_cluster",
    "global_rollback",
]


# ---------------------------------------------------------------------------
# protocol messages
# ---------------------------------------------------------------------------


@dataclass
class CoordPrepare(Message):
    round_id: int = 0
    cut_episode: int = 0
    category: str = "coord"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 12


@dataclass
class CoordMarker(Message):
    round_id: int = 0
    category: str = "coord"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8


@dataclass
class CoordAck(Message):
    round_id: int = 0
    proc: int = 0
    category: str = "coord"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8


@dataclass
class CoordCommit(Message):
    round_id: int = 0
    category: str = "coord"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8


@dataclass
class CoordStats:
    rounds_started: int = 0
    rounds_committed: int = 0
    #: per committed round: virtual seconds from prepare to commit
    round_latencies: List[float] = field(default_factory=list)
    coord_msgs: int = 0


# ---------------------------------------------------------------------------
# the FT manager
# ---------------------------------------------------------------------------


class CoordinatedFt(FtManager):
    """Globally coordinated checkpointing via barrier-anchored rounds.

    Reuses the FtManager logging plumbing (log volumes stay comparable)
    but replaces the independent-checkpoint discipline: a committed round
    discards everything, so LLT/CGC never run.
    """

    COORDINATOR = 0

    def __init__(self, proc, policy, ckpt_mgr, disk, config=None) -> None:
        super().__init__(proc, policy, ckpt_mgr, disk, config)
        self.coord = CoordStats()
        self.round_id = 0  # last round this process snapshotted
        self.committed_round = 0
        #: (round, cut_episode) awaiting our snapshot
        self.prepare_pending: Optional[Tuple[int, int]] = None
        #: peers whose round-r marker has not arrived yet (post-snapshot)
        self.awaiting_markers: Set[int] = set()
        #: markers that arrived before our own snapshot
        self.early_markers: Set[int] = set()
        #: recorded channel state: (src, msg) from not-yet-cut peers
        self.channel_state: List[Tuple[int, Message]] = []
        self._round_snapshot: Optional[Tuple[Checkpoint, bytes]] = None
        self._round_t0 = 0.0
        self.acks: Set[int] = set()
        #: set by the cluster: the ProcHost we live on
        self.proc_host: Any = None

    # -- round initiation ---------------------------------------------------
    def at_sync_point(self, at_barrier: bool = False) -> Iterator[Delay]:
        if (
            self.pid == self.COORDINATOR
            and self.prepare_pending is None
            and self.round_id == self.committed_round
            and self.policy.should_checkpoint(self, at_barrier)
        ):
            self._initiate()
        return
        yield  # pragma: no cover

    def _initiate(self) -> None:
        next_round = self.round_id + 1
        cut_episode = self.proc.barrier_episode + 1
        self.coord.rounds_started += 1
        self._round_t0 = self.proc.engine.now
        self.prepare_pending = (next_round, cut_episode)
        for j in range(self.n):
            if j != self.pid:
                self._send(j, CoordPrepare(round_id=next_round, cut_episode=cut_episode))

    def _send(self, dst: int, msg: Message) -> None:
        self.coord.coord_msgs += 1
        self.proc._send(dst, msg)

    # -- message handling ------------------------------------------------------
    def handle_ft_message(self, src: int, msg: Message) -> bool:
        if isinstance(msg, CoordPrepare):
            if msg.round_id > self.round_id:
                self.prepare_pending = (msg.round_id, msg.cut_episode)
            return True
        if isinstance(msg, CoordMarker):
            if msg.round_id > self.round_id:
                self.early_markers.add(src)
            else:
                self.awaiting_markers.discard(src)
                if not self.awaiting_markers and self._round_snapshot is not None:
                    self._round_cut_complete()
            return True
        if isinstance(msg, CoordAck):
            self.acks.add(msg.proc)
            if len(self.acks) == self.n:
                self._commit()
            return True
        if isinstance(msg, CoordCommit):
            self._apply_commit(msg.round_id)
            return True
        return super().handle_ft_message(src, msg)

    def record_if_channel_state(self, src: int, msg: Message) -> None:
        if src in self.awaiting_markers:
            self.channel_state.append((src, msg))

    # -- the snapshot -----------------------------------------------------------
    def at_safe_point(self) -> Iterator[Any]:
        if self.prepare_pending is None:
            return
        round_id, cut_episode = self.prepare_pending
        if self.proc.barrier_episode < cut_episode:
            return  # not past the anchor barrier yet
        self.prepare_pending = None
        yield from self.take_coordinated_checkpoint(round_id)

    def take_coordinated_checkpoint(self, round_id: int) -> Iterator[Any]:
        proc = self.proc
        yield from proc.cpu.drain_debt()
        yield from proc._end_interval()
        proc.vt = proc.vt.bump(self.pid)

        # full local snapshot: application state, homed pages, and the
        # protocol bookkeeping a consistent cut needs (heavier than the
        # independent scheme's minimal checkpoint — a point the paper
        # makes in favour of its approach)
        state_blob = pickle.dumps(self.app_state_fn())
        proto_blob = pickle.dumps(self._protocol_snapshot())
        homed: Dict[PageId, Tuple[bytes, VClock]] = {}
        for page in proc.home.pages():
            hp = proc.home[page]
            homed[page] = (proc.page_snapshot(page, hp), hp.version)
        page_bytes = sum(len(d) for d, _ in homed.values())
        total = page_bytes + len(state_blob) + len(proto_blob)
        write_cost = self.disk.write_cost(total)
        self.disk.bytes_written += total
        self.disk.write_time += write_cost
        t0 = proc.engine.now
        yield from proc.cpu.charge(TimeBucket.LOG_CKPT, write_cost)
        self.stats.time_disk += proc.engine.now - t0

        ckpt = Checkpoint(
            pid=self.pid,
            seqno=self.ckpt_mgr.next_seqno,
            tckp=proc.vt,
            app_state_blob=state_blob,
            own_notices=[],
            diff_log={},
            lock_tokens=proc.locks.token_snapshot(),
            acq_seq=dict(proc._acq_seq),
            barrier_episode=proc.barrier_episode,
            last_barrier_global=proc.last_barrier_global,
        )
        self.ckpt_mgr.commit(ckpt, homed)
        self.stats.checkpoints_taken += 1
        self.stats.ckpt_page_bytes += page_bytes
        self._round_snapshot = (ckpt, proto_blob)
        self.round_id = round_id

        # markers mark the cut on every outgoing channel
        self.awaiting_markers = {
            j for j in range(self.n) if j != self.pid
        } - self.early_markers
        self.early_markers = set()
        self.channel_state = []
        for j in range(self.n):
            if j != self.pid:
                self._send(j, CoordMarker(round_id=round_id))
        if not self.awaiting_markers:
            self._round_cut_complete()
        # the app resumes immediately; channel state accumulates until
        # the remaining peers' markers arrive

    def _protocol_snapshot(self) -> Dict[str, Any]:
        proc = self.proc
        mgr_chains = {
            lock_id: (
                [(e.acquirer, e.seq) for e in proc.locks.manager(lock_id).chain],
                proc.locks.manager(lock_id).owner_pos,
                dict(proc.locks.manager(lock_id).last_seq),
            )
            for lock_id in proc.locks.managed_locks()
        }
        successors = {
            lock_id: st.successor
            for lock_id, st in proc.locks._tokens.items()
            if st.successor is not None
        }
        bar = None
        if proc.barrier_mgr is not None:
            m = proc.barrier_mgr
            bar = (
                m.next_episode,
                m.last_global,
                dict(m.current.arrived) if m.current else None,
                list(m.current.notices) if m.current else [],
                m.current.episode if m.current else None,
            )
        return {
            "mgr_chains": mgr_chains,
            "successors": successors,
            "barrier_mgr": bar,
            "completed_seq": dict(proc._completed_seq),
            "notices": proc.notices.all_notices(),
        }

    def _round_cut_complete(self) -> None:
        """All markers arrived: seal channel state into the stable snapshot."""
        assert self._round_snapshot is not None
        ckpt, proto_blob = self._round_snapshot
        self._round_snapshot = None
        self.proc_host.store.put(
            ("coord", self.round_id),
            {
                "ckpt": ckpt,
                "proto": proto_blob,
                "channel": list(self.channel_state),
            },
            size=len(proto_blob) + 256,
        )
        self.channel_state = []
        if self.pid == self.COORDINATOR:
            self.acks.add(self.pid)
            if len(self.acks) == self.n:
                self._commit()
        else:
            self._send(
                self.COORDINATOR, CoordAck(round_id=self.round_id, proc=self.pid)
            )

    # -- commit ------------------------------------------------------------------
    def _commit(self) -> None:
        self.acks = set()
        for j in range(self.n):
            if j != self.pid:
                self._send(j, CoordCommit(round_id=self.round_id))
        self._apply_commit(self.round_id)
        self.coord.rounds_committed += 1
        self.coord.round_latencies.append(self.proc.engine.now - self._round_t0)

    def _apply_commit(self, round_id: int) -> None:
        """A globally consistent cut exists: discard everything older."""
        if round_id <= self.committed_round:
            return
        self.committed_round = round_id
        # drop ALL volatile logs (the coordinated scheme's GC advantage)
        self.logs.diff.clear()
        for i in range(self.n):
            self.logs.rel.entries[i] = []
            self.logs.acq.entries[i] = []
        self.logs.bar = []
        self.logs.selfgrants.clear()
        # drop older stable rounds and page-copy history
        store = self.proc_host.store
        for key in store.keys():
            if isinstance(key, tuple) and key[0] == "coord" and key[1] < round_id:
                store.delete(key)
        mgr = self.ckpt_mgr
        for page, copies in mgr.page_copies.items():
            if len(copies) > 1:
                for c in copies[:-1]:
                    mgr.pages_retained_bytes -= len(c.data)
                    mgr.pages_discarded_bytes += len(c.data)
                del copies[:-1]
        mgr._update_window()

    # -- the independent-scheme machinery is disabled ---------------------------
    def run_llt(self):  # pragma: no cover - coordinated GC supersedes it
        return {}

    def run_cgc(self) -> int:  # pragma: no cover
        return 0


# ---------------------------------------------------------------------------
# global rollback recovery
# ---------------------------------------------------------------------------


def global_rollback(cluster: Any) -> None:
    """Roll every process back to the last committed coordinated cut.

    Called by the cluster's failure path when the FT layer is
    :class:`CoordinatedFt`. All volatile state is discarded, in-flight
    messages of the aborted epoch are flushed, each process restores its
    round snapshot (or the initial state if no round committed), channel
    state is re-injected, and the applications resume live.
    """
    committed = max(
        (h.ft.committed_round for h in cluster.hosts if h.ft is not None),
        default=0,
    )
    cluster.network.flush_epoch()
    # kill every live incarnation
    for host in cluster.hosts:
        if host.simproc is not None and host.simproc.alive and not host.finished:
            host.simproc.kill()
        host.live = False
        host.queued.clear()

    # rebuild protocols
    for host in cluster.hosts:
        host.proto = host.make_protocol()
        host.proto.rebind_homes()
    if committed == 0:
        # no committed cut yet: restart from the very beginning
        cluster.app.init_shared(cluster)
        for host in cluster.hosts:
            host.state = cluster.app.init_state(host.pid)
    else:
        for host in cluster.hosts:
            _restore_round(host, committed)

    # fresh FT managers continuing at the committed round
    for host in cluster.hosts:
        cluster._install_ft(host)
        host.ft.round_id = committed
        host.ft.committed_round = committed

    # re-inject recorded channel state (pre-cut messages lost in flight).
    # Lock-queue plumbing (requests, forwards, grant-infos) is NOT
    # re-injected: waiters re-send their requests and the manager chains
    # are rebuilt fresh below. Grants ARE re-injected — an in-flight
    # grant is the token itself.
    from repro.dsm.messages import GrantInfo, LockAcquireReq, LockForward

    if committed > 0:
        for host in cluster.hosts:
            snap = host.store.get(("coord", committed))
            for src, msg in snap["channel"]:
                if isinstance(msg, (GrantInfo, LockAcquireReq, LockForward)):
                    continue
                host.proto.handle_message(src, msg)
        _rebuild_lock_chains(cluster)

    # resume the applications (a host that finished after the cut must
    # re-execute from the cut like everyone else)
    cluster.recoveries += 1
    for host in cluster.hosts:
        host.finished = False
        host.live = True
        host.recovered_count += 1
        host.simproc = cluster.engine.spawn(
            cluster._app_main(host), name=f"rb{host.pid}"
        )


def _rebuild_lock_chains(cluster: Any) -> None:
    """Rebuild every lock manager's queue from the actual token positions.

    The per-process cuts happen at slightly different moments, so the
    restored chains, successor pointers and token positions can disagree
    (lock plumbing crossing the cuts). The rollback has the global view:
    it drops all restored queue state — every waiter re-sends its request
    anyway — and starts each manager's chain at the process that actually
    holds the token (after channel-state grants were re-injected).
    ``last_seq`` is primed with each process's restored completed-acquire
    counters so the re-sent requests pass the duplicate filter.
    """
    from repro.dsm.locks import ChainEntry

    n = cluster.config.num_procs
    # collect every lock id any process knows about, and the holders
    lock_ids: Set[int] = set()
    holder: Dict[int, int] = {}
    for host in cluster.hosts:
        for lock_id, st in host.proto.locks._tokens.items():
            lock_ids.add(lock_id)
            st.successor = None
            if st.has_token:
                holder[lock_id] = host.pid
        lock_ids.update(host.proto.locks.managed_locks())
        lock_ids.update(host.proto._completed_seq.keys())
    for lock_id in lock_ids:
        mgr_host = cluster.hosts[lock_id % n]
        owner = holder.get(lock_id, lock_id % n)
        if owner == lock_id % n:
            # ensure the manager's default token exists if nobody holds it
            st = mgr_host.proto.locks.token(lock_id)
            if lock_id not in holder:
                st.has_token = True
                if st.rel_vt is None:
                    st.rel_vt = VClock.zero(n)
        mgr = mgr_host.proto.locks.manager(lock_id)
        owner_seq = cluster.hosts[owner].proto._completed_seq.get(lock_id, 0)
        mgr.chain = [ChainEntry(owner, owner_seq)]
        mgr.owner_pos = 0
        mgr.last_seq = {
            p: cluster.hosts[p].proto._completed_seq.get(lock_id, 0)
            for p in range(n)
        }


def _restore_round(host: Any, round_id: int) -> None:
    from repro.dsm.barrier import BarrierEpisode

    snap = host.store.get(("coord", round_id))
    ckpt: Checkpoint = snap["ckpt"]
    proto = host.proto
    proto.vt = ckpt.tckp
    host.state = ckpt.restore_app_state()
    # homed pages
    for page, version in ckpt.homed_versions.items():
        for copy in host.ckpt_mgr.page_copies[page]:
            if copy.ckpt_seqno == ckpt.seqno:
                proto.page_bytes(page)[:] = np.frombuffer(copy.data, dtype=np.uint8)
                break
        hp = proto.home[page]
        hp.version = version
        hp.drop_snapshot()
        proto.have_v[page] = version
    # lock tokens / sequence numbers / barrier position
    for lock_id, (has_token, held) in ckpt.lock_tokens.items():
        st = proto.locks.token(lock_id)
        st.has_token = has_token
        st.held = held
        if has_token and not held:
            st.rel_vt = ckpt.tckp
    proto._acq_seq = dict(ckpt.acq_seq)
    proto.barrier_episode = ckpt.barrier_episode
    proto.last_barrier_global = ckpt.last_barrier_global
    # protocol bookkeeping from the cut (lock queue state is NOT restored:
    # the rollback rebuilds manager chains from token positions and the
    # waiters re-send their requests)
    extra = pickle.loads(snap["proto"])
    proto._completed_seq = dict(extra["completed_seq"])
    for wn in extra["notices"]:
        proto.notices.add(wn)
    if extra["barrier_mgr"] is not None and proto.barrier_mgr is not None:
        next_ep, last_global, arrived, notices, cur_ep = extra["barrier_mgr"]
        m = proto.barrier_mgr
        m.next_episode = next_ep
        m.last_global = last_global
        if arrived is not None:
            ep = BarrierEpisode(cur_ep)
            ep.arrived = dict(arrived)
            ep.notices = list(notices)
            m.current = ep


def coordinated_cluster(
    config: Optional[DsmConfig] = None,
    l_fraction: float = 0.1,
    **cluster_kw: Any,
):
    """A cluster whose FT layer is coordinated checkpointing + rollback."""
    from repro import DsmCluster

    cluster = DsmCluster(
        config or DsmConfig(),
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(l_fraction, fp),
        ft_factory=CoordinatedFt,
        **cluster_kw,
    )
    cluster.recovery_style = "rollback"
    return cluster
