"""Comparison baselines from the paper's related-work section (§2).

* :mod:`repro.baselines.page_logging` — whole-page logging in the style
  of Richard & Singhal [25] ("Whole pages are logged ... which, combined
  with their large size, makes the scheme very expensive"). Used by the
  ablation benchmark to quantify the diff-logging advantage.
* Coordinated checkpointing (Costa et al. [9] style) is expressed through
  :class:`repro.core.policies.BarrierCoordinatedPolicy` — every process
  checkpoints at the same barrier episodes, so the set of checkpoints is
  globally consistent without extra messages.
"""

from repro.baselines.coordinated import (
    CoordinatedFt,
    coordinated_cluster,
    global_rollback,
)
from repro.baselines.page_logging import PageLoggingFt, page_logging_cluster

__all__ = [
    "PageLoggingFt",
    "page_logging_cluster",
    "CoordinatedFt",
    "coordinated_cluster",
    "global_rollback",
]
