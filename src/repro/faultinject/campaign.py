"""Crash-point enumeration, injection runs and the recovery oracle.

A sweep is three phases:

1. **Reference run** — failure-free, with a :class:`Tracer` recording
   every protocol event *with its engine step index*. Determinism makes
   ``(victim, step)`` a complete name for a crash point: any re-run with
   the same configs executes the identical event order up to the
   injection.
2. **Enumeration** — every Nth traced event, plus targeted classes:
   mid lock transfer, mid barrier, during a checkpoint disk write
   (between the ``ckpt_write begin``/``end`` probes), and — from
   single-crash discovery runs — during another node's recovery. With
   ``faults=2`` the schedule adds the ``double`` class (second crashes
   across recovery windows opened at several reference anchors: the
   recovering node again, its ring buddy — both ends of the replica
   chain — and a plain responder) and the ``repl`` class (either end of
   a checkpoint's begin→commit replication window, from the reference
   run's ``repl`` probes).
3. **Injection runs** — one fresh cluster per point with
   ``schedule_crash_at_step``; each must satisfy :func:`check_oracle`
   (recovery equivalence — the same bit-identical bar at k=2 as at
   k=1) or raise
   :class:`~repro.core.recovery.OverlappingFailureError` (explicit
   degradation, acceptable only for the ``recovery``/``double``/
   ``repl`` classes).

By default the online invariant monitor
(:class:`~repro.observe.invariants.InvariantMonitor`) rides along on the
reference and every injection run: it is read-only, so the step indices
stay transferable, and it turns silently-wrong recoveries (trim bound
overshoot, vector-clock regression, lost rel/acq mirror entries) into
explicit ``failed`` points even when the oracle's end-state comparison
would pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.recovery import OverlappingFailureError
from repro.observe.latency import exact_percentile
from repro.sim.trace import Tracer

__all__ = [
    "CLASSES",
    "SWEEP_SCHEMA",
    "CrashPoint",
    "PointResult",
    "SweepSummary",
    "OracleViolation",
    "CrashSweep",
    "check_oracle",
    "load_sweep",
    "recovery_distributions",
]

#: sweep JSON schema: 1 = no ``schema`` key, points carry outcome
#: counters only; 2 adds per-point ``recovery_phases`` (one record per
#: completed recovery: detect/restore/handshake/replay/resume/total
#: durations plus replica-fetch counters) and the aggregated
#: ``recovery_by_class`` distributions. Readers accept both via
#: :func:`load_sweep`.
SWEEP_SCHEMA = 2

CLASSES = (
    "every", "lock", "barrier", "ckpt_write", "recovery", "double", "repl",
)

#: classes enumerable from a single-fault budget
SINGLE_FAULT_CLASSES = ("every", "lock", "barrier", "ckpt_write", "recovery")

#: classes that may legitimately end in explicit degradation: a second
#: failure overlapping a recovery (or killing a replica chain) can
#: exceed what the configured replication degree retains
DEGRADABLE_CLASSES = ("recovery", "double", "repl")

#: window fractions probed for crashes inside another node's recovery
RECOVERY_FRACTIONS = (0.25, 0.5, 0.75)

#: the double-fault schedule probes more anchors and finer window
#: fractions than the single-fault recovery class: base crashes at
#: several points of the reference run, second crashes across each
#: opened recovery window
DOUBLE_ANCHOR_FRACTIONS = (0.2, 0.45, 0.7)
DOUBLE_WINDOW_FRACTIONS = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85)


class OracleViolation(AssertionError):
    """The recovery-equivalence oracle failed for an injected run."""


@dataclass(frozen=True)
class CrashPoint:
    """One injection target: fail-stop ``victim`` after engine step ``step``.

    ``base`` (step, victim) schedules a *first* crash before this one —
    used by the ``recovery`` class, whose points live inside the recovery
    window that the base crash opens.
    """

    cls: str
    step: int
    victim: int
    base: Optional[Tuple[int, int]] = None


@dataclass
class PointResult:
    point: CrashPoint
    outcome: str  # recovered | no_crash | degraded | failed
    crashes: int = 0
    recoveries: int = 0
    error: Optional[str] = None
    #: one record per *completed* recovery in the injected run (from
    #: ``host.recovery_phases``, tagged with ``pid``); recoveries cut
    #: short by an overlapping kill leave no record
    recovery_phases: List[Dict[str, float]] = field(default_factory=list)


@dataclass
class SweepSummary:
    every: int
    classes: Tuple[str, ...]
    reference_steps: int
    reference_events: int
    reference_wall_time: float
    faults: int = 1
    results: List[PointResult] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def outcomes(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.results:
            out[r.outcome] = out.get(r.outcome, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        """Acceptance: every point recovered (or harmlessly missed), and
        explicit degradation appears only where a second failure
        overlapped a recovery or destroyed a replica chain."""
        for r in self.results:
            if r.outcome == "failed":
                return False
            if (r.outcome == "degraded"
                    and r.point.cls not in DEGRADABLE_CLASSES):
                return False
        return True

    def recovery_by_class(self) -> Dict[str, Dict[str, Any]]:
        return recovery_distributions(
            [
                (r.point.cls, rec)
                for r in self.results
                for rec in r.recovery_phases
            ]
        )

    def to_dict(self, **meta: Any) -> Dict[str, Any]:
        return {
            **meta,
            "schema": SWEEP_SCHEMA,
            "every": self.every,
            "faults": self.faults,
            "classes": list(self.classes),
            "reference": {
                "steps": self.reference_steps,
                "events": self.reference_events,
                "wall_time": self.reference_wall_time,
            },
            "outcomes": self.outcomes(),
            "ok": self.ok,
            "notes": self.notes,
            "recovery_by_class": self.recovery_by_class(),
            "points": [
                {
                    "class": r.point.cls,
                    "step": r.point.step,
                    "victim": r.point.victim,
                    "base": list(r.point.base) if r.point.base else None,
                    "outcome": r.outcome,
                    "crashes": r.crashes,
                    "recoveries": r.recoveries,
                    "error": r.error,
                    "recovery_phases": r.recovery_phases,
                }
                for r in self.results
            ],
        }

    def to_json(self, **meta: Any) -> str:
        return json.dumps(self.to_dict(**meta), indent=2, sort_keys=True)

    def render(self) -> str:
        per_class: Dict[str, Dict[str, int]] = {}
        for r in self.results:
            per_class.setdefault(r.point.cls, {})
            per_class[r.point.cls][r.outcome] = (
                per_class[r.point.cls].get(r.outcome, 0) + 1
            )
        lines = [
            f"{'class':<12} {'points':>6} {'recovered':>9} {'no_crash':>8} "
            f"{'degraded':>8} {'failed':>6}"
        ]
        for cls in self.classes:
            counts = per_class.get(cls, {})
            lines.append(
                f"{cls:<12} {sum(counts.values()):>6} "
                f"{counts.get('recovered', 0):>9} "
                f"{counts.get('no_crash', 0):>8} "
                f"{counts.get('degraded', 0):>8} "
                f"{counts.get('failed', 0):>6}"
            )
        lines.append(
            f"{'total':<12} {len(self.results):>6}   "
            + ("SWEEP OK" if self.ok else "SWEEP FAILED")
        )
        by_class = self.recovery_by_class()
        if by_class:
            lines.append("")
            lines.append(render_recovery_by_class(by_class))
        return "\n".join(lines)


#: phases of one recovery, in execution order (the keys every
#: ``recovery_phases`` record carries alongside ``total``)
RECOVERY_PHASES = ("detect", "restore", "handshake", "replay", "resume")

#: percentiles reported for per-class recovery-time distributions (small
#: populations, so these are *exact* sorted-list percentiles at rank
#: ``ceil(p/100*n)``, not log-bucket estimates)
_SWEEP_PCTS = (50.0, 90.0, 99.0)


def recovery_distributions(
    tagged: List[Tuple[str, Dict[str, float]]]
) -> Dict[str, Dict[str, Any]]:
    """Per-crash-class recovery-time distributions from ``(class,
    phase-record)`` pairs.

    For each class: count, mean/exact-percentiles/max of the end-to-end
    ``total``, plus the mean duration of each recovery phase — the
    anatomy of where recovery time goes under that failure mode.
    """
    per_class: Dict[str, List[Dict[str, float]]] = {}
    for cls, rec in tagged:
        per_class.setdefault(cls, []).append(rec)
    out: Dict[str, Dict[str, Any]] = {}
    for cls, recs in sorted(per_class.items()):
        totals = [r["total"] for r in recs]
        n = len(totals)
        out[cls] = {
            "count": n,
            "mean_total_s": sum(totals) / n,
            "max_total_s": max(totals),
            **{
                f"p{p:g}_total_s".replace(".", ""): exact_percentile(totals, p)
                for p in _SWEEP_PCTS
            },
            "phase_means_s": {
                ph: sum(r.get(ph, 0.0) for r in recs) / n
                for ph in RECOVERY_PHASES
            },
            "mean_replica_fetches": (
                sum(r.get("replica_fetches", 0) for r in recs) / n
            ),
        }
    return out


def render_recovery_by_class(by_class: Dict[str, Dict[str, Any]]) -> str:
    """ASCII table of per-class recovery-time distributions."""
    lines = [
        "recovery time by crash class (ms of virtual time)",
        f"{'class':<12} {'recs':>5} {'mean':>8} {'p50':>8} {'p90':>8} "
        f"{'p99':>8} {'max':>8}  dominant phase",
    ]
    for cls, d in sorted(by_class.items()):
        means = d.get("phase_means_s", {})
        dominant = max(means, key=means.get) if means else "-"
        ms = 1e3
        lines.append(
            f"{cls:<12} {d['count']:>5} {d['mean_total_s'] * ms:>8.3f} "
            f"{d['p50_total_s'] * ms:>8.3f} {d['p90_total_s'] * ms:>8.3f} "
            f"{d['p99_total_s'] * ms:>8.3f} {d['max_total_s'] * ms:>8.3f}  "
            f"{dominant}"
        )
    return "\n".join(lines)


def load_sweep(source: Any) -> Dict[str, Any]:
    """Load a sweep JSON artifact, normalizing schema v1 to v2.

    ``source`` is a path or an already-parsed dict. v1 artifacts (no
    ``schema`` key — e.g. the committed ``SWEEP_counter*.json``
    fixtures) gain ``schema: 1`` left as-is for provenance plus empty
    ``recovery_phases``/``recovery_by_class`` fields, so readers can
    treat every sweep uniformly. v2 artifacts pass through unchanged.
    """
    if isinstance(source, dict):
        data = source
    else:
        with open(source) as fh:
            data = json.load(fh)
    if not isinstance(data, dict) or "points" not in data:
        raise ValueError("not a sweep artifact: missing 'points'")
    schema = data.get("schema", 1)
    if schema not in (1, SWEEP_SCHEMA):
        raise ValueError(f"unsupported sweep schema {schema!r}")
    data.setdefault("schema", 1)
    data.setdefault("recovery_by_class", {})
    for pt in data["points"]:
        pt.setdefault("recovery_phases", [])
    return data


# ======================================================================
# the oracle
# ======================================================================


def check_oracle(cluster: Any, reference: Dict[str, bytes]) -> None:
    """Recovery equivalence: the post-injection run must be observably
    identical to the failure-free run.

    * every process finished its application main,
    * final shared-region contents are bit-identical to the reference,
    * no held messages leaked (``host.queued`` empty everywhere),
    * stable storage is clean: no torn (marker-less) keys, and the
      checkpoint window invariants hold (the restart checkpoint is a
      committed store key; every retained page copy has a live record).
    """
    problems: List[str] = []
    for host in cluster.hosts:
        if not host.finished:
            problems.append(f"p{host.pid} did not finish")
        if host.queued:
            problems.append(
                f"p{host.pid} leaked {len(host.queued)} queued message(s)"
            )
        if host.store.pending_keys():
            problems.append(
                f"p{host.pid} store holds torn keys {host.store.pending_keys()}"
            )
        mgr = host.ckpt_mgr
        if mgr is not None:
            if mgr.latest is not None:
                key = ("ckpt", mgr.latest.seqno)
                if key not in mgr.store or mgr.store.is_pending(key):
                    problems.append(
                        f"p{host.pid} restart checkpoint {mgr.latest.seqno} "
                        "not committed on stable storage"
                    )
            for seqno in mgr.retained_seqnos:
                if seqno != 0 and seqno not in mgr.checkpoints:
                    problems.append(
                        f"p{host.pid} retains page copies of checkpoint "
                        f"{seqno} but lost its record"
                    )
    for region in cluster.regions:
        got = cluster.shared_snapshot(region).tobytes()
        want = reference.get(region.name)
        if want is None:
            problems.append(f"region {region.name!r} missing from reference")
        elif got != want:
            diff = sum(1 for a, b in zip(got, want) if a != b)
            problems.append(
                f"region {region.name!r} diverged from the failure-free "
                f"run ({diff} of {len(want)} bytes differ)"
            )
    if problems:
        raise OracleViolation("; ".join(problems))


# ======================================================================
# the campaign
# ======================================================================


class CrashSweep:
    """Enumerates crash points of one (cluster, app) configuration and
    re-runs the app once per point.

    ``cluster_factory``/``app_factory`` must build *identically
    configured* fresh instances each call (determinism is what makes a
    step index transferable between runs); the cluster must have FT
    enabled.
    """

    def __init__(
        self,
        cluster_factory: Callable[[], Any],
        app_factory: Callable[[], Any],
        every: int = 25,
        classes: Optional[Tuple[str, ...]] = None,
        faults: int = 1,
        monitor: bool = True,
        monitor_scan_every: int = 10,
    ) -> None:
        if faults not in (1, 2):
            raise ValueError("--faults must be 1 or 2")
        if classes is None:
            classes = CLASSES if faults >= 2 else SINGLE_FAULT_CLASSES
        unknown = set(classes) - set(CLASSES)
        if unknown:
            raise ValueError(f"unknown crash-point classes: {sorted(unknown)}")
        if faults < 2 and ({"double", "repl"} & set(classes)):
            raise ValueError(
                "the double/repl crash-point classes need --faults 2"
            )
        if every < 1:
            raise ValueError("--every must be >= 1")
        self.cluster_factory = cluster_factory
        self.app_factory = app_factory
        self.every = every
        self.faults = faults
        self.classes = tuple(c for c in CLASSES if c in classes)
        #: attach the online invariant monitor to the reference run and
        #: every injection run (read-only, so step indices stay valid);
        #: a violation turns the point into ``failed``
        self.monitor = monitor
        self.monitor_scan_every = monitor_scan_every
        self.reference_snapshots: Dict[str, bytes] = {}
        self.reference_trace: List[Any] = []
        self.reference_steps = 0
        self.reference_wall_time = 0.0
        self.notes: List[str] = []
        #: recovery windows discovered by single-crash runs, keyed by the
        #: base crash (step, victim) — shared by the recovery and double
        #: classes so anchors are probed at most once
        self._windows: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {}

    def _attach_monitor(self, cluster: Any):
        if not self.monitor:
            return None
        from repro.observe import InvariantMonitor

        return InvariantMonitor(cluster, scan_every=self.monitor_scan_every)

    # ------------------------------------------------------------------
    def run_reference(self) -> None:
        cluster = self.cluster_factory()
        if not cluster.ft_enabled:
            raise RuntimeError("crash sweep requires an FT-enabled cluster")
        tracer = Tracer(cluster, max_events=1_000_000)
        monitor = self._attach_monitor(cluster)
        result = cluster.run(self.app_factory())
        if monitor is not None and monitor.finish():
            raise RuntimeError(
                "invariant violation in the failure-free reference run: "
                + "; ".join(v.render() for v in monitor.violations[:3])
            )
        if tracer.dropped:
            raise RuntimeError(
                f"reference trace overflowed ({tracer.dropped} dropped); "
                "the sweep would miss crash points"
            )
        self.reference_trace = tracer.events
        self.reference_steps = cluster.engine.steps
        self.reference_wall_time = result.wall_time
        self.reference_snapshots = {
            region.name: cluster.shared_snapshot(region).tobytes()
            for region in cluster.regions
        }

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def enumerate_points(self) -> List[CrashPoint]:
        if not self.reference_trace:
            self.run_reference()
        points: List[CrashPoint] = []
        seen: set = set()

        def add(cls: str, step: int, victim: int, base=None) -> None:
            if step < 1:
                return
            key = (cls, step, victim, base)
            if key in seen:
                return
            seen.add(key)
            points.append(CrashPoint(cls, step, victim, base))

        events = [e for e in self.reference_trace if e.step >= 1]
        if "every" in self.classes:
            for i in range(0, len(events), self.every):
                ev = events[i]
                add("every", ev.step, ev.pid)
        if "lock" in self.classes:
            for ev in events:
                if ev.kind == "lock" and ev.detail.startswith("acquired"):
                    # just before completion (token in flight) and just after
                    add("lock", ev.step - 1, ev.pid)
                    add("lock", ev.step, ev.pid)
        if "barrier" in self.classes:
            for ev in events:
                if ev.kind == "barrier":
                    add("barrier", ev.step - 1, ev.pid)
                    add("barrier", ev.step, ev.pid)
        if "ckpt_write" in self.classes:
            begins: Dict[Tuple[int, str], int] = {}
            for ev in events:
                if ev.kind != "ckpt_write":
                    continue
                tag = ev.detail.split()[1]  # "seqno=K"
                if ev.detail.startswith("begin"):
                    begins[(ev.pid, tag)] = ev.step
                elif ev.detail.startswith("end"):
                    b = begins.pop((ev.pid, tag), None)
                    if b is None:
                        continue
                    # strictly inside the write: after it started, before
                    # the commit marker lands
                    mid = max(b, min((b + ev.step) // 2, ev.step - 1))
                    add("ckpt_write", mid, ev.pid)
        if "recovery" in self.classes:
            points.extend(self._recovery_points())
        if "double" in self.classes:
            points.extend(self._double_points())
        if "repl" in self.classes:
            points.extend(self._repl_points(events))
        return points

    def _recovery_window(
        self, anchor_step: int, anchor_pid: int
    ) -> Optional[Tuple[int, int]]:
        """Discovery run: crash ``anchor_pid`` at ``anchor_step`` and
        trace the (begin, live) step window its recovery opens. Cached —
        the recovery and double classes share anchors."""
        base = (anchor_step, anchor_pid)
        if base in self._windows:
            return self._windows[base]
        cluster = self.cluster_factory()
        tracer = Tracer(cluster, kinds={"recovery"}, max_events=1_000_000)
        cluster.schedule_crash_at_step(anchor_pid, anchor_step)
        cluster.run(self.app_factory())
        begin = live = None
        for ev in tracer.events:
            if ev.pid != anchor_pid:
                continue
            if ev.detail.startswith("begin") and begin is None:
                begin = ev.step
            elif ev.detail == "live" and begin is not None:
                live = ev.step
                break
        window = None
        if begin is not None and live is not None and live > begin + 1:
            window = (begin, live)
        self._windows[base] = window
        return window

    def _window_points(
        self,
        cls: str,
        anchor_frac: float,
        window_fracs: Tuple[float, ...],
        victims: Tuple[int, ...],
    ) -> List[CrashPoint]:
        """Second-crash points inside the recovery window opened by a
        base crash at ``anchor_frac`` of the reference event stream."""
        events = [e for e in self.reference_trace if e.step >= 1]
        if not events:
            return []
        anchor = events[int(len(events) * anchor_frac)]
        base = (anchor.step, anchor.pid)
        window = self._recovery_window(anchor.step, anchor.pid)
        if window is None:
            self.notes.append(
                f"recovery window for base crash p{anchor.pid}@{anchor.step} "
                f"too narrow; {cls} points for this anchor skipped"
            )
            return []
        begin, live = window
        n = self.cluster_factory().config.num_procs
        out: List[CrashPoint] = []
        seen: set = set()
        for frac in window_fracs:
            step = begin + max(1, int((live - begin) * frac))
            if step >= live:
                step = live - 1
            for off in victims:
                victim = (anchor.pid + off) % n
                key = (step, victim)
                if key not in seen:  # fractions collapse on short windows
                    seen.add(key)
                    out.append(CrashPoint(cls, step, victim, base))
        return out

    def _recovery_points(self) -> List[CrashPoint]:
        """One crash mid-reference, then points inside the recovery
        window it opens: the same victim again (recovery must restart
        cleanly) and a responder (overlapping failure — explicit degrade,
        or a buddy-replica fetch when replication is on)."""
        return self._window_points("recovery", 0.45, RECOVERY_FRACTIONS, (0, 1))

    def _double_points(self) -> List[CrashPoint]:
        """The k=2 schedule: base crashes at several reference anchors,
        second crashes across each opened recovery window. Victim offsets
        cover the cascading restart (0: the recovering node again), both
        ends of the replica chain (+1: the anchor's ring buddy, which
        holds its replicated FT state *and* serves as a responder), and a
        plain responder that holds no replica of the anchor (+2)."""
        out: List[CrashPoint] = []
        for anchor_frac in DOUBLE_ANCHOR_FRACTIONS:
            out.extend(
                self._window_points(
                    "double", anchor_frac, DOUBLE_WINDOW_FRACTIONS, (0, 1, 2)
                )
            )
        return out

    def _repl_points(self, events: List[Any]) -> List[CrashPoint]:
        """Crashes in the middle of a replication exchange, enumerated
        from the reference run's ``repl`` probes: for each checkpoint's
        begin→commit replication window, kill the buddy (it dies holding
        a torn replica record) and the sender (its checkpoint commits
        but the replica ack never arrives)."""
        windows: Dict[Tuple[int, str], int] = {}
        out: List[CrashPoint] = []
        found = False
        for ev in events:
            if ev.kind != "repl":
                continue
            parts = ev.detail.split()
            if parts[0] == "begin":
                found = True
                windows[(ev.pid, parts[1])] = ev.step
            elif parts[0] == "commit":
                b = windows.pop((ev.pid, parts[1]), None)
                if b is None:
                    continue
                mid = max(b, min((b + ev.step) // 2, ev.step - 1))
                buddy = int(parts[2].split("=")[1])  # "dst=B"
                out.append(CrashPoint("repl", mid, buddy))
                out.append(CrashPoint("repl", mid, ev.pid))
        if not found:
            self.notes.append(
                "no replication probes in the reference run (replication "
                "disabled?); repl class skipped"
            )
        return out

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    @staticmethod
    def _collect_phases(cluster: Any) -> List[Dict[str, float]]:
        """Every completed recovery's phase record, tagged with its pid
        (recoveries cut short by a second kill leave no record)."""
        return [
            dict(rec, pid=host.pid)
            for host in cluster.hosts
            for rec in host.recovery_phases
        ]

    def run_point(self, point: CrashPoint) -> PointResult:
        cluster = self.cluster_factory()
        monitor = self._attach_monitor(cluster)
        cluster.schedule_crash_at_step(point.victim, point.step)
        if point.base is not None:
            base_step, base_victim = point.base
            cluster.schedule_crash_at_step(base_victim, base_step)
        expected_crashes = 1 + (1 if point.base else 0)
        try:
            result = cluster.run(self.app_factory())
        except OverlappingFailureError as exc:
            # explicitly degraded: the cluster aborted mid-recovery, so
            # the monitor's in-flight state is not a verdict — drop it
            return PointResult(
                point,
                "degraded",
                crashes=cluster.crashes,
                recoveries=cluster.recoveries,
                error=str(exc),
                recovery_phases=self._collect_phases(cluster),
            )
        except Exception as exc:  # deadlock / protocol invariant / oracle
            error = f"{type(exc).__name__}: {exc}"
            if monitor is not None and monitor.violations:
                error += (
                    "; invariant violations: "
                    + "; ".join(v.render() for v in monitor.violations[:3])
                )
            return PointResult(
                point,
                "failed",
                crashes=cluster.crashes,
                recoveries=cluster.recoveries,
                error=error,
                recovery_phases=self._collect_phases(cluster),
            )
        phases = self._collect_phases(cluster)
        if monitor is not None and monitor.finish():
            return PointResult(
                point,
                "failed",
                crashes=result.crashes,
                recoveries=result.recoveries,
                error="invariant violations: "
                + "; ".join(v.render() for v in monitor.violations[:3]),
                recovery_phases=phases,
            )
        try:
            check_oracle(cluster, self.reference_snapshots)
        except OracleViolation as exc:
            return PointResult(
                point,
                "failed",
                crashes=result.crashes,
                recoveries=result.recoveries,
                error=str(exc),
                recovery_phases=phases,
            )
        outcome = (
            "recovered" if result.crashes >= expected_crashes else "no_crash"
        )
        return PointResult(
            point,
            outcome,
            crashes=result.crashes,
            recoveries=result.recoveries,
            recovery_phases=phases,
        )

    # ------------------------------------------------------------------
    def run(
        self, progress: Optional[Callable[[PointResult], None]] = None
    ) -> SweepSummary:
        points = self.enumerate_points()
        summary = SweepSummary(
            every=self.every,
            classes=self.classes,
            reference_steps=self.reference_steps,
            reference_events=len(self.reference_trace),
            reference_wall_time=self.reference_wall_time,
            faults=self.faults,
            notes=list(self.notes),
        )
        for point in points:
            res = self.run_point(point)
            summary.results.append(res)
            if progress is not None:
                progress(res)
        return summary
