"""Crash-point sweep fault-injection campaign (robustness harness).

The campaign turns the simulator's determinism into a verification tool:
a failure-free *reference run* is traced with engine step indices, every
interesting point in its event order becomes a crash point, and the
application is re-run once per point with a fail-stop injected exactly
there. Each injected run must either fully recover — final shared memory
bit-identical to the reference — or degrade *explicitly* (a clean
:class:`~repro.core.recovery.OverlappingFailureError` diagnostic for
second failures that exceed the paper's single-fault model). Silent
divergence, hangs and leaked messages are campaign failures.
"""

from repro.faultinject.campaign import (
    SWEEP_SCHEMA,
    CrashPoint,
    CrashSweep,
    OracleViolation,
    PointResult,
    SweepSummary,
    check_oracle,
    load_sweep,
    recovery_distributions,
)

__all__ = [
    "SWEEP_SCHEMA",
    "CrashPoint",
    "CrashSweep",
    "OracleViolation",
    "PointResult",
    "SweepSummary",
    "check_oracle",
    "load_sweep",
    "recovery_distributions",
]
