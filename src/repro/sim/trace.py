"""Structured event tracing for protocol debugging and teaching.

A :class:`Tracer` attaches to a :class:`~repro.cluster.DsmCluster`
*before* ``run`` and records protocol-level events with virtual
timestamps: message sends, lock acquires/releases, barrier passages,
interval flushes, page fetches, checkpoints, crashes and recoveries.
Events are plain records, filterable and renderable as a timeline —
the simulator's answer to a real DSM's debug logs.

    cluster = DsmCluster(...)
    tracer = Tracer(cluster, kinds={"lock", "ckpt"})
    cluster.run(app)
    print(tracer.render(limit=50))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    time: float
    pid: int
    kind: str  # send | lock | barrier | flush | fetch | ckpt | failure | ...
    detail: str
    #: engine event index at emission — with a deterministic engine,
    #: (pid, step) names one reproducible point in the execution, which
    #: is what the crash-sweep campaign enumerates as injection targets
    step: int = -1

    def render(self) -> str:
        # a negative step means "emitted before the engine ran any
        # event" (e.g. during setup) — render a placeholder, not #-1
        step = f"{self.step:<7d}" if self.step >= 0 else f"{'——':<7}"
        return (
            f"{self.time * 1e3:10.4f} ms "
            f"#{step} p{self.pid}  {self.kind:<10} {self.detail}"
        )


class Tracer:
    """Records cluster events by wrapping the protocol entry points.

    The ``ckpt_write`` and ``recovery`` kinds come from the cluster's
    probe hook (begin/end of checkpoint disk writes, recovery lifecycle)
    rather than from wrapped methods; the tracer chains onto any probe
    consumer already attached.
    """

    KINDS = {
        "send",
        "lock",
        "barrier",
        "flush",
        "fetch",
        "ckpt",
        "ckpt_write",
        "recovery",
        "rphase",
        "repl",
        "failure",
    }

    def __init__(
        self,
        cluster: Any,
        kinds: Optional[Iterable[str]] = None,
        max_events: int = 100_000,
    ) -> None:
        self.cluster = cluster
        self.kinds: Set[str] = set(kinds) if kinds else set(self.KINDS)
        unknown = self.kinds - self.KINDS
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._install()

    # ------------------------------------------------------------------
    def _emit(self, pid: int, kind: str, detail: str) -> None:
        if kind not in self.kinds:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                self.cluster.engine.now,
                pid,
                kind,
                detail,
                self.cluster.engine.steps,
            )
        )

    def _install(self) -> None:
        cluster = self.cluster
        tracer = self

        # message sends
        orig_send = cluster.send

        def send(src: int, dst: int, msg: Any) -> None:
            tracer._emit(
                src, "send", f"-> p{dst}  {type(msg).__name__} ({msg.category})"
            )
            orig_send(src, dst, msg)

        cluster.send = send

        # per-process protocol events: wrap after protocols exist
        orig_setup = cluster.setup

        def setup(app: Any) -> None:
            orig_setup(app)
            for host in cluster.hosts:
                tracer._wrap_proto(host.proto)

        cluster.setup = setup

        # probe events (failure fail-stops, ckpt_write begin/end,
        # recovery lifecycle): chain onto any consumer already attached
        orig_probe = cluster.probe

        def probe(pid: int, kind: str, detail: str) -> None:
            tracer._emit(pid, kind, detail)
            if orig_probe is not None:
                orig_probe(pid, kind, detail)

        cluster.probe = probe

    def _wrap_proto(self, proto: Any) -> None:
        tracer = self

        orig_complete = proto._complete_acquire

        def complete(lock_id: int, grant: Any, local: bool) -> None:
            orig_complete(lock_id, grant, local)
            how = "local" if local else f"from p{grant.grantor}"
            tracer._emit(proto.pid, "lock", f"acquired L{lock_id} {how}")

        proto._complete_acquire = complete

        orig_release = proto.release

        def release(lock_id: int):
            tracer._emit(proto.pid, "lock", f"release L{lock_id}")
            return orig_release(lock_id)

        proto.release = release

        orig_bar = proto._complete_barrier

        def complete_barrier(rel: Any) -> None:
            orig_bar(rel)
            tracer._emit(proto.pid, "barrier", f"passed episode {rel.episode}")

        proto._complete_barrier = complete_barrier

        orig_flush = proto._end_interval

        def end_interval():
            dirty = len(proto._dirty)
            result = yield from orig_flush()
            if dirty:
                tracer._emit(
                    proto.pid,
                    "flush",
                    f"interval {proto.vt[proto.pid]}: {dirty} dirty pages",
                )
            return result

        proto._end_interval = end_interval

        orig_fetch = proto._fetch

        def fetch(page: Any, entry: Any):
            result = yield from orig_fetch(page, entry)
            tracer._emit(proto.pid, "fetch", f"page {tuple(page)}")
            return result

        proto._fetch = fetch

        ft = proto.ft
        take = getattr(ft, "take_checkpoint", None)
        if take is not None:

            def take_checkpoint(*a, **kw):
                result = yield from take(*a, **kw)
                tracer._emit(
                    proto.pid,
                    "ckpt",
                    f"checkpoint #{ft.stats.checkpoints_taken} "
                    f"Tckp={tuple(proto.vt)}",
                )
                return result

            ft.take_checkpoint = take_checkpoint

    # ------------------------------------------------------------------
    def filter(
        self, kind: Optional[str] = None, pid: Optional[int] = None
    ) -> List[TraceEvent]:
        return [
            e
            for e in self.events
            if (kind is None or e.kind == kind)
            and (pid is None or e.pid == pid)
        ]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def render(
        self,
        limit: int = 100,
        kind: Optional[str] = None,
        pid: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> str:
        """A timeline of (up to ``limit``) events.

        ``kind``/``pid`` select an event class or node; ``since``/
        ``until`` bound the virtual-time window (seconds, inclusive) —
        so a crash-sweep debugging session can zoom straight to the
        events around an injected crash point instead of slicing
        ``tracer.events`` by hand.
        """
        events = [
            e
            for e in self.events
            if (kind is None or e.kind == kind)
            and (pid is None or e.pid == pid)
            and (since is None or e.time >= since)
            and (until is None or e.time <= until)
        ]
        lines = [e.render() for e in events[:limit]]
        if len(events) > limit:
            lines.append(f"... {len(events) - limit} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (max_events)")
        return "\n".join(lines)
