"""Reliable FIFO point-to-point network with a latency+bandwidth cost model.

Models a Myrinet-class LAN with user-level communication as used in the
paper (~20 microseconds one-way latency, ~100 MB/s per link). Channels are
reliable and FIFO per (src, dst) pair, matching the paper's assumption of
"reliable communication channels". Delivery invokes the destination's
registered handler at the arrival time.

Traffic is accounted per category so that the Table 2 comparison (base
HLRC protocol traffic vs. piggybacked CGC/LLT control traffic) falls out
directly: every send carries a ``category`` string and an ``ft_bytes``
component counting only the fault-tolerance piggyback portion.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.engine import Engine

__all__ = ["NetworkConfig", "MetaClusterConfig", "Network", "TrafficStats"]


@dataclass(frozen=True)
class NetworkConfig:
    """Cost model for one message: ``latency + size * byte_time``."""

    latency: float = 20e-6  # one-way wire+software latency (s)
    bandwidth: float = 100e6  # bytes/s per channel
    per_message_cpu: float = 3e-6  # send/receive handler CPU cost (s)

    @property
    def byte_time(self) -> float:
        return 1.0 / self.bandwidth

    def transfer_time(self, size: int) -> float:
        return self.latency + size * self.byte_time

    def link(self, src: int, dst: int) -> Tuple[float, float]:
        """(latency, byte_time) for the src->dst link. Uniform here."""
        return self.latency, self.byte_time


@dataclass(frozen=True)
class MetaClusterConfig(NetworkConfig):
    """Two-level topology: LAN inside a cluster, WAN between clusters.

    The paper (§1) motivates independent checkpointing with "wide-area
    metaclusters (clusters of local-area clusters connected by the
    Internet)"; this config models them. Processes are assigned to
    clusters round-robin-blocked: pids [0, cluster_size) form cluster 0,
    the next ``cluster_size`` cluster 1, and so on.
    """

    cluster_size: int = 4
    wan_latency: float = 20e-3  # cross-country-ish one-way
    wan_bandwidth: float = 10e6

    def cluster_of(self, pid: int) -> int:
        return pid // self.cluster_size

    def link(self, src: int, dst: int) -> Tuple[float, float]:
        if self.cluster_of(src) == self.cluster_of(dst):
            return self.latency, self.byte_time
        return self.wan_latency, 1.0 / self.wan_bandwidth


class TrafficStats:
    """Byte and message counters, split by category and FT piggyback."""

    def __init__(self) -> None:
        self.bytes_by_category: Dict[str, int] = defaultdict(int)
        self.msgs_by_category: Dict[str, int] = defaultdict(int)
        self.ft_bytes: int = 0
        self.total_bytes: int = 0
        self.total_msgs: int = 0

    def record(self, category: str, size: int, ft_bytes: int) -> None:
        self.bytes_by_category[category] += size
        self.msgs_by_category[category] += 1
        self.ft_bytes += ft_bytes
        self.total_bytes += size
        self.total_msgs += 1

    @property
    def base_bytes(self) -> int:
        """Protocol traffic excluding the FT piggyback component."""
        return self.total_bytes - self.ft_bytes

    def ft_overhead_percent(self) -> float:
        if self.base_bytes == 0:
            return 0.0
        return 100.0 * self.ft_bytes / self.base_bytes


Handler = Callable[[int, Any], None]


class Network:
    """Point-to-point reliable FIFO network among ``n`` endpoints."""

    def __init__(self, engine: Engine, n: int, config: Optional[NetworkConfig] = None):
        self.engine = engine
        self.n = n
        self.config = config or NetworkConfig()
        self.traffic = TrafficStats()
        self._handlers: Dict[int, Handler] = {}
        # FIFO enforcement: earliest admissible delivery time per channel
        self._channel_clear: Dict[Tuple[int, int], float] = defaultdict(float)
        # (latency, byte_time) per channel; config is frozen so link() is
        # pure and can be memoized
        self._links: Dict[Tuple[int, int], Tuple[float, float]] = {}
        #: epoch counter: a flush invalidates every in-flight message
        self.epoch = 0
        #: bytes/messages currently in flight (sent, not yet delivered);
        #: maintained unconditionally — two int ops per message — so the
        #: observability layer can sample channel occupancy passively
        self.inflight_bytes = 0
        self.inflight_msgs = 0

    def register(self, node_id: int, handler: Handler) -> None:
        """Install the message handler for endpoint ``node_id``."""
        if not (0 <= node_id < self.n):
            raise ValueError(f"node {node_id} out of range 0..{self.n - 1}")
        self._handlers[node_id] = handler

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        size: int,
        category: str,
        ft_bytes: int = 0,
    ) -> None:
        """Transmit ``payload`` from ``src`` to ``dst``.

        ``size`` is the modeled wire size in bytes (headers + payload +
        piggyback); ``ft_bytes`` is the piggybacked fault-tolerance control
        portion of ``size``, accounted separately for Table 2.
        """
        if dst == src:
            raise ValueError("loopback sends are not modeled; call locally")
        if size < 0 or ft_bytes < 0 or ft_bytes > size:
            raise ValueError(f"bad sizes: size={size} ft_bytes={ft_bytes}")
        self.traffic.record(category, size, ft_bytes)
        now = self.engine.now
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = self.config.link(src, dst)
        latency, byte_time = link
        arrival = now + latency + size * byte_time
        # FIFO per channel: a later send never overtakes an earlier one.
        arrival = max(arrival, self._channel_clear[key])
        self._channel_clear[key] = arrival
        epoch = self.epoch
        self.inflight_bytes += size
        self.inflight_msgs += 1
        self.engine.schedule(
            arrival - now, lambda: self._deliver(src, dst, payload, epoch, size)
        )

    def flush_epoch(self) -> None:
        """Invalidate every message currently in flight (global rollback)."""
        self.epoch += 1

    def _deliver(
        self, src: int, dst: int, payload: Any, epoch: int, size: int = 0
    ) -> None:
        self.inflight_bytes -= size
        self.inflight_msgs -= 1
        if epoch != self.epoch:
            return  # message belonged to a rolled-back epoch
        handler = self._handlers.get(dst)
        if handler is None:
            raise RuntimeError(f"no handler registered for node {dst}")
        handler(src, payload)
