"""Per-process CPU time accounting.

Every second of virtual time a process spends is attributed to one of the
buckets of the paper's Figure 3 breakdown:

* ``COMPUTE`` — application computation,
* ``PAGE_WAIT`` — blocked waiting for a page from its home,
* ``LOCK_WAIT`` — blocked in a lock acquire,
* ``BARRIER_WAIT`` — blocked at a barrier,
* ``OVERHEAD`` — protocol work (fault/message handlers, diff creation in
  the base protocol, synchronization primitives),
* ``LOG_CKPT`` — fault-tolerance logging and checkpointing (volatile-log
  writes, twin/diff work added by FT, and stable-storage writes).

Handlers that serve *remote* requests (e.g. a home answering page
fetches) also consume the serving node's CPU. The simulator charges that
work as "handler debt": it accumulates while the app computes and is
drained into the OVERHEAD bucket at the node's next DSM operation, which
models CPU stealing without preemptive scheduling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.sim.engine import Delay

__all__ = ["TimeBucket", "TimeStats", "CpuModel"]


class TimeBucket(enum.Enum):
    COMPUTE = "compute"
    PAGE_WAIT = "page_wait"
    LOCK_WAIT = "lock_wait"
    BARRIER_WAIT = "barrier_wait"
    OVERHEAD = "overhead"
    LOG_CKPT = "log_ckpt"


class TimeStats:
    """Accumulated virtual seconds per bucket for one process."""

    def __init__(self) -> None:
        self.seconds: Dict[TimeBucket, float] = {b: 0.0 for b in TimeBucket}

    def add(self, bucket: TimeBucket, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative time charge: {seconds}")
        self.seconds[bucket] += seconds

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, bucket: TimeBucket) -> float:
        t = self.total
        return self.seconds[bucket] / t if t > 0 else 0.0

    def merged(self, other: "TimeStats") -> "TimeStats":
        out = TimeStats()
        for b in TimeBucket:
            out.seconds[b] = self.seconds[b] + other.seconds[b]
        return out

    def as_dict(self) -> Dict[str, float]:
        return {b.value: self.seconds[b] for b in TimeBucket}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{b.value}={v:.3f}" for b, v in self.seconds.items())
        return f"TimeStats({parts})"


@dataclass
class CpuCosts:
    """Per-operation CPU cost constants (seconds), Pentium-II class.

    These drive the OVERHEAD and LOG_CKPT buckets; they are deliberately
    simple linear models (fixed + per-byte) in the spirit of the paper's
    measured handler costs.
    """

    page_fault_handler: float = 15e-6  # trap + request construction
    message_handler: float = 8e-6  # generic protocol handler fixed cost
    twin_create_per_byte: float = 1.0 / 180e6  # memcpy of a page
    diff_compute_per_byte: float = 1.0 / 120e6  # word-compare scan
    diff_apply_per_byte: float = 1.0 / 180e6
    log_append_per_byte: float = 1.0 / 200e6  # volatile-memory copy
    checkpoint_pack_per_byte: float = 1.0 / 150e6


class CpuModel:
    """Tracks handler debt for one node and issues time charges."""

    def __init__(self, costs: CpuCosts | None = None) -> None:
        self.costs = costs or CpuCosts()
        self.handler_debt: float = 0.0
        self.stats = TimeStats()

    def accrue_handler(self, seconds: float) -> None:
        """Record CPU consumed by an asynchronous protocol handler."""
        if seconds < 0:
            raise ValueError("negative handler cost")
        self.handler_debt += seconds

    def drain_debt(self) -> Iterator[Delay]:
        """Charge accumulated handler debt to OVERHEAD; yields the delay."""
        debt, self.handler_debt = self.handler_debt, 0.0
        if debt > 0:
            self.stats.seconds[TimeBucket.OVERHEAD] += debt
            yield Delay(debt)

    def charge(self, bucket: TimeBucket, seconds: float) -> Iterator[Delay]:
        """Charge ``seconds`` to ``bucket``, advancing virtual time."""
        if seconds < 0:
            raise ValueError(f"negative time charge: {seconds}")
        self.stats.seconds[bucket] += seconds
        if seconds > 0:
            yield Delay(seconds)
