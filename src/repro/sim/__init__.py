"""Deterministic discrete-event cluster simulator.

This package is the hardware substrate substituted for the paper's real
8-node Myrinet cluster (see DESIGN.md §1): a virtual-time event engine
(:mod:`repro.sim.engine`), a reliable FIFO network with a latency+bandwidth
cost model (:mod:`repro.sim.network`), per-node CPU time accounting
(:mod:`repro.sim.node`), a stable-storage model (:mod:`repro.sim.storage`),
fail-stop failure injection (:mod:`repro.sim.failure`) and the cluster
wiring that runs application processes as coroutines
(:mod:`repro.sim.cluster`).
"""

from repro.sim.engine import Delay, Engine, Future, SimProcessKilled
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import TimeBucket, TimeStats
from repro.sim.storage import CheckpointStore, Disk, DiskConfig

__all__ = [
    "Delay",
    "Engine",
    "Future",
    "SimProcessKilled",
    "Network",
    "NetworkConfig",
    "TimeBucket",
    "TimeStats",
    "Disk",
    "DiskConfig",
    "CheckpointStore",
]
