"""Discrete-event simulation engine with coroutine trampolining.

The engine owns a virtual clock and a priority queue of events. Simulated
processes are plain Python generators: they ``yield`` *effects* and the
engine resumes them when the effect completes. Two effects exist:

``Delay(seconds)``
    Resume the coroutine after ``seconds`` of virtual time.

``Future``
    Resume the coroutine when some other party calls
    :meth:`Future.resolve`; the resolved value is returned by the
    ``yield`` expression.

Composition uses ``yield from``: any blocking sub-operation is itself a
generator, so deep call stacks of DSM operations need no threads and the
whole simulation is single-threaded and deterministic — a run is a pure
function of its configuration. Determinism is what makes the paper's
piece-wise-deterministic replay (§4.3) testable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, List, Optional, Tuple

__all__ = [
    "Delay",
    "Future",
    "Engine",
    "SimProcess",
    "SimProcessKilled",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for internal inconsistencies in the simulation."""


class SimProcessKilled(Exception):
    """Thrown into a coroutine when its process is fail-stopped."""


@dataclass(frozen=True)
class Delay:
    """Effect: resume the yielding coroutine after ``seconds`` of sim time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"negative delay: {self.seconds}")


class Future:
    """A one-shot resolvable value; coroutines block on it by yielding it.

    Multiple coroutines may wait on the same future; all are resumed with
    the same value (in registration order, at the same virtual instant).
    """

    __slots__ = ("_resolved", "_value", "_waiters", "label")

    def __init__(self, label: str = "") -> None:
        self._resolved = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self.label = label

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise SimulationError(f"future {self.label!r} read before resolution")
        return self._value

    def resolve(self, value: Any = None) -> None:
        if self._resolved:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._resolved = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        if self._resolved:
            cb(self._value)
        else:
            self._waiters.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self._resolved else "pending"
        return f"<Future {self.label!r} {state}>"


Coroutine = Generator[Any, Any, Any]


class SimProcess:
    """Handle for a spawned coroutine; supports fail-stop kills."""

    __slots__ = ("gen", "name", "alive", "done", "result", "engine")

    def __init__(self, engine: "Engine", gen: Coroutine, name: str) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        self.alive = True
        self.done = False
        self.result: Any = None

    def kill(self) -> None:
        """Fail-stop this process: it never runs again.

        The generator is closed so that ``finally`` blocks run, but a
        fail-stopped process must not perform recovery actions there;
        application code treats :class:`SimProcessKilled` as a crash.
        """
        if not self.alive:
            return
        self.alive = False
        try:
            self.gen.throw(SimProcessKilled())
        except (SimProcessKilled, StopIteration):
            pass
        except RuntimeError:
            # generator already executing/closed; nothing more to do
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("alive" if self.alive else "killed")
        return f"<SimProcess {self.name} {state}>"


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)


class Engine:
    """Virtual-clock event loop.

    Events at equal times fire in scheduling order (a stable tiebreaker
    keeps the simulation deterministic). :meth:`run` drains the queue or
    stops at ``until``.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._processes: List[SimProcess] = []
        self.steps: int = 0

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue, _Event(self.now + delay, next(self._seq), fn))

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at the current virtual time, after pending work."""
        self.schedule(0.0, fn)

    # ------------------------------------------------------------------
    # coroutine trampoline
    # ------------------------------------------------------------------
    def spawn(self, gen: Coroutine, name: str = "proc") -> SimProcess:
        """Start driving a coroutine; returns its process handle."""
        proc = SimProcess(self, gen, name)
        self._processes.append(proc)
        self.call_soon(lambda: self._step(proc, None, first=True))
        return proc

    def _step(self, proc: SimProcess, value: Any, first: bool = False) -> None:
        if not proc.alive or proc.done:
            return
        try:
            effect = proc.gen.send(None if first else value)
        except StopIteration as stop:
            proc.done = True
            proc.result = stop.value
            return
        self._handle_effect(proc, effect)

    def _handle_effect(self, proc: SimProcess, effect: Any) -> None:
        if isinstance(effect, Delay):
            self.schedule(effect.seconds, lambda: self._step(proc, None))
        elif isinstance(effect, Future):
            effect.add_callback(
                lambda v: self.call_soon(lambda: self._step(proc, v))
            )
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported effect {effect!r}"
            )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_steps: int = 500_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the final virtual time.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            ev = heapq.heappop(self._queue)
            if ev.time < self.now - 1e-12:
                raise SimulationError("time went backwards")
            self.now = max(self.now, ev.time)
            ev.fn()
            self.steps += 1
            if self.steps > max_steps:
                raise SimulationError(
                    f"exceeded {max_steps} events; suspected livelock at t={self.now}"
                )
        return self.now

    def run_until_done(
        self, procs: List[SimProcess], max_steps: int = 500_000_000
    ) -> float:
        """Run until every process in ``procs`` has finished or been killed."""
        while self._queue:
            if all(p.done or not p.alive for p in procs):
                break
            ev = heapq.heappop(self._queue)
            self.now = max(self.now, ev.time)
            ev.fn()
            self.steps += 1
            if self.steps > max_steps:
                raise SimulationError(
                    f"exceeded {max_steps} events; suspected livelock at t={self.now}"
                )
        pending = [p.name for p in procs if not p.done and p.alive]
        if pending:
            raise SimulationError(
                f"simulation deadlock: queue drained with processes blocked: {pending}"
            )
        return self.now


def sleep(seconds: float) -> Iterator[Any]:
    """Coroutine helper: ``yield from sleep(t)``."""
    yield Delay(seconds)


def gather(engine: Engine, futures: List[Future], label: str = "gather") -> Future:
    """Return a future resolving (to the list of values) when all inputs do."""
    out = Future(label)
    remaining = [len(futures)]
    values: List[Any] = [None] * len(futures)
    if not futures:
        out.resolve([])
        return out

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(v: Any) -> None:
            values[i] = v
            remaining[0] -= 1
            if remaining[0] == 0:
                out.resolve(values)

        return cb

    for i, f in enumerate(futures):
        f.add_callback(make_cb(i))
    return out
