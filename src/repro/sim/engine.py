"""Discrete-event simulation engine with coroutine trampolining.

The engine owns a virtual clock and a priority queue of events. Simulated
processes are plain Python generators: they ``yield`` *effects* and the
engine resumes them when the effect completes. Two effects exist:

``Delay(seconds)``
    Resume the coroutine after ``seconds`` of virtual time.

``Future``
    Resume the coroutine when some other party calls
    :meth:`Future.resolve`; the resolved value is returned by the
    ``yield`` expression.

Composition uses ``yield from``: any blocking sub-operation is itself a
generator, so deep call stacks of DSM operations need no threads and the
whole simulation is single-threaded and deterministic — a run is a pure
function of its configuration. Determinism is what makes the paper's
piece-wise-deterministic replay (§4.3) testable.

Fast path
---------
Events are plain ``(time, seq, fn)`` tuples ordered by ``(time, seq)``;
``seq`` is a single global counter, so events at equal times fire in
scheduling order. Events scheduled *at the current instant*
(``call_soon``, zero delays, resolved-``Future`` continuations) go to a
FIFO **ready queue** instead of the time heap: appends happen at
non-decreasing ``(time, seq)``, so the deque is always sorted and the
main loop can merge it with the heap by comparing heads — one tuple
comparison instead of an O(log n) heap push + pop per immediate step.
Consecutive ready continuations therefore trampoline through the deque
without ever touching ``heapq``, while the merged execution order stays
bit-identical to a single (time, seq) priority queue.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from typing import Any, Callable, Deque, Generator, Iterator, List, Optional, Tuple

__all__ = [
    "Delay",
    "Future",
    "Engine",
    "SimProcess",
    "SimProcessKilled",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for internal inconsistencies in the simulation."""


class SimProcessKilled(Exception):
    """Thrown into a coroutine when its process is fail-stopped."""


class Delay:
    """Effect: resume the yielding coroutine after ``seconds`` of sim time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative delay: {seconds}")
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay({self.seconds!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delay) and self.seconds == other.seconds

    def __hash__(self) -> int:
        return hash((Delay, self.seconds))


class Future:
    """A one-shot resolvable value; coroutines block on it by yielding it.

    Multiple coroutines may wait on the same future; all are resumed with
    the same value (in registration order, at the same virtual instant).
    """

    __slots__ = ("_resolved", "_value", "_waiters", "label")

    def __init__(self, label: str = "") -> None:
        self._resolved = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self.label = label

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise SimulationError(f"future {self.label!r} read before resolution")
        return self._value

    def resolve(self, value: Any = None) -> None:
        if self._resolved:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._resolved = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        if self._resolved:
            cb(self._value)
        else:
            self._waiters.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self._resolved else "pending"
        return f"<Future {self.label!r} {state}>"


Coroutine = Generator[Any, Any, Any]

#: an engine event: (time, seq, fn) — seq is globally unique, so tuple
#: comparison never reaches the (uncomparable) callable
_Event = Tuple[float, int, Callable[[], None]]


class SimProcess:
    """Handle for a spawned coroutine; supports fail-stop kills."""

    __slots__ = ("gen", "name", "alive", "done", "result", "engine", "_resume")

    def __init__(self, engine: "Engine", gen: Coroutine, name: str) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        self.alive = True
        self.done = False
        self.result: Any = None
        #: preallocated no-value continuation (Delay resumes, first step)
        self._resume: Callable[[], None] = partial(engine._step, self, None)

    def kill(self) -> None:
        """Fail-stop this process: it never runs again.

        The generator is closed so that ``finally`` blocks run, but a
        fail-stopped process must not perform recovery actions there;
        application code treats :class:`SimProcessKilled` as a crash.
        """
        if not self.alive:
            return
        self.alive = False
        try:
            self.gen.throw(SimProcessKilled())
        except (SimProcessKilled, StopIteration):
            pass
        except RuntimeError:
            # generator already executing/closed; nothing more to do
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("alive" if self.alive else "killed")
        return f"<SimProcess {self.name} {state}>"


class Engine:
    """Virtual-clock event loop.

    Events at equal times fire in scheduling order (a stable tiebreaker
    keeps the simulation deterministic). :meth:`run` drains the queue or
    stops at ``until``.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[_Event] = []  # time heap (delay > 0)
        self._ready: Deque[_Event] = deque()  # FIFO, sorted by (time, seq)
        self._seq = 0
        self._processes: List[SimProcess] = []
        self.steps: int = 0
        #: step-indexed breakpoints for fault injection: sorted
        #: (step, fn) pairs; fn runs right after the event whose 1-based
        #: step count equals ``step``. Disabled (the common case) this
        #: costs one int comparison per event in the main loop.
        self._breakpoints: List[Tuple[int, Callable[[], None]]] = []
        self._next_break: int = -1
        #: optional per-event observer: called as ``tap(time, step, fn)``
        #: right before each event executes (so the event that raises is
        #: the last one recorded). Consumers must only record — the hook
        #: is for the invariant monitor's flight recorder. Disabled (the
        #: common case) this costs one local None-check per event,
        #: mirroring the breakpoint arm check.
        self.event_tap: Optional[
            Callable[[float, int, Callable[[], None]], None]
        ] = None

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            self._ready.append((self.now, seq, fn))
        else:
            heapq.heappush(self._queue, (self.now + delay, seq, fn))

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at the current virtual time, after pending work."""
        seq = self._seq
        self._seq = seq + 1
        self._ready.append((self.now, seq, fn))

    def mark(self) -> Tuple[float, int]:
        """Current ``(virtual time, executed step count)``.

        The stamp used by observers (span tracing) to timestamp span
        opens/closes without reaching into engine internals; ``steps``
        is the same step index ``break_at_step`` addresses, which is
        what makes span stamps cross-referenceable with crash points.
        """
        return (self.now, self.steps)

    def break_at_step(self, step: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` right after the ``step``-th event executes.

        The hook for systematic fault injection: events are the finest
        deterministic granularity of the simulation, so a (victim, step)
        pair names a reproducible crash point. ``fn`` runs outside any
        coroutine, with ``self.steps == step`` and the clock at that
        event's time; it may mutate processes and schedule new events.
        """
        if step <= self.steps:
            raise ValueError(
                f"breakpoint at step {step} but {self.steps} already executed"
            )
        self._breakpoints.append((step, fn))
        self._breakpoints.sort(key=lambda bp: bp[0])
        self._next_break = self._breakpoints[0][0]

    def _fire_breakpoints(self) -> None:
        while self._breakpoints and self._breakpoints[0][0] <= self.steps:
            _, fn = self._breakpoints.pop(0)
            fn()
        self._next_break = (
            self._breakpoints[0][0] if self._breakpoints else -1
        )

    # ------------------------------------------------------------------
    # coroutine trampoline
    # ------------------------------------------------------------------
    def spawn(self, gen: Coroutine, name: str = "proc") -> SimProcess:
        """Start driving a coroutine; returns its process handle."""
        proc = SimProcess(self, gen, name)
        self._processes.append(proc)
        self.call_soon(proc._resume)
        return proc

    def _step(self, proc: SimProcess, value: Any) -> None:
        if not proc.alive or proc.done:
            return
        try:
            effect = proc.gen.send(value)
        except StopIteration as stop:
            proc.done = True
            proc.result = stop.value
            return
        # inline effect dispatch (the hottest call site in the simulator)
        if type(effect) is Delay:
            self.schedule(effect.seconds, proc._resume)
        elif isinstance(effect, Future):
            if effect._resolved:
                self.call_soon(partial(self._step, proc, effect._value))
            else:
                effect._waiters.append(partial(self._future_step, proc))
        elif isinstance(effect, Delay):
            self.schedule(effect.seconds, proc._resume)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported effect {effect!r}"
            )

    def _future_step(self, proc: SimProcess, value: Any) -> None:
        self.call_soon(partial(self._step, proc, value))

    def _handle_effect(self, proc: SimProcess, effect: Any) -> None:
        """Schedule ``proc``'s continuation for ``effect`` (compat shim)."""
        if isinstance(effect, Delay):
            self.schedule(effect.seconds, proc._resume)
        elif isinstance(effect, Future):
            effect.add_callback(partial(self._future_step, proc))
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported effect {effect!r}"
            )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_steps: int = 500_000_000,
        stop: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the queue drains or ``until`` is reached.

        ``stop`` (when given) is evaluated before every event; the loop
        exits as soon as it returns True. Returns the final virtual time.
        """
        heap = self._queue
        ready = self._ready
        steps = self.steps
        tap = self.event_tap
        try:
            while ready or heap:
                if stop is not None and stop():
                    break
                # merge the sorted ready FIFO with the time heap: both are
                # ordered by (time, seq), so comparing heads reproduces the
                # exact total order of a single priority queue
                if not ready:
                    ev = heap[0]
                    from_heap = True
                elif heap and heap[0] < ready[0]:
                    ev = heap[0]
                    from_heap = True
                else:
                    ev = ready[0]
                    from_heap = False
                t = ev[0]
                if until is not None and t > until:
                    self.now = until
                    return until
                if from_heap:
                    heapq.heappop(heap)
                else:
                    ready.popleft()
                if t > self.now:
                    self.now = t
                elif t < self.now - 1e-12:
                    raise SimulationError("time went backwards")
                steps += 1
                self.steps = steps
                if tap is not None:
                    tap(t, steps, ev[2])
                ev[2]()
                if steps == self._next_break:
                    self._fire_breakpoints()
                if steps > max_steps:
                    raise SimulationError(
                        f"exceeded {max_steps} events; suspected livelock "
                        f"at t={self.now}"
                    )
        finally:
            self.steps = steps
        return self.now

    def run_until_done(
        self, procs: List[SimProcess], max_steps: int = 500_000_000
    ) -> float:
        """Run until every process in ``procs`` has finished or been killed."""
        self.run(
            max_steps=max_steps,
            stop=lambda: all(p.done or not p.alive for p in procs),
        )
        pending = [p.name for p in procs if not p.done and p.alive]
        if pending:
            raise SimulationError(
                f"simulation deadlock: queue drained with processes blocked: {pending}"
            )
        return self.now


def sleep(seconds: float) -> Iterator[Any]:
    """Coroutine helper: ``yield from sleep(t)``."""
    yield Delay(seconds)


def gather(futures: List[Future], label: str = "gather") -> Future:
    """Return a future resolving (to the list of values) when all inputs do."""
    out = Future(label)
    remaining = [len(futures)]
    values: List[Any] = [None] * len(futures)
    if not futures:
        out.resolve([])
        return out

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(v: Any) -> None:
            values[i] = v
            remaining[0] -= 1
            if remaining[0] == 0:
                out.resolve(values)

        return cb

    for i, f in enumerate(futures):
        f.add_callback(make_cb(i))
    return out
