"""Stable-storage model: per-node disks and crash-surviving stores.

The paper assumes "the stable storage used by a node remains available
after a failure, so that the process can be restarted on the same or on
another node". We model a node's disk as a simple seek+bandwidth device
(write time drives the Table 3 "time disk write" column) and a
:class:`CheckpointStore` as a Python object owned by the *cluster*, not
the process, so that fail-stopping a process leaves its stable state
intact and readable by the restarted incarnation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import Delay

__all__ = ["DiskConfig", "Disk", "CheckpointStore", "ReplicaStore"]


@dataclass(frozen=True)
class DiskConfig:
    """Late-1990s commodity IDE disk: ~10 ms seek, ~15 MB/s sequential."""

    seek_time: float = 10e-3
    write_bandwidth: float = 15e6  # bytes/s
    read_bandwidth: float = 20e6  # bytes/s


class Disk:
    """One node's local disk; tracks cumulative traffic and busy time."""

    def __init__(self, config: Optional[DiskConfig] = None) -> None:
        self.config = config or DiskConfig()
        self.bytes_written: int = 0
        self.bytes_read: int = 0
        self.write_time: float = 0.0
        self.read_time: float = 0.0

    def write_cost(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.config.seek_time + nbytes / self.config.write_bandwidth

    def read_cost(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.config.seek_time + nbytes / self.config.read_bandwidth

    def write(self, nbytes: int) -> Iterator[Delay]:
        """Coroutine: block for the duration of a write of ``nbytes``."""
        cost = self.write_cost(nbytes)
        self.bytes_written += max(nbytes, 0)
        self.write_time += cost
        if cost > 0:
            yield Delay(cost)

    def read(self, nbytes: int) -> Iterator[Delay]:
        cost = self.read_cost(nbytes)
        self.bytes_read += max(nbytes, 0)
        self.read_time += cost
        if cost > 0:
            yield Delay(cost)


class CheckpointStore:
    """Crash-surviving keyed store for one node's checkpoints and logs.

    Keys are arbitrary (e.g. ``("ckpt", seqno)`` or ``("log", page_id)``);
    values are stored by reference — callers must store immutable or
    defensively-copied data, which the checkpoint layer does.

    Commit markers
    --------------
    A multi-block disk write is not atomic: a fail-stop in the middle
    leaves a *torn* record on stable storage. The store models this with
    a two-phase put: :meth:`begin_put` lands the data without a commit
    marker, :meth:`commit_put` adds the marker once the simulated disk
    write has completed. Recovery must treat marker-less (pending) keys
    as garbage — :meth:`pending_keys` enumerates them for discarding.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._data: Dict[Any, Any] = {}
        self._sizes: Dict[Any, int] = {}
        self._pending: set = set()  # keys written without a commit marker

    def put(self, key: Any, value: Any, size: int) -> None:
        if size < 0:
            raise ValueError("negative object size")
        self._data[key] = value
        self._sizes[key] = size
        self._pending.discard(key)

    def begin_put(self, key: Any, value: Any, size: int) -> None:
        """Start writing ``key``: data lands, but without a commit marker.

        A crash before :meth:`commit_put` leaves the key *torn*; readers
        must check :meth:`is_pending` (recovery discards such keys).
        """
        if size < 0:
            raise ValueError("negative object size")
        self._data[key] = value
        self._sizes[key] = size
        self._pending.add(key)

    def commit_put(self, key: Any) -> None:
        """Write the commit marker for a key staged with ``begin_put``."""
        if key not in self._data:
            raise KeyError(f"commit_put of unknown key {key!r}")
        self._pending.discard(key)

    def is_pending(self, key: Any) -> bool:
        return key in self._pending

    def pending_keys(self) -> List[Any]:
        """Torn (marker-less) keys, in insertion order (deterministic)."""
        return [k for k in self._data if k in self._pending]

    def get(self, key: Any) -> Any:
        return self._data[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def delete(self, key: Any) -> int:
        """Remove ``key``; returns the bytes reclaimed."""
        self._data.pop(key)
        self._pending.discard(key)
        return self._sizes.pop(key)

    def keys(self) -> List[Any]:
        return list(self._data.keys())

    def size_of(self, key: Any) -> int:
        return self._sizes[key]

    @property
    def used_bytes(self) -> int:
        return sum(self._sizes.values())


class ReplicaStore:
    """Volatile in-memory store of *peers'* replicated FT state.

    One per node, owned by the node's memory (NOT its disk): it holds the
    buddy-replicated checkpoints and sender-log segments of the peers this
    node protects, and — being volatile — it dies with the node.
    :meth:`clear` models exactly that and is called from ``cluster.crash``.

    Each protected peer maps to a nested :class:`CheckpointStore`, reusing
    its two-phase commit-marker discipline verbatim: a replica base that
    was mid-transfer when the protected node died is a *torn* record
    (``begin`` seen, ``commit`` never arrived) and recovery must fall back
    to the previous committed base, exactly as the disk path falls back to
    the previous committed checkpoint.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._stores: Dict[int, CheckpointStore] = {}

    def store_for(self, protected: int) -> CheckpointStore:
        st = self._stores.get(protected)
        if st is None:
            st = self._stores[protected] = CheckpointStore(protected)
        return st

    def has(self, protected: int) -> bool:
        return protected in self._stores

    def drop(self, protected: int) -> int:
        """Forget everything held for ``protected``; returns bytes freed."""
        st = self._stores.pop(protected, None)
        return st.used_bytes if st is not None else 0

    def clear(self) -> None:
        """The holder crashed: every replica it held is lost."""
        self._stores.clear()

    def protected_pids(self) -> List[int]:
        return sorted(self._stores)

    @property
    def used_bytes(self) -> int:
        return sum(st.used_bytes for st in self._stores.values())
