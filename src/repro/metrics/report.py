"""Compatibility re-export: the ASCII rendering helpers live in
:mod:`repro.render` (one module, one test suite). Import from there."""

from repro.render import Table, ascii_series, format_bytes, format_pct

__all__ = ["Table", "ascii_series", "format_bytes", "format_pct"]
