"""Measurement collection and report formatting for the experiments."""

from repro.render import Table, ascii_series, format_bytes, format_pct

__all__ = ["Table", "ascii_series", "format_bytes", "format_pct"]
