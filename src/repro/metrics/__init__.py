"""Measurement collection and report formatting for the experiments."""

from repro.metrics.report import Table, ascii_series, format_bytes, format_pct

__all__ = ["Table", "ascii_series", "format_bytes", "format_pct"]
