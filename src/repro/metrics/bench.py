"""Benchmark harness for the simulation core (``python -m repro bench``).

Runs a fixed suite of micro benchmarks (engine dispatch, ready-queue
churn, vector-clock lattice ops, diff compute/apply) plus a set of small
application runs, and reports **events/sec** (simulator events processed
per host second) and wall-clock per bench. The suite is the repo's
standing measure of hot-path performance: results are recorded in
``benchmarks/BENCH_core.json`` so the perf trajectory of the simulator is
tracked across PRs, and CI replays the smoke suite against the committed
baseline to catch regressions.

The app benches run fixed, deterministic configurations; their virtual
times and traffic counters are part of the report so a perf change that
accidentally alters simulation semantics is visible immediately (the
golden-determinism test also pins them).
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "BenchResult",
    "run_app_bench",
    "run_suite",
    "run_scale_suite",
    "render_report",
    "write_report",
    "check_report",
    "check_scale_report",
]


@dataclass
class BenchResult:
    """Outcome of one benchmark."""

    name: str
    wall_s: float
    events: int = 0  # simulator events processed (engine steps)
    ops: int = 0  # micro-bench operations (0 for app benches)
    virtual_time: float = 0.0
    total_msgs: int = 0
    total_bytes: int = 0
    profile_text: str = ""

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        # rates stay floats: integer rounding quantizes sub-1.0 rates to
        # 0 and the CI perf-budget comparison then trusts the zero
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "ops": self.ops,
            "events_per_sec": round(self.events_per_sec, 3),
            "ops_per_sec": round(self.ops_per_sec, 3),
            "virtual_time": self.virtual_time,
            "total_msgs": self.total_msgs,
            "total_bytes": self.total_bytes,
        }


# ---------------------------------------------------------------------------
# micro benchmarks
# ---------------------------------------------------------------------------
def bench_engine_timers(n_events: int) -> BenchResult:
    """Heap-path dispatch: coroutines sleeping on distinct delays."""
    from repro.sim.engine import Delay, Engine

    eng = Engine()

    def ticker(k: int, dt: float):
        for _ in range(k):
            yield Delay(dt)

    per = max(1, n_events // 8)
    for i in range(8):
        eng.spawn(ticker(per, 1e-6 * (i + 1)), name=f"t{i}")
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return BenchResult("engine.timers", wall, events=eng.steps)


def bench_engine_ready_queue(n_events: int) -> BenchResult:
    """Immediate-continuation churn: resolved futures and call_soon.

    This is the path the ready queue accelerates: no event in this bench
    ever advances virtual time, so none of them needs the time heap.
    """
    from repro.sim.engine import Engine, Future

    eng = Engine()

    def churner(k: int):
        for _ in range(k):
            fut = Future()
            fut.resolve(1)
            yield fut

    per = max(1, n_events // 4)
    for i in range(4):
        eng.spawn(churner(per), name=f"c{i}")
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return BenchResult("engine.ready_queue", wall, events=eng.steps)


def bench_vclock(
    n_ops: int, width: int = 8, name: str = "vclock.lattice"
) -> BenchResult:
    """Lattice operations at a given clock width.

    Width 8 (the paper's common case, tuple path) keeps the historical
    ``vclock.lattice`` entry; widths 64/256 exercise the array path the
    scale-out runs live on.
    """
    from repro.dsm.vclock import VClock

    if width == 8:
        a = VClock((3, 1, 4, 1, 5, 9, 2, 6))
        b = VClock((2, 7, 1, 8, 2, 8, 1, 8))
    else:
        a = VClock(tuple(int(x) for x in (np.arange(width) * 7919) % 97))
        b = VClock(tuple(int(x) for x in (np.arange(width) * 6421) % 89))
    zero = VClock.zero(width)
    bump_i, set_i = width // 2 - 1, width - 3
    ops = 0
    t0 = time.perf_counter()
    for _ in range(n_ops // 8):
        c = a.join(b)
        c.leq(a)
        a.leq(c)
        c.meet(b)
        c.bump(bump_i)
        c.with_component(set_i, 40)
        zero.join(c)
        c.join(c)
        ops += 8
    wall = time.perf_counter() - t0
    return BenchResult(name, wall, ops=ops)


#: name -> changed bytes of a 4096-byte page (None = every byte)
_DIFF_SCENARIOS: Dict[str, Optional[int]] = {
    "diff.roundtrip": 256,  # historical entry: moderately sparse
    "diff.sparse": 16,
    "diff.dense": 1024,
    "diff.fullpage": None,
}


def bench_diff(n_ops: int, name: str = "diff.roundtrip") -> BenchResult:
    """compute_diff/apply_diff plus the size accounting of the log layer.

    Scenarios vary the write density of the dirtied page: scattered
    single bytes (worst run count per payload byte), a moderately sparse
    page (the historical ``diff.roundtrip`` entry), a dense page, and a
    fully rewritten page (single run, pure memcpy).
    """
    from repro.dsm.diff import apply_diff, compute_diff

    changed = _DIFF_SCENARIOS[name]
    rng = np.random.default_rng(12345)
    page = rng.integers(0, 255, size=4096, dtype=np.uint8)
    twin = page.copy()
    if changed is None:
        page = (page + 1) % 255  # every byte differs
    else:
        idx = rng.choice(4096, size=changed, replace=False)
        page[idx] ^= 0xFF
    target = np.zeros(4096, dtype=np.uint8)
    ops = 0
    t0 = time.perf_counter()
    for _ in range(n_ops // 2):
        d = compute_diff(twin, page)
        _ = d.size_bytes + d.payload_bytes
        apply_diff(target, d)
        ops += 2
    wall = time.perf_counter() - t0
    return BenchResult(name, wall, ops=ops)


# ---------------------------------------------------------------------------
# application benchmarks
# ---------------------------------------------------------------------------
def _make_app(app: str, **cfg: Any) -> Any:
    if app == "counter":
        from repro.apps.counter import CounterApp, CounterConfig

        return CounterApp(CounterConfig(**cfg))
    if app == "kvstore":
        from repro.apps.kvstore import KvStoreApp, KvStoreConfig

        return KvStoreApp(KvStoreConfig(**cfg))
    if app == "lu":
        from repro.apps.lu import LuApp, LuConfig

        return LuApp(LuConfig(**cfg))
    if app == "water-spatial":
        from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig

        return WaterSpatialApp(WaterSpatialConfig(**cfg))
    raise ValueError(f"unknown bench app {app!r}")


def run_app_bench(
    app: str,
    procs: int,
    ft: bool,
    name: Optional[str] = None,
    profile: bool = False,
    **cfg: Any,
) -> BenchResult:
    """Run one fixed app configuration and measure the simulator."""
    from repro import DsmCluster, DsmConfig
    from repro.core import LogOverflowPolicy

    cluster = DsmCluster(
        DsmConfig(num_procs=procs),
        ft=ft,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.2, fp),
    )
    application = _make_app(app, **cfg)

    profile_text = ""
    if profile:
        prof = cProfile.Profile()
        t0 = time.perf_counter()
        prof.enable()
        result = cluster.run(application)
        prof.disable()
        wall = time.perf_counter() - t0
        buf = io.StringIO()
        pstats.Stats(prof, stream=buf).sort_stats("tottime").print_stats(12)
        profile_text = buf.getvalue()
    else:
        t0 = time.perf_counter()
        result = cluster.run(application)
        wall = time.perf_counter() - t0

    return BenchResult(
        name or f"{app}-{'ft' if ft else 'base'}-p{procs}",
        wall,
        events=cluster.engine.steps,
        virtual_time=result.wall_time,
        total_msgs=result.traffic.total_msgs,
        total_bytes=result.traffic.total_bytes,
        profile_text=profile_text,
    )


#: (name, app, procs, ft, config) — fixed so results are comparable
APP_SUITE: List[Tuple[str, str, int, bool, Dict[str, Any]]] = [
    ("counter-ft", "counter", 4, True, {"steps": 8, "n_elements": 512}),
    ("lu-base", "lu", 4, False, {"matrix_size": 96, "block_size": 8}),
    ("lu-ft", "lu", 4, True, {"matrix_size": 96, "block_size": 8}),
    (
        "water-spatial-ft",
        "water-spatial",
        8,
        True,
        {"n_molecules": 216, "steps": 3},
    ),
]

SMOKE_APP_SUITE: List[Tuple[str, str, int, bool, Dict[str, Any]]] = [
    ("counter-ft", "counter", 4, True, {"steps": 6, "n_elements": 512}),
    ("lu-base", "lu", 4, False, {"matrix_size": 64, "block_size": 8}),
]


def run_suite(smoke: bool = False, profile: bool = False) -> Dict[str, Any]:
    """Run the full micro + app suite; returns the structured report."""
    micro_budget = 20_000 if smoke else 100_000
    diff_budget = 2_000 if smoke else 10_000
    results: List[BenchResult] = [
        bench_engine_timers(micro_budget),
        bench_engine_ready_queue(micro_budget),
        bench_vclock(micro_budget * 2),
        bench_vclock(micro_budget, width=64, name="vclock.lattice.w64"),
        bench_vclock(micro_budget, width=256, name="vclock.lattice.w256"),
        bench_diff(diff_budget),
        bench_diff(diff_budget, name="diff.sparse"),
        bench_diff(diff_budget, name="diff.dense"),
        bench_diff(diff_budget, name="diff.fullpage"),
    ]
    apps = SMOKE_APP_SUITE if smoke else APP_SUITE
    for bench_name, app, procs, ft, cfg in apps:
        results.append(
            run_app_bench(app, procs, ft, name=bench_name, profile=profile, **cfg)
        )

    event_benches = [r for r in results if r.events]
    total_events = sum(r.events for r in event_benches)
    total_wall = sum(r.wall_s for r in event_benches)
    return {
        "schema": 1,
        "suite": "core-smoke" if smoke else "core",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "events_per_sec": (
            round(total_events / total_wall, 3) if total_wall else 0.0
        ),
        "wall_s": round(sum(r.wall_s for r in results), 4),
        "benches": [r.as_dict() for r in results],
        "profiles": {
            r.name: r.profile_text for r in results if r.profile_text
        },
    }


# ---------------------------------------------------------------------------
# scale-out suite
# ---------------------------------------------------------------------------
#: node counts of the scaling curve (``--suite scale``)
SCALE_NODE_COUNTS: List[int] = [8, 64, 128, 256]
SMOKE_SCALE_NODE_COUNTS: List[int] = [8, 64]
SCALE_APPS: List[str] = ["counter", "kvstore"]


def _scale_cfg(app: str, procs: int) -> Dict[str, Any]:
    """Weak-scaling configs: per-process work stays constant as N grows."""
    if app == "counter":
        return {"steps": 3, "n_elements": 16 * procs}
    if app == "kvstore":
        return {
            "steps": 2,
            "n_keys": 8 * procs,
            "n_stripes": min(procs, 64),
            "puts_per_step": 4,
        }
    raise ValueError(f"unknown scale app {app!r}")


def run_scale_suite(smoke: bool = False, profile: bool = False) -> Dict[str, Any]:
    """Events/sec and FT virtual-time overhead vs node count.

    Each (app, N) point runs the same weak-scaled configuration with the
    FT layer off and on: events/sec of the FT run is the throughput
    curve, and the ratio of FT to base *virtual* time is the protocol
    overhead the paper reports (how much slower the simulated execution
    is with logging/checkpointing enabled).
    """
    node_counts = SMOKE_SCALE_NODE_COUNTS if smoke else SCALE_NODE_COUNTS
    results: List[BenchResult] = []
    curve: List[Dict[str, Any]] = []
    for app in SCALE_APPS:
        for procs in node_counts:
            cfg = _scale_cfg(app, procs)
            base = run_app_bench(
                app, procs, False, name=f"{app}.base.{procs}", **cfg
            )
            ftr = run_app_bench(
                app,
                procs,
                True,
                name=f"{app}.ft.{procs}",
                profile=profile and procs == node_counts[-1],
                **cfg,
            )
            results += [base, ftr]
            curve.append(
                {
                    "app": app,
                    "procs": procs,
                    "events_per_sec": round(ftr.events_per_sec, 3),
                    "base_virtual_time": base.virtual_time,
                    "ft_virtual_time": ftr.virtual_time,
                    "ft_time_overhead": (
                        round(ftr.virtual_time / base.virtual_time, 4)
                        if base.virtual_time
                        else None
                    ),
                }
            )

    total_events = sum(r.events for r in results)
    total_wall = sum(r.wall_s for r in results)
    return {
        "schema": 1,
        "suite": "scale-smoke" if smoke else "scale",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "node_counts": node_counts,
        "events_per_sec": (
            round(total_events / total_wall, 3) if total_wall else 0.0
        ),
        "wall_s": round(total_wall, 4),
        "benches": [r.as_dict() for r in results],
        "curve": curve,
        "profiles": {
            r.name: r.profile_text for r in results if r.profile_text
        },
    }


def check_scale_report(
    path: str, report: Dict[str, Any], budget: float = 0.30
) -> Tuple[bool, str]:
    """Scaling gate: per app, events/sec at the largest node count both
    the baseline and this run measured must be within ``budget``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        return False, f"no baseline at {path}: {exc}"
    baseline = payload.get("after") or payload.get("before") or {}
    base_points = {
        (c["app"], c["procs"]): float(c["events_per_sec"] or 0.0)
        for c in baseline.get("curve", [])
    }
    ok, msgs = True, []
    for app in {c["app"] for c in report.get("curve", [])}:
        comparable = [
            c
            for c in report["curve"]
            if c["app"] == app and (app, c["procs"]) in base_points
        ]
        if not comparable:
            ok = False
            msgs.append(f"{app}: no comparable baseline point")
            continue
        point = max(comparable, key=lambda c: c["procs"])
        base = base_points[(app, point["procs"])]
        cur = float(point["events_per_sec"])
        floor = base * (1.0 - budget)
        msgs.append(
            f"{app}@{point['procs']}: current={cur:,.0f} "
            f"baseline={base:,.0f} floor={floor:,.0f}"
        )
        if not base or cur < floor:
            ok = False
    if not msgs:
        return False, "report has no scaling curve"
    return ok, "; ".join(msgs)


# ---------------------------------------------------------------------------
# reporting / regression gate
# ---------------------------------------------------------------------------
def _fmt_rate(v: float) -> str:
    """Rates >= 10 as grouped integers; small rates keep their precision."""
    return f"{v:,.0f}" if v >= 10 else f"{v:.3g}"


def render_report(report: Dict[str, Any]) -> str:
    from repro.render import Table

    table = Table(
        f"repro bench — {report['suite']} suite "
        f"({_fmt_rate(report['events_per_sec'])} events/sec aggregate, "
        f"{report['wall_s']:.2f} s wall)",
        ["bench", "wall (s)", "events/sec", "ops/sec", "virtual time (ms)", "msgs"],
    )
    for b in report["benches"]:
        table.add(
            b["name"],
            f"{b['wall_s']:.3f}",
            _fmt_rate(b["events_per_sec"]) if b["events"] else "-",
            _fmt_rate(b["ops_per_sec"]) if b["ops"] else "-",
            f"{b['virtual_time'] * 1e3:.3f}" if b["virtual_time"] else "-",
            b["total_msgs"] or "-",
        )
    out = table.render()
    if report.get("curve"):
        curve = Table(
            "scaling curve (FT runs)",
            ["app", "procs", "events/sec", "base vt (ms)", "ft vt (ms)", "ft overhead"],
        )
        for c in report["curve"]:
            over = c.get("ft_time_overhead")
            curve.add(
                c["app"],
                c["procs"],
                _fmt_rate(c["events_per_sec"]),
                f"{c['base_virtual_time'] * 1e3:.3f}",
                f"{c['ft_virtual_time'] * 1e3:.3f}",
                f"{over:.2f}x" if over else "-",
            )
        out += "\n\n" + curve.render()
    for name, text in report.get("profiles", {}).items():
        out += f"\n\nprofile: {name}\n{text}"
    return out


def write_report(path: str, report: Dict[str, Any]) -> Dict[str, Any]:
    """Record ``report`` as the current ("after") state of ``path``.

    The first measurement ever written becomes the pinned "before"
    baseline; later writes only replace "after", so the file always
    documents the speedup since the baseline was taken.
    """
    payload: Dict[str, Any] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {}
    slim = {k: v for k, v in report.items() if k != "profiles"}
    if "before" not in payload:
        payload["before"] = slim
    payload["after"] = slim
    before_eps = payload["before"].get("events_per_sec") or 0
    payload["speedup_events_per_sec"] = (
        round(slim["events_per_sec"] / before_eps, 3) if before_eps else None
    )
    payload["recorded"] = time.strftime("%Y-%m-%d", time.gmtime())
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return payload


def check_report(
    path: str, report: Dict[str, Any], budget: float = 0.30
) -> Tuple[bool, str]:
    """Perf gate: current events/sec must be within ``budget`` of baseline.

    Compares against the committed "after" numbers (the perf state the
    repo claims); returns (ok, human-readable message).
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        return False, f"no baseline at {path}: {exc}"
    baseline = (payload.get("after") or payload.get("before") or {}).get(
        "events_per_sec"
    )
    # tolerate baselines recorded before rates became floats (old
    # BENCH_core.json files store integers)
    try:
        baseline = float(baseline)
    except (TypeError, ValueError):
        baseline = 0.0
    if not baseline:
        return False, f"baseline {path} has no events_per_sec"
    current = float(report["events_per_sec"])
    floor = baseline * (1.0 - budget)
    msg = (
        f"events/sec current={current:,.2f} baseline={baseline:,.2f} "
        f"floor={floor:,.2f} (budget {budget:.0%})"
    )
    return current >= floor, msg
