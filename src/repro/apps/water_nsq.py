"""Water-Nsquared analog: O(n²) cutoff molecular dynamics with locks.

Mirrors the SPLASH-2 Water-Nsquared sharing pattern (§5.1 of the paper):
a small shared footprint (positions / velocities / forces), pairwise
force interactions with a cutoff radius computed by each process for its
block of molecules against all later molecules, and **lock-protected
accumulation** into the shared force array — the app is lock-intensive
with only a few barriers per step, which is why its FT overhead in the
paper is tiny (0.6 % with L = 0.1).

The physics is a soft Lennard-Jones-like pair force in a unit box with
minimum-image wrapping — enough to make the data flow (and therefore the
diffs) real without simulating actual water chemistry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List

import numpy as np

from repro.apps.base import AppConfig, DsmApp, block_partition, phase_loop
from repro.dsm.protocol import DsmProcess

__all__ = ["WaterNsqConfig", "WaterNsqApp"]


@dataclass
class WaterNsqConfig(AppConfig):
    """Scaled-down Water-Nsquared problem (paper: 19,683 molecules)."""

    n_molecules: int = 64
    steps: int = 3
    cutoff: float = 0.45  # in box units
    n_locks: int = 16  # force-array lock granularity
    dt: float = 1e-3
    pair_cost: float = 3e-6  # virtual seconds per pair interaction
    integrate_cost: float = 0.5e-6  # per molecule
    #: static shared parameter table (SPLASH water keeps large constant
    #: arrays in shared memory); sized in elements, written once
    static_elements: int = 0


def _pair_forces(
    pos: np.ndarray, lo: int, hi: int, cutoff: float
) -> tuple[np.ndarray, int]:
    """Forces from pairs (i, j) with lo <= i < hi, j > i; returns (f, npairs)."""
    n = len(pos)
    f = np.zeros_like(pos)
    npairs = 0
    cutoff2 = cutoff * cutoff
    for i in range(lo, hi):
        d = pos[i + 1 :] - pos[i]
        d -= np.rint(d)  # minimum image in the unit box
        r2 = np.einsum("ij,ij->i", d, d)
        mask = (r2 < cutoff2) & (r2 > 1e-12)
        idx = np.flatnonzero(mask)
        npairs += len(idx)
        if len(idx) == 0:
            continue
        r2m = r2[idx]
        # soft LJ-like magnitude, bounded to keep the integrator stable
        mag = np.clip(1e-4 / (r2m * r2m) - 1e-4 / r2m, -10.0, 10.0)
        contrib = (mag / np.sqrt(r2m))[:, None] * d[idx]
        f[i] -= contrib.sum(axis=0)
        f[i + 1 + idx] += contrib
    return f, npairs


def reference_water_nsq(cfg: WaterNsqConfig) -> np.ndarray:
    """Sequential golden model: final positions after cfg.steps."""
    pos, vel = _initial_conditions(cfg)
    for _ in range(cfg.steps):
        f, _ = _pair_forces(pos, 0, cfg.n_molecules, cfg.cutoff)
        vel += cfg.dt * f
        pos += cfg.dt * vel
        pos %= 1.0
    return pos


def _initial_conditions(cfg: WaterNsqConfig) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(cfg.seed)
    side = int(np.ceil(cfg.n_molecules ** (1 / 3)))
    grid = np.stack(
        np.meshgrid(*([np.arange(side)] * 3), indexing="ij"), axis=-1
    ).reshape(-1, 3)[: cfg.n_molecules]
    pos = (grid + 0.5) / side + rng.normal(0, 0.01, (cfg.n_molecules, 3))
    pos %= 1.0
    vel = rng.normal(0, 0.05, (cfg.n_molecules, 3))
    return pos, vel


class WaterNsqApp(DsmApp):
    name = "water-nsq"

    def __init__(self, cfg: WaterNsqConfig | None = None) -> None:
        self.cfg = cfg or WaterNsqConfig()

    # ------------------------------------------------------------------
    def configure(self, cluster: Any) -> None:
        n = self.cfg.n_molecules
        self.r_pos = cluster.allocate("pos", n * 3)
        self.r_vel = cluster.allocate("vel", n * 3)
        self.r_force = cluster.allocate("force", n * 3)
        if self.cfg.static_elements:
            self.r_params = cluster.allocate("params", self.cfg.static_elements)

    def init_shared(self, cluster: Any) -> None:
        pos, vel = _initial_conditions(self.cfg)
        cluster.write_initial(self.r_pos, pos.ravel())
        cluster.write_initial(self.r_vel, vel.ravel())
        if self.cfg.static_elements:
            rng = np.random.default_rng(self.cfg.seed + 1)
            cluster.write_initial(
                self.r_params, rng.uniform(0, 1, self.cfg.static_elements)
            )

    def init_state(self, pid: int) -> Dict[str, Any]:
        return {"step": 0, "phase": 0}

    # ------------------------------------------------------------------
    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        cfg = self.cfg
        n = cfg.n_molecules
        part = block_partition(n, proc.n, proc.pid)
        if cfg.static_elements:
            # one-time read of the static parameter table (fetch, then
            # the pages stay valid for the whole run)
            yield from proc.read_range(self.r_params, 0, cfg.static_elements)
        lock_blocks = [
            block_partition(n, cfg.n_locks, b) for b in range(cfg.n_locks)
        ]

        def phase_clear(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            view = yield from proc.write_range(
                self.r_force, part.start * 3, part.stop * 3
            )
            view[:] = 0.0
            yield from proc.barrier()

        def phase_forces(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            flat = yield from proc.read_range(self.r_pos, 0, n * 3)
            pos = flat.reshape(n, 3).copy()
            f, npairs = _pair_forces(pos, part.start, part.stop, cfg.cutoff)
            yield from proc.compute(cfg.pair_cost * max(npairs, 1))
            touched = np.flatnonzero(np.abs(f).sum(axis=1) > 0)
            for b, block in enumerate(lock_blocks):
                sel = touched[(touched >= block.start) & (touched < block.stop)]
                if len(sel) == 0:
                    continue
                yield from proc.acquire(b)
                view = yield from proc.write_range(
                    self.r_force, block.start * 3, block.stop * 3
                )
                fv = view.reshape(-1, 3)
                fv[sel - block.start] += f[sel]
                yield from proc.release(b)
            yield from proc.barrier()

        def phase_integrate(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            fview = yield from proc.read_range(
                self.r_force, part.start * 3, part.stop * 3
            )
            vview = yield from proc.write_range(
                self.r_vel, part.start * 3, part.stop * 3
            )
            pview = yield from proc.write_range(
                self.r_pos, part.start * 3, part.stop * 3
            )
            f = fview.reshape(-1, 3)
            v = vview.reshape(-1, 3)
            p = pview.reshape(-1, 3)
            v += cfg.dt * f
            p += cfg.dt * v
            p %= 1.0
            yield from proc.compute(cfg.integrate_cost * len(part))
            yield from proc.barrier()

        yield from phase_loop(
            proc, state, cfg.steps, [phase_clear, phase_forces, phase_integrate]
        )

    # ------------------------------------------------------------------
    def check_result(self, cluster: Any) -> None:
        got = cluster.shared_snapshot(self.r_pos)[: self.cfg.n_molecules * 3]
        want = reference_water_nsq(self.cfg).ravel()
        np.testing.assert_allclose(got, want, rtol=1e-8, atol=1e-10)
