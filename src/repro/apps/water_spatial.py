"""Water-Spatial analog: 3-D cell-decomposed molecular dynamics.

Mirrors the SPLASH-2 Water-Spatial sharing pattern: the box is divided
into cells, each process owns a contiguous slab of cells and *owner
computes* the forces on molecules in its cells by scanning the 27-cell
neighborhood (reading boundary cells owned by neighbors). The access
pattern is regular and iteration-structured — which is what produces the
paper's "self-synchronizing" checkpoint behaviour (§5.3): with the
log-overflow policy each iteration generates a near-constant diff volume,
forcing a checkpoint every iteration, and LLT flattens the stable log
after the trimming information has propagated.

The shared footprint is dominated by the cell-membership table, giving
this app the largest footprint of the three (paper: 257 MB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.apps.base import AppConfig, DsmApp, block_partition, phase_loop
from repro.dsm.protocol import DsmProcess

__all__ = ["WaterSpatialConfig", "WaterSpatialApp"]


@dataclass
class WaterSpatialConfig(AppConfig):
    """Scaled-down Water-Spatial problem (paper: 262,144 molecules)."""

    n_molecules: int = 216
    steps: int = 3
    cells_per_side: int = 4
    cell_capacity: int = 64  # membership slots per cell
    dt: float = 1e-3
    cutoff: float = 0.3
    pair_cost: float = 2e-6
    bin_cost: float = 0.3e-6
    #: static shared parameter table, written once (see water_nsq)
    static_elements: int = 0


def _initial_conditions(cfg: WaterSpatialConfig) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(cfg.seed)
    side = int(np.ceil(cfg.n_molecules ** (1 / 3)))
    grid = np.stack(
        np.meshgrid(*([np.arange(side)] * 3), indexing="ij"), axis=-1
    ).reshape(-1, 3)[: cfg.n_molecules]
    pos = (grid + 0.5) / side + rng.normal(0, 0.01, (cfg.n_molecules, 3))
    pos %= 1.0
    vel = rng.normal(0, 0.05, (cfg.n_molecules, 3))
    return pos, vel


def _cell_of(pos: np.ndarray, c: int) -> np.ndarray:
    """Cell index (flattened x-major) per molecule."""
    coords = np.clip((pos * c).astype(np.int64), 0, c - 1)
    return coords[:, 0] * c * c + coords[:, 1] * c + coords[:, 2]


def _neighbors(cell: int, c: int) -> List[int]:
    x, rem = divmod(cell, c * c)
    y, z = divmod(rem, c)
    out = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                out.append(
                    ((x + dx) % c) * c * c + ((y + dy) % c) * c + ((z + dz) % c)
                )
    return sorted(set(out))


def _forces_for_cell(
    members: np.ndarray,
    neighbor_members: np.ndarray,
    pos: np.ndarray,
    cfg: WaterSpatialConfig,
) -> Tuple[np.ndarray, int]:
    """Owner-computes forces on ``members`` from all neighbor molecules."""
    f = np.zeros((len(members), 3))
    count = 0
    cut2 = cfg.cutoff * cfg.cutoff
    # the neighbor gather is invariant across members; hoisting it out of
    # the loop changes no values (same fancy-index, same subtraction)
    nb_pos = pos[neighbor_members]
    for k, i in enumerate(members):
        d = nb_pos - pos[i]
        d -= np.rint(d)
        r2 = np.einsum("ij,ij->i", d, d)
        mask = (r2 < cut2) & (r2 > 1e-12)
        idx = np.flatnonzero(mask)
        count += len(idx)
        if len(idx) == 0:
            continue
        r2m = r2[idx]
        mag = np.clip(1e-4 / (r2m * r2m) - 1e-4 / r2m, -10.0, 10.0)
        f[k] -= ((mag / np.sqrt(r2m))[:, None] * d[idx]).sum(axis=0)
    return f, count


def reference_water_spatial(cfg: WaterSpatialConfig) -> np.ndarray:
    """Sequential golden model using the identical cell/order scheme."""
    pos, vel = _initial_conditions(cfg)
    c = cfg.cells_per_side
    n_cells = c * c * c
    for _ in range(cfg.steps):
        cell_idx = _cell_of(pos, c)
        members_by_cell = [
            np.flatnonzero(cell_idx == cell) for cell in range(n_cells)
        ]
        force = np.zeros_like(pos)
        for cell in range(n_cells):
            members = members_by_cell[cell]
            if len(members) == 0:
                continue
            nb = np.concatenate(
                [members_by_cell[c2] for c2 in _neighbors(cell, c)]
            )
            nb.sort()
            f, _ = _forces_for_cell(members, nb, pos, cfg)
            force[members] = f
        vel += cfg.dt * force
        pos += cfg.dt * vel
        pos %= 1.0
    return pos


class WaterSpatialApp(DsmApp):
    name = "water-spatial"

    def __init__(self, cfg: WaterSpatialConfig | None = None) -> None:
        self.cfg = cfg or WaterSpatialConfig()

    # ------------------------------------------------------------------
    def configure(self, cluster: Any) -> None:
        cfg = self.cfg
        n = cfg.n_molecules
        n_cells = cfg.cells_per_side ** 3
        self.r_pos = cluster.allocate("pos", n * 3)
        self.r_vel = cluster.allocate("vel", n * 3)
        self.r_force = cluster.allocate("force", n * 3)
        # membership table: [count, slot0, slot1, ...] per cell
        self.r_cells = cluster.allocate(
            "cells", n_cells * (cfg.cell_capacity + 1)
        )
        if cfg.static_elements:
            self.r_params = cluster.allocate("params", cfg.static_elements)

    def init_shared(self, cluster: Any) -> None:
        pos, vel = _initial_conditions(self.cfg)
        cluster.write_initial(self.r_pos, pos.ravel())
        cluster.write_initial(self.r_vel, vel.ravel())
        if self.cfg.static_elements:
            rng = np.random.default_rng(self.cfg.seed + 1)
            cluster.write_initial(
                self.r_params, rng.uniform(0, 1, self.cfg.static_elements)
            )

    def init_state(self, pid: int) -> Dict[str, Any]:
        return {"step": 0, "phase": 0}

    # ------------------------------------------------------------------
    def _cell_slice(self, cell: int) -> Tuple[int, int]:
        w = self.cfg.cell_capacity + 1
        return cell * w, (cell + 1) * w

    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        cfg = self.cfg
        n = cfg.n_molecules
        c = cfg.cells_per_side
        n_cells = c * c * c
        my_cells = block_partition(n_cells, proc.n, proc.pid)
        if cfg.static_elements:
            yield from proc.read_range(self.r_params, 0, cfg.static_elements)

        def read_cell_members(cell: int) -> Iterator[Any]:
            lo, hi = self._cell_slice(cell)
            view = yield from proc.read_range(self.r_cells, lo, hi)
            count = int(view[0])
            return view[1 : 1 + count].astype(np.int64)

        def phase_bin(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            flat = yield from proc.read_range(self.r_pos, 0, n * 3)
            pos = flat.reshape(n, 3)
            cell_idx = _cell_of(pos, c)
            yield from proc.compute(cfg.bin_cost * n)
            lo, _ = self._cell_slice(my_cells.start)
            _, hi = self._cell_slice(my_cells.stop - 1)
            view = yield from proc.write_range(self.r_cells, lo, hi)
            for cell in my_cells:
                members = np.flatnonzero(cell_idx == cell)
                if len(members) > cfg.cell_capacity:
                    raise RuntimeError(f"cell {cell} overflow: {len(members)}")
                base = self._cell_slice(cell)[0] - lo
                view[base] = len(members)
                view[base + 1 : base + 1 + len(members)] = members
            yield from proc.barrier()

        def phase_forces(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            flat = yield from proc.read_range(self.r_pos, 0, n * 3)
            pos = flat.reshape(n, 3).copy()
            owned: List[Tuple[np.ndarray, np.ndarray]] = []
            total_pairs = 0
            for cell in my_cells:
                members = yield from read_cell_members(cell)
                if len(members) == 0:
                    continue
                nb_lists = []
                for c2 in _neighbors(cell, c):
                    nb_lists.append((yield from read_cell_members(c2)))
                nb = np.concatenate(nb_lists) if nb_lists else np.array([], dtype=np.int64)
                nb.sort()
                f, pairs = _forces_for_cell(members, nb, pos, cfg)
                total_pairs += pairs
                owned.append((members, f))
            yield from proc.compute(cfg.pair_cost * max(total_pairs, 1))
            for members, f in owned:
                for k, i in enumerate(members):
                    view = yield from proc.write_range(
                        self.r_force, int(i) * 3, int(i) * 3 + 3
                    )
                    view[:] = f[k]
            yield from proc.barrier()

        def phase_integrate(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            for cell in my_cells:
                members = yield from read_cell_members(cell)
                for i in members:
                    i = int(i)
                    fv = yield from proc.read_range(self.r_force, i * 3, i * 3 + 3)
                    vv = yield from proc.write_range(self.r_vel, i * 3, i * 3 + 3)
                    pv = yield from proc.write_range(self.r_pos, i * 3, i * 3 + 3)
                    vv += cfg.dt * fv
                    pv += cfg.dt * vv
                    pv %= 1.0
            yield from proc.barrier()

        yield from phase_loop(
            proc, state, cfg.steps, [phase_bin, phase_forces, phase_integrate]
        )

    # ------------------------------------------------------------------
    def check_result(self, cluster: Any) -> None:
        got = cluster.shared_snapshot(self.r_pos)[: self.cfg.n_molecules * 3]
        want = reference_water_spatial(self.cfg).ravel()
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)
