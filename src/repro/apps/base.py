"""Application contract for DSM workloads.

An application is written against the public DSM API
(:class:`repro.dsm.protocol.DsmProcess`) as a coroutine. Two rules make
it checkpointable and replayable (DESIGN.md §1, "processor state"
substitution):

1. **All private mutable state lives in the ``state`` dict** handed to
   :meth:`DsmApp.run` (NumPy arrays, scalars, seeded RNGs — anything
   pickleable). Locals are fine only if derived deterministically from
   ``state`` and shared reads.
2. **``run`` is resumable**: given a ``state`` captured at any
   ``proc.ckpt_point()`` it continues exactly where that state says.
   The :func:`phase_loop` helper structures an app as numbered phases per
   step and inserts the safe points so that rule 2 holds by construction.

Determinism: any randomness must come from RNGs stored in ``state`` (so
they are checkpointed) and seeded from the app config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.dsm.config import DsmConfig
from repro.dsm.protocol import DsmProcess

__all__ = ["AppConfig", "DsmApp", "phase_loop", "block_partition"]


@dataclass
class AppConfig:
    """Base class for per-application configuration."""

    steps: int = 4
    seed: int = 42


class DsmApp:
    """One shared-memory workload."""

    name: str = "app"

    def configure(self, cluster: Any) -> None:
        """Allocate shared regions (and optionally assign homes)."""
        raise NotImplementedError

    def init_shared(self, cluster: Any) -> None:
        """Fill initial shared contents (before sharing starts).

        Runs once, outside the simulation, writing directly into every
        process's backing store so all copies begin identical — the
        stand-in for the sequential initialization phase of SPLASH-2
        programs.
        """

    def init_state(self, pid: int) -> Dict[str, Any]:
        """The initial private (checkpointable) state of process ``pid``."""
        raise NotImplementedError

    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        """The process body (coroutine). Must follow the resumability rules."""
        raise NotImplementedError

    def check_result(self, cluster: Any) -> None:
        """Optional invariant check on the final shared memory (tests)."""


PhaseFn = Callable[[DsmProcess, Dict[str, Any], int], Iterator[Any]]


def phase_loop(
    proc: DsmProcess,
    state: Dict[str, Any],
    steps: int,
    phases: Sequence[PhaseFn],
) -> Iterator[Any]:
    """Run ``phases`` for each step, resumable from ``state``.

    ``state['step']`` / ``state['phase']`` encode the position; a
    checkpoint-safe point precedes every phase, so a restored state
    re-enters exactly at the phase it was captured before.
    """
    state.setdefault("step", 0)
    state.setdefault("phase", 0)
    while state["step"] < steps:
        while state["phase"] < len(phases):
            yield from proc.ckpt_point()
            yield from phases[state["phase"]](proc, state, state["step"])
            state["phase"] += 1
        state["phase"] = 0
        state["step"] += 1
    yield from proc.ckpt_point()


def block_partition(n_items: int, n_procs: int, pid: int) -> range:
    """Contiguous block partition of ``range(n_items)`` for ``pid``."""
    base = n_items // n_procs
    extra = n_items % n_procs
    lo = pid * base + min(pid, extra)
    hi = lo + base + (1 if pid < extra else 0)
    return range(lo, hi)
