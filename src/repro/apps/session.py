"""DSM-backed session cache driven by a deterministic open-loop generator.

The serving workload the ROADMAP's north star asks for (open item 1):
instead of barrier-phased kernel iterations, each process is a frontend
serving a stream of user requests against a shared **session table** —
one float64 cell per session key, guarded by stripe locks exactly like
:mod:`repro.apps.kvstore`.

**Open-loop traffic.** Request arrival times are a pure function of the
configuration — exponential interarrivals at ``rate`` requests per
virtual second per process — and are *independent of service
completions*: the serving loop sleeps until the next arrival only when
it is ahead of schedule, and otherwise serves immediately, carrying the
backlog. That makes queueing delay (arrival → service start) an honest
overload/disruption signal: a crash stalls the cluster, arrivals keep
accumulating, and the post-recovery backlog shows up as a queueing-delay
spike that decays as the loop catches back up — the degradation the
windowed tail-latency series and the SLO reconvergence measure.

**Request synthesis** (all pure functions of ``(seed, pid, request)``,
so the resumable loop replays identically after recovery):

* each request belongs to a *user* drawn uniformly from the population;
* with probability ``session_affinity`` it touches the user's home key
  (session stickiness — per-user state concentrates on one cell),
  otherwise an independent key drawn from a zipfian popularity
  distribution over the whole table (hot shared keys);
* it is a read with probability ``read_fraction``, else a write.

Writes are additive with integer-valued deltas (the kvstore discipline),
so the final table is exact in float64 and independent of lock order and
crash schedules — crash-sweep's recovery-equivalence oracle holds for
every injection point. Reads return values that depend on interleaving
and are deliberately **not** stored in checkpointable state or asserted.

Latency observation happens through ``proc.obs`` (the per-node probe)
when an observer is attached, and costs nothing otherwise:

* ``lat.request`` — arrival → completion, per request;
* ``lat.request.read`` / ``lat.request.write`` — the same, split by op;
* ``lat.queue`` — arrival → service start (queueing delay only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

import numpy as np

from repro.apps.base import AppConfig, DsmApp, phase_loop
from repro.dsm.protocol import DsmProcess
from repro.sim.engine import Delay

__all__ = ["SessionConfig", "SessionApp"]

#: seed-stream tags (third element of the RNG seed tuple) so the arrival
#: process and per-request draws never collide with other apps' streams
_ARRIVAL_STREAM = 101
_REQUEST_STREAM = 202


@dataclass
class SessionConfig(AppConfig):
    steps: int = 3
    #: session table size (keys) and stripe-lock count
    n_keys: int = 256
    n_stripes: int = 8
    #: user population (per process — frontends have disjoint users)
    n_users: int = 32
    #: requests served per process per step (a barrier closes each step)
    requests_per_step: int = 8
    #: open-loop arrival rate, requests per virtual second per process
    rate: float = 4000.0
    #: fraction of requests that only read the session cell
    read_fraction: float = 0.75
    #: probability a request hits the user's sticky home key instead of
    #: an independent zipfian draw over the whole table
    session_affinity: float = 0.6
    #: zipf exponent for the non-sticky key popularity distribution
    zipf_s: float = 1.1
    #: service-time CPU charge per request
    compute_per_op: float = 2e-5

    def __post_init__(self) -> None:
        if self.n_stripes < 1 or self.n_stripes > self.n_keys:
            raise ValueError(
                f"n_stripes must be in [1, n_keys]: {self.n_stripes}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction not in [0,1]: {self.read_fraction}")
        if not 0.0 <= self.session_affinity <= 1.0:
            raise ValueError(
                f"session_affinity not in [0,1]: {self.session_affinity}"
            )


def _zipf_cdf(cfg: SessionConfig) -> np.ndarray:
    """Cumulative zipfian popularity over the key space (rank 1 hottest)."""
    weights = 1.0 / np.arange(1, cfg.n_keys + 1, dtype=np.float64) ** cfg.zipf_s
    return np.cumsum(weights / weights.sum())


def _request_params(
    cfg: SessionConfig, cdf: np.ndarray, pid: int, r: int
) -> Tuple[int, int, bool]:
    """(user, key, is_read) of request ``r`` of process ``pid``.

    Pure function of ``(seed, pid, r)`` — per-request RNG streams are
    created on the fly (nothing to checkpoint), the kvstore discipline.
    """
    rng = np.random.default_rng((cfg.seed, pid, _REQUEST_STREAM, r))
    u_user, u_aff, u_key, u_rw = rng.random(4)
    user = int(u_user * cfg.n_users) % cfg.n_users
    if u_aff < cfg.session_affinity:
        # sticky home key: a stable pseudo-random cell per (pid, user),
        # itself zipf-distributed so hot users share hot cells
        home = np.random.default_rng((cfg.seed, pid, _ARRIVAL_STREAM, user))
        key = int(np.searchsorted(cdf, home.random()))
    else:
        key = int(np.searchsorted(cdf, u_key))
    key = min(key, cfg.n_keys - 1)
    return user, key, bool(u_rw < cfg.read_fraction)


def _write_delta(pid: int, r: int) -> float:
    """Integer-valued session update (exact in float64, order-free)."""
    return float((pid + r) % 7 + 1)


class SessionApp(DsmApp):
    name = "session"

    def __init__(self, cfg: SessionConfig | None = None) -> None:
        self.cfg = cfg or SessionConfig()
        self._cdf = _zipf_cdf(self.cfg)
        #: per-pid arrival schedules, derived lazily from the config (not
        #: run state: pure, so sharing the cache across incarnations and
        #: replays is safe)
        self._arrivals: Dict[int, np.ndarray] = {}

    def configure(self, cluster: Any) -> None:
        self.r_sessions = cluster.allocate("sessions", self.cfg.n_keys)

    def init_state(self, pid: int) -> Dict[str, Any]:
        return {"step": 0, "phase": 0}

    # ------------------------------------------------------------------
    # the open-loop schedule
    # ------------------------------------------------------------------
    def arrivals(self, pid: int) -> np.ndarray:
        """Virtual arrival time of every request of process ``pid``."""
        arr = self._arrivals.get(pid)
        if arr is None:
            cfg = self.cfg
            n = cfg.steps * cfg.requests_per_step
            rng = np.random.default_rng((cfg.seed, pid, _ARRIVAL_STREAM))
            gaps = rng.exponential(1.0 / cfg.rate, size=n)
            arr = self._arrivals[pid] = np.cumsum(gaps)
        return arr

    def _stripe(self, key: int) -> int:
        return key * self.cfg.n_stripes // self.cfg.n_keys

    # ------------------------------------------------------------------
    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        cfg = self.cfg
        arrivals = self.arrivals(proc.pid)

        def phase_serve(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            for i in range(cfg.requests_per_step):
                r = step * cfg.requests_per_step + i
                arrival = float(arrivals[r])
                now = proc.engine.now
                if now < arrival:
                    # ahead of schedule: idle until the arrival. A bare
                    # Delay charges no TimeBucket, so Figure-3 breakdowns
                    # and span reconciliation stay exact
                    yield Delay(arrival - now)
                service_start = proc.engine.now
                _user, key, is_read = _request_params(cfg, self._cdf, proc.pid, r)
                stripe = self._stripe(key)
                yield from proc.acquire(stripe)
                if is_read:
                    yield from proc.read_range(self.r_sessions, key, key + 1)
                else:
                    view = yield from proc.write_range(
                        self.r_sessions, key, key + 1
                    )
                    view[0] = view[0] + _write_delta(proc.pid, r)
                yield from proc.compute(cfg.compute_per_op)
                yield from proc.release(stripe)
                obs = proc.obs
                if obs is not None:
                    done = proc.engine.now
                    obs.app_latency("lat.queue").observe(service_start - arrival)
                    obs.app_latency("lat.request").observe(done - arrival)
                    cls = "read" if is_read else "write"
                    obs.app_latency(f"lat.request.{cls}").observe(done - arrival)
            yield from proc.barrier()

        yield from phase_loop(proc, state, cfg.steps, [phase_serve])

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def expected_total(self, num_procs: int) -> float:
        cfg = self.cfg
        total = 0.0
        for pid in range(num_procs):
            for r in range(cfg.steps * cfg.requests_per_step):
                _user, _key, is_read = _request_params(cfg, self._cdf, pid, r)
                if not is_read:
                    total += _write_delta(pid, r)
        return total

    def check_result(self, cluster: Any) -> None:
        want = self.expected_total(cluster.config.num_procs)
        got = float(cluster.shared_snapshot(self.r_sessions).sum())
        assert got == want, f"session table total {got} != {want}"
