"""SPLASH-2-analog applications driving the DSM (§5).

Scaled-down but algorithmically faithful reimplementations of the three
paper workloads, preserving the sharing patterns that drive the results:

* :mod:`repro.apps.barnes` — Barnes-Hut N-body: irregular access,
  barrier-intensive, imbalanced update volume across nodes.
* :mod:`repro.apps.water_nsq` — Water-Nsquared: O(n²) cutoff molecular
  dynamics with per-molecule locks, small footprint.
* :mod:`repro.apps.water_spatial` — Water-Spatial: 3-D cell-decomposed
  MD, regular iteration structure.
* :mod:`repro.apps.lu` — blocked LU decomposition (extra workload).
"""

from repro.apps.base import AppConfig, DsmApp

__all__ = ["AppConfig", "DsmApp"]  # app classes re-exported below once defined

# real workloads are imported lazily to keep partial builds importable
try:  # pragma: no cover
    from repro.apps.barnes import BarnesApp, BarnesConfig
    from repro.apps.counter import CounterApp, CounterConfig
    from repro.apps.kvstore import KvStoreApp, KvStoreConfig
    from repro.apps.water_nsq import WaterNsqApp, WaterNsqConfig
    from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig
    from repro.apps.lu import LuApp, LuConfig

    __all__ += [
        "BarnesApp", "BarnesConfig", "CounterApp", "CounterConfig",
        "KvStoreApp", "KvStoreConfig",
        "WaterNsqApp", "WaterNsqConfig",
        "WaterSpatialApp", "WaterSpatialConfig", "LuApp", "LuConfig",
    ]
except ImportError:
    pass
