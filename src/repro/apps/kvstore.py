"""Lock-striped key-value store (scale-out workload).

The scaling counterpart to :mod:`repro.apps.counter`: a shared array of
``n_keys`` float64 cells treated as a key-value table, guarded by
``n_stripes`` stripe locks (contiguous key ranges, lock managers spread
round-robin over processes). Each step every process performs a batch of
additive *puts* to pseudo-random keys under the owning stripe lock, then
after a barrier scans the whole table. This drives exactly the paths
that dominate past 8 nodes — lock grant forwarding, write-notice
distribution at barriers, multi-writer diffs to remote homes — with a
contention profile tunable independently of the process count.

Puts are **additive with integer-valued deltas**, so the final table is
exact in float64 and independent of lock-acquisition order; keys are
drawn from per-``(seed, pid, step)`` RNG streams created on the fly
(no RNG state to checkpoint), keeping every phase resumable by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator

import numpy as np

from repro.apps.base import AppConfig, DsmApp, phase_loop
from repro.dsm.protocol import DsmProcess

__all__ = ["KvStoreConfig", "KvStoreApp"]


@dataclass
class KvStoreConfig(AppConfig):
    steps: int = 2
    n_keys: int = 256
    n_stripes: int = 8
    puts_per_step: int = 4
    compute_per_op: float = 2e-5

    def __post_init__(self) -> None:
        if self.n_stripes < 1 or self.n_stripes > self.n_keys:
            raise ValueError(
                f"n_stripes must be in [1, n_keys]: {self.n_stripes}"
            )


def _op_keys(cfg: KvStoreConfig, pid: int, step: int) -> np.ndarray:
    """The keys process ``pid`` puts to in ``step`` (deterministic)."""
    rng = np.random.default_rng((cfg.seed, pid, step))
    return rng.integers(0, cfg.n_keys, size=cfg.puts_per_step)


def _op_delta(pid: int, step: int, op: int) -> float:
    """Integer-valued put delta (exact in float64, order-independent)."""
    return float((pid + step + op) % 7 + 1)


class KvStoreApp(DsmApp):
    name = "kvstore"

    def __init__(self, cfg: KvStoreConfig | None = None) -> None:
        self.cfg = cfg or KvStoreConfig()

    def configure(self, cluster: Any) -> None:
        self.r_kv = cluster.allocate("kv", self.cfg.n_keys)

    def init_state(self, pid: int) -> Dict[str, Any]:
        return {"step": 0, "phase": 0, "sum_seen": 0.0}

    def _stripe(self, key: int) -> int:
        return key * self.cfg.n_stripes // self.cfg.n_keys

    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        cfg = self.cfg

        def phase_put(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            keys = _op_keys(cfg, proc.pid, step)
            for op, key in enumerate(keys.tolist()):
                stripe = self._stripe(key)
                yield from proc.acquire(stripe)
                view = yield from proc.write_range(self.r_kv, key, key + 1)
                view[0] = view[0] + _op_delta(proc.pid, step, op)
                yield from proc.compute(cfg.compute_per_op)
                yield from proc.release(stripe)
            yield from proc.barrier()

        def phase_scan(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            view = yield from proc.read_range(self.r_kv, 0, cfg.n_keys)
            state["sum_seen"] = float(view.sum())
            yield from proc.barrier()

        yield from phase_loop(proc, state, cfg.steps, [phase_put, phase_scan])

    def expected_total(self, num_procs: int) -> float:
        cfg = self.cfg
        return float(
            sum(
                _op_delta(pid, step, op)
                for pid in range(num_procs)
                for step in range(cfg.steps)
                for op in range(cfg.puts_per_step)
            )
        )

    def check_result(self, cluster: Any) -> None:
        want = self.expected_total(cluster.config.num_procs)
        snap = cluster.shared_snapshot(self.r_kv)
        got = float(snap.sum())
        assert got == want, f"kv total {got} != {want}"
        for host in cluster.hosts:
            seen = host.state.get("sum_seen")
            assert seen == want, f"p{host.pid}: scan sum {seen} != {want}"
