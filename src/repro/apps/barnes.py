"""Barnes-Hut N-body analog (SPLASH-2 Barnes).

Reproduces the sharing pattern that makes Barnes the paper's stress case
(§5.2): a **shared octree** rebuilt every step (so the diff volume per
byte of footprint is the largest of the three apps — the paper needed
L = 1.0 for it), **irregular access**, **many barriers per step** (six
phases), and **imbalanced update volume**: bodies are partitioned by
distance from the cluster center, so the process owning the dense core
inserts deeper into the tree, writes more node pages and computes more
interactions — exactly the imbalance that, combined with the
log-overflow checkpointing policy, inflates barrier wait times in the
fault-tolerant run.

The octree is canonical (its shape does not depend on insertion order),
so a sequential golden model reproduces the distributed result bit-for-
bit modulo node numbering — which the result check exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.apps.base import AppConfig, DsmApp, block_partition, phase_loop
from repro.dsm.protocol import DsmProcess

__all__ = ["BarnesConfig", "BarnesApp"]

# node record layout (float64 slots)
F_TYPE = 0  # 0 empty slot, 1 leaf, 2 internal
F_BODY = 1
F_CX, F_CY, F_CZ = 2, 3, 4
F_HALF = 5
F_MASS = 6
F_MX, F_MY, F_MZ = 7, 8, 9
F_CHILD0 = 10
NODE_W = 18
EMPTY, LEAF, INTERNAL = 0.0, 1.0, 2.0

ALLOC_LOCK = 0
OCTANT_LOCK0 = 1  # locks 1..8


@dataclass
class BarnesConfig(AppConfig):
    """Scaled-down Barnes problem (paper: 262,144 bodies, 60 steps)."""

    n_bodies: int = 128
    steps: int = 4
    theta: float = 0.6
    dt: float = 1e-2
    max_nodes: int = 0  # 0 = auto (8 * n_bodies)
    max_depth: int = 24
    alloc_chunk: int = 16
    insert_cost: float = 1e-6  # per level descended
    com_cost: float = 0.5e-6  # per node
    force_cost: float = 1e-6  # per interaction
    softening: float = 1e-2

    def nodes_cap(self) -> int:
        # ~2 internal nodes per body in practice, plus slack for deep
        # splits and per-process chunked allocation (chunks are
        # discarded at each rebuild)
        return self.max_nodes or int(2.5 * self.n_bodies) + 320


def plummer_bodies(cfg: BarnesConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Plummer-sphere initial conditions, sorted by radius (core first)."""
    rng = np.random.default_rng(cfg.seed)
    n = cfg.n_bodies
    u = rng.uniform(0.05, 0.95, n)
    r = 1.0 / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    costh = rng.uniform(-1, 1, n)
    phi = rng.uniform(0, 2 * np.pi, n)
    sinth = np.sqrt(1 - costh**2)
    pos = (r[:, None]) * np.stack(
        [sinth * np.cos(phi), sinth * np.sin(phi), costh], axis=-1
    )
    order = np.argsort(np.einsum("ij,ij->i", pos, pos))
    pos = pos[order]
    vel = rng.normal(0, 0.02, (n, 3))[order]
    return pos, vel


class _Tree:
    """Octree operations over a flat node array (shared or local)."""

    def __init__(self, nodes: np.ndarray, cfg: BarnesConfig) -> None:
        self.nodes = nodes.reshape(-1, NODE_W)
        self.cfg = cfg
        #: node indices modified since construction (drives precise
        #: write-range declarations in the DSM app)
        self.touched: set = set()
        #: lazily built per-column scalar views for force_on; any tree
        #: mutation drops it (contents are stable across the force loop)
        self._fc: Any = None

    # -- geometry ---------------------------------------------------------
    @staticmethod
    def octant_of(node_rec: np.ndarray, p: np.ndarray) -> int:
        return (
            (1 if p[0] >= node_rec[F_CX] else 0)
            | (2 if p[1] >= node_rec[F_CY] else 0)
            | (4 if p[2] >= node_rec[F_CZ] else 0)
        )

    @staticmethod
    def child_center(node_rec: np.ndarray, octant: int) -> Tuple[float, float, float, float]:
        h = node_rec[F_HALF] / 2.0
        cx = node_rec[F_CX] + (h if octant & 1 else -h)
        cy = node_rec[F_CY] + (h if octant & 2 else -h)
        cz = node_rec[F_CZ] + (h if octant & 4 else -h)
        return cx, cy, cz, h

    def init_internal(self, idx: int, cx: float, cy: float, cz: float, h: float) -> None:
        self._fc = None
        rec = self.nodes[idx]
        rec[:] = 0.0
        rec[F_TYPE] = INTERNAL
        rec[F_CX], rec[F_CY], rec[F_CZ] = cx, cy, cz
        rec[F_HALF] = h
        rec[F_CHILD0 : F_CHILD0 + 8] = -1.0
        self.touched.add(idx)

    def init_leaf(self, idx: int, body: int, cx: float, cy: float, cz: float, h: float) -> None:
        self._fc = None
        rec = self.nodes[idx]
        rec[:] = 0.0
        rec[F_TYPE] = LEAF
        rec[F_BODY] = float(body)
        rec[F_CX], rec[F_CY], rec[F_CZ] = cx, cy, cz
        rec[F_HALF] = h
        rec[F_CHILD0 : F_CHILD0 + 8] = -1.0
        self.touched.add(idx)

    # -- insertion (canonical octree; order-independent shape) ------------
    def insert(
        self, root: int, body: int, p: np.ndarray, alloc: "Allocator"
    ) -> int:
        """Insert ``body`` under ``root``; returns levels descended."""
        self._fc = None
        node = root
        depth = 0
        while True:
            depth += 1
            if depth > self.cfg.max_depth:
                raise RuntimeError("octree depth cap exceeded (coincident bodies?)")
            rec = self.nodes[node]
            oct_ = self.octant_of(rec, p)
            child = int(rec[F_CHILD0 + oct_])
            if child < 0:
                idx = alloc.take()
                cx, cy, cz, h = self.child_center(rec, oct_)
                self.init_leaf(idx, body, cx, cy, cz, h)
                rec[F_CHILD0 + oct_] = float(idx)
                self.touched.add(node)
                return depth
            crec = self.nodes[child]
            if crec[F_TYPE] == LEAF:
                # split: the leaf becomes internal; re-descend both bodies
                other = int(crec[F_BODY])
                cx, cy, cz, h = crec[F_CX], crec[F_CY], crec[F_CZ], crec[F_HALF]
                self.init_internal(child, cx, cy, cz, h)
                # re-insert displaced body from this internal node
                depth += self._place(child, other, alloc)
                node = child
            else:
                node = child

    def _place(self, node: int, body: int, alloc: "Allocator") -> int:
        """Place a single displaced body under ``node`` (no conflicts)."""
        depth = 0
        p = alloc.pos[body]
        while True:
            depth += 1
            rec = self.nodes[node]
            oct_ = self.octant_of(rec, p)
            child = int(rec[F_CHILD0 + oct_])
            if child < 0:
                idx = alloc.take()
                cx, cy, cz, h = self.child_center(rec, oct_)
                self.init_leaf(idx, body, cx, cy, cz, h)
                rec[F_CHILD0 + oct_] = float(idx)
                self.touched.add(node)
                return depth
            node = child  # descend (only happens after repeated splits)

    # -- center of mass -----------------------------------------------------
    def compute_com(self, root: int, pos: np.ndarray) -> int:
        """Post-order mass/COM accumulation; returns nodes visited."""
        self._fc = None
        visited = 0
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            rec = self.nodes[node]
            if rec[F_TYPE] == LEAF:
                b = int(rec[F_BODY])
                rec[F_MASS] = 1.0
                rec[F_MX : F_MZ + 1] = pos[b]
                visited += 1
                continue
            if not expanded:
                stack.append((node, True))
                for o in range(8):
                    child = int(rec[F_CHILD0 + o])
                    if child >= 0:
                        stack.append((child, False))
            else:
                mass = 0.0
                com = np.zeros(3)
                for o in range(8):
                    child = int(rec[F_CHILD0 + o])
                    if child < 0:
                        continue
                    crec = self.nodes[child]
                    mass += crec[F_MASS]
                    com += crec[F_MASS] * crec[F_MX : F_MZ + 1]
                rec[F_MASS] = mass
                rec[F_MX : F_MZ + 1] = com / mass if mass > 0 else 0.0
                visited += 1
        return visited

    # -- force ---------------------------------------------------------------
    def _build_force_cache(self) -> Tuple[Any, ...]:
        """Per-column scalar lists + a contiguous COM block.

        ``force_on`` touches a handful of scalar fields per visited node;
        reading them through numpy row indexing allocates an ``np.float64``
        per access and dominated profiles. Plain-list columns make those
        reads native. The COM block stays a float64 array so the distance
        vector and the ``d @ d`` reduction execute the exact same numpy
        operations (and rounding) as before.
        """
        nd = self.nodes
        return (
            nd[:, F_TYPE].tolist(),
            nd[:, F_BODY].tolist(),
            nd[:, F_MASS].tolist(),
            nd[:, F_HALF].tolist(),
            np.ascontiguousarray(nd[:, F_MX : F_MZ + 1]),
            nd[:, F_CHILD0 : F_CHILD0 + 8].astype(np.int64).tolist(),
        )

    def force_on(self, root: int, body: int, p: np.ndarray) -> Tuple[np.ndarray, int]:
        cfg = self.cfg
        fc = self._fc
        if fc is None:
            fc = self._fc = self._build_force_cache()
        types, bodies, masses, halves, com, children = fc
        # Batch the geometry for every node up front so the tree walk is
        # pure Python. Rounding contract: the broadcast subtract performs
        # the same elementwise ops as the per-node ``com[node] - p``, and
        # the stacked matmul dispatches the same dot kernel per row as the
        # per-node ``d @ d`` (verified bitwise; einsum/square-sum do NOT
        # match because the BLAS dot uses FMA).
        dmat = com - p
        r2s = (
            np.matmul(dmat[:, None, :], dmat[:, :, None]).ravel()
            + cfg.softening**2
        ).tolist()
        ds = dmat.tolist()
        sqrt = math.sqrt
        ax = ay = az = 0.0
        interactions = 0
        stack = [root]
        theta2 = cfg.theta**2
        while stack:
            node = stack.pop()
            ty = types[node]
            mass = masses[node]
            if ty == EMPTY or mass <= 0.0:
                continue
            r2 = r2s[node]
            if ty == LEAF:
                if bodies[node] != body:
                    s = r2 * sqrt(r2)
                    dx, dy, dz = ds[node]
                    ax += mass * dx / s
                    ay += mass * dy / s
                    az += mass * dz / s
                    interactions += 1
                continue
            size = 2.0 * halves[node]
            if size * size < theta2 * r2:
                s = r2 * sqrt(r2)
                dx, dy, dz = ds[node]
                ax += mass * dx / s
                ay += mass * dy / s
                az += mass * dz / s
                interactions += 1
            else:
                # push high octant first so octant 0 pops first, exactly
                # like the original descending-range loop
                for c in reversed(children[node]):
                    if c >= 0:
                        stack.append(c)
        return np.array((ax, ay, az)), interactions


class Allocator:
    """Node allocation front-end; shared-counter or local."""

    def __init__(self, pos: np.ndarray) -> None:
        self.pos = pos
        self.take = lambda: (_ for _ in ()).throw(RuntimeError("unbound"))  # type: ignore


def reference_barnes(cfg: BarnesConfig) -> np.ndarray:
    """Sequential golden model; bitwise-identical physics."""
    pos, vel = plummer_bodies(cfg)
    n = cfg.n_bodies
    nodes = np.zeros(cfg.nodes_cap() * NODE_W)
    tree = _Tree(nodes, cfg)
    for _ in range(cfg.steps):
        lo, hi = pos.min(axis=0), pos.max(axis=0)
        center = (lo + hi) / 2.0
        half = float((hi - lo).max() / 2.0 * 1.01 + 1e-9)
        alloc = Allocator(pos)
        counter = [0]

        def take() -> int:
            counter[0] += 1
            if counter[0] >= cfg.nodes_cap():
                raise RuntimeError("node pool exhausted")
            return counter[0]

        alloc.take = take
        root = take()
        tree.init_internal(root, center[0], center[1], center[2], half)
        for b in range(n):
            tree.insert(root, b, pos[b], alloc)
        tree.compute_com(root, pos)
        acc = np.zeros_like(pos)
        for b in range(n):
            acc[b], _ = tree.force_on(root, b, pos[b])
        vel += cfg.dt * acc
        pos = pos + cfg.dt * vel
    return pos


class BarnesApp(DsmApp):
    name = "barnes"

    def __init__(self, cfg: BarnesConfig | None = None) -> None:
        self.cfg = cfg or BarnesConfig()

    # ------------------------------------------------------------------
    def configure(self, cluster: Any) -> None:
        cfg = self.cfg
        n = cfg.n_bodies
        self.r_pos = cluster.allocate("pos", n * 3)
        self.r_vel = cluster.allocate("vel", n * 3)
        self.r_acc = cluster.allocate("acc", n * 3)
        self.r_nodes = cluster.allocate("nodes", cfg.nodes_cap() * NODE_W)
        # [next_free, root, bbox per proc (6 each)]
        self.r_meta = cluster.allocate("meta", 2 + cluster.config.num_procs * 6)

    def init_shared(self, cluster: Any) -> None:
        pos, vel = plummer_bodies(self.cfg)
        cluster.write_initial(self.r_pos, pos.ravel())
        cluster.write_initial(self.r_vel, vel.ravel())

    def init_state(self, pid: int) -> Dict[str, Any]:
        return {"step": 0, "phase": 0}

    # ------------------------------------------------------------------
    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        cfg = self.cfg
        n = cfg.n_bodies
        part = block_partition(n, proc.n, proc.pid)
        app = self

        def phase_bbox(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            flat = yield from proc.read_range(app.r_pos, part.start * 3, part.stop * 3)
            p = flat.reshape(-1, 3)
            base = 2 + proc.pid * 6
            view = yield from proc.write_range(app.r_meta, base, base + 6)
            view[0:3] = p.min(axis=0)
            view[3:6] = p.max(axis=0)
            yield from proc.barrier()

        def phase_treeinit(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            if proc.pid == 0:
                meta = yield from proc.read_range(
                    app.r_meta, 2, 2 + proc.n * 6
                )
                boxes = meta.reshape(proc.n, 6)
                lo = boxes[:, 0:3].min(axis=0)
                hi = boxes[:, 3:6].max(axis=0)
                center = (lo + hi) / 2.0
                half = float((hi - lo).max() / 2.0 * 1.01 + 1e-9)
                head = yield from proc.write_range(app.r_meta, 0, 2)
                root = 1
                head[0] = 2.0  # next free node
                head[1] = float(root)
                nview = yield from proc.write_range(
                    app.r_nodes, root * NODE_W, (root + 1) * NODE_W
                )
                tree = _Tree(nview, cfg)
                tree.init_internal(0, center[0], center[1], center[2], half)
                yield from proc.compute(cfg.com_cost * 4)
            yield from proc.barrier()

        def phase_insert(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            flat = yield from proc.read_range(app.r_pos, 0, n * 3)
            pos = flat.reshape(n, 3).copy()
            head = yield from proc.read_range(app.r_meta, 0, 2)
            root = int(head[1])
            rootrec = (
                yield from proc.read_range(
                    app.r_nodes, root * NODE_W, (root + 1) * NODE_W
                )
            ).copy()
            # group own bodies by top-level octant; one lock hold per octant
            octs: Dict[int, List[int]] = {}
            for b in part:
                octs.setdefault(_Tree.octant_of(rootrec, pos[b]), []).append(b)

            chunk: List[int] = []
            alloc = Allocator(pos)

            def take() -> int:
                if not chunk:
                    raise RuntimeError(
                        "node chunk ran dry mid-insert; raise alloc_chunk "
                        "(pathologically deep split)"
                    )
                return chunk.pop(0)

            alloc.take = take
            need = cfg.alloc_chunk  # headroom for one insertion's splits

            def refill() -> Iterator[Any]:
                # grab node ids from the shared counter in chunks
                yield from proc.acquire(ALLOC_LOCK)
                hview = yield from proc.write_range(app.r_meta, 0, 1)
                start = int(hview[0])
                take_n = max(cfg.alloc_chunk, need)
                if start + take_n > cfg.nodes_cap():
                    raise RuntimeError("node pool exhausted")
                hview[0] = float(start + take_n)
                yield from proc.release(ALLOC_LOCK)
                chunk.extend(range(start, start + take_n))

            for oct_ in sorted(octs):
                yield from proc.acquire(OCTANT_LOCK0 + oct_)
                nview = yield from proc.read_range(
                    app.r_nodes, 0, cfg.nodes_cap() * NODE_W
                )
                local = nview.copy()
                orig = local.copy()
                tree = _Tree(local, cfg)
                levels = 0
                for b in octs[oct_]:
                    if len(chunk) < need:
                        yield from refill()
                    levels += tree.insert(root, b, pos[b], alloc)
                # publish exactly the *elements* this process stored — a
                # bulk copy-back would also write stale unchanged bytes,
                # which on the writer's own homed pages would clobber
                # concurrently applied remote diffs
                for idx in sorted(tree.touched):
                    lo, hi = idx * NODE_W, (idx + 1) * NODE_W
                    changed = local[lo:hi] != orig[lo:hi]
                    if not changed.any():
                        continue
                    view = yield from proc.write_range(app.r_nodes, lo, hi)
                    view[changed] = local[lo:hi][changed]
                yield from proc.compute(cfg.insert_cost * max(levels, 1))
                yield from proc.release(OCTANT_LOCK0 + oct_)
            yield from proc.barrier()

        def phase_com(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            if proc.pid == 0:
                flat = yield from proc.read_range(app.r_pos, 0, n * 3)
                pos = flat.reshape(n, 3).copy()
                head = yield from proc.read_range(app.r_meta, 0, 2)
                root, used = int(head[1]), int(head[0])
                nview = yield from proc.write_range(
                    app.r_nodes, 0, used * NODE_W
                )
                tree = _Tree(nview, cfg)
                visited = tree.compute_com(root, pos)
                yield from proc.compute(cfg.com_cost * visited)
            yield from proc.barrier()

        def phase_force(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            flat = yield from proc.read_range(app.r_pos, 0, n * 3)
            pos = flat.reshape(n, 3).copy()
            head = yield from proc.read_range(app.r_meta, 0, 2)
            root = int(head[1])
            nview = yield from proc.read_range(app.r_nodes, 0, cfg.nodes_cap() * NODE_W)
            tree = _Tree(nview.copy(), cfg)
            aview = yield from proc.write_range(
                app.r_acc, part.start * 3, part.stop * 3
            )
            a = aview.reshape(-1, 3)
            total = 0
            for k, b in enumerate(part):
                a[k], inter = tree.force_on(root, b, pos[b])
                total += inter
            yield from proc.compute(cfg.force_cost * max(total, 1))
            yield from proc.barrier()

        def phase_advance(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            aview = yield from proc.read_range(app.r_acc, part.start * 3, part.stop * 3)
            vview = yield from proc.write_range(app.r_vel, part.start * 3, part.stop * 3)
            pview = yield from proc.write_range(app.r_pos, part.start * 3, part.stop * 3)
            vview += cfg.dt * aview
            pview += cfg.dt * vview
            yield from proc.barrier()

        yield from phase_loop(
            proc,
            state,
            cfg.steps,
            [
                phase_bbox,
                phase_treeinit,
                phase_insert,
                phase_com,
                phase_force,
                phase_advance,
            ],
        )

    # ------------------------------------------------------------------
    def check_result(self, cluster: Any) -> None:
        got = cluster.shared_snapshot(self.r_pos)[: self.cfg.n_bodies * 3]
        want = reference_barnes(self.cfg).ravel()
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)
