"""Blocked dense LU decomposition (extra SPLASH-2-style workload).

Not part of the paper's evaluation triple; included as a fourth workload
with yet another sharing pattern: a 2-D block-cyclic owner-computes
factorization where each iteration reads one pivot block row/column and
updates the trailing submatrix. Data flows strictly through barriers —
no locks at all — making LU a useful contrast case for the benchmark
ablations (lock-log-free runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.apps.base import AppConfig, DsmApp, phase_loop
from repro.dsm.protocol import DsmProcess

__all__ = ["LuConfig", "LuApp"]


@dataclass
class LuConfig(AppConfig):
    matrix_size: int = 64  # elements per side
    block_size: int = 8
    flop_cost: float = 5e-9  # virtual seconds per scalar fused op

    @property
    def n_blocks(self) -> int:
        if self.matrix_size % self.block_size:
            raise ValueError("matrix_size must be a multiple of block_size")
        return self.matrix_size // self.block_size


def _owner(bi: int, bj: int, n_procs: int) -> int:
    return (bi + bj) % n_procs


def reference_lu(cfg: LuConfig) -> np.ndarray:
    """Sequential golden model: in-place blocked LU without pivoting."""
    a = _initial_matrix(cfg)
    nb, bs = cfg.n_blocks, cfg.block_size
    for k in range(nb):
        kk = slice(k * bs, (k + 1) * bs)
        _factor_diag(a[kk, kk])
        for j in range(k + 1, nb):
            jj = slice(j * bs, (j + 1) * bs)
            _solve_lower(a[kk, kk], a[kk, jj])
        for i in range(k + 1, nb):
            ii = slice(i * bs, (i + 1) * bs)
            _solve_upper(a[kk, kk], a[ii, kk])
        for i in range(k + 1, nb):
            for j in range(k + 1, nb):
                ii = slice(i * bs, (i + 1) * bs)
                jj = slice(j * bs, (j + 1) * bs)
                a[ii, jj] -= a[ii, k * bs : (k + 1) * bs] @ a[kk, jj]
    return a


def _initial_matrix(cfg: LuConfig) -> np.ndarray:
    rng = np.random.default_rng(cfg.seed)
    n = cfg.matrix_size
    a = rng.uniform(-1, 1, (n, n))
    a += n * np.eye(n)  # diagonally dominant: stable without pivoting
    return a


def _factor_diag(d: np.ndarray) -> None:
    n = len(d)
    for r in range(n):
        d[r + 1 :, r] /= d[r, r]
        d[r + 1 :, r + 1 :] -= np.outer(d[r + 1 :, r], d[r, r + 1 :])


def _solve_lower(diag: np.ndarray, b: np.ndarray) -> None:
    """b := L(diag)^-1 b (unit lower triangular solve, forward)."""
    n = len(diag)
    for r in range(1, n):
        b[r] -= diag[r, :r] @ b[:r]


def _solve_upper(diag: np.ndarray, b: np.ndarray) -> None:
    """b := b U(diag)^-1 (upper triangular solve from the right)."""
    n = len(diag)
    for c in range(n):
        b[:, c] = (b[:, c] - b[:, :c] @ diag[:c, c]) / diag[c, c]


class LuApp(DsmApp):
    name = "lu"

    def __init__(self, cfg: LuConfig | None = None) -> None:
        self.cfg = cfg

        if cfg is None:
            self.cfg = LuConfig()

    # ------------------------------------------------------------------
    def configure(self, cluster: Any) -> None:
        n = self.cfg.matrix_size
        self.r_a = cluster.allocate("matrix", n * n)

    def init_shared(self, cluster: Any) -> None:
        cluster.write_initial(self.r_a, _initial_matrix(self.cfg).ravel())

    def init_state(self, pid: int) -> Dict[str, Any]:
        return {"step": 0, "phase": 0}

    # ------------------------------------------------------------------
    def _block_ranges(self, bi: int, bj: int) -> List[Tuple[int, int]]:
        """Element ranges (one per row of the block) in the flat region."""
        cfg = self.cfg
        n, bs = cfg.matrix_size, cfg.block_size
        out = []
        for r in range(bi * bs, (bi + 1) * bs):
            lo = r * n + bj * bs
            out.append((lo, lo + bs))
        return out

    def _read_block(self, proc: DsmProcess, bi: int, bj: int) -> Iterator[Any]:
        bs = self.cfg.block_size
        out = np.empty((bs, bs))
        for r, (lo, hi) in enumerate(self._block_ranges(bi, bj)):
            row = yield from proc.read_range(self.r_a, lo, hi)
            out[r] = row
        return out

    def _write_block(
        self, proc: DsmProcess, bi: int, bj: int, values: np.ndarray
    ) -> Iterator[Any]:
        for r, (lo, hi) in enumerate(self._block_ranges(bi, bj)):
            row = yield from proc.write_range(self.r_a, lo, hi)
            row[:] = values[r]

    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        cfg = self.cfg
        nb, bs = cfg.n_blocks, cfg.block_size
        app = self
        flop = cfg.flop_cost

        def phase_factor(proc: DsmProcess, state: Dict, k: int) -> Iterator[Any]:
            if _owner(k, k, proc.n) == proc.pid:
                d = yield from app._read_block(proc, k, k)
                _factor_diag(d)
                yield from proc.compute(flop * bs**3 / 3)
                yield from app._write_block(proc, k, k, d)
            yield from proc.barrier()

        def phase_panel(proc: DsmProcess, state: Dict, k: int) -> Iterator[Any]:
            d = yield from app._read_block(proc, k, k)
            work = 0
            for j in range(k + 1, nb):
                if _owner(k, j, proc.n) == proc.pid:
                    b = yield from app._read_block(proc, k, j)
                    _solve_lower(d, b)
                    yield from app._write_block(proc, k, j, b)
                    work += 1
            for i in range(k + 1, nb):
                if _owner(i, k, proc.n) == proc.pid:
                    b = yield from app._read_block(proc, i, k)
                    _solve_upper(d, b)
                    yield from app._write_block(proc, i, k, b)
                    work += 1
            if work:
                yield from proc.compute(flop * work * bs**3 / 2)
            yield from proc.barrier()

        def phase_update(proc: DsmProcess, state: Dict, k: int) -> Iterator[Any]:
            work = 0
            row_cache: Dict[int, np.ndarray] = {}
            col_cache: Dict[int, np.ndarray] = {}
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    if _owner(i, j, proc.n) != proc.pid:
                        continue
                    if i not in col_cache:
                        col_cache[i] = yield from app._read_block(proc, i, k)
                    if j not in row_cache:
                        row_cache[j] = yield from app._read_block(proc, k, j)
                    b = yield from app._read_block(proc, i, j)
                    b -= col_cache[i] @ row_cache[j]
                    yield from app._write_block(proc, i, j, b)
                    work += 1
            if work:
                yield from proc.compute(flop * work * 2 * bs**3)
            yield from proc.barrier()

        yield from phase_loop(
            proc, state, nb, [phase_factor, phase_panel, phase_update]
        )

    # ------------------------------------------------------------------
    def check_result(self, cluster: Any) -> None:
        got = cluster.shared_snapshot(self.r_a)
        want = reference_lu(self.cfg).ravel()
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)
