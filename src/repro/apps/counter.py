"""A minimal pedagogical workload (used by the quickstart and tests).

Each step: every process increments a shared counter under a lock, fills
its slice of a shared array, and reads the whole array back — exercising
locks, barriers, page fetches and multi-writer diffs in a few lines.
Because all written values are integers (exact in float64), results are
bitwise-deterministic across lock orderings, which the crash-equivalence
tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator

import numpy as np

from repro.apps.base import AppConfig, DsmApp, block_partition, phase_loop
from repro.dsm.protocol import DsmProcess

__all__ = ["CounterConfig", "CounterApp"]


@dataclass
class CounterConfig(AppConfig):
    steps: int = 3
    n_elements: int = 512
    compute_per_step: float = 1e-4


class CounterApp(DsmApp):
    name = "counter"

    def __init__(self, cfg: CounterConfig | None = None) -> None:
        self.cfg = cfg or CounterConfig()

    def configure(self, cluster: Any) -> None:
        self.r_counter = cluster.allocate("counter", 8)
        self.r_data = cluster.allocate("data", self.cfg.n_elements)

    def init_state(self, pid: int) -> Dict[str, Any]:
        return {"step": 0, "phase": 0, "sum_seen": 0.0}

    def run(self, proc: DsmProcess, state: Dict[str, Any]) -> Iterator[Any]:
        cfg = self.cfg
        n = cfg.n_elements
        part = block_partition(n, proc.n, proc.pid)

        def phase_incr(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            yield from proc.acquire(0)
            view = yield from proc.write_range(self.r_counter, 0, 1)
            view[0] = view[0] + 1.0
            yield from proc.compute(cfg.compute_per_step)
            yield from proc.release(0)

        def phase_fill(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            view = yield from proc.write_range(self.r_data, part.start, part.stop)
            view[:] = proc.pid * 1000.0 + step
            yield from proc.barrier()

        def phase_read(proc: DsmProcess, state: Dict, step: int) -> Iterator[Any]:
            view = yield from proc.read_range(self.r_data, 0, n)
            state["sum_seen"] = float(view.sum())
            yield from proc.barrier()

        yield from phase_loop(
            proc, state, cfg.steps, [phase_incr, phase_fill, phase_read]
        )

    def expected_counter(self, num_procs: int) -> float:
        return float(num_procs * self.cfg.steps)

    def expected_sum(self, num_procs: int) -> float:
        n, last = self.cfg.n_elements, self.cfg.steps - 1
        return float(
            sum(
                (pid * 1000.0 + last) * len(block_partition(n, num_procs, pid))
                for pid in range(num_procs)
            )
        )

    def check_result(self, cluster: Any) -> None:
        counter = cluster.shared_snapshot(self.r_counter)
        n_procs = cluster.config.num_procs
        assert counter[0] == self.expected_counter(n_procs), (
            f"counter {counter[0]} != {self.expected_counter(n_procs)}"
        )
        want = self.expected_sum(n_procs)
        for host in cluster.hosts:
            got = host.state.get("sum_seen")
            assert got == want, f"p{host.pid}: sum {got} != {want}"
