"""Shared ASCII rendering helpers: tables, series plots, unit formatting.

One home for the plain-text presentation primitives used across the
codebase — the paper-table harness, the benchmark reports, the
observability run reports and the invariant monitor's flight records all
render through these. The paper's tables are regenerated as ASCII tables;
its figures as ASCII-rendered series (values are also returned structured
so tests can assert on them).

Historically these lived in ``repro.metrics.report``; that module remains
as a compatibility re-export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Table", "ascii_histogram", "ascii_series", "format_bytes", "format_pct",
    "format_duration",
]


def format_bytes(n: float) -> str:
    """Human-readable byte counts (KB/MB with sensible precision).

    Thresholds apply to the magnitude, so deltas (bytes trimmed,
    regressions) format symmetrically: ``format_bytes(-5e6)`` is
    ``"-5.00 MB"``, not a raw negative byte count.
    """
    sign = "-" if n < 0 else ""
    a = abs(n)
    if a >= 1e6:
        return f"{sign}{a / 1e6:.2f} MB"
    if a >= 1e3:
        return f"{sign}{a / 1e3:.1f} KB"
    return f"{sign}{int(a)} B"


def format_duration(seconds: float) -> str:
    """Human-readable virtual-time durations (ns/us/ms/s)."""
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:.3f} s"
    if a >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if a >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    if a > 0:
        return f"{seconds * 1e9:.0f} ns"
    return "0"


def format_pct(x: float) -> str:
    """Percentage with magnitude-based precision (sign preserved)."""
    a = abs(x)
    if a >= 10:
        return f"{x:.0f} %"
    if a >= 1:
        return f"{x:.1f} %"
    return f"{x:.2f} %"


@dataclass
class Table:
    """A titled table with typed rows."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    note: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def cell(self, row: int, column: str) -> Any:
        return self.rows[row][self.columns.index(column)]

    def column(self, name: str) -> List[Any]:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * len(self.title), header, sep]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.note:
            lines.append(f"\n{self.note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def ascii_histogram(
    title: str,
    buckets: Sequence[Tuple[str, float]],
    width: int = 40,
) -> str:
    """Render labelled bucket counts as a horizontal ASCII bar chart.

    ``buckets`` is ``[(label, count), ...]``. Degenerate distributions
    get a centered placeholder instead of a degenerate axis (same
    discipline as :func:`ascii_series` for flat series): an empty (or
    all-zero) histogram renders ``(no samples)`` centered in the bar
    area, and a single-occupied-bucket distribution renders its one bar
    centered rather than pinned against a meaningless scale.
    """
    lines = [title, "=" * len(title)]
    label_w = max((len(lbl) for lbl, _ in buckets), default=0)
    occupied = [(lbl, c) for lbl, c in buckets if c > 0]
    if not occupied:
        pad = max(0, (label_w + 3 + width - len("(no samples)")) // 2)
        lines.append(" " * pad + "(no samples)")
        return "\n".join(lines)
    if len(occupied) == 1:
        lbl, count = occupied[0]
        bar = "#" * min(width, max(1, width // 2))
        pad = max(0, (width - len(bar)) // 2)
        lines.append(
            f"{lbl.rjust(label_w)} |" + " " * pad + bar + f"  {int(count)}"
        )
        lines.append(f"{'':>{label_w}} (single-bucket distribution)")
        return "\n".join(lines)
    peak = max(c for _, c in occupied)
    for lbl, count in buckets:
        bar = "#" * int(round(count / peak * width)) if count else ""
        if count and not bar:
            bar = "#"  # nonzero counts always show at least one mark
        lines.append(
            (
                f"{lbl.rjust(label_w)} |{bar.ljust(width)}  "
                + (str(int(count)) if count else "")
            ).rstrip()
        )
    return "\n".join(lines)


def ascii_series(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    xlabel: str = "",
    ylabel: str = "",
    window_s: Optional[float] = None,
) -> str:
    """Render (x, y) series as a crude ASCII scatter/line chart.

    When ``window_s`` is given the x values are window start times of a
    fixed-width virtual-time windowing, and the x-axis line additionally
    names the window index bounds — readers of the windowed tail-latency
    charts can map a point back to its window without dividing by hand.
    """
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return f"{title}\n(no data)"
    xs, ys = zip(*pts)
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = x1 - x0
    yr = y1 - y0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@"
    legend = []
    # degenerate ranges (flat series, single points) center their marks
    # instead of collapsing onto a border row/column
    mid_row = height // 2
    mid_col = width // 2
    for k, (name, s) in enumerate(series.items()):
        m = marks[k % len(marks)]
        legend.append(f"{m} = {name}")
        for x, y in s:
            col = int((x - x0) / xr * (width - 1)) if xr else mid_col
            row = (
                height - 1 - int((y - y0) / yr * (height - 1)) if yr else mid_row
            )
            grid[row][col] = m
    lines = [title, "=" * len(title)]
    lines.append(f"y: {y1:.3g} (top) .. {y0:.3g} (bottom) {ylabel}")
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    if window_s:
        w0, w1 = int(x0 // window_s), int(x1 // window_s)
        lines.append(
            f"x: {x0:.3g} .. {x1:.3g} {xlabel} "
            f"(windows {w0}..{w1}, {format_duration(window_s)} each)"
        )
    else:
        lines.append(f"x: {x0:.3g} .. {x1:.3g} {xlabel}")
    lines.append("   ".join(legend))
    return "\n".join(lines)
