"""Home-based Lazy Release Consistency (HLRC) software DSM substrate.

Implements the base protocol of Zhou/Iftode/Li that the paper extends
(§3): paged shared memory with per-page *homes*, multiple concurrent
writers detected through *twins* and propagated to homes as *diffs*,
coherence through *write notices* (page invalidations) ordered by
*vector timestamps*, distributed queue-based locks whose grant messages
carry write notices, and manager-based barriers.
"""

from repro.dsm.config import DsmConfig
from repro.dsm.vclock import VClock
from repro.dsm.pages import PageId, PageState, SharedRegion
from repro.dsm.diff import Diff, compute_diff, apply_diff

__all__ = [
    "DsmConfig",
    "VClock",
    "PageId",
    "PageState",
    "SharedRegion",
    "Diff",
    "compute_diff",
    "apply_diff",
]
