"""Distributed queue-based locks.

Each lock has a statically assigned *manager* (``lock_id mod n``). An
acquire request goes to the manager, which forwards it to the most recent
requester it knows of, forming a distributed FIFO queue: every process in
the chain grants the lock directly to its successor when it releases
(§3, Figure 1 — the grant message carries the releaser's vector time and
the write notices the acquirer is missing).

For recoverability the manager keeps the *request chain* (the ordered
list of requesters) and grantors send it a small asynchronous
``GrantInfo`` notification, so that after a fail-stop the manager knows
where the token is and can re-issue a forward whose original copy died
with the failed process. Requests carry a per-(acquirer, lock) sequence
number so re-sent requests after recovery are idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dsm.vclock import VClock

__all__ = ["LockState", "LockManagerState", "LockTable"]


@dataclass
class LockState:
    """Per-process token state for one lock."""

    has_token: bool = False
    held: bool = False
    rel_vt: Optional[VClock] = None  # vt snapshot at last release here
    successor: Optional[Tuple[int, VClock, int]] = None  # (acquirer, acq_vt, seq)
    #: acquirer -> highest request seq this process has granted; makes
    #: re-issued forwards after a recovery idempotent
    granted: Dict[int, int] = field(default_factory=dict)


@dataclass
class ChainEntry:
    acquirer: int
    seq: int


class LockManagerState:
    """Manager-side state: the request chain and the known owner position."""

    def __init__(self, manager: int) -> None:
        self.chain: List[ChainEntry] = [ChainEntry(manager, 0)]
        self.owner_pos: int = 0
        self.last_seq: Dict[int, int] = {}  # acquirer -> highest seq seen
        #: remote mirror of self-grant events: proc -> [acq_t, ...]
        #: (needed for replay of local re-acquires; trimmed by the
        #: Rule 2 analogue using the grantor's checkpoint timestamp)
        self.self_grants: Dict[int, List[VClock]] = {}

    def log_self_grant(self, proc: int, acq_t: VClock) -> None:
        self.self_grants.setdefault(proc, []).append(acq_t)

    def trim_self_grants(self, proc: int, tckp_component: int) -> int:
        """Keep self-grants of ``proc`` with ``acq_t[proc] > tckp_component``."""
        entries = self.self_grants.get(proc)
        if not entries:
            return 0
        kept = [t for t in entries if t[proc] > tckp_component]
        dropped = len(entries) - len(kept)
        self.self_grants[proc] = kept
        return dropped

    @property
    def last_requester(self) -> int:
        return self.chain[-1].acquirer

    def is_duplicate(self, acquirer: int, seq: int) -> bool:
        return seq <= self.last_seq.get(acquirer, -1)

    def append(self, acquirer: int, seq: int) -> int:
        """Record a new request; returns the previous chain tail (forward target)."""
        prev = self.chain[-1].acquirer
        self.chain.append(ChainEntry(acquirer, seq))
        self.last_seq[acquirer] = seq
        self._prune()
        return prev

    def grant_observed(self, grantee: int) -> None:
        """A GrantInfo said the token moved to ``grantee``."""
        for i in range(self.owner_pos + 1, len(self.chain)):
            if self.chain[i].acquirer == grantee:
                self.owner_pos = i
                self._prune()
                return
        # GrantInfo for a local re-acquire or stale duplicate: ignore.

    def owner(self) -> int:
        return self.chain[self.owner_pos].acquirer

    def waiter_after(self, proc: int) -> Optional[ChainEntry]:
        """The chain entry immediately after ``proc``'s latest position."""
        for i in range(len(self.chain) - 1, -1, -1):
            if self.chain[i].acquirer == proc:
                return self.chain[i + 1] if i + 1 < len(self.chain) else None
        return None

    def in_chain_at_or_after_owner(self, acquirer: int) -> bool:
        return any(
            e.acquirer == acquirer for e in self.chain[self.owner_pos:]
        )

    def _prune(self) -> None:
        # chain entries strictly before the owner are history
        if self.owner_pos > 8:
            drop = self.owner_pos - 1
            del self.chain[:drop]
            self.owner_pos -= drop


class LockTable:
    """All lock state at one process (token states + managed locks)."""

    def __init__(self, pid: int, num_procs: int) -> None:
        self.pid = pid
        self.n = num_procs
        self._tokens: Dict[int, LockState] = {}
        self._managed: Dict[int, LockManagerState] = {}

    # -- token side -------------------------------------------------------
    def token(self, lock_id: int) -> LockState:
        st = self._tokens.get(lock_id)
        if st is None:
            st = LockState()
            # The manager starts as the initial resting place of the token,
            # with a zero release snapshot (first acquirer needs nothing).
            if self.manager_of(lock_id) == self.pid:
                st.has_token = True
                st.rel_vt = VClock.zero(self.n)
            self._tokens[lock_id] = st
        return st

    def manager_of(self, lock_id: int) -> int:
        return lock_id % self.n

    def known_locks(self) -> List[int]:
        return list(self._tokens.keys())

    # -- manager side -------------------------------------------------------
    def manages(self, lock_id: int) -> bool:
        return self.manager_of(lock_id) == self.pid

    def manager(self, lock_id: int) -> LockManagerState:
        if not self.manages(lock_id):
            raise RuntimeError(f"process {self.pid} does not manage lock {lock_id}")
        st = self._managed.get(lock_id)
        if st is None:
            st = LockManagerState(self.pid)
            self._managed[lock_id] = st
        return st

    def managed_locks(self) -> List[int]:
        return list(self._managed.keys())

    # -- recovery support ---------------------------------------------------
    def token_snapshot(self) -> Dict[int, Tuple[bool, bool]]:
        """lock_id -> (has_token, held); used in checkpoints and queries."""
        return {l: (st.has_token, st.held) for l, st in self._tokens.items()}

    def chain_snapshot(self) -> Dict[int, Tuple[bool, bool, Optional[int], int]]:
        """lock -> (has_token, held, successor acquirer, successor seq).

        Recovery queries use this to rebuild a crashed manager's chain
        from the live processes' successor pointers.
        """
        out: Dict[int, Tuple[bool, bool, Optional[int], int]] = {}
        for l, st in self._tokens.items():
            if st.successor is not None:
                out[l] = (st.has_token, st.held, st.successor[0], st.successor[2])
            else:
                out[l] = (st.has_token, st.held, None, 0)
        return out

    def restore_chain(
        self, lock_id: int, holder: int, edges: Dict[int, Tuple[int, int]]
    ) -> None:
        """Rebuild a managed lock's chain from the token holder onward.

        ``edges`` maps a process to its (successor, seq) pointer; the
        chain is the walk from ``holder`` through the pointers. A crashed
        holder loses its own successor pointer, leaving a headless path —
        it is re-attached right after the holder (single-fault: at most
        one pointer is missing). Waiters whose requests died with the old
        manager re-enter by re-sending.

        A re-attached head's *pending* request seq died with the old
        manager; only its last **completed** seq survives (handshake
        ``completed_seq``). Seeding the entry with that stale value would
        make the eventual repair grant look like a duplicate of an
        acquire the waiter already finished — the waiter drops it and
        the token is lost. Real seqs start at 1, so the entry carries the
        sentinel seq 0 instead: grants with seq 0 bypass the grantee's
        completed-seq dedup and are always accepted.
        """
        st = self.manager(lock_id)
        st.chain = [ChainEntry(holder, st.last_seq.get(holder, 0))]
        st.owner_pos = 0
        seen = {holder}

        def walk(cur: int) -> None:
            while cur in edges:
                nxt, seq = edges[cur]
                if nxt in seen:
                    break
                st.chain.append(ChainEntry(nxt, seq))
                st.last_seq[nxt] = max(st.last_seq.get(nxt, -1), seq)
                seen.add(nxt)
                cur = nxt

        walk(holder)
        targets = {t for (t, _) in edges.values()}
        while True:
            heads = sorted(
                s for s in edges if s not in seen and s not in targets
            )
            if not heads:
                break
            for h in heads:
                st.chain.append(ChainEntry(h, 0))
                seen.add(h)
                walk(h)
