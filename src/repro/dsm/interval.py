"""Write-notice bookkeeping (interval records).

Every process keeps a :class:`NoticeTable` of all write notices it knows
about — its own (which double as the FT layer's ``wn_log``, §4.2.1: "logging
write notices is done as part of the base protocol") and those received in
lock grants and barrier releases. Notices are indexed by creator and
interval so that the happened-before filtering of lazy release consistency
(send exactly the notices in intervals ``(acq_vt[c], rel_vt[c]]``) is a
range query.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.dsm.messages import WriteNotice
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

__all__ = ["NoticeTable"]


class NoticeTable:
    """Per-process store of write notices, indexed by (creator, interval)."""

    def __init__(self, num_procs: int) -> None:
        self.n = num_procs
        # creator -> sorted list of intervals; creator -> interval -> notices
        self._intervals: List[List[int]] = [[] for _ in range(num_procs)]
        self._by_interval: List[Dict[int, List[WriteNotice]]] = [
            {} for _ in range(num_procs)
        ]
        # (creator, interval) -> pages already present, for O(1) dedup
        self._pages: List[Dict[int, Set[PageId]]] = [
            {} for _ in range(num_procs)
        ]

    def add(self, notice: WriteNotice) -> bool:
        """Insert a notice; returns False if already known."""
        creator = notice.creator
        interval = notice.interval
        table = self._by_interval[creator]
        bucket = table.get(interval)
        if bucket is None:
            bucket = []
            table[interval] = bucket
            self._pages[creator][interval] = set()
            insort(self._intervals[creator], interval)
        pages = self._pages[creator][interval]
        if notice.page in pages:
            return False
        pages.add(notice.page)
        bucket.append(notice)
        return True

    def add_all(self, notices: Iterable[WriteNotice]) -> List[WriteNotice]:
        """Insert many; returns the ones that were new."""
        return [n for n in notices if self.add(n)]

    def between(self, low: VClock, high: VClock) -> List[WriteNotice]:
        """Notices with ``low[c] < interval <= high[c]`` for their creator.

        This is exactly the happened-before set a lock grantor with release
        time ``high`` must send to an acquirer at time ``low``.
        """
        out: List[WriteNotice] = []
        if self.n >= VClock.ARRAY_WIDTH:
            # wide clusters: find the (typically few) creators whose range
            # is non-empty in one vectorized compare instead of an O(n)
            # Python scan per grant
            la, ha = low.as_array(), high.as_array()
            for c in np.flatnonzero(ha > la).tolist():
                lo, hi = int(la[c]), int(ha[c])
                ivs = self._intervals[c]
                start = bisect_right(ivs, lo)
                end = bisect_right(ivs, hi)
                for k in range(start, end):
                    out.extend(self._by_interval[c][ivs[k]])
            return out
        for c in range(self.n):
            lo, hi = low[c], high[c]
            if hi <= lo:
                continue
            ivs = self._intervals[c]
            start = bisect_right(ivs, lo)
            end = bisect_right(ivs, hi)
            for k in range(start, end):
                out.extend(self._by_interval[c][ivs[k]])
        return out

    def own_after(self, creator: int, min_interval: int) -> List[WriteNotice]:
        """Notices created by ``creator`` in intervals > ``min_interval``."""
        ivs = self._intervals[creator]
        start = bisect_right(ivs, min_interval)
        out: List[WriteNotice] = []
        for k in range(start, len(ivs)):
            out.extend(self._by_interval[creator][ivs[k]])
        return out

    def trim_creator_before(self, creator: int, min_keep_interval: int) -> int:
        """Drop notices of ``creator`` with interval < ``min_keep_interval``.

        Implements Rule 1 (wn_log trimming) when applied to the process's
        own notices. Returns the number of notices dropped.
        """
        ivs = self._intervals[creator]
        cut = bisect_left(ivs, min_keep_interval)
        dropped = 0
        for k in range(cut):
            dropped += len(self._by_interval[creator].pop(ivs[k]))
            self._pages[creator].pop(ivs[k], None)
        del ivs[:cut]
        return dropped

    def count(self) -> int:
        return sum(
            len(b) for table in self._by_interval for b in table.values()
        )

    def all_notices(self) -> List[WriteNotice]:
        return [
            n
            for table in self._by_interval
            for bucket in table.values()
            for n in bucket
        ]
