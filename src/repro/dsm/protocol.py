"""The per-process HLRC protocol engine.

One :class:`DsmProcess` per node implements the application-facing DSM
API (acquire/release/barrier/read/write/compute) as simulator coroutines,
plus the message handlers for the home, lock and barrier sub-protocols.

Interval discipline
-------------------
``vt[i]`` is the index of the last *flushed* interval of process ``i``.
An interval is flushed (diffs created and sent to homes, write notices
generated, ``vt[i]`` bumped) at every synchronization operation that had
intervening writes: lock acquire (before the request), lock release, and
barrier arrival. Flushing at acquire keeps the invariant that no page is
dirty when invalidations are applied.

Fault-tolerance integration
---------------------------
All FT behaviour is behind :class:`FtHooks` (a no-op here). The
fault-tolerant system of the paper installs a real implementation
(:class:`repro.core.ftmanager.FtManager`) that logs, checkpoints, trims
and piggybacks without the base protocol knowing.

Recovery integration
--------------------
When ``self.replay`` is set (a :class:`repro.core.recovery.ReplayDriver`),
synchronization and page faults are satisfied from recovered logs instead
of messages (§4.3); the driver flips the process back to live mode when
the logs are exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.dsm.barrier import BarrierManagerState
from repro.dsm.config import DsmConfig
from repro.dsm.diff import Diff, apply_diff, compute_diff
from repro.dsm.home import HomeDirectory, HomePage
from repro.dsm.interval import NoticeTable
from repro.dsm.locks import LockTable
from repro.dsm.messages import (
    BarrierArrive,
    BarrierRelease,
    DiffMsg,
    GrantInfo,
    LockAcquireReq,
    LockForward,
    LockGrant,
    Message,
    PageFetchReply,
    PageFetchReq,
    Piggyback,
    WriteNotice,
)
from repro.dsm.pages import PageEntry, PageId, PageState, RegionSet, SharedRegion
from repro.dsm.vclock import VClock
from repro.sim.engine import Delay, Engine, Future
from repro.sim.node import CpuModel, TimeBucket

__all__ = ["DsmProcess", "FtHooks", "ProtocolStats"]


class FtHooks:
    """Fault-tolerance extension points; the base protocol is a no-op."""

    def on_interval_flush(
        self, page: PageId, diff: Diff, vt: VClock, is_home: bool
    ) -> Iterator[Delay]:
        """A diff for ``page`` was created at interval flush (vt = new vt)."""
        return iter(())

    def home_wants_diffs(self) -> bool:
        """True when homes must twin/diff their own pages (FT logging)."""
        return False

    def on_grant(self, lock_id: int, acquirer: int, acq_t: VClock) -> None:
        """This process granted ``lock_id``; ``acq_t`` is the acquirer's new vt."""

    def on_acquire_done(self, lock_id: int, grantor: int, acq_t: VClock) -> None:
        """This process completed an acquire granted by ``grantor``."""

    def on_self_grant(self, lock_id: int, acq_t: VClock) -> None:
        """This process re-acquired its own resting token (local acquire)."""

    def on_buddy_self_grant(self, grantor: int, lock_id: int, acq_t: VClock) -> None:
        """Hold a buddy mirror of a manager's own self-grant."""

    def on_mirror_self_grant(self, grantor: int, lock_id: int, acq_t: VClock) -> None:
        """Managed lock: a peer's self-grant was mirrored into manager state."""

    def on_owner_observed(self, lock_id: int, owner: int) -> None:
        """Managed lock: the token's observed owner advanced to ``owner``."""

    def on_barrier_done(self, episode: int, global_vt: VClock) -> None:
        """This process passed barrier ``episode``."""

    def at_sync_point(self, at_barrier: bool = False) -> Iterator[Delay]:
        """Called at sync points (after release, before barrier arrival)."""
        return iter(())

    def at_safe_point(self) -> Iterator[Delay]:
        """Called at application-declared checkpoint-safe points."""
        return iter(())

    def piggyback_for(self, dst: int) -> Optional[Piggyback]:
        return None

    def on_piggyback(self, src: int, pb: Piggyback) -> None:
        pass

    def on_diff_received(self, page: PageId, writer: int, diff_vt: VClock) -> None:
        """Home received and applied a diff (drives p0.v advertisements)."""

    def handle_ft_message(self, src: int, msg: "Message") -> bool:
        """Give the FT layer first pick of unknown messages (baselines)."""
        return False

    def record_if_channel_state(self, src: int, msg: "Message") -> None:
        """Coordinated-checkpointing hook: record cut-crossing messages."""

    def log_append_cost(self, nbytes: int) -> float:
        return 0.0


@dataclass
class ProtocolStats:
    """Per-process protocol event counters."""

    page_fetches: int = 0
    page_fetch_bytes: int = 0
    diffs_sent: int = 0
    diff_bytes_sent: int = 0
    diffs_created: int = 0
    diff_bytes_created: int = 0
    lock_acquires: int = 0
    barriers: int = 0
    notices_created: int = 0
    notices_applied: int = 0
    intervals: int = 0


class DsmProcess:
    """Protocol state and application API for one process."""

    def __init__(
        self,
        pid: int,
        config: DsmConfig,
        regions: RegionSet,
        engine: Engine,
        send_fn: Callable[[int, int, Message], None],
        cpu: Optional[CpuModel] = None,
    ) -> None:
        self.pid = pid
        self.config = config
        self.n = config.num_procs
        self.regions = regions
        self.engine = engine
        self._send_raw = send_fn
        self.cpu = cpu or CpuModel()

        self.vt = VClock.zero(self.n)
        self.notices = NoticeTable(self.n)
        self.locks = LockTable(pid, self.n)
        self.home = HomeDirectory(self.n)
        self.stats = ProtocolStats()

        # local memory: one uint8 backing array per region
        self.backing: Dict[int, np.ndarray] = {}
        self.entries: Dict[PageId, PageEntry] = {}
        # version of the local copy (what we know we have)
        self.have_v: Dict[PageId, VClock] = {}
        self._dirty: List[PageId] = []

        # pending operation futures
        self._fetch_waiting: Dict[PageId, Future] = {}
        self._lock_waiting: Dict[int, Future] = {}
        self._home_waiting: Dict[PageId, Future] = {}
        self._barrier_future: Optional[Future] = None

        # lock acquire sequence numbers (per lock) for request dedupe,
        # and in-flight requests for post-recovery re-sends
        self._acq_seq: Dict[int, int] = {}
        self._completed_seq: Dict[int, int] = {}
        self._pending_acquires: Dict[int, LockAcquireReq] = {}
        self._pending_fetch_req: Dict[PageId, PageFetchReq] = {}
        self._pending_arrive: Optional[BarrierArrive] = None
        #: a barrier release that arrived while we were not yet waiting
        #: (possible when a queued release drains right after recovery)
        self._stashed_release: Optional[BarrierRelease] = None

        # barrier participant state
        self.barrier_episode = 0
        self.last_barrier_global = VClock.zero(self.n)
        self.barrier_mgr: Optional[BarrierManagerState] = (
            BarrierManagerState(self.n) if pid == config.barrier_manager else None
        )

        self.ft: FtHooks = FtHooks()
        #: observability probe (repro.observe.NodeProbe); None = no
        #: observer attached — instrumented sites cost one attribute
        #: check, and the probe itself only reads/records (never
        #: schedules), so observation cannot perturb the run
        self.obs: Any = None
        #: recovery replay driver (duck-typed); None = live operation
        self.replay: Any = None

        self._init_memory()

    # ------------------------------------------------------------------
    # memory setup
    # ------------------------------------------------------------------
    def _init_memory(self) -> None:
        for region in self.regions:
            self.backing[region.region_id] = np.zeros(region.nbytes, dtype=np.uint8)
            for i in range(region.num_pages):
                pid_ = region.page_id(i)
                entry = PageEntry()
                if region.home_of(i) == self.pid:
                    # home copies start valid (and authoritative)
                    entry.state = PageState.RO
                    self.home.add_page(pid_)
                self.entries[pid_] = entry
                self.have_v[pid_] = VClock.zero(self.n)

    def rebind_homes(self) -> None:
        """Re-derive home directory after explicit home placement changes.

        Must be called before any sharing (the cluster does this when the
        region set is sealed).
        """
        self.home = HomeDirectory(self.n)
        for region in self.regions:
            for i in range(region.num_pages):
                pid_ = region.page_id(i)
                entry = self.entries[pid_]
                if region.home_of(i) == self.pid:
                    entry.state = PageState.RO
                    self.home.add_page(pid_)
                elif entry.state is not PageState.INVALID and not self.is_home(pid_):
                    entry.state = PageState.INVALID

    def is_home(self, page: PageId) -> bool:
        return page in self.home

    def page_bytes(self, page: PageId) -> np.ndarray:
        region = self.regions[page.region]
        lo, hi = region.page_slice(page.index)
        return self.backing[page.region][lo:hi]

    def typed_view(self, region: SharedRegion) -> np.ndarray:
        """The whole region as its element dtype (local copy)."""
        raw = self.backing[region.region_id]
        return raw.view(region.dtype)[: region.num_elements]

    # ------------------------------------------------------------------
    # application API — computation
    # ------------------------------------------------------------------
    def compute(self, seconds: float) -> Iterator[Delay]:
        """Charge ``seconds`` of application computation."""
        yield from self.cpu.charge(TimeBucket.COMPUTE, seconds)

    # ------------------------------------------------------------------
    # application API — checkpointing
    # ------------------------------------------------------------------
    def ckpt_point(self) -> Iterator[Any]:
        """Declare a checkpoint-safe point (resumable private state).

        A checkpoint requested by the policy since the last safe point is
        taken here.
        """
        yield from self.cpu.drain_debt()
        yield from self.ft.at_safe_point()

    def checkpoint(self) -> Iterator[Any]:
        """Application-requested checkpoint, taken immediately (the
        exported API of §5.4; the call site is by definition safe)."""
        yield from self.cpu.drain_debt()
        take = getattr(self.ft, "take_checkpoint", None)
        if take is not None:
            yield from take()

    # ------------------------------------------------------------------
    # application API — shared memory access
    # ------------------------------------------------------------------
    def read_range(self, region: SharedRegion, lo: int, hi: int) -> Iterator[Any]:
        """Make elements [lo, hi) readable; returns the typed local view."""
        pages = region.pages_for_range(lo, hi)
        if self._range_ready(region, pages, for_write=False):
            return self.typed_view(region)[lo:hi]
        for idx in pages:
            yield from self._ensure_valid(region.page_id(idx))
        return self.typed_view(region)[lo:hi]

    def write_range(self, region: SharedRegion, lo: int, hi: int) -> Iterator[Any]:
        """Make elements [lo, hi) writable; returns the typed local view.

        The caller must only write inside the declared range (the
        simulator stands in for per-page write protection).
        """
        pages = region.pages_for_range(lo, hi)
        if self._range_ready(region, pages, for_write=True):
            return self.typed_view(region)[lo:hi]
        for idx in pages:
            yield from self._ensure_writable(region.page_id(idx))
        return self.typed_view(region)[lo:hi]

    def _range_ready(self, region: SharedRegion, pages: range, for_write: bool) -> bool:
        """True when every page in ``pages`` can be served without a yield.

        This is the no-yield fast path of ``read_range``/``write_range``:
        when there is no handler debt to drain and every covered page is
        already valid (and dirty, for writes), the per-page
        ``_ensure_valid``/``_ensure_writable`` loop would execute zero
        yields, so it can be skipped wholesale. The check is pure except
        for clearing ``needed_v`` on satisfied home pages — exactly the
        side effect ``_ensure_home_ready`` would have performed — and
        mutates nothing when it returns False, so the fallback slow path
        starts from pristine state.
        """
        if self.cpu.handler_debt or self.replay is not None:
            return False
        entries = self.entries
        home = self.home
        have_v = self.have_v
        page_id = region.page_id
        satisfied_homes: List[PageEntry] = []
        for idx in pages:
            page = page_id(idx)
            entry = entries[page]
            if for_write and not entry.dirty:
                return False
            hp = home.get(page)
            needed = entry.needed_v
            if hp is not None:
                if needed is not None:
                    if not needed.leq(hp.version):
                        return False
                    satisfied_homes.append(entry)
            else:
                if entry.state is PageState.INVALID:
                    return False
                if needed is not None and not needed.leq(have_v[page]):
                    return False
        for entry in satisfied_homes:
            entry.needed_v = None
        return True

    def _ensure_valid(self, page: PageId) -> Iterator[Any]:
        yield from self.cpu.drain_debt()
        entry = self.entries[page]
        if self.is_home(page):
            yield from self._ensure_home_ready(page, entry)
            return
        if entry.state is not PageState.INVALID and (
            entry.needed_v is None or entry.needed_v.leq(self.have_v[page])
        ):
            return
        yield from self._fetch(page, entry)

    def _ensure_writable(self, page: PageId) -> Iterator[Any]:
        yield from self._ensure_valid(page)
        entry = self.entries[page]
        if entry.dirty:
            return
        fault = self.cpu.costs.page_fault_handler
        is_home = self.is_home(page)
        region = self.regions[page.region]
        if not is_home:
            # base protocol: twin needed to produce the diff for the home
            twin_cost = fault + region.config.page_size * self.cpu.costs.twin_create_per_byte
            yield from self.cpu.charge(TimeBucket.OVERHEAD, twin_cost)
            entry.twin = self.page_bytes(page).copy()
        elif self.ft.home_wants_diffs():
            # FT-only overhead: the home twins its own page to log a diff
            twin_cost = fault + region.config.page_size * self.cpu.costs.twin_create_per_byte
            yield from self.cpu.charge(TimeBucket.LOG_CKPT, twin_cost)
            entry.twin = self.page_bytes(page).copy()
        entry.dirty = True
        entry.state = PageState.RW
        self._dirty.append(page)

    def _fetch(self, page: PageId, entry: PageEntry) -> Iterator[Any]:
        if self.replay is not None:
            yield from self.replay.replay_fetch(page, entry)
            return
        t0 = self.engine.now
        fut = Future(f"fetch p{page} @{self.pid}")
        self._fetch_waiting[page] = fut
        needed = entry.needed_v or VClock.zero(self.n)
        req = PageFetchReq(page=page, requester=self.pid, needed_v=needed)
        self._pending_fetch_req[page] = req
        self._send(self.regions.home_of(page), req)
        reply: PageFetchReply = yield fut
        self._pending_fetch_req.pop(page, None)
        wait = self.engine.now - t0
        self.cpu.stats.add(TimeBucket.PAGE_WAIT, wait)
        if self.obs is not None:
            self.obs.fetch_wait.observe(wait)
            self.obs.fetch_lat.observe(wait)
        # install the page
        buf = self.page_bytes(page)
        buf[:] = np.frombuffer(reply.data, dtype=np.uint8)
        copy_cost = len(reply.data) * self.cpu.costs.twin_create_per_byte
        yield from self.cpu.charge(TimeBucket.OVERHEAD, copy_cost)
        entry.state = PageState.RO
        entry.needed_v = None
        self.have_v[page] = reply.version
        self.stats.page_fetches += 1
        self.stats.page_fetch_bytes += len(reply.data)

    def _ensure_home_ready(self, page: PageId, entry: PageEntry) -> Iterator[Any]:
        """Home access path: wait for in-flight diffs if a notice demands."""
        if self.replay is not None:
            yield from self.replay.replay_home_access(page, entry)
            return
        hp = self.home[page]
        needed = entry.needed_v
        if needed is not None and not hp.ready_for(needed):
            t0 = self.engine.now
            fut = Future(f"homewait p{page} @{self.pid}")
            self._home_waiting[page] = fut
            hp.wait_fetch(self.pid, needed, lambda: fut.resolve(None))
            yield fut
            self.cpu.stats.add(TimeBucket.PAGE_WAIT, self.engine.now - t0)
        entry.needed_v = None

    # ------------------------------------------------------------------
    # interval flush
    # ------------------------------------------------------------------
    def _end_interval(self) -> Iterator[Any]:
        """Flush dirty pages: create diffs + notices, send diffs to homes."""
        if not self._dirty:
            return
        dirty, self._dirty = self._dirty, []
        new_interval = self.vt[self.pid] + 1
        self.vt = self.vt.bump(self.pid)
        self.stats.intervals += 1
        for page in dirty:
            entry = self.entries[page]
            region = self.regions[page.region]
            is_home = self.is_home(page)
            if entry.twin is not None:
                cost = region.config.page_size * self.cpu.costs.diff_compute_per_byte
                bucket = TimeBucket.LOG_CKPT if is_home else TimeBucket.OVERHEAD
                yield from self.cpu.charge(bucket, cost)
                diff = compute_diff(entry.twin, self.page_bytes(page))
            else:
                diff = Diff(())
            entry.twin = None
            entry.dirty = False
            entry.state = PageState.RO
            notice = WriteNotice(self.pid, new_interval, page, self.vt)
            self.notices.add(notice)
            self.stats.notices_created += 1
            if not diff.empty:
                self.stats.diffs_created += 1
                self.stats.diff_bytes_created += diff.size_bytes
            yield from self.ft.on_interval_flush(page, diff, self.vt, is_home)
            if is_home:
                hp = self.home[page]
                hp.advance(self.pid, new_interval)
                self.have_v[page] = hp.version
                hp.service_pending()
            else:
                self.have_v[page] = self.have_v[page].with_component(
                    self.pid, new_interval
                )
                # diffs are sent even during recovery replay: the home
                # discards duplicates by version, and flushes past the
                # crash point must reach it (§4.3)
                self._send(
                    self.regions.home_of(page),
                    DiffMsg(
                        page=page,
                        writer=self.pid,
                        diff=diff,
                        diff_vt=self.vt,
                    ),
                )
                self.stats.diffs_sent += 1
                self.stats.diff_bytes_sent += diff.size_bytes

    # ------------------------------------------------------------------
    # application API — locks
    # ------------------------------------------------------------------
    def acquire(self, lock_id: int) -> Iterator[Any]:
        """Acquire a global lock (LRC acquire semantics)."""
        yield from self.cpu.drain_debt()
        yield from self._end_interval()
        seq = self._acq_seq.get(lock_id, 0) + 1
        self._acq_seq[lock_id] = seq
        if self.replay is not None:
            done = yield from self.replay.replay_acquire(lock_id, seq)
            if done:
                self.stats.lock_acquires += 1
                return
            # replay exhausted mid-acquire: fall through to a live acquire
        st = self.locks.token(lock_id)
        if st.has_token and st.successor is None and not st.held:
            # token is resting here and nobody was promised it
            grant = LockGrant(
                lock_id=lock_id,
                grantor=self.pid,
                rel_vt=st.rel_vt or VClock.zero(self.n),
                notices=[],
            )
            self._complete_acquire(lock_id, grant, local=True)
            self._record_self_grant(lock_id)
            return
        t0 = self.engine.now
        fut = Future(f"lock{lock_id} @{self.pid}")
        self._lock_waiting[lock_id] = fut
        req = LockAcquireReq(
            lock_id=lock_id, acquirer=self.pid, acq_vt=self.vt, seq=seq
        )
        self._pending_acquires[lock_id] = req
        manager = self.config.lock_manager(lock_id)
        if manager == self.pid:
            self._manager_handle_acquire(req)
        else:
            self._send(manager, req)
        grant: LockGrant = yield fut
        wait = self.engine.now - t0
        self.cpu.stats.add(TimeBucket.LOCK_WAIT, wait)
        if self.obs is not None:
            self.obs.lock_wait.observe(wait)
            self.obs.lock_lat.observe(wait)
        self._complete_acquire(lock_id, grant, local=False)
        yield from self.cpu.charge(
            TimeBucket.OVERHEAD,
            self.cpu.costs.message_handler
            + len(grant.notices) * 1e-6,
        )

    def _complete_acquire(self, lock_id: int, grant: LockGrant, local: bool) -> None:
        st = self.locks.token(lock_id)
        st.has_token = True
        st.held = True
        st.rel_vt = None
        self._pending_acquires.pop(lock_id, None)
        self._completed_seq[lock_id] = self._acq_seq.get(lock_id, 0)
        self._apply_notices(grant.notices)
        # the acquire starts a new local interval (bump); this guarantees
        # every acquire has a unique, strictly increasing own-component,
        # which Rule 2 trimming and replay alignment rely on
        self.vt = self.vt.bump(self.pid).join(grant.rel_vt)
        self.stats.lock_acquires += 1
        if not local:
            self.ft.on_acquire_done(lock_id, grant.grantor, self.vt)

    def release(self, lock_id: int) -> Iterator[Any]:
        """Release a lock: flush the interval, then pass the token if owed."""
        yield from self.cpu.drain_debt()
        st = self.locks.token(lock_id)
        if not st.held:
            raise RuntimeError(f"process {self.pid} releasing unheld lock {lock_id}")
        yield from self._end_interval()
        st.held = False
        st.rel_vt = self.vt
        if self.replay is None and st.successor is not None:
            acquirer, acq_vt, seq = st.successor
            st.successor = None
            self._grant_to(lock_id, acquirer, acq_vt, seq)
        yield from self.ft.at_sync_point()

    def _grant_to(
        self, lock_id: int, acquirer: int, acq_vt: VClock, seq: int = 0
    ) -> None:
        st = self.locks.token(lock_id)
        assert st.has_token and not st.held
        st.granted[acquirer] = max(st.granted.get(acquirer, -1), seq)
        rel_vt = st.rel_vt or VClock.zero(self.n)
        notices = self.notices.between(acq_vt, rel_vt)
        # exclude the acquirer's own notices; it has its own writes
        notices = [wn for wn in notices if wn.creator != acquirer]
        grant = LockGrant(
            lock_id=lock_id, grantor=self.pid, rel_vt=rel_vt, notices=notices,
            seq=seq,
        )
        if acquirer == self.pid:
            # forwarded-to-self: the token never leaves; complete locally
            fut = self._lock_waiting.pop(lock_id, None)
            if fut is not None:
                fut.resolve(grant)
                self.engine.call_soon(lambda: self._record_self_grant(lock_id))
            return
        st.has_token = False
        # mirror the acquirer's post-acquire vt (including its bump)
        acq_t = acq_vt.bump(acquirer).join(rel_vt)
        self.ft.on_grant(lock_id, acquirer, acq_t)
        self._send(acquirer, grant)
        # tell the manager where the token went (recovery bookkeeping)
        manager = self.config.lock_manager(lock_id)
        info = GrantInfo(lock_id=lock_id, grantor=self.pid, grantee=acquirer)
        if manager == self.pid:
            self.locks.manager(lock_id).grant_observed(acquirer)
            self.ft.on_owner_observed(lock_id, acquirer)
        else:
            self._send(manager, info)

    def _record_self_grant(self, lock_id: int) -> None:
        """Mirror a completed local (self) acquire on a *distinct* node.

        Normally the mirror lives at the lock manager; when this process
        manages the lock itself, the mirror goes to a buddy process so
        that it survives a crash here.
        """
        acq_t = self.vt
        self.ft.on_self_grant(lock_id, acq_t)
        manager = self.config.lock_manager(lock_id)
        if manager == self.pid:
            self.locks.manager(lock_id).log_self_grant(self.pid, acq_t)
            if self.n > 1:
                buddy = (self.pid + 1) % self.n
                self._send(
                    buddy,
                    GrantInfo(
                        lock_id=lock_id,
                        grantor=self.pid,
                        grantee=self.pid,
                        acq_t=acq_t,
                    ),
                )
        else:
            self._send(
                manager,
                GrantInfo(
                    lock_id=lock_id,
                    grantor=self.pid,
                    grantee=self.pid,
                    acq_t=acq_t,
                ),
            )

    # ------------------------------------------------------------------
    # application API — barrier
    # ------------------------------------------------------------------
    def barrier(self) -> Iterator[Any]:
        """Global barrier over all processes."""
        yield from self.cpu.drain_debt()
        yield from self.ft.at_sync_point(at_barrier=True)
        yield from self._end_interval()
        episode = self.barrier_episode
        if self.replay is not None:
            done = yield from self.replay.replay_barrier(episode)
            if done:
                self.barrier_episode += 1
                self.stats.barriers += 1
                return
        if (
            self._stashed_release is not None
            and self._stashed_release.episode == episode
        ):
            # the release for this episode already arrived (it answered a
            # pre-crash arrival, delivered during the post-recovery drain)
            release = self._stashed_release
            self._stashed_release = None
            self._complete_barrier(release)
            yield from self.cpu.charge(
                TimeBucket.OVERHEAD,
                self.cpu.costs.message_handler + len(release.notices) * 1e-6,
            )
            return
        own = self.notices.own_after(self.pid, self.last_barrier_global[self.pid])
        arrive = BarrierArrive(
            episode=episode, proc=self.pid, vt=self.vt, notices=own
        )
        t0 = self.engine.now
        fut = Future(f"barrier{episode} @{self.pid}")
        self._barrier_future = fut
        self._pending_arrive = arrive
        mgr = self.config.barrier_manager
        if mgr == self.pid:
            self._manager_handle_arrive(arrive)
        else:
            self._send(mgr, arrive)
        release: BarrierRelease = yield fut
        self._pending_arrive = None
        wait = self.engine.now - t0
        self.cpu.stats.add(TimeBucket.BARRIER_WAIT, wait)
        if self.obs is not None:
            self.obs.barrier_wait.observe(wait)
            self.obs.barrier_lat.observe(wait)
        self._complete_barrier(release)
        yield from self.cpu.charge(
            TimeBucket.OVERHEAD,
            self.cpu.costs.message_handler + len(release.notices) * 1e-6,
        )

    def _complete_barrier(self, release: BarrierRelease) -> None:
        self._apply_notices(release.notices)
        self.vt = self.vt.join(release.global_vt)
        self.last_barrier_global = release.global_vt
        self.barrier_episode += 1
        self.stats.barriers += 1
        self.ft.on_barrier_done(release.episode, release.global_vt)
        if self.obs is not None:
            self.obs.on_barrier(release.episode)

    # ------------------------------------------------------------------
    # invalidations
    # ------------------------------------------------------------------
    def _apply_notices(self, notices: List[WriteNotice]) -> None:
        for wn in notices:
            if wn.creator == self.pid:
                continue
            if not self.notices.add(wn):
                continue
            self.stats.notices_applied += 1
            self._note_invalidation(wn)

    def _note_invalidation(self, wn: WriteNotice) -> None:
        entry = self.entries[wn.page]
        # the minimal version accumulates *write intervals* per creator —
        # page versions at homes advance only when diffs are applied, so
        # joining full causal timestamps here would demand versions that
        # never materialize
        base = entry.needed_v or VClock.zero(self.n)
        if wn.interval <= base[wn.creator]:
            return
        needed = base.with_component(wn.creator, wn.interval)
        if needed.leq(self.have_v[wn.page]):
            return  # local copy already incorporates these writes
        entry.needed_v = needed
        if not self.is_home(wn.page):
            if entry.dirty:
                raise RuntimeError(
                    f"invalidation hit dirty page {wn.page} at {self.pid}; "
                    "intervals must be flushed before applying notices"
                )
            entry.state = PageState.INVALID

    # ------------------------------------------------------------------
    # message handling (instantaneous; CPU cost becomes handler debt)
    # ------------------------------------------------------------------
    def handle_message(self, src: int, msg: Message) -> None:
        if msg.piggyback is not None:
            self.ft.on_piggyback(src, msg.piggyback)
        self.cpu.accrue_handler(self.cpu.costs.message_handler)
        if self.ft.handle_ft_message(src, msg):
            return
        self.ft.record_if_channel_state(src, msg)
        if isinstance(msg, LockAcquireReq):
            self._manager_handle_acquire(msg)
        elif isinstance(msg, GrantInfo):
            if msg.acq_t is not None and not self.locks.manages(msg.lock_id):
                # buddy copy of a manager's own self-grant
                self.ft.on_buddy_self_grant(msg.grantor, msg.lock_id, msg.acq_t)
            else:
                mgr = self.locks.manager(msg.lock_id)
                if msg.acq_t is not None:
                    mgr.log_self_grant(msg.grantor, msg.acq_t)
                    self.ft.on_mirror_self_grant(msg.grantor, msg.lock_id, msg.acq_t)
                else:
                    mgr.grant_observed(msg.grantee)
                    self.ft.on_owner_observed(msg.lock_id, msg.grantee)
        elif isinstance(msg, LockForward):
            self._handle_forward(msg)
        elif isinstance(msg, LockGrant):
            self._handle_grant(msg)
        elif isinstance(msg, DiffMsg):
            self._handle_diff(src, msg)
        elif isinstance(msg, PageFetchReq):
            self._handle_fetch_req(msg)
        elif isinstance(msg, PageFetchReply):
            self._handle_fetch_reply(msg)
        elif isinstance(msg, BarrierArrive):
            self._manager_handle_arrive(msg)
        elif isinstance(msg, BarrierRelease):
            self._handle_barrier_release(msg)
        else:
            raise RuntimeError(f"process {self.pid}: unknown message {msg!r}")

    # -- locks --------------------------------------------------------------
    def _manager_handle_acquire(self, req: LockAcquireReq) -> None:
        mgr = self.locks.manager(req.lock_id)
        if mgr.is_duplicate(req.acquirer, req.seq):
            return
        if mgr.in_chain_at_or_after_owner(req.acquirer):
            # re-sent request already queued in the live chain
            return
        prev = mgr.append(req.acquirer, req.seq)
        fwd = LockForward(
            lock_id=req.lock_id, acquirer=req.acquirer, acq_vt=req.acq_vt, seq=req.seq
        )
        if prev == self.pid:
            self._handle_forward(fwd)
        else:
            self._send(prev, fwd)

    def _handle_forward(self, fwd: LockForward) -> None:
        st = self.locks.token(fwd.lock_id)
        if fwd.seq <= st.granted.get(fwd.acquirer, -1):
            return  # re-issued forward for a grant that already went out
        if st.has_token and not st.held and st.successor is None:
            self._grant_to(fwd.lock_id, fwd.acquirer, fwd.acq_vt, fwd.seq)
        else:
            if st.successor is not None:
                if st.successor[0] == fwd.acquirer:
                    return  # repair-forward duplicate after a recovery
                raise RuntimeError(
                    f"lock {fwd.lock_id}: two successors at {self.pid} "
                    "(manager must serialize the chain)"
                )
            st.successor = (fwd.acquirer, fwd.acq_vt, fwd.seq)

    def _handle_grant(self, grant: LockGrant) -> None:
        if grant.seq and grant.seq <= self._completed_seq.get(grant.lock_id, 0):
            # grant for an acquire that recovery replay already accounted
            # for. Usually a duplicate of a transfer whose effect the
            # live-switch placement already reflects — but if this exact
            # grant was parked in our queue while we were down AND the
            # placement says the token is elsewhere, the report it used
            # was stale (the grantor moved the token *after* answering
            # our handshake): a dead process cannot grant onward, so a
            # queued grant matching our last completed acquire IS the
            # token, physically. Accept it only when nothing here has
            # touched the token since the live switch — if placement
            # already materialized it and a drained forward passed it on
            # (``granted`` non-empty, rebuilt fresh at recovery), this
            # copy is spent; likewise for older transfers (seq strictly
            # below) and a token we still hold.
            st = self.locks.token(grant.lock_id)
            if (
                grant.seq == self._completed_seq.get(grant.lock_id, 0)
                and not st.has_token
                and not st.granted
            ):
                st.has_token = True
                st.held = False
                if st.rel_vt is None:
                    st.rel_vt = grant.rel_vt
                if st.successor is not None:
                    # a repair forward raced ahead of this acceptance and
                    # parked the next waiter here; serve it now
                    acquirer, acq_vt, seq = st.successor
                    st.successor = None
                    self._grant_to(grant.lock_id, acquirer, acq_vt, seq)
            return
        fut = self._lock_waiting.pop(grant.lock_id, None)
        if fut is not None:
            fut.resolve(grant)
            return
        # grant addressed to a pre-crash request whose acquire has not
        # yet been re-reached: accept the token so the retried acquire's
        # fast path finds it
        st = self.locks.token(grant.lock_id)
        if not st.has_token:
            st.has_token = True
            st.held = False
            if st.rel_vt is None:
                st.rel_vt = grant.rel_vt

    # -- home / pages ------------------------------------------------------
    def _handle_diff(self, src: int, msg: DiffMsg) -> None:
        hp = self.home[msg.page]
        interval = msg.diff_vt[msg.writer]
        if hp.is_duplicate(msg.writer, interval):
            return
        apply_diff(self.page_bytes(msg.page), msg.diff)
        self.cpu.accrue_handler(
            msg.diff.payload_bytes * self.cpu.costs.diff_apply_per_byte
        )
        hp.advance(msg.writer, interval)
        hp.applied_bytes += msg.diff.size_bytes
        self.have_v[msg.page] = self.have_v[msg.page].join(hp.version)
        self.ft.on_diff_received(msg.page, msg.writer, msg.diff_vt)
        hp.service_pending()

    def page_snapshot(self, page: PageId, hp: Optional["HomePage"] = None) -> bytes:
        """Immutable snapshot of a homed page's current contents.

        Fetch replies and checkpoints share one cached ``bytes`` object
        per (page, version): the payload travels by reference and is
        copied only on install. The cache is keyed by version-object
        *identity* — the home replaces the version whenever the contents
        legally change — and bypassed while the page is dirty or the
        process is replaying, when bytes can move under an unchanged
        version.
        """
        if hp is None:
            hp = self.home[page]
        if self.entries[page].dirty or self.replay is not None:
            return self.page_bytes(page).tobytes()
        version = hp.version
        if hp.snap_version is not version:
            hp.snap = self.page_bytes(page).tobytes()
            hp.snap_version = version
        return hp.snap

    def _handle_fetch_req(self, req: PageFetchReq) -> None:
        hp = self.home[req.page]

        def reply() -> None:
            data = self.page_snapshot(req.page, hp)
            self.cpu.accrue_handler(
                len(data) * self.cpu.costs.twin_create_per_byte
            )
            self._send(
                req.requester,
                PageFetchReply(page=req.page, data=data, version=hp.version),
            )

        if hp.ready_for(req.needed_v):
            reply()
        else:
            hp.wait_fetch(req.requester, req.needed_v, reply)

    def _handle_fetch_reply(self, reply: PageFetchReply) -> None:
        fut = self._fetch_waiting.pop(reply.page, None)
        if fut is not None:
            fut.resolve(reply)
        # else: stale reply to a pre-crash fetch; drop

    # -- barrier -------------------------------------------------------------
    def _manager_handle_arrive(self, arrive: BarrierArrive) -> None:
        mgr = self.barrier_mgr
        if mgr is None:
            raise RuntimeError(f"process {self.pid} is not the barrier manager")
        if arrive.episode < mgr.next_episode:
            return  # duplicate arrival re-sent after recovery
        if mgr.current is not None and arrive.proc in mgr.current.arrived:
            return
        done = mgr.arrive(arrive.proc, arrive.episode, arrive.vt, arrive.notices)
        if done is None:
            return
        global_vt = done.global_vt()
        self.cpu.accrue_handler(
            self.cpu.costs.message_handler * self.n
            + len(done.notices) * 0.5e-6
        )
        # per-proc missing-notice filter: an O(procs × notices) scan. At
        # wide cluster sizes the scan runs vectorized (same selection,
        # same order); small clusters keep the plain loop.
        notices = done.notices
        vectorize = self.n >= VClock.ARRAY_WIDTH and notices
        if vectorize:
            wn_creator = np.fromiter(
                (wn.creator for wn in notices), np.int64, len(notices)
            )
            wn_interval = np.fromiter(
                (wn.interval for wn in notices), np.int64, len(notices)
            )
        for proc, vt in done.arrived.items():
            if vectorize:
                keep = (wn_creator != proc) & (
                    wn_interval > vt.as_array()[wn_creator]
                )
                missing = [notices[k] for k in np.flatnonzero(keep).tolist()]
            else:
                missing = [
                    wn
                    for wn in notices
                    if wn.creator != proc and wn.interval > vt[wn.creator]
                ]
            release = BarrierRelease(
                episode=done.episode, global_vt=global_vt, notices=missing
            )
            if proc == self.pid:
                self._handle_barrier_release(release)
            else:
                self._send(proc, release)

    def _handle_barrier_release(self, release: BarrierRelease) -> None:
        if release.episode != self.barrier_episode:
            return  # duplicate release for an episode replay already covered
        fut = self._barrier_future
        self._barrier_future = None
        if fut is not None:
            fut.resolve(release)
        else:
            # not waiting yet: the release answers a pre-crash arrival;
            # keep it for the re-executed barrier call
            self._stashed_release = release

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def resend_pending(self, recovered: int) -> None:
        """Re-issue requests the failed process may have consumed.

        Called when a :class:`RecoveryDone` for ``recovered`` arrives. All
        re-sent requests are idempotent: the lock manager dedupes by
        sequence number, fetches are naturally idempotent, and the barrier
        manager drops duplicate arrivals.
        """
        for lock_id, req in list(self._pending_acquires.items()):
            manager = self.config.lock_manager(lock_id)
            if manager == self.pid:
                self._manager_handle_acquire(req)
            else:
                self._send(manager, req)
        for page, req in list(self._pending_fetch_req.items()):
            if self.regions.home_of(page) == recovered:
                self._send(recovered, req)
        if self._pending_arrive is not None:
            mgr = self.config.barrier_manager
            if mgr == self.pid:
                self._manager_handle_arrive(self._pending_arrive)
            elif mgr == recovered:
                self._send(mgr, self._pending_arrive)

    def repair_forwards_for(self, recovered: int) -> None:
        """Manager-side repair: re-issue forwards lost in a crash.

        For every managed lock whose token rests at ``recovered`` and that
        has a waiter after it in the chain, re-send the forward — the
        original may have been consumed by the failed incarnation.
        """
        for lock_id in self.locks.managed_locks():
            mgr = self.locks.manager(lock_id)
            if not mgr.in_chain_at_or_after_owner(recovered):
                continue
            nxt = mgr.waiter_after(recovered)
            if nxt is None:
                continue
            fwd = LockForward(
                lock_id=lock_id,
                acquirer=nxt.acquirer,
                acq_vt=VClock.zero(self.n),
                seq=nxt.seq,
            )
            if recovered == self.pid:
                self._handle_forward(fwd)
            else:
                self._send(recovered, fwd)

    # ------------------------------------------------------------------
    # send plumbing
    # ------------------------------------------------------------------
    def _send(self, dst: int, msg: Message) -> None:
        if dst == self.pid:
            raise RuntimeError("local sends must be handled locally")
        pb = self.ft.piggyback_for(dst)
        if pb is not None:
            msg.piggyback = pb
        self._send_raw(self.pid, dst, msg)
