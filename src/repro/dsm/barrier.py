"""Manager-based global barriers.

At a barrier each process ends its current interval, sends its vector
time and the write notices it created since the last barrier to the
manager; the manager joins all vector times, unions the notices, and
releases everyone with the global time and the notices they are missing.
Barrier episodes are numbered so the FT layer can log "a pair of logical
times for every barrier" (§4.2.1) for replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dsm.messages import WriteNotice
from repro.dsm.vclock import VClock, vmax

__all__ = ["BarrierManagerState", "BarrierEpisode"]


@dataclass
class BarrierEpisode:
    """Manager-side state of one in-progress barrier episode."""

    episode: int
    arrived: Dict[int, VClock] = field(default_factory=dict)
    notices: List[WriteNotice] = field(default_factory=list)

    def arrive(self, proc: int, vt: VClock, notices: List[WriteNotice]) -> None:
        if proc in self.arrived:
            raise RuntimeError(
                f"process {proc} arrived twice at barrier episode {self.episode}"
            )
        self.arrived[proc] = vt
        self.notices.extend(notices)

    def complete(self, n: int) -> bool:
        return len(self.arrived) == n

    def global_vt(self) -> VClock:
        return vmax(self.arrived.values())


class BarrierManagerState:
    """Barrier manager bookkeeping across episodes.

    ``last_global`` is the global vector time of the last completed
    episode; participants send only their own notices created after it,
    which (as every older notice is ≤ last_global ≤ every vt) suffices
    for coverage.
    """

    def __init__(self, num_procs: int) -> None:
        self.n = num_procs
        self.current: Optional[BarrierEpisode] = None
        self.next_episode = 0
        self.last_global = VClock.zero(num_procs)
        #: completed episodes: episode -> global vt (the manager-side
        #: barrier log used for participant recovery; trimmed by Rule 2's
        #: barrier analogue)
        self.history: Dict[int, VClock] = {}

    def arrive(
        self, proc: int, episode: int, vt: VClock, notices: List[WriteNotice]
    ) -> Optional[BarrierEpisode]:
        """Record an arrival; returns the episode if it just completed."""
        if episode != self.next_episode:
            raise RuntimeError(
                f"barrier episode mismatch: got {episode}, expected {self.next_episode}"
            )
        if self.current is None:
            self.current = BarrierEpisode(episode)
        self.current.arrive(proc, vt, notices)
        if self.current.complete(self.n):
            done = self.current
            self.current = None
            self.next_episode += 1
            self.last_global = done.global_vt()
            self.history[episode] = self.last_global
            return done
        return None

    def trim_history(self, min_keep_episode: int) -> int:
        """Drop logged episodes below ``min_keep_episode``; returns count."""
        old = [e for e in self.history if e < min_keep_episode]
        for e in old:
            del self.history[e]
        return len(old)
