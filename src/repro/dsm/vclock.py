"""Vector timestamps (logical vector time) for LRC interval ordering.

A process's *local logical time* is its interval counter; the vector
timestamp ``vt`` of process ``i`` satisfies ``vt[i] = `` current interval
of ``i`` and ``vt[j] = `` the most recent interval of ``j`` whose effects
``i`` has seen (§3). Timestamps are immutable: every mutation returns a
new value, which eliminates aliasing bugs between protocol state, logs
and checkpoints.

Fast path
---------
Vector-clock operations run on every message, write notice and trim
decision, so the lattice operations avoid the validating constructor:
internal results are built with :meth:`VClock._make` (a raw tuple
wrapper), ``zero()`` returns a per-length interned instance, ``leq``
exits at the first violating component, and ``join``/``meet`` return an
existing operand whenever it already equals the result (so repeated
joins against a dominated clock allocate nothing and enable ``is``
short-circuits downstream). The public constructor keeps full
validation for values that cross an API boundary.

Scaling
-------
At the paper's widths (≤ 8) a Python tuple beats any array: per-call
NumPy dispatch overhead dwarfs the O(n) loop. Past
:data:`VClock.ARRAY_WIDTH` components the balance flips — every lattice
operation becomes O(n) Python-level work on the tuple path — so wide
clocks store a read-only ``int64`` array and run ``join``/``meet``/
``leq`` (and the :func:`vmin`/:func:`vmax` folds) vectorized, checking
operand dominance first so the dominated-join case allocates nothing.
Either representation materializes the other lazily: the component tuple
``v`` (canonical for hashing, equality and iteration at every width) is
built from the array only when something actually asks for it, so chains
of wide lattice ops never pay O(n) Python-object churn per step. Callers
never see which representation is live.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = ["VClock", "vmin", "vmax"]

#: width at which lattice ops switch from tuple loops to NumPy (module
#: alias of :attr:`VClock.ARRAY_WIDTH` — globals resolve faster than
#: attributes on the per-message hot path)
_ARRAY_WIDTH = 16


class VClock:
    """Immutable vector timestamp over ``n`` processes."""

    __slots__ = ("_t", "_a", "_n")

    #: width at which lattice ops switch from tuple loops to NumPy
    ARRAY_WIDTH = _ARRAY_WIDTH

    #: interned zero clocks, keyed by vector length
    _zero_cache: Dict[int, "VClock"] = {}

    def __init__(self, v: Iterable[int]):
        t = tuple(int(x) for x in v)
        if any(x < 0 for x in t):
            raise ValueError(f"negative component in {t}")
        self._t: Optional[Tuple[int, ...]] = t
        self._a: Optional[np.ndarray] = None
        self._n = len(t)

    @classmethod
    def _make(cls, v: Tuple[int, ...]) -> "VClock":
        """Wrap an already-validated component tuple without checks."""
        self = object.__new__(cls)
        self._t = v
        self._a = None
        self._n = len(v)
        return self

    @classmethod
    def _make_arr(cls, a: np.ndarray) -> "VClock":
        """Wrap an already-validated int64 component array without checks."""
        self = object.__new__(cls)
        a.setflags(write=False)
        self._t = None
        self._a = a
        self._n = len(a)
        return self

    @classmethod
    def from_array(cls, a: np.ndarray) -> "VClock":
        """Validating constructor from an integer array (copies)."""
        arr = np.array(a, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"expected 1-d components, got shape {arr.shape}")
        if arr.size and int(arr.min()) < 0:
            raise ValueError("negative component")
        return cls._make_arr(arr)

    @classmethod
    def zero(cls, n: int) -> "VClock":
        z = cls._zero_cache.get(n)
        if z is None:
            z = cls._zero_cache[n] = cls._make((0,) * n)
        return z

    @property
    def v(self) -> Tuple[int, ...]:
        """Component tuple (canonical; materialized from the array lazily)."""
        t = self._t
        if t is None:
            t = self._t = tuple(self._a.tolist())
        return t

    def as_array(self) -> np.ndarray:
        """Read-only ``int64`` view of the components (cached)."""
        a = self._a
        if a is None:
            a = np.array(self._t, dtype=np.int64)
            a.setflags(write=False)
            self._a = a
        return a

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> int:
        t = self._t
        if t is not None:
            return t[i]
        return int(self._a[i])

    def __iter__(self):
        return iter(self.v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VClock):
            return NotImplemented
        if self is other:
            return True
        if self._n != other._n:
            return False
        a, b = self._a, other._a
        if a is not None and b is not None:
            return bool((a == b).all())
        return self.v == other.v

    def __hash__(self) -> int:
        return hash(self.v)

    def __repr__(self) -> str:
        return f"VClock{self.v}"

    # -- partial order ---------------------------------------------------
    def leq(self, other: "VClock") -> bool:
        """Componentwise ``self <= other`` (the happened-before order)."""
        if self is other:
            return True
        if self._n != other._n:
            self._check(other)
        if self._n >= _ARRAY_WIDTH:
            return bool((self.as_array() <= other.as_array()).all())
        a, b = self._t, other._t
        if a is None:
            a = self.v
        if b is None:
            b = other.v
        if a is b:
            return True
        for x, y in zip(a, b):
            if x > y:
                return False
        return True

    def lt(self, other: "VClock") -> bool:
        return self.leq(other) and not other.leq(self)

    def concurrent(self, other: "VClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- lattice operations ----------------------------------------------
    def join(self, other: "VClock") -> "VClock":
        """Componentwise max (least upper bound)."""
        if self is other:
            return self
        if self._n != other._n:
            self._check(other)
        if self._n >= _ARRAY_WIDTH:
            x, y = self.as_array(), other.as_array()
            ge = x >= y
            if ge.all():
                return self
            if not ge.any() or (y >= x).all():
                return other
            return VClock._make_arr(np.maximum(x, y))
        a, b = self._t, other._t
        if a is None:
            a = self.v
        if b is None:
            b = other.v
        if a is b:
            return self
        out = tuple(map(max, a, b))
        if out == a:
            return self
        if out == b:
            return other
        return VClock._make(out)

    def meet(self, other: "VClock") -> "VClock":
        """Componentwise min (greatest lower bound)."""
        if self is other:
            return self
        if self._n != other._n:
            self._check(other)
        if self._n >= _ARRAY_WIDTH:
            x, y = self.as_array(), other.as_array()
            le = x <= y
            if le.all():
                return self
            if not le.any() or (y <= x).all():
                return other
            return VClock._make_arr(np.minimum(x, y))
        a, b = self._t, other._t
        if a is None:
            a = self.v
        if b is None:
            b = other.v
        if a is b:
            return self
        out = tuple(map(min, a, b))
        if out == a:
            return self
        if out == b:
            return other
        return VClock._make(out)

    # -- updates -----------------------------------------------------------
    def bump(self, i: int, by: int = 1) -> "VClock":
        """New clock with component ``i`` advanced by ``by``."""
        n = self._n
        if not (0 <= i < n):
            raise IndexError(i)
        if by < 0:
            raise ValueError("cannot decrease a component")
        if n >= _ARRAY_WIDTH:
            out = self.as_array().copy()
            out[i] += by
            return VClock._make_arr(out)
        v = self._t
        if v is None:
            v = self.v
        return VClock._make(v[:i] + (v[i] + by,) + v[i + 1 :])

    def with_component(self, i: int, value: int) -> "VClock":
        n = self._n
        if not (0 <= i < n):
            raise IndexError(i)
        if value < 0:
            raise ValueError(f"negative component: {value}")
        if n >= _ARRAY_WIDTH:
            a = self.as_array()
            if int(a[i]) == value:
                return self
            out = a.copy()
            out[i] = value
            return VClock._make_arr(out)
        v = self._t
        if v is None:
            v = self.v
        if v[i] == value:
            return self
        return VClock._make(v[:i] + (value,) + v[i + 1 :])

    def _check(self, other: "VClock") -> None:
        if self._n != other._n:
            raise ValueError(
                f"vector length mismatch: {self._n} vs {other._n}"
            )


def vmin(clocks: Iterable[VClock]) -> VClock:
    """Componentwise minimum over a non-empty iterable of clocks."""
    cs = list(clocks)
    if not cs:
        raise ValueError("vmin of empty iterable")
    out = cs[0]
    if len(cs) > 2 and out._n >= _ARRAY_WIDTH:
        return VClock._make_arr(np.minimum.reduce([c.as_array() for c in cs]))
    for c in cs[1:]:
        out = out.meet(c)
    return out


def vmax(clocks: Iterable[VClock]) -> VClock:
    """Componentwise maximum over a non-empty iterable of clocks."""
    cs = list(clocks)
    if not cs:
        raise ValueError("vmax of empty iterable")
    out = cs[0]
    if len(cs) > 2 and out._n >= _ARRAY_WIDTH:
        return VClock._make_arr(np.maximum.reduce([c.as_array() for c in cs]))
    for c in cs[1:]:
        out = out.join(c)
    return out
