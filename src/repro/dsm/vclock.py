"""Vector timestamps (logical vector time) for LRC interval ordering.

A process's *local logical time* is its interval counter; the vector
timestamp ``vt`` of process ``i`` satisfies ``vt[i] = `` current interval
of ``i`` and ``vt[j] = `` the most recent interval of ``j`` whose effects
``i`` has seen (§3). Timestamps are immutable tuples: every mutation
returns a new value, which eliminates aliasing bugs between protocol
state, logs and checkpoints.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = ["VClock"]


class VClock:
    """Immutable vector timestamp over ``n`` processes."""

    __slots__ = ("v",)

    def __init__(self, v: Iterable[int]):
        self.v: Tuple[int, ...] = tuple(int(x) for x in v)
        if any(x < 0 for x in self.v):
            raise ValueError(f"negative component in {self.v}")

    @classmethod
    def zero(cls, n: int) -> "VClock":
        return cls((0,) * n)

    def __len__(self) -> int:
        return len(self.v)

    def __getitem__(self, i: int) -> int:
        return self.v[i]

    def __iter__(self):
        return iter(self.v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VClock) and self.v == other.v

    def __hash__(self) -> int:
        return hash(self.v)

    def __repr__(self) -> str:
        return f"VClock{self.v}"

    # -- partial order ---------------------------------------------------
    def leq(self, other: "VClock") -> bool:
        """Componentwise ``self <= other`` (the happened-before order)."""
        self._check(other)
        return all(a <= b for a, b in zip(self.v, other.v))

    def lt(self, other: "VClock") -> bool:
        return self.leq(other) and self.v != other.v

    def concurrent(self, other: "VClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- lattice operations ----------------------------------------------
    def join(self, other: "VClock") -> "VClock":
        """Componentwise max (least upper bound)."""
        self._check(other)
        return VClock(max(a, b) for a, b in zip(self.v, other.v))

    def meet(self, other: "VClock") -> "VClock":
        """Componentwise min (greatest lower bound)."""
        self._check(other)
        return VClock(min(a, b) for a, b in zip(self.v, other.v))

    # -- updates -----------------------------------------------------------
    def bump(self, i: int, by: int = 1) -> "VClock":
        """New clock with component ``i`` advanced by ``by``."""
        if not (0 <= i < len(self.v)):
            raise IndexError(i)
        if by < 0:
            raise ValueError("cannot decrease a component")
        return VClock(
            x + by if j == i else x for j, x in enumerate(self.v)
        )

    def with_component(self, i: int, value: int) -> "VClock":
        if not (0 <= i < len(self.v)):
            raise IndexError(i)
        return VClock(value if j == i else x for j, x in enumerate(self.v))

    def _check(self, other: "VClock") -> None:
        if len(self.v) != len(other.v):
            raise ValueError(
                f"vector length mismatch: {len(self.v)} vs {len(other.v)}"
            )


def vmin(clocks: Iterable[VClock]) -> VClock:
    """Componentwise minimum over a non-empty iterable of clocks."""
    it = iter(clocks)
    try:
        out = next(it)
    except StopIteration:
        raise ValueError("vmin of empty iterable") from None
    for c in it:
        out = out.meet(c)
    return out


def vmax(clocks: Iterable[VClock]) -> VClock:
    """Componentwise maximum over a non-empty iterable of clocks."""
    it = iter(clocks)
    try:
        out = next(it)
    except StopIteration:
        raise ValueError("vmax of empty iterable") from None
    for c in it:
        out = out.join(c)
    return out
