"""Vector timestamps (logical vector time) for LRC interval ordering.

A process's *local logical time* is its interval counter; the vector
timestamp ``vt`` of process ``i`` satisfies ``vt[i] = `` current interval
of ``i`` and ``vt[j] = `` the most recent interval of ``j`` whose effects
``i`` has seen (§3). Timestamps are immutable tuples: every mutation
returns a new value, which eliminates aliasing bugs between protocol
state, logs and checkpoints.

Fast path
---------
Vector-clock operations run on every message, write notice and trim
decision, so the lattice operations avoid the validating constructor:
internal results are built with :meth:`VClock._make` (a raw tuple
wrapper), ``zero()`` returns a per-length interned instance, ``leq``
exits at the first violating component, and ``join``/``meet`` return an
existing operand whenever it already equals the result (so repeated
joins against a dominated clock allocate nothing and enable ``is``
short-circuits downstream). The public constructor keeps full
validation for values that cross an API boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

__all__ = ["VClock"]


class VClock:
    """Immutable vector timestamp over ``n`` processes."""

    __slots__ = ("v",)

    #: interned zero clocks, keyed by vector length
    _zero_cache: Dict[int, "VClock"] = {}

    def __init__(self, v: Iterable[int]):
        self.v: Tuple[int, ...] = tuple(int(x) for x in v)
        if any(x < 0 for x in self.v):
            raise ValueError(f"negative component in {self.v}")

    @classmethod
    def _make(cls, v: Tuple[int, ...]) -> "VClock":
        """Wrap an already-validated component tuple without checks."""
        self = object.__new__(cls)
        self.v = v
        return self

    @classmethod
    def zero(cls, n: int) -> "VClock":
        z = cls._zero_cache.get(n)
        if z is None:
            z = cls._zero_cache[n] = cls._make((0,) * n)
        return z

    def __len__(self) -> int:
        return len(self.v)

    def __getitem__(self, i: int) -> int:
        return self.v[i]

    def __iter__(self):
        return iter(self.v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VClock) and self.v == other.v

    def __hash__(self) -> int:
        return hash(self.v)

    def __repr__(self) -> str:
        return f"VClock{self.v}"

    # -- partial order ---------------------------------------------------
    def leq(self, other: "VClock") -> bool:
        """Componentwise ``self <= other`` (the happened-before order)."""
        a, b = self.v, other.v
        if a is b:
            return True
        if len(a) != len(b):
            self._check(other)
        for x, y in zip(a, b):
            if x > y:
                return False
        return True

    def lt(self, other: "VClock") -> bool:
        return self.leq(other) and self.v != other.v

    def concurrent(self, other: "VClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- lattice operations ----------------------------------------------
    def join(self, other: "VClock") -> "VClock":
        """Componentwise max (least upper bound)."""
        a, b = self.v, other.v
        if a is b:
            return self
        if len(a) != len(b):
            self._check(other)
        out = tuple(map(max, a, b))
        if out == a:
            return self
        if out == b:
            return other
        return VClock._make(out)

    def meet(self, other: "VClock") -> "VClock":
        """Componentwise min (greatest lower bound)."""
        a, b = self.v, other.v
        if a is b:
            return self
        if len(a) != len(b):
            self._check(other)
        out = tuple(map(min, a, b))
        if out == a:
            return self
        if out == b:
            return other
        return VClock._make(out)

    # -- updates -----------------------------------------------------------
    def bump(self, i: int, by: int = 1) -> "VClock":
        """New clock with component ``i`` advanced by ``by``."""
        v = self.v
        if not (0 <= i < len(v)):
            raise IndexError(i)
        if by < 0:
            raise ValueError("cannot decrease a component")
        return VClock._make(v[:i] + (v[i] + by,) + v[i + 1 :])

    def with_component(self, i: int, value: int) -> "VClock":
        v = self.v
        if not (0 <= i < len(v)):
            raise IndexError(i)
        if value < 0:
            raise ValueError(f"negative component: {value}")
        if v[i] == value:
            return self
        return VClock._make(v[:i] + (value,) + v[i + 1 :])

    def _check(self, other: "VClock") -> None:
        if len(self.v) != len(other.v):
            raise ValueError(
                f"vector length mismatch: {len(self.v)} vs {len(other.v)}"
            )


def vmin(clocks: Iterable[VClock]) -> VClock:
    """Componentwise minimum over a non-empty iterable of clocks."""
    it = iter(clocks)
    try:
        out = next(it)
    except StopIteration:
        raise ValueError("vmin of empty iterable") from None
    for c in it:
        out = out.meet(c)
    return out


def vmax(clocks: Iterable[VClock]) -> VClock:
    """Componentwise maximum over a non-empty iterable of clocks."""
    it = iter(clocks)
    try:
        out = next(it)
    except StopIteration:
        raise ValueError("vmax of empty iterable") from None
    for c in it:
        out = out.join(c)
    return out
