"""Configuration for the DSM protocol and its cost model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["DsmConfig"]


@dataclass
class DsmConfig:
    """Knobs of the HLRC protocol and the simulated machine.

    Attributes
    ----------
    num_procs:
        Cluster size; one application process per node (the paper uses 8).
    page_size:
        Coherence-unit size in bytes. The real system uses the 4096-byte
        VM page; the default here is smaller so that scaled-down problem
        sizes still span many pages (sharing patterns, not footprints,
        drive the paper's results).
    msg_header:
        Modeled wire header per protocol message.
    notice_bytes:
        Wire size of one write notice (creator, interval, page id).
    vt_entry_bytes:
        Wire size of one vector-timestamp component.
    home_policy:
        ``"round_robin"`` (default), ``"blocked"`` (contiguous chunks), or
        ``"explicit"`` (application assigns homes before sharing starts,
        standing in for first-touch allocation).
    lock_manager_policy / barrier_manager:
        Static placement of lock managers (round-robin over processes)
        and of the barrier manager.
    """

    num_procs: int = 8
    page_size: int = 1024
    msg_header: int = 32
    notice_bytes: int = 12
    vt_entry_bytes: int = 4
    home_policy: str = "round_robin"
    lock_manager_policy: str = "round_robin"
    barrier_manager: int = 0
    # failure detection latency for the recovery manager
    failure_detection_delay: float = 50e-3
    # recovery handshake/query message base size
    recovery_msg_bytes: int = 64

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if self.page_size < 8 or self.page_size % 8 != 0:
            raise ValueError("page_size must be a multiple of 8 and >= 8")
        if self.home_policy not in ("round_robin", "blocked", "explicit"):
            raise ValueError(f"unknown home_policy {self.home_policy!r}")
        if not (0 <= self.barrier_manager < self.num_procs):
            raise ValueError("barrier_manager out of range")

    def vt_bytes(self) -> int:
        """Wire size of one full vector timestamp."""
        return self.vt_entry_bytes * self.num_procs

    def lock_manager(self, lock_id: int) -> int:
        """Static manager assignment for a lock."""
        return lock_id % self.num_procs
