"""Home-side page management.

Every shared page has a home process that maintains its most recent
version (§3). The home applies incoming diffs to its local copy, stamps
the page with a version vector ``p.v`` recording "the most recent
intervals whose writes were applied", and serves fetch requests — holding
a request until the page has reached the version the faulting process
needs (diffs may still be in flight when the corresponding lock grant has
already raced ahead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dsm.diff import Diff
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock
from repro.sim.engine import Future

__all__ = ["HomePage", "HomeDirectory"]


@dataclass
class _PendingFetch:
    requester: int
    needed_v: VClock
    reply: Callable[[], None]


class HomePage:
    """Home-side state for one page homed at this process.

    The page *contents* live in the process's local backing array (the
    home's copy is the authoritative one); this object tracks the version
    vector and the fetches waiting for in-flight diffs.
    """

    __slots__ = ("page", "version", "pending", "applied_bytes", "snap", "snap_version")

    def __init__(self, page: PageId, n: int) -> None:
        self.page = page
        self.version = VClock.zero(n)
        self.pending: List[_PendingFetch] = []
        self.applied_bytes = 0
        #: cached immutable snapshot of the page contents, keyed by the
        #: *identity* of the version object it was taken under (the
        #: version is replaced whenever the contents legally change)
        self.snap: Optional[bytes] = None
        self.snap_version: Optional[VClock] = None

    def drop_snapshot(self) -> None:
        """Invalidate the cached snapshot (restore paths assign
        ``version`` directly, possibly re-installing an old object)."""
        self.snap = None
        self.snap_version = None

    def advance(self, writer: int, interval: int) -> None:
        """Record that ``writer``'s diff for ``interval`` was applied."""
        if interval > self.version[writer]:
            self.version = self.version.with_component(writer, interval)

    def is_duplicate(self, writer: int, interval: int) -> bool:
        """True when a diff at (writer, interval) is already reflected.

        Used to make diff application idempotent: a recovering writer may
        re-send diffs it regenerated during replay (§4.3); the version
        vector identifies and discards them.
        """
        return interval <= self.version[writer]

    def ready_for(self, needed: Optional[VClock]) -> bool:
        return needed is None or needed.leq(self.version)

    def wait_fetch(self, requester: int, needed: VClock, reply: Callable[[], None]) -> None:
        self.pending.append(_PendingFetch(requester, needed, reply))

    def service_pending(self) -> None:
        """Reply to every queued fetch the current version now satisfies."""
        still: List[_PendingFetch] = []
        for pf in self.pending:
            if self.ready_for(pf.needed_v):
                pf.reply()
            else:
                still.append(pf)
        self.pending = still


class HomeDirectory:
    """All pages homed at one process."""

    def __init__(self, num_procs: int) -> None:
        self.n = num_procs
        self._pages: Dict[PageId, HomePage] = {}

    def add_page(self, page: PageId) -> HomePage:
        hp = HomePage(page, self.n)
        self._pages[page] = hp
        return hp

    def __contains__(self, page: PageId) -> bool:
        return page in self._pages

    def __getitem__(self, page: PageId) -> HomePage:
        return self._pages[page]

    def get(self, page: PageId) -> Optional[HomePage]:
        return self._pages.get(page)

    def pages(self) -> List[PageId]:
        return list(self._pages.keys())

    def values(self) -> List[HomePage]:
        return list(self._pages.values())
