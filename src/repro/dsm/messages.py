"""Protocol message types and their modeled wire sizes.

Each message computes its own size from the :class:`~repro.dsm.config.DsmConfig`
cost model; the ``piggyback`` field (when present) carries the lazily
propagated LLT/CGC control data of §4.4.4 and its size is accounted as
``ft_bytes`` so Table 2 can compare it against base protocol traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dsm.config import DsmConfig
from repro.dsm.diff import Diff
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

__all__ = [
    "WriteNotice",
    "Piggyback",
    "Message",
    "LockAcquireReq",
    "LockForward",
    "LockGrant",
    "GrantInfo",
    "DiffMsg",
    "PageFetchReq",
    "PageFetchReply",
    "BarrierArrive",
    "BarrierRelease",
    "RecoveryQuery",
    "RecoveryReply",
    "RecoveryDone",
    "AcqAck",
    "ReplicaUpdate",
    "ReplicaAck",
]


@dataclass(frozen=True)
class WriteNotice:
    """Invalidation record: ``creator`` wrote ``page`` in ``interval``.

    ``vt`` is the creator's vector time at the end of that interval; it is
    the version the page must reach at its home before a subsequent reader
    may use it.
    """

    creator: int
    interval: int
    page: PageId
    vt: VClock


@dataclass(frozen=True)
class Piggyback:
    """LLT/CGC control data attached to protocol messages (§4.4.4).

    ``tckps`` carries checkpoint timestamps (with checkpointed barrier
    episodes): the sender's own and — gossip-style — any it has learned
    about, delta-encoded so a timestamp travels to each destination only
    once. ``page_versions`` maps page ids homed at the sender to
    ``p0.v[receiver]`` — the single per-page integer a writer needs for
    lazy diff-log trimming (Rule 3.2).
    """

    tckps: Tuple[Tuple[int, VClock, int], ...] = ()  # (proc, Tckp, bar_ep)
    page_versions: Tuple[Tuple[PageId, int], ...] = ()

    def size_bytes(self, config: DsmConfig) -> int:
        size = len(self.tckps) * (config.vt_bytes() + 6)
        size += len(self.page_versions) * 12  # page id (8) + version (4)
        return size


@dataclass
class Message:
    """Base protocol message; subclasses define payload size."""

    piggyback: Optional[Piggyback] = field(default=None, kw_only=True)

    category: str = "misc"

    def payload_bytes(self, config: DsmConfig) -> int:
        raise NotImplementedError

    def ft_bytes(self, config: DsmConfig) -> int:
        return self.piggyback.size_bytes(config) if self.piggyback else 0

    def size_bytes(self, config: DsmConfig) -> int:
        return config.msg_header + self.payload_bytes(config) + self.ft_bytes(config)


def _notices_bytes(notices: List[WriteNotice], config: DsmConfig) -> int:
    # one (creator, interval, page) record per notice; timestamps of
    # notices are reconstructed from interval tables, so only distinct
    # interval vts are shipped — modeled as one vt per notice creator
    # interval, folded into notice_bytes for simplicity.
    return len(notices) * (config.notice_bytes + config.vt_entry_bytes)


@dataclass
class LockAcquireReq(Message):
    """Acquirer -> lock manager.

    ``seq`` is the acquirer's per-lock acquire counter: re-sent requests
    after a recovery are recognized and dropped by the manager.
    """

    lock_id: int = 0
    acquirer: int = 0
    acq_vt: VClock = None  # type: ignore[assignment]
    seq: int = 0
    category: str = "lock"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 12 + config.vt_bytes()


@dataclass
class LockForward(Message):
    """Lock manager -> last requester (distributed queueing)."""

    lock_id: int = 0
    acquirer: int = 0
    acq_vt: VClock = None  # type: ignore[assignment]
    seq: int = 0
    category: str = "lock"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 12 + config.vt_bytes()


@dataclass
class GrantInfo(Message):
    """Grantor -> lock manager: the token moved to ``grantee``.

    For *self*-grants (a process re-acquiring its own resting token, which
    no peer observes) the message carries ``acq_t`` so that the manager
    holds a remote mirror of the event; replay after a crash of the
    grantor needs it to tell a completed local acquire apart from an
    acquire that never finished (§4.3).
    """

    lock_id: int = 0
    grantor: int = 0
    grantee: int = 0
    acq_t: Optional[VClock] = None  # set for self-grants only
    category: str = "lock"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 12 + (config.vt_bytes() if self.acq_t is not None else 0)


@dataclass
class LockGrant(Message):
    """Previous owner -> acquirer: release vt + needed write notices.

    ``seq`` echoes the acquire request's sequence number: a recovered
    process uses it to discard queued grants whose acquire its replay
    already accounted for (the token must not be duplicated).
    """

    lock_id: int = 0
    grantor: int = 0
    rel_vt: VClock = None  # type: ignore[assignment]
    notices: List[WriteNotice] = field(default_factory=list)
    seq: int = 0
    category: str = "lock"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 12 + config.vt_bytes() + _notices_bytes(self.notices, config)


@dataclass
class DiffMsg(Message):
    """Writer -> home: end-of-interval diff for one page."""

    page: PageId = None  # type: ignore[assignment]
    writer: int = 0
    diff: Diff = None  # type: ignore[assignment]
    diff_vt: VClock = None  # type: ignore[assignment]
    category: str = "diff"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8 + config.vt_bytes() + self.diff.size_bytes


@dataclass
class PageFetchReq(Message):
    """Faulting process -> home: request page at minimal version."""

    page: PageId = None  # type: ignore[assignment]
    requester: int = 0
    needed_v: VClock = None  # type: ignore[assignment]
    category: str = "page"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8 + config.vt_bytes()


@dataclass
class PageFetchReply(Message):
    """Home -> faulting process: full page copy + its version."""

    page: PageId = None  # type: ignore[assignment]
    data: bytes = b""
    version: VClock = None  # type: ignore[assignment]
    category: str = "page"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8 + config.vt_bytes() + len(self.data)


@dataclass
class BarrierArrive(Message):
    """Participant -> barrier manager: vt + own notices since last barrier."""

    episode: int = 0
    proc: int = 0
    vt: VClock = None  # type: ignore[assignment]
    notices: List[WriteNotice] = field(default_factory=list)
    category: str = "barrier"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8 + config.vt_bytes() + _notices_bytes(self.notices, config)


@dataclass
class BarrierRelease(Message):
    """Barrier manager -> participant: global vt + missing notices."""

    episode: int = 0
    global_vt: VClock = None  # type: ignore[assignment]
    notices: List[WriteNotice] = field(default_factory=list)
    category: str = "barrier"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8 + config.vt_bytes() + _notices_bytes(self.notices, config)


@dataclass
class AcqAck(Message):
    """Acquirer -> grantor: the *actual* timestamp of a completed acquire.

    The grantor logged a rel-entry with a predicted acquirer timestamp at
    grant time (it cannot know the acquirer's vt at completion); the
    acquirer confirms the real one so both halves of the §4.2.1 replicated
    rel/acq pair converge to the same vector time.  Until this ack lands
    the grantor's entry is the (componentwise smaller) prediction, which
    replay joins identically except across a recovery-forced checkpoint —
    the asymmetry documented in DESIGN.md §9.
    """

    lock_id: int = 0
    acquirer: int = 0
    acq_t: VClock = None  # type: ignore[assignment]
    category: str = "lock"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8 + config.vt_bytes()


# ---------------------------------------------------------------------------
# replication traffic (buddy tier; only flows with FtConfig.replicate)
# ---------------------------------------------------------------------------


@dataclass
class ReplicaUpdate(Message):
    """Protected node -> buddy: mirror FT state into volatile memory.

    ``kind`` is one of:

    - ``"sync"``: full base snapshot, committed atomically on arrival
      (sent on install, on re-buddying, and when going live after a
      recovery);
    - ``"begin"`` / ``"commit"``: two-phase base refresh bracketing a
      checkpoint's disk write, mirroring the stable-storage commit-marker
      discipline so a sender crash mid-replication leaves a detectably
      *torn* replica record;
    - ``"op"``: one incremental log event appended to every retained base
      (grant, completed acquire, self-grant mirror, diff flush, barrier,
      owner move, rel-entry fixup);
    - ``"drop"``: the sender re-buddied away, free its replica here.
    """

    kind: str = ""
    protected: int = 0
    seqno: int = 0
    gen: int = 0
    body: object = None
    body_size: int = 0
    category: str = "replica"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 16 + self.body_size

    def ft_bytes(self, config: DsmConfig) -> int:
        # the whole message is FT overhead traffic
        return self.payload_bytes(config) + (
            self.piggyback.size_bytes(config) if self.piggyback else 0
        )

    def size_bytes(self, config: DsmConfig) -> int:
        return config.msg_header + self.ft_bytes(config)


@dataclass
class ReplicaAck(Message):
    """Buddy -> protected node: base ``seqno`` is held in replica memory.

    Garbage collection (CGC) may only collect page copies that are both
    superseded on disk *and* covered by an acked replica base — the ack is
    what moves the trim ceiling forward.
    """

    protected: int = 0
    seqno: int = 0
    gen: int = 0
    category: str = "replica"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 16

    def ft_bytes(self, config: DsmConfig) -> int:
        return self.payload_bytes(config) + (
            self.piggyback.size_bytes(config) if self.piggyback else 0
        )

    def size_bytes(self, config: DsmConfig) -> int:
        return config.msg_header + self.ft_bytes(config)


# ---------------------------------------------------------------------------
# recovery traffic (only flows after a failure)
# ---------------------------------------------------------------------------


@dataclass
class RecoveryQuery(Message):
    """Recovering process -> peer: initial handshake / log request.

    ``kind`` selects what is requested (handshake, wn_log, rel_log,
    diff_log, barrier log, starting page copies); ``detail`` carries the
    request parameters (e.g. page ids, logical-time bounds).
    """

    kind: str = ""
    requester: int = 0
    detail: object = None
    qid: int = 0
    category: str = "recovery"

    def payload_bytes(self, config: DsmConfig) -> int:
        return config.recovery_msg_bytes


@dataclass
class RecoveryReply(Message):
    """Peer -> recovering process: requested log entries / page copies.

    ``responder_crash_time`` / ``responder_recovering`` expose the
    responder's failure epoch so the recovering side can detect an
    *overlapping* failure (the responder failed after the requester, so
    its volatile logs may no longer cover what replay needs) and degrade
    with a clean diagnostic instead of silently diverging.
    """

    kind: str = ""
    responder: int = 0
    payload: object = None
    payload_size: int = 0
    qid: int = 0
    responder_crash_time: float = -1.0
    responder_recovering: bool = False
    category: str = "recovery"

    def payload_bytes(self, config: DsmConfig) -> int:
        return config.recovery_msg_bytes + self.payload_size


@dataclass
class RecoveryDone(Message):
    """Recovering process -> everyone: recovery finished, resume requests."""

    proc: int = 0
    category: str = "recovery"

    def payload_bytes(self, config: DsmConfig) -> int:
        return 8
