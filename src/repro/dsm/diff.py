"""Diff computation and application (the multi-writer mechanism of HLRC).

A *twin* is a copy of a page taken before its first write in an interval;
at flush time the *diff* is the set of byte runs where the current page
differs from the twin. Diffs are what writers send to homes and what the
fault-tolerance layer logs ("logs only changes made to a page", §2).

The scan is vectorized with NumPy (the guide's "vectorizing for loops"):
a byte-wise inequality mask is reduced to run boundaries with
``np.flatnonzero`` on the XOR of adjacent mask elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["Diff", "compute_diff", "apply_diff", "merge_runs"]

#: modeled per-run wire/log overhead: (offset: u16, length: u16) plus
#: alignment — 8 bytes, matching compact diff encodings in real systems.
RUN_HEADER_BYTES = 8


@dataclass(frozen=True)
class Diff:
    """An encoded page diff: sorted, non-overlapping, non-adjacent runs."""

    runs: Tuple[Tuple[int, bytes], ...]  # (offset, data), sorted by offset

    @property
    def empty(self) -> bool:
        return not self.runs

    @property
    def payload_bytes(self) -> int:
        return sum(len(d) for _, d in self.runs)

    @property
    def size_bytes(self) -> int:
        """Modeled encoded size (payload + per-run headers)."""
        return self.payload_bytes + RUN_HEADER_BYTES * len(self.runs)

    def covered(self) -> List[Tuple[int, int]]:
        """[(offset, end)) intervals touched by this diff."""
        return [(off, off + len(d)) for off, d in self.runs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Diff({len(self.runs)} runs, {self.payload_bytes}B)"


def compute_diff(twin: np.ndarray, page: np.ndarray) -> Diff:
    """Diff of ``page`` against its ``twin`` (both uint8, same length)."""
    if twin.shape != page.shape:
        raise ValueError(f"shape mismatch: {twin.shape} vs {page.shape}")
    if twin.dtype != np.uint8 or page.dtype != np.uint8:
        raise TypeError("pages must be uint8 arrays")
    neq = twin != page
    if not neq.any():
        return Diff(())
    # Boundaries where the mask flips; prepend/append sentinels so that
    # runs touching the page edges are closed.
    padded = np.concatenate(([False], neq, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    runs = tuple(
        (int(s), page[s:e].tobytes()) for s, e in zip(starts, ends)
    )
    return Diff(runs)


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` in place to ``page`` (uint8)."""
    n = len(page)
    for off, data in diff.runs:
        end = off + len(data)
        if off < 0 or end > n:
            raise ValueError(f"diff run [{off},{end}) outside page of {n} bytes")
        page[off:end] = np.frombuffer(data, dtype=np.uint8)


def merge_runs(diffs: List[Diff]) -> List[Tuple[int, int]]:
    """Union of the byte intervals covered by several diffs (for tests)."""
    ivals = sorted(iv for d in diffs for iv in d.covered())
    out: List[Tuple[int, int]] = []
    for s, e in ivals:
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out
