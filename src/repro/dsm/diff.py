"""Diff computation and application (the multi-writer mechanism of HLRC).

A *twin* is a copy of a page taken before its first write in an interval;
at flush time the *diff* is the set of byte runs where the current page
differs from the twin. Diffs are what writers send to homes and what the
fault-tolerance layer logs ("logs only changes made to a page", §2).

The scan is vectorized with NumPy (the guide's "vectorizing for loops"):
a byte-wise inequality mask is reduced to run boundaries with
``np.flatnonzero`` on the XOR of adjacent mask elements.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["Diff", "compute_diff", "apply_diff", "merge_runs"]

#: modeled per-run wire/log overhead: (offset: u16, length: u16) plus
#: alignment — 8 bytes, matching compact diff encodings in real systems.
RUN_HEADER_BYTES = 8


class Diff:
    """An encoded page diff: sorted, non-overlapping, non-adjacent runs.

    Immutable. ``payload_bytes``/``size_bytes`` are computed once at
    construction: size accounting runs on every send, log append and
    trim decision, so recomputing the sums there dominated profiles.
    """

    __slots__ = ("runs", "payload_bytes", "size_bytes")

    def __init__(self, runs: Iterable[Tuple[int, bytes]] = ()) -> None:
        #: (offset, data), sorted by offset
        self.runs: Tuple[Tuple[int, bytes], ...] = tuple(runs)
        payload = 0
        for _, data in self.runs:
            payload += len(data)
        self.payload_bytes = payload
        #: modeled encoded size (payload + per-run headers)
        self.size_bytes = payload + RUN_HEADER_BYTES * len(self.runs)

    @property
    def empty(self) -> bool:
        return not self.runs

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Diff) and self.runs == other.runs

    def __hash__(self) -> int:
        return hash(self.runs)

    def covered(self) -> List[Tuple[int, int]]:
        """[(offset, end)) intervals touched by this diff."""
        return [(off, off + len(d)) for off, d in self.runs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Diff({len(self.runs)} runs, {self.payload_bytes}B)"


def compute_diff(twin: np.ndarray, page: np.ndarray) -> Diff:
    """Diff of ``page`` against its ``twin`` (both uint8, same length)."""
    if twin.shape != page.shape:
        raise ValueError(f"shape mismatch: {twin.shape} vs {page.shape}")
    if twin.dtype != np.uint8 or page.dtype != np.uint8:
        raise TypeError("pages must be uint8 arrays")
    neq = twin != page
    if not neq.any():
        return Diff(())
    # Boundaries where the mask flips; prepend/append sentinels so that
    # runs touching the page edges are closed.
    padded = np.concatenate(([False], neq, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1]).tolist()
    # one bulk copy, then O(1) bytes slices per run — much cheaper than a
    # per-run ndarray slice + tobytes when runs are small and many
    raw = page.tobytes()
    runs = tuple(
        (s, raw[s:e]) for s, e in zip(edges[0::2], edges[1::2])
    )
    return Diff(runs)


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` in place to ``page`` (uint8)."""
    n = len(page)
    for off, data in diff.runs:
        end = off + len(data)
        if off < 0 or end > n:
            raise ValueError(f"diff run [{off},{end}) outside page of {n} bytes")
        page[off:end] = np.frombuffer(data, dtype=np.uint8)


def merge_runs(diffs: List[Diff]) -> List[Tuple[int, int]]:
    """Union of the byte intervals covered by several diffs (for tests)."""
    ivals = sorted(iv for d in diffs for iv in d.covered())
    out: List[Tuple[int, int]] = []
    for s, e in ivals:
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out
