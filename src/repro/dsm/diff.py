"""Diff computation and application (the multi-writer mechanism of HLRC).

A *twin* is a copy of a page taken before its first write in an interval;
at flush time the *diff* is the set of byte runs where the current page
differs from the twin. Diffs are what writers send to homes and what the
fault-tolerance layer logs ("logs only changes made to a page", §2).

Representation
--------------
A diff is three flat pieces: an ``int64`` array of run ``offsets``, an
``int64`` array of run ``lengths``, and one contiguous ``payload`` bytes
buffer holding every run's data back to back. Compared to the previous
per-run ``(offset, bytes)`` tuples this allocates O(1) Python objects per
diff instead of O(runs), and both ends of the hot path are vectorized:
:func:`compute_diff` gathers the payload with one fancy-indexed read and
:func:`apply_diff` scatters it with one fancy-indexed write, so the
many-tiny-runs case costs the same per byte as the single-run case.

Coalescing
----------
Adjacent runs separated by at most ``gap`` unchanged bytes can be merged
into one run carrying the (identical) gap bytes. With
``gap <= RUN_HEADER_BYTES`` the merge never increases ``size_bytes``:
each merge adds ``gap`` payload bytes but saves one run header. The gap
bytes rewrite bytes at the home that the writer did not change, which is
safe for data-race-free programs whose concurrent writers partition a
page at ≥ ``gap`` granularity (8 bytes — one float64 element, the finest
partition any of the workloads uses). ``compute_diff`` defaults to
``gap=0`` (exact diffs — the protocol's golden-pinned behavior);
the log/bench layers opt in where density makes it pay.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Diff", "compute_diff", "apply_diff", "merge_runs", "concat_diffs"]

#: modeled per-run wire/log overhead: (offset: u16, length: u16) plus
#: alignment — 8 bytes, matching compact diff encodings in real systems.
RUN_HEADER_BYTES = 8

#: gap threshold at which coalescing two runs can never grow the encoded
#: size (the gap payload it adds is at most the run header it saves)
COALESCE_GAP = RUN_HEADER_BYTES

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_I64.setflags(write=False)


class Diff:
    """An encoded page diff: sorted, non-overlapping, non-adjacent runs.

    Immutable. ``payload_bytes``/``size_bytes`` are computed once at
    construction: size accounting runs on every send, log append and
    trim decision, so recomputing the sums there dominated profiles.
    """

    __slots__ = (
        "offsets",
        "lengths",
        "payload",
        "payload_bytes",
        "size_bytes",
        "_runs",
        "_hash",
    )

    def __init__(self, runs: Iterable[Tuple[int, bytes]] = ()) -> None:
        runs = tuple(runs)
        if runs:
            self.offsets = np.fromiter(
                (o for o, _ in runs), dtype=np.int64, count=len(runs)
            )
            self.lengths = np.fromiter(
                (len(d) for _, d in runs), dtype=np.int64, count=len(runs)
            )
            self.offsets.setflags(write=False)
            self.lengths.setflags(write=False)
            self.payload = b"".join(d for _, d in runs)
        else:
            self.offsets = _EMPTY_I64
            self.lengths = _EMPTY_I64
            self.payload = b""
        self._runs: Optional[Tuple[Tuple[int, bytes], ...]] = runs
        self._hash: Optional[int] = None
        self.payload_bytes = len(self.payload)
        #: modeled encoded size (payload + per-run headers)
        self.size_bytes = self.payload_bytes + RUN_HEADER_BYTES * len(runs)

    @classmethod
    def from_arrays(
        cls, offsets: np.ndarray, lengths: np.ndarray, payload: bytes
    ) -> "Diff":
        """Wrap already-validated run arrays without re-encoding."""
        self = object.__new__(cls)
        offsets.setflags(write=False)
        lengths.setflags(write=False)
        self.offsets = offsets
        self.lengths = lengths
        self.payload = payload
        self._runs = None
        self._hash = None
        self.payload_bytes = len(payload)
        self.size_bytes = self.payload_bytes + RUN_HEADER_BYTES * len(offsets)
        return self

    @property
    def runs(self) -> Tuple[Tuple[int, bytes], ...]:
        """Per-run ``(offset, data)`` view (materialized on demand)."""
        r = self._runs
        if r is None:
            bounds = np.cumsum(self.lengths).tolist()
            starts = [0] + bounds[:-1]
            payload = self.payload
            r = self._runs = tuple(
                (o, payload[s:e])
                for o, s, e in zip(self.offsets.tolist(), starts, bounds)
            )
        return r

    @property
    def empty(self) -> bool:
        return len(self.offsets) == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Diff)
            and self.payload == other.payload
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.lengths, other.lengths)
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(
                (self.offsets.tobytes(), self.lengths.tobytes(), self.payload)
            )
        return h

    def covered(self) -> List[Tuple[int, int]]:
        """[(offset, end)) intervals touched by this diff."""
        return list(
            zip(self.offsets.tolist(), (self.offsets + self.lengths).tolist())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Diff({len(self.offsets)} runs, {self.payload_bytes}B)"


_EMPTY_DIFF = Diff(())


def _scatter_index(offsets: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Page positions of every payload byte, in payload order.

    Standard repeat/cumsum trick: payload byte ``k`` of run ``r`` lands at
    ``offsets[r] + (k - payload_start[r])``.
    """
    bounds = np.cumsum(lengths)
    starts = np.concatenate((bounds[:1] * 0, bounds[:-1]))
    return np.arange(int(bounds[-1])) + np.repeat(offsets - starts, lengths)


def compute_diff(twin: np.ndarray, page: np.ndarray, gap: int = 0) -> Diff:
    """Diff of ``page`` against its ``twin`` (both uint8, same length).

    ``gap > 0`` coalesces runs separated by at most ``gap`` unchanged
    bytes (see module docstring for the size/safety argument).
    """
    if twin.shape != page.shape:
        raise ValueError(f"shape mismatch: {twin.shape} vs {page.shape}")
    if twin.dtype != np.uint8 or page.dtype != np.uint8:
        raise TypeError("pages must be uint8 arrays")
    neq = twin != page
    if not neq.any():
        return _EMPTY_DIFF
    # Boundaries where the mask flips; prepend/append sentinels so that
    # runs touching the page edges are closed.
    padded = np.concatenate(([False], neq, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    if gap > 0 and len(starts) > 1:
        keep = (starts[1:] - ends[:-1]) > gap
        starts = starts[np.concatenate(([True], keep))]
        ends = ends[np.concatenate((keep, [True]))]
    lengths = ends - starts
    if len(starts) == 1:
        payload = page[int(starts[0]) : int(ends[0])].tobytes()
    else:
        payload = page[_scatter_index(starts, lengths)].tobytes()
    return Diff.from_arrays(starts, lengths, payload)


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` in place to ``page`` (uint8)."""
    offsets, lengths = diff.offsets, diff.lengths
    k = len(offsets)
    if k == 0:
        return
    n = len(page)
    if k == 1:
        off, end = int(offsets[0]), int(offsets[0] + lengths[0])
        if off < 0 or end > n:
            raise ValueError(f"diff run [{off},{end}) outside page of {n} bytes")
        page[off:end] = np.frombuffer(diff.payload, dtype=np.uint8)
        return
    ends = offsets + lengths
    if int(offsets.min()) < 0 or int(ends.max()) > n:
        bad = int(np.flatnonzero((offsets < 0) | (ends > n))[0])
        raise ValueError(
            f"diff run [{int(offsets[bad])},{int(ends[bad])}) outside page "
            f"of {n} bytes"
        )
    page[_scatter_index(offsets, lengths)] = np.frombuffer(
        diff.payload, dtype=np.uint8
    )


def merge_runs(diffs: Sequence[Diff]) -> List[Tuple[int, int]]:
    """Union of the byte intervals covered by several diffs.

    The coverage-union helper of the recovery replay path: the replay
    driver uses it to prove a batch of pooled home diffs write disjoint
    bytes (union size == total payload) before applying them in one
    vectorized scatter.
    """
    nonempty = [d for d in diffs if len(d.offsets)]
    if not nonempty:
        return []
    starts = np.concatenate([d.offsets for d in nonempty])
    ends = starts + np.concatenate([d.lengths for d in nonempty])
    order = np.argsort(starts, kind="stable")
    starts, ends = starts[order], ends[order]
    frontier = np.maximum.accumulate(ends)
    new_run = np.concatenate(([True], starts[1:] > frontier[:-1]))
    first = np.flatnonzero(new_run)
    last = np.append(first[1:] - 1, len(starts) - 1)
    return list(zip(starts[first].tolist(), frontier[last].tolist()))


def concat_diffs(diffs: Sequence[Diff]) -> Diff:
    """Concatenate several diffs into one (runs kept in input order).

    Intended for *disjoint* diffs (checked by the caller via
    :func:`merge_runs`); with overlaps, later runs win under
    :func:`apply_diff`'s scatter semantics.
    """
    nonempty = [d for d in diffs if len(d.offsets)]
    if not nonempty:
        return _EMPTY_DIFF
    if len(nonempty) == 1:
        return nonempty[0]
    return Diff.from_arrays(
        np.concatenate([d.offsets for d in nonempty]),
        np.concatenate([d.lengths for d in nonempty]),
        b"".join(d.payload for d in nonempty),
    )
