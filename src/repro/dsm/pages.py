"""Paged shared memory: regions, homes, per-process page tables.

A :class:`SharedRegion` is a named, typed slab of shared address space,
split into fixed-size pages. Every page has a *home* process assigned when
the region is allocated (round-robin, blocked, or explicitly by the
application — the stand-in for first-touch placement, which is what makes
the Barnes home/update imbalance of §5.2 reproducible).

Each process keeps a full local backing array per region plus a
:class:`PageEntry` per page recording the coherence state a VM-based
implementation would keep in page protections: INVALID (fetch on access),
RO (readable), RW (written this interval; a twin exists while the page is
both dirty and shared).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.dsm.config import DsmConfig
from repro.dsm.vclock import VClock

__all__ = ["PageId", "PageState", "PageEntry", "SharedRegion", "RegionSet"]


class PageId(NamedTuple):
    """Globally unique page identifier."""

    region: int
    index: int


class PageState(enum.Enum):
    INVALID = "invalid"
    RO = "ro"
    RW = "rw"


@dataclass
class PageEntry:
    """Per-process coherence state for one page."""

    state: PageState = PageState.INVALID
    #: minimal version this process must fetch, accumulated from applied
    #: write notices (componentwise max of notice timestamps)
    needed_v: Optional[VClock] = None
    #: twin snapshot while the page is dirty in the current interval
    twin: Optional[np.ndarray] = None
    #: dirty in the current (open) interval
    dirty: bool = False


class SharedRegion:
    """Metadata for one shared region (identical at every process)."""

    def __init__(
        self,
        region_id: int,
        name: str,
        num_elements: int,
        dtype: str,
        config: DsmConfig,
    ) -> None:
        self.region_id = region_id
        self.name = name
        self.dtype = np.dtype(dtype)
        self.num_elements = num_elements
        self.config = config
        self.elem_size = self.dtype.itemsize
        nbytes = num_elements * self.elem_size
        self.num_pages = max(1, -(-nbytes // config.page_size))
        self.nbytes = self.num_pages * config.page_size
        self.elems_per_page = config.page_size // self.elem_size
        self._homes: List[int] = self._default_homes()
        #: RegionSet this region belongs to (set by ``RegionSet.allocate``);
        #: used to reject home reassignment after sharing starts
        self._owner: Optional["RegionSet"] = None
        #: interned PageId per index — hot paths construct these constantly
        self._page_ids: List[PageId] = [
            PageId(region_id, i) for i in range(self.num_pages)
        ]

    def _default_homes(self) -> List[int]:
        n = self.config.num_procs
        if self.config.home_policy == "blocked":
            per = -(-self.num_pages // n)
            return [min(i // per, n - 1) for i in range(self.num_pages)]
        # round_robin is also the starting point for "explicit"
        return [i % n for i in range(self.num_pages)]

    # -- home placement ----------------------------------------------------
    def home_of(self, page_index: int) -> int:
        return self._homes[page_index]

    def set_home(self, page_index: int, proc: int) -> None:
        """Explicit home assignment (first-touch stand-in).

        Only legal before any sharing has happened: once the owning
        :class:`RegionSet` is sealed, every process has derived its home
        directory and page states from the placement, so reassignment is
        rejected.
        """
        if self._owner is not None and self._owner.sealed:
            raise RuntimeError(
                f"cannot reassign home of {self.name!r}[{page_index}]: "
                "region set is sealed (sharing has started)"
            )
        if not (0 <= proc < self.config.num_procs):
            raise ValueError(f"proc {proc} out of range")
        self._homes[page_index] = proc

    def pages_homed_at(self, proc: int) -> List[int]:
        return [i for i, h in enumerate(self._homes) if h == proc]

    # -- address arithmetic --------------------------------------------------
    def page_of_element(self, elem: int) -> int:
        if not (0 <= elem < self.num_elements):
            raise IndexError(f"element {elem} out of region {self.name}")
        return (elem * self.elem_size) // self.config.page_size

    def pages_for_range(self, lo: int, hi: int) -> range:
        """Pages covering elements ``[lo, hi)``."""
        if lo >= hi:
            return range(0)
        first = self.page_of_element(lo)
        last = self.page_of_element(hi - 1)
        return range(first, last + 1)

    def page_slice(self, page_index: int) -> Tuple[int, int]:
        """Byte range [lo, hi) of ``page_index`` within the region."""
        lo = page_index * self.config.page_size
        return lo, lo + self.config.page_size

    def page_id(self, page_index: int) -> PageId:
        return self._page_ids[page_index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SharedRegion {self.name!r} id={self.region_id} "
            f"{self.num_elements}x{self.dtype} pages={self.num_pages}>"
        )


class RegionSet:
    """All shared regions of one application run."""

    def __init__(self, config: DsmConfig) -> None:
        self.config = config
        self._regions: List[SharedRegion] = []
        self.sealed = False

    def allocate(self, name: str, num_elements: int, dtype: str = "float64") -> SharedRegion:
        if self.sealed:
            raise RuntimeError("regions cannot be allocated after sharing starts")
        region = SharedRegion(len(self._regions), name, num_elements, dtype, self.config)
        region._owner = self
        self._regions.append(region)
        return region

    def seal(self) -> None:
        """Freeze allocation and home placement (sharing begins)."""
        self.sealed = True

    def __getitem__(self, region_id: int) -> SharedRegion:
        return self._regions[region_id]

    def __iter__(self):
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def total_bytes(self) -> int:
        """Shared-memory footprint (Table 1 column)."""
        return sum(r.nbytes for r in self._regions)

    def all_page_ids(self) -> List[PageId]:
        return [
            PageId(r.region_id, i) for r in self._regions for i in range(r.num_pages)
        ]

    def home_of(self, pid: PageId) -> int:
        return self._regions[pid.region].home_of(pid.index)

    def pages_homed_at(self, proc: int) -> List[PageId]:
        return [
            PageId(r.region_id, i)
            for r in self._regions
            for i in r.pages_homed_at(proc)
        ]
