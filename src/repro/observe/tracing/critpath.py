"""Critical-path analysis over a :class:`SpanTracer` span DAG.

``compute_critical_path`` walks the terminal span (the last application
main to finish) *backwards* through virtual time, attributing every
second of the end-to-end run to a cause:

* a **wait** ends at the current point → the wait is on the path. If a
  causal edge ended it, the path attributes the segment from the edge's
  send time to the wait's end (message flight + blocked time) to that
  cause — "fetch-wait on p3", "lock-wait behind p1", "barrier straggler
  p5" — and *jumps to the sender's timeline* at the send instant. A
  locally satisfied wait (self-grant, home-local fetch) stays on the
  same timeline.
* no wait covers the current point → the **gap** back to the previous
  wait is attributed by overlapping op spans, in precedence order
  compute → ckpt-disk → recovery, with the unexplained remainder
  charged to protocol ``overhead`` (handler debt, flushes, logging —
  exactly what the OVERHEAD/LOG_CKPT buckets hold).

Each wait is consumed at most once (per-node high-water pointers), so
the walk terminates; segments come back in chronological order and
their durations sum to the terminal span's end time.

``reconcile_with_time_stats`` checks the tentpole invariant: per node,
the sum of span self-times per kind must equal the
:class:`~repro.sim.node.TimeStats` bucket totals within tolerance.
Wait spans are exact by construction (built from the same ``stats.add``
calls); compute spans are exact because ``proto.compute`` is the only
COMPUTE charger. Tolerances absorb float roundoff of ``t1 - t0`` versus
the exactly accumulated ``seconds``.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.node import TimeBucket

from repro.observe.tracing.spans import Span, SpanTracer, WAIT_KINDS

__all__ = [
    "CritSegment",
    "compute_critical_path",
    "per_cause_totals",
    "node_time_totals",
    "reconcile_with_time_stats",
    "worst_lock_chains",
    "render_critpath_report",
]

_EPS = 1e-12

#: buckets the span DAG must reconcile with (OVERHEAD/LOG_CKPT are
#: charged piecemeal inside handlers and have no dedicated spans)
RECONCILED_BUCKETS = (
    TimeBucket.COMPUTE,
    TimeBucket.PAGE_WAIT,
    TimeBucket.LOCK_WAIT,
    TimeBucket.BARRIER_WAIT,
)

_BUCKET_KIND = {
    TimeBucket.COMPUTE: "compute",
    TimeBucket.PAGE_WAIT: "page_wait",
    TimeBucket.LOCK_WAIT: "lock_wait",
    TimeBucket.BARRIER_WAIT: "barrier_wait",
}


@dataclass
class CritSegment:
    """One chronological slice of the critical path."""

    pid: int
    t0: float
    t1: float
    cause: str  # per-cause total key ("compute", "fetch-wait on p3", ...)
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def _wait_cause_label(span: Span, edge) -> str:
    if span.kind == "page_wait":
        if edge is None:
            return "page-wait (local)"
        if edge.msg_type == "DiffMsg":
            return f"diff-wait on p{edge.src}"
        return f"fetch-wait on p{edge.src}"
    if span.kind == "lock_wait":
        if edge is None:
            return "lock-wait (local)"
        if edge.msg_type == "LockForward":
            return f"lock-wait via p{edge.src}"
        return f"lock-wait behind p{edge.src}"
    if span.kind == "barrier_wait":
        if edge is None:
            return "barrier-wait"
        if edge.msg_type == "BarrierArrive":
            return f"barrier straggler p{edge.src}"
        return f"barrier-wait (release from p{edge.src})"
    return span.kind


class _GapIndex:
    """Per-pid sorted op spans for attributing non-wait gaps."""

    def __init__(self, tracer: SpanTracer) -> None:
        self.by_kind: Dict[str, Dict[int, List[Span]]] = {
            "compute": defaultdict(list),
            "ckpt_write": defaultdict(list),
            "recovery": defaultdict(list),
            "down": defaultdict(list),
        }
        for s in tracer.spans:
            if s.status in ("closed", "abandoned") and s.kind in self.by_kind:
                self.by_kind[s.kind][s.pid].append(s)
        # synthesize a "down" interval per crash, from the fail-stop to
        # the recovery-begin probe: the failure-detection window, during
        # which the victim's timeline is legitimately empty
        for pid, t_crash in tracer.crash_points:
            rec_starts = sorted(
                s.t0 for s in self.by_kind["recovery"][pid] if s.t0 >= t_crash
            )
            if rec_starts:
                self.by_kind["down"][pid].append(
                    Span(
                        sid=-1,
                        pid=pid,
                        kind="down",
                        t0=t_crash,
                        t1=rec_starts[0],
                        status="closed",
                        detail="awaiting failure detection",
                    )
                )
        self._t1s: Dict[Tuple[str, int], List[float]] = {}
        for kind, per_pid in self.by_kind.items():
            for pid, spans in per_pid.items():
                spans.sort(key=lambda s: (s.t0, s.t1))
                self._t1s[(kind, pid)] = [s.t1 for s in spans]

    def attribute(
        self, pid: int, a: float, b: float, out: List[CritSegment]
    ) -> None:
        """Attribute the gap ``(a, b]`` on ``pid``; appends to ``out``.

        ``out`` is the backward walk's segment list (reversed at the
        end), so pieces are appended latest-first.
        """
        if b - a <= _EPS:
            return
        local: List[CritSegment] = []
        pieces = [(a, b)]
        for kind, label in (
            ("compute", "compute"),
            ("ckpt_write", "ckpt-disk"),
            ("recovery", "recovery"),
            ("down", "down (detection)"),
        ):
            spans = self.by_kind[kind].get(pid)
            if not spans:
                continue
            t1s = self._t1s[(kind, pid)]
            nxt: List[Tuple[float, float]] = []
            for ra, rb in pieces:
                cur = ra
                # spans with t1 > ra are the only possible overlaps;
                # spans are disjoint per pid (sequential coroutines)
                for s in spans[bisect_right(t1s, ra) :]:
                    if s.t0 >= rb:
                        break
                    lo, hi = max(s.t0, cur), min(s.t1, rb)
                    if lo > cur + _EPS:
                        nxt.append((cur, lo))
                    if hi > lo + _EPS:
                        local.append(CritSegment(pid, lo, hi, label, s.detail))
                    cur = max(cur, hi)
                if rb > cur + _EPS:
                    nxt.append((cur, rb))
            pieces = nxt
            if not pieces:
                break
        for ra, rb in pieces:
            local.append(CritSegment(pid, ra, rb, "overhead"))
        out.extend(sorted(local, key=lambda s: -s.t0))


def compute_critical_path(tracer: SpanTracer) -> List[CritSegment]:
    """Backward walk from the last-finishing app span; see module doc."""
    app_spans = [
        s for s in tracer.spans if s.kind == "app" and s.status == "closed"
    ]
    if not app_spans:
        return []
    terminal = max(app_spans, key=lambda s: (s.t1, -s.pid))

    waits: Dict[int, List[Span]] = defaultdict(list)
    for s in tracer.spans:
        if s.kind in WAIT_KINDS and s.status == "closed":
            waits[s.pid].append(s)
    for spans in waits.values():
        spans.sort(key=lambda s: (s.t1, s.t0))
    wait_t1s = {pid: [s.t1 for s in spans] for pid, spans in waits.items()}
    # exclusive high-water mark: waits[pid][hi:] are consumed/ahead
    hi = {pid: len(spans) for pid, spans in waits.items()}

    # arrival history per pid, for handler chaining: protocol handlers
    # run synchronously at the delivery instant (their CPU cost becomes
    # deferred debt), so a message sent at time t from a node whose app
    # is blocked was sent by the handler of a message *delivered at
    # exactly t* — the walk follows that trigger edge backwards
    arrivals: Dict[int, List] = defaultdict(list)
    for e in tracer.edges:
        if e.status == "delivered":
            arrivals[e.dst].append(e)
    arr_t1s = {pid: [e.t_recv for e in lst] for pid, lst in arrivals.items()}

    edges = tracer.edges
    gaps = _GapIndex(tracer)
    segments: List[CritSegment] = []
    pid, t = terminal.pid, terminal.t1

    while t > _EPS:
        pid_waits = waits.get(pid, ())
        idx = (
            bisect_right(wait_t1s[pid], t + _EPS, 0, hi[pid]) - 1
            if pid_waits
            else -1
        )
        w = pid_waits[idx] if idx >= 0 else None
        if w is not None and w.t1 >= t - _EPS:
            # a wait ends here — it is on the path
            hi[pid] = idx
            edge = edges[w.cause_edge] if w.cause_edge is not None else None
            label = _wait_cause_label(w, edge)
            if edge is not None and edge.t_send < t - _EPS:
                segments.append(
                    CritSegment(pid, edge.t_send, t, label, w.detail)
                )
                pid, t = edge.src, edge.t_send
            else:
                start = min(w.t0, t)
                if t - start > _EPS:
                    segments.append(CritSegment(pid, start, t, label, w.detail))
                t = start
            continue
        # no wait ends here: if a message was delivered to this node at
        # exactly this instant, the current point is inside its handler
        # (e.g. the barrier manager releasing on the last arrival) —
        # chain through the trigger edge to the sender's timeline
        lst = arrivals.get(pid)
        if lst:
            j = bisect_right(arr_t1s[pid], t + _EPS) - 1
            if j >= 0 and t - lst[j].t_recv <= _EPS:
                trig = lst[j]
                if trig.t_send < t - _EPS:
                    segments.append(
                        CritSegment(
                            pid,
                            trig.t_send,
                            t,
                            f"msg flight {trig.msg_type}",
                            f"p{trig.src}->p{trig.dst}",
                        )
                    )
                    pid, t = trig.src, trig.t_send
                    continue
        # a plain gap: attribute back to the previous wait end (or 0)
        floor = w.t1 if w is not None else 0.0
        gaps.attribute(pid, floor, t, segments)
        t = floor
        if w is None:
            break
        hi[pid] = idx + 1

    segments.reverse()
    return segments


def per_cause_totals(segments: Sequence[CritSegment]) -> Dict[str, float]:
    totals: Dict[str, float] = defaultdict(float)
    for seg in segments:
        totals[seg.cause] += seg.duration
    return dict(totals)


def node_time_totals(tracer: SpanTracer) -> Dict[int, Dict[str, float]]:
    """Per-node span self-time sums, final incarnation only.

    A crash discards the victim's CpuModel with the incarnation, so the
    final ``TimeStats`` covers only the last incarnation — the span sums
    must filter the same way to reconcile.
    """
    cluster = tracer.cluster
    totals: Dict[int, Dict[str, float]] = {
        h.pid: {_BUCKET_KIND[b]: 0.0 for b in RECONCILED_BUCKETS}
        for h in cluster.hosts
    }
    final_inc = {h.pid: h.crashed_count for h in cluster.hosts}
    for s in tracer.spans:
        if s.status != "closed" or s.incarnation != final_inc[s.pid]:
            continue
        if s.kind in totals[s.pid]:
            totals[s.pid][s.kind] += s.duration
    return totals


def reconcile_with_time_stats(
    tracer: SpanTracer,
    rel_tol: float = 1e-6,
    abs_tol: float = 1e-9,
) -> List[str]:
    """Cross-check span sums against TimeStats; empty list = reconciled."""
    errors: List[str] = []
    totals = node_time_totals(tracer)
    for host in tracer.cluster.hosts:
        proto = host.proto
        if proto is None:  # crashed and never recovered (shouldn't happen)
            continue
        stats = proto.cpu.stats
        for bucket in RECONCILED_BUCKETS:
            want = stats.seconds[bucket]
            got = totals[host.pid][_BUCKET_KIND[bucket]]
            if abs(got - want) > max(abs_tol, rel_tol * abs(want)):
                errors.append(
                    f"p{host.pid} {bucket.value}: spans sum to {got:.9g}s "
                    f"but TimeStats has {want:.9g}s "
                    f"(diff {got - want:+.3g}s)"
                )
    return errors


def worst_lock_chains(
    tracer: SpanTracer, top: int = 5
) -> List[Tuple[int, float, int, List[Span]]]:
    """Longest cumulative lock-wait chains, grouped by lock id.

    Returns ``(lock_id, total_wait, n_waits, worst_spans)`` sorted by
    total wait descending.
    """
    by_lock: Dict[int, List[Span]] = defaultdict(list)
    for s in tracer.spans:
        if s.kind == "lock_wait" and s.status == "closed" and s.key:
            by_lock[s.key[1]].append(s)
    chains = []
    for lock_id, spans in by_lock.items():
        spans.sort(key=lambda s: -s.duration)
        total = sum(s.duration for s in spans)
        chains.append((lock_id, total, len(spans), spans[:3]))
    chains.sort(key=lambda c: -c[1])
    return chains[:top]


def render_critpath_report(
    tracer: SpanTracer,
    segments: Sequence[CritSegment],
    top: int = 12,
) -> str:
    """ASCII critical-path report: top segments, per-cause totals,
    worst lock chains, reconciliation status."""
    from repro.render import Table

    lines: List[str] = []
    wall = segments[-1].t1 if segments else 0.0
    lines.append(
        f"critical path: {len(segments)} segments over "
        f"{wall * 1e3:.3f} ms virtual time "
        f"({len(tracer.spans)} spans, "
        f"{len(tracer.delivered_edges())} delivered edges)"
    )
    lines.append("")

    ranked = sorted(segments, key=lambda s: -s.duration)[:top]
    t = Table(
        f"top {len(ranked)} critical-path segments",
        ["node", "from (ms)", "to (ms)", "dur (ms)", "% of run", "cause"],
    )
    for seg in ranked:
        pct = 100.0 * seg.duration / wall if wall > 0 else 0.0
        cause = seg.cause if not seg.detail else f"{seg.cause} [{seg.detail}]"
        t.add(
            f"p{seg.pid}",
            f"{seg.t0 * 1e3:.3f}",
            f"{seg.t1 * 1e3:.3f}",
            f"{seg.duration * 1e3:.3f}",
            f"{pct:.1f}",
            cause,
        )
    lines.append(t.render())
    lines.append("")

    totals = per_cause_totals(segments)
    t = Table("per-cause totals", ["cause", "total (ms)", "% of run"])
    for cause, secs in sorted(totals.items(), key=lambda kv: -kv[1]):
        pct = 100.0 * secs / wall if wall > 0 else 0.0
        t.add(cause, f"{secs * 1e3:.3f}", f"{pct:.1f}")
    lines.append(t.render())
    lines.append("")

    chains = worst_lock_chains(tracer)
    if chains:
        t = Table(
            "worst lock chains",
            ["lock", "total wait (ms)", "waits", "longest single waits"],
        )
        for lock_id, total, n, worst in chains:
            worst_txt = ", ".join(
                f"p{s.pid}:{s.duration * 1e3:.3f}ms" for s in worst
            )
            t.add(f"L{lock_id}", f"{total * 1e3:.3f}", str(n), worst_txt)
        lines.append(t.render())
        lines.append("")

    errors = reconcile_with_time_stats(tracer)
    if errors:
        lines.append("RECONCILIATION FAILED:")
        lines.extend(f"  {e}" for e in errors)
    else:
        lines.append(
            "reconciliation: span self-times match TimeStats buckets "
            "on every node (compute/page/lock/barrier waits)"
        )
    return "\n".join(lines)
