"""Causal span tracing: a span DAG with message edges over one run.

A :class:`SpanTracer` attaches to a :class:`~repro.cluster.DsmCluster`
*before* ``run`` and upgrades observability from flat events (the
:class:`~repro.sim.trace.Tracer` timeline) to a **span DAG**: every
blocking protocol operation becomes a span ``[t0, t1]`` on its node's
timeline, and every message becomes a **causal edge** between the span
that sent it and the node that received it. On top of the DAG live the
critical-path analysis (``critpath.py``) and the Chrome trace-event
export (``export.py``).

Span kinds
----------
* op spans, opened/closed by wrapping the protocol coroutines:
  ``app`` (one per incarnation of a node's application main),
  ``compute``, ``fetch``, ``home_wait``, ``acquire``, ``barrier``,
  ``flush`` (interval flush with dirty pages), ``ckpt`` (the whole
  checkpoint operation);
* probe spans, derived from ``cluster.probe`` events: ``ckpt_write``
  (the stable-storage write, between the FT manager's existing
  begin/end probes) and ``recovery`` (failure-detection to live
  switch);
* wait spans, created *retroactively* whenever the protocol charges a
  wait bucket: ``page_wait``, ``lock_wait``, ``barrier_wait``. The
  protocol calls ``cpu.stats.add(bucket, seconds)`` exactly once per
  wait, at the instant the wait ends, with the exact waited duration —
  so wait spans reconcile with the :class:`~repro.sim.node.TimeStats`
  bucket totals *by construction* (the invariant
  ``critpath.reconcile_with_time_stats`` checks).

Read-only guarantee
-------------------
The tracer only wraps callables and records; it sends no messages,
charges no CPU, schedules no events and never mutates protocol state
(message identity is tracked in a side table keyed by ``id(msg)``, the
same never-touch-the-payload discipline the observer uses for
``cluster.probe``). The golden determinism test passes with a
SpanTracer attached.

Crash/recovery semantics
------------------------
A fail-stop closes every open span on the victim as ``abandoned`` (the
cluster emits a ``failure`` probe before killing the incarnation).
Recovery incarnations open fresh spans — ids are globally unique and
every span carries its ``incarnation`` (the host's ``crashed_count`` at
open), so the final incarnation's spans are exactly the ones that
reconcile with the final :class:`TimeStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dsm.messages import (
    BarrierArrive,
    BarrierRelease,
    DiffMsg,
    GrantInfo,
    LockAcquireReq,
    LockForward,
    LockGrant,
    PageFetchReply,
    PageFetchReq,
)
from repro.sim.node import TimeBucket

__all__ = ["Span", "CausalEdge", "SpanTracer", "WAIT_KINDS", "OP_KINDS"]

#: wait-span kinds (retroactive spans mirroring the TimeStats buckets)
WAIT_KINDS = ("page_wait", "lock_wait", "barrier_wait")

#: op/probe span kinds
OP_KINDS = (
    "app",
    "compute",
    "fetch",
    "home_wait",
    "acquire",
    "barrier",
    "flush",
    "ckpt",
    "ckpt_write",
    "recovery",
    "rphase",
    "repl",
)

#: which op-span kinds enclose the wait spans of each bucket
_WAIT_PARENTS = {
    TimeBucket.PAGE_WAIT: ("fetch", "home_wait"),
    TimeBucket.LOCK_WAIT: ("acquire",),
    TimeBucket.BARRIER_WAIT: ("barrier",),
}

#: message types whose arrival legitimately ends a wait, per parent kind
_WAIT_CAUSES = {
    "fetch": ("PageFetchReply",),
    "home_wait": ("DiffMsg",),
    "acquire": ("LockGrant", "LockForward"),
    "barrier": ("BarrierRelease",),
}


@dataclass
class Span:
    """One operation on one node's timeline."""

    sid: int
    pid: int
    kind: str
    t0: float
    detail: str = ""
    #: machine-readable operand (("page", (r, i)) / ("lock", id) /
    #: ("barrier", episode)); used to match causal edges to waits
    key: Optional[Tuple] = None
    incarnation: int = 0
    t1: float = -1.0
    status: str = "open"  # open | closed | abandoned | dropped
    parent: Optional[int] = None  # sid of the enclosing span (same pid)
    cause_edge: Optional[int] = None  # eid of the edge that ended a wait
    step0: int = -1
    step1: int = -1

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0) if self.t1 >= 0.0 else 0.0

    def overlaps(self, a: float, b: float) -> bool:
        return self.t1 > a and self.t0 < b


@dataclass
class CausalEdge:
    """One message: a happens-before edge between two node timelines."""

    eid: int
    src: int
    dst: int
    t_send: float
    msg_type: str
    key: Tuple
    src_span: Optional[int] = None  # sid of the span open at send
    dst_span: Optional[int] = None  # sid of the span open at receive
    t_recv: float = -1.0
    status: str = "inflight"  # inflight | delivered | dropped


def _edge_key(msg: Any) -> Tuple:
    if isinstance(msg, (PageFetchReq, PageFetchReply, DiffMsg)):
        return ("page", tuple(msg.page))
    if isinstance(msg, (LockAcquireReq, LockForward, LockGrant, GrantInfo)):
        return ("lock", msg.lock_id)
    if isinstance(msg, (BarrierArrive, BarrierRelease)):
        return ("barrier", msg.episode)
    return ("msg", type(msg).__name__)


class SpanTracer:
    """Records a span DAG with causal edges for one cluster run.

    Attach before ``cluster.run``; read ``spans`` / ``edges`` after.
    Observation is strictly read-only (see module docstring).
    """

    def __init__(
        self,
        cluster: Any,
        max_spans: int = 2_000_000,
        max_edges: int = 2_000_000,
    ) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.max_spans = max_spans
        self.max_edges = max_edges
        self.spans: List[Span] = []
        self.edges: List[CausalEdge] = []
        #: (pid, time) per observed fail-stop, in order — the critical
        #: path uses these to attribute detection windows (crash ->
        #: recovery begin) on the victim's timeline
        self.crash_points: List[Tuple[int, float]] = []
        self.dropped_spans = 0
        self.dropped_edges = 0
        #: open spans per pid, in open order (innermost last). A plain
        #: list, not a stack: probe spans (recovery) legally close out
        #: of LIFO order.
        self._open: Dict[int, List[Span]] = {}
        #: in-flight edges keyed by id(msg); FIFO per object identity
        #: (an object re-sent while still in flight appends)
        self._inflight: Dict[int, List[CausalEdge]] = {}
        #: delivered edges per destination pid, in arrival order
        self._delivered: Dict[int, List[CausalEdge]] = {}
        self._install()

    # ------------------------------------------------------------------
    # span bookkeeping
    # ------------------------------------------------------------------
    def _open_span(
        self,
        pid: int,
        kind: str,
        detail: str = "",
        key: Optional[Tuple] = None,
    ) -> Span:
        now, step = self.engine.mark()
        open_list = self._open.setdefault(pid, [])
        parent = open_list[-1].sid if open_list else None
        span = Span(
            sid=len(self.spans),
            pid=pid,
            kind=kind,
            t0=now,
            detail=detail,
            key=key,
            incarnation=self.cluster.hosts[pid].crashed_count,
            parent=parent,
            step0=step,
        )
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            span.status = "dropped"
            return span
        self.spans.append(span)
        open_list.append(span)
        return span

    def _close_span(self, span: Span, status: str = "closed") -> None:
        if span.status != "open":
            return  # already abandoned by a crash, or dropped at the cap
        span.t1, span.step1 = self.engine.mark()
        span.status = status
        open_list = self._open.get(span.pid)
        if open_list is not None:
            for i in range(len(open_list) - 1, -1, -1):
                if open_list[i] is span:
                    del open_list[i]
                    break

    def _innermost(self, pid: int, kinds: Optional[Tuple[str, ...]] = None):
        open_list = self._open.get(pid)
        if not open_list:
            return None
        if kinds is None:
            return open_list[-1]
        for span in reversed(open_list):
            if span.kind in kinds:
                return span
        return None

    def _abandon_all(self, pid: int) -> None:
        now, step = self.engine.mark()
        for span in self._open.get(pid, ()):
            span.t1 = now
            span.step1 = step
            span.status = "abandoned"
        self._open[pid] = []

    # ------------------------------------------------------------------
    # wait spans (retroactive, exact by construction)
    # ------------------------------------------------------------------
    def _on_wait(self, proto: Any, bucket: TimeBucket, seconds: float) -> None:
        parent_kinds = _WAIT_PARENTS.get(bucket)
        if parent_kinds is None:
            return
        pid = proto.pid
        now = self.engine.now
        t0 = now - seconds
        parent = self._innermost(pid, parent_kinds)
        cause = None
        if parent is not None and parent.key is not None:
            cause = self._find_cause(pid, parent.kind, parent.key, t0)
        span = Span(
            sid=len(self.spans),
            pid=pid,
            kind=bucket.value,
            t0=t0,
            detail=parent.detail if parent is not None else "",
            key=parent.key if parent is not None else None,
            incarnation=self.cluster.hosts[pid].crashed_count,
            t1=now,
            status="closed",
            parent=parent.sid if parent is not None else None,
            cause_edge=cause.eid if cause is not None else None,
            step0=self.engine.steps,
            step1=self.engine.steps,
        )
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)

    def _find_cause(
        self, pid: int, parent_kind: str, key: Tuple, t0: float
    ) -> Optional[CausalEdge]:
        """The most recent delivery that can have ended this wait.

        Scans the pid's arrival history backwards, bounded by the wait's
        start; returns None for locally satisfied waits (self-grants,
        manager-local barrier completion — the barrier case falls back
        to the last ``BarrierArrive``, i.e. the straggler).
        """
        arrivals = self._delivered.get(pid)
        if not arrivals:
            return None
        wanted = _WAIT_CAUSES[parent_kind]
        fallback = None
        for edge in reversed(arrivals):
            if edge.t_recv < t0 - 1e-12:
                break
            if edge.key != key:
                continue
            if edge.msg_type in wanted:
                return edge
            if (
                parent_kind == "barrier"
                and edge.msg_type == "BarrierArrive"
                and fallback is None
            ):
                fallback = edge
        return fallback

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def _install(self) -> None:
        cluster = self.cluster
        tracer = self

        # message sends -> causal edges (side table; payload untouched)
        orig_send = cluster.send

        def send(src: int, dst: int, msg: Any) -> None:
            if len(tracer.edges) >= tracer.max_edges:
                tracer.dropped_edges += 1
            else:
                open_span = tracer._innermost(src)
                edge = CausalEdge(
                    eid=len(tracer.edges),
                    src=src,
                    dst=dst,
                    t_send=tracer.engine.now,
                    msg_type=type(msg).__name__,
                    key=_edge_key(msg),
                    src_span=open_span.sid if open_span is not None else None,
                )
                tracer.edges.append(edge)
                tracer._inflight.setdefault(id(msg), []).append(edge)
            orig_send(src, dst, msg)

        cluster.send = send

        # deliveries close the edges (epoch-flushed messages are dropped,
        # not dangling — the coordinated baseline's global rollback)
        network = cluster.network
        orig_deliver = network._deliver

        def _deliver(
            src: int, dst: int, payload: Any, epoch: int, size: int = 0
        ) -> None:
            pending = tracer._inflight.get(id(payload))
            if pending:
                edge = pending.pop(0)
                if not pending:
                    del tracer._inflight[id(payload)]
                if epoch != network.epoch:
                    edge.status = "dropped"
                else:
                    edge.t_recv = tracer.engine.now
                    edge.status = "delivered"
                    open_span = tracer._innermost(dst)
                    edge.dst_span = (
                        open_span.sid if open_span is not None else None
                    )
                    tracer._delivered.setdefault(dst, []).append(edge)
            orig_deliver(src, dst, payload, epoch, size)

        network._deliver = _deliver

        # every protocol incarnation (setup AND recovery) flows through
        # host.make_protocol — wrapping it here is what lets spans
        # survive crash/recovery without touching the recovery code
        for host in cluster.hosts:
            self._hook_host(host)

        # one app span per incarnation (start() and recovery both call
        # cluster._app_main through the instance attribute)
        orig_app_main = cluster._app_main

        def _app_main(host: Any):
            span = tracer._open_span(
                host.pid, "app", f"incarnation {host.crashed_count}"
            )
            try:
                result = yield from orig_app_main(host)
            finally:
                tracer._close_span(span)
            return result

        cluster._app_main = _app_main

        # checkpoint spans need the FtManager, which is (re)created by
        # _install_ft at setup and at every recovery
        orig_install_ft = cluster._install_ft

        def _install_ft(host: Any) -> None:
            orig_install_ft(host)
            tracer._hook_ft(host)

        cluster._install_ft = _install_ft

        # probe events: failure (abandon open spans), ckpt_write
        # begin/end, recovery lifecycle; chain onto any consumer
        orig_probe = cluster.probe

        def probe(pid: int, kind: str, detail: str) -> None:
            tracer._on_probe(pid, kind, detail)
            if orig_probe is not None:
                orig_probe(pid, kind, detail)

        cluster.probe = probe

    def _hook_host(self, host: Any) -> None:
        tracer = self
        orig_make = host.make_protocol

        def make_protocol() -> Any:
            proto = orig_make()
            tracer._hook_proto(proto)
            return proto

        host.make_protocol = make_protocol

    def _hook_proto(self, proto: Any) -> None:
        """Wrap one incarnation's blocking operations and wait charges."""
        tracer = self
        pid = proto.pid

        # exact wait spans: the protocol calls stats.add once per wait,
        # at the instant it ends, with the exact duration
        stats = proto.cpu.stats
        orig_add = stats.add

        def add(bucket: TimeBucket, seconds: float) -> None:
            orig_add(bucket, seconds)
            tracer._on_wait(proto, bucket, seconds)

        stats.add = add

        def wrap(name: str, kind: str, detail_fn=None, key_fn=None, skip=None):
            orig = getattr(proto, name)

            def wrapped(*args: Any):
                if skip is not None and skip(*args):
                    result = yield from orig(*args)
                    return result
                span = tracer._open_span(
                    pid,
                    kind,
                    detail_fn(*args) if detail_fn is not None else "",
                    key_fn(*args) if key_fn is not None else None,
                )
                try:
                    result = yield from orig(*args)
                finally:
                    tracer._close_span(span)
                return result

            setattr(proto, name, wrapped)

        wrap("compute", "compute")
        wrap(
            "_fetch",
            "fetch",
            detail_fn=lambda page, entry: f"page {tuple(page)}",
            key_fn=lambda page, entry: ("page", tuple(page)),
        )
        wrap(
            "_ensure_home_ready",
            "home_wait",
            detail_fn=lambda page, entry: f"page {tuple(page)}",
            key_fn=lambda page, entry: ("page", tuple(page)),
            # pure pre-check mirroring _ensure_home_ready's wait
            # condition: only actual home waits get a span
            skip=lambda page, entry: (
                proto.replay is not None
                or entry.needed_v is None
                or proto.home[page].ready_for(entry.needed_v)
            ),
        )
        wrap(
            "acquire",
            "acquire",
            detail_fn=lambda lock_id: f"L{lock_id}",
            key_fn=lambda lock_id: ("lock", lock_id),
        )
        wrap(
            "barrier",
            "barrier",
            detail_fn=lambda: f"ep{proto.barrier_episode}",
            key_fn=lambda: ("barrier", proto.barrier_episode),
        )
        wrap(
            "_end_interval",
            "flush",
            detail_fn=lambda: f"{len(proto._dirty)} dirty",
            skip=lambda: not proto._dirty,
        )

    def _hook_ft(self, host: Any) -> None:
        tracer = self
        ft = host.ft
        take = getattr(ft, "take_checkpoint", None)
        if take is None:
            return

        def take_checkpoint(*args: Any, **kwargs: Any):
            span = tracer._open_span(host.pid, "ckpt")
            try:
                result = yield from take(*args, **kwargs)
                span.detail = f"#{ft.stats.checkpoints_taken}"
            finally:
                tracer._close_span(span)
            return result

        ft.take_checkpoint = take_checkpoint

    def _on_probe(self, pid: int, kind: str, detail: str) -> None:
        if kind == "failure":
            # emitted by cluster.crash after its guard, before the kill:
            # everything open on the victim dies with the incarnation
            self.crash_points.append((pid, self.engine.now))
            self._abandon_all(pid)
        elif kind == "ckpt_write":
            if detail.startswith("begin"):
                self._open_span(pid, "ckpt_write", detail)
            else:
                span = self._innermost(pid, ("ckpt_write",))
                if span is not None:
                    self._close_span(span)
        elif kind == "recovery":
            if detail.startswith("begin"):
                self._open_span(pid, "recovery", detail)
            elif detail == "live":
                span = self._innermost(pid, ("recovery",))
                if span is not None:
                    self._close_span(span)
            else:
                # annotation (discarded_torn, restart_ckpt, ...)
                span = self._innermost(pid, ("recovery",))
                if span is not None:
                    span.detail += f"; {detail}"
        elif kind == "rphase":
            # recovery-phase anatomy (DESIGN.md §12): restore/handshake/
            # replay child spans nested under the open recovery span
            # (detection elapses while the node is down, so it has no
            # span of its own — the critical path attributes it from
            # the crash point instead)
            if detail.endswith("begin"):
                self._open_span(pid, "rphase", detail.split()[0])
            else:
                span = self._innermost(pid, ("rphase",))
                if span is not None:
                    self._close_span(span)
        elif kind == "repl":
            # replication tier: begin/commit bracket one checkpoint's
            # buddy transfer (overlapping the ckpt_write span); a fetch
            # is a zero-duration marker on the recovery critical path —
            # the recovering node pulling a lost peer's FT state from
            # its buddy — and annotates the enclosing recovery span
            if detail.startswith("begin"):
                self._open_span(pid, "repl", detail)
            elif detail.startswith("commit"):
                span = self._innermost(pid, ("repl",))
                if span is not None:
                    self._close_span(span)
            elif detail.startswith("fetch"):
                span = self._open_span(pid, "repl", detail)
                self._close_span(span)
                rec = self._innermost(pid, ("recovery",))
                if rec is not None:
                    rec.detail += f"; {detail}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spans_by_kind(self, kind: str, pid: Optional[int] = None) -> List[Span]:
        return [
            s
            for s in self.spans
            if s.kind == kind and (pid is None or s.pid == pid)
        ]

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.status == "open"]

    def abandoned_spans(self, pid: Optional[int] = None) -> List[Span]:
        return [
            s
            for s in self.spans
            if s.status == "abandoned" and (pid is None or s.pid == pid)
        ]

    def delivered_edges(self) -> List[CausalEdge]:
        return [e for e in self.edges if e.status == "delivered"]

    def validate(self) -> List[str]:
        """Structural DAG checks; empty list = well-formed.

        Errors: unclosed spans after a completed run (every node is live
        or finished by then), time-reversed spans/edges, dangling parent
        or edge references, dropped edges without a rollback epoch, and
        hitting the span/edge caps (the DAG would be incomplete).
        """
        errors: List[str] = []
        sids = {s.sid for s in self.spans}
        for s in self.spans:
            if s.status == "open":
                errors.append(
                    f"unclosed span on live node: sid={s.sid} p{s.pid} "
                    f"{s.kind} opened at {s.t0:.6g}"
                )
                continue
            if s.t1 + 1e-12 < s.t0:
                errors.append(
                    f"span ends before it starts: sid={s.sid} p{s.pid} "
                    f"{s.kind} [{s.t0:.6g}, {s.t1:.6g}]"
                )
            if s.parent is not None and s.parent not in sids:
                errors.append(
                    f"dangling parent: sid={s.sid} -> {s.parent}"
                )
            if s.cause_edge is not None and not (
                0 <= s.cause_edge < len(self.edges)
            ):
                errors.append(
                    f"dangling cause edge: sid={s.sid} -> eid={s.cause_edge}"
                )
        for e in self.edges:
            if e.src_span is not None and e.src_span not in sids:
                errors.append(
                    f"dangling edge source span: eid={e.eid} -> {e.src_span}"
                )
            if e.status == "delivered" and e.t_recv + 1e-12 < e.t_send:
                errors.append(
                    f"edge received before sent: eid={e.eid} "
                    f"{e.msg_type} p{e.src}->p{e.dst}"
                )
            if e.status == "dropped" and self.cluster.network.epoch == 0:
                errors.append(
                    f"edge dropped without a rollback epoch: eid={e.eid} "
                    f"{e.msg_type} p{e.src}->p{e.dst}"
                )
        if self.dropped_spans or self.dropped_edges:
            errors.append(
                f"capacity exceeded: {self.dropped_spans} spans / "
                f"{self.dropped_edges} edges dropped — DAG incomplete "
                "(raise max_spans/max_edges)"
            )
        return errors
