"""Chrome trace-event JSON export of a span DAG.

``to_chrome_trace`` renders the :class:`~repro.observe.tracing.SpanTracer`
record into the Trace Event Format understood by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``:

* one *process* per simulated node (``pid`` maps 1:1), with three
  threads per node so every track nests properly — tid 0 carries the op
  spans (app/compute/fetch/acquire/barrier/flush/ckpt), tid 1 the
  retroactive wait spans (page/lock/barrier waits, which overlap their
  enclosing op), tid 2 the probe spans (ckpt_write, recovery — closed
  out of LIFO order with respect to ops during a crash);
* every closed/abandoned span becomes an ``"X"`` complete event
  (``ts``/``dur`` in microseconds of virtual time);
* every delivered causal edge becomes an ``"s"`` → ``"f"`` flow pair
  (``bp: "e"``) joining the sender's op track to the receiver's, so
  Perfetto draws the message arrows.

Virtual seconds are scaled by 1e6: one trace microsecond == one
simulated microsecond.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observe.tracing.spans import SpanTracer, WAIT_KINDS

__all__ = ["to_chrome_trace", "TID_OPS", "TID_WAITS", "TID_PROBES"]

TID_OPS = 0
TID_WAITS = 1
TID_PROBES = 2

_THREAD_NAMES = {
    TID_OPS: "ops",
    TID_WAITS: "waits",
    TID_PROBES: "ckpt/recovery",
}

_SCALE = 1e6  # virtual seconds -> trace microseconds


def _tid_for(kind: str) -> int:
    if kind in WAIT_KINDS:
        return TID_WAITS
    if kind in ("ckpt_write", "recovery", "rphase", "repl"):
        return TID_PROBES
    return TID_OPS


def to_chrome_trace(
    tracer: SpanTracer, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The span DAG as a Trace Event Format dict (json.dump and load
    into Perfetto)."""
    events: List[Dict[str, Any]] = []
    pids = sorted({h.pid for h in tracer.cluster.hosts})
    for pid in pids:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"node {pid}"},
            }
        )
        for tid, tname in _THREAD_NAMES.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )

    for span in tracer.spans:
        if span.status not in ("closed", "abandoned"):
            continue
        name = span.kind if not span.detail else f"{span.kind} {span.detail}"
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": span.kind,
                "pid": span.pid,
                "tid": _tid_for(span.kind),
                "ts": span.t0 * _SCALE,
                "dur": span.duration * _SCALE,
                "args": {
                    "sid": span.sid,
                    "incarnation": span.incarnation,
                    "status": span.status,
                    "step0": span.step0,
                    "step1": span.step1,
                },
            }
        )

    for edge in tracer.edges:
        if edge.status != "delivered":
            continue
        common = {
            "cat": "msg",
            "name": edge.msg_type,
            "id": edge.eid,
            "args": {"key": list(edge.key)},
        }
        events.append(
            {
                "ph": "s",
                "pid": edge.src,
                "tid": TID_OPS,
                "ts": edge.t_send * _SCALE,
                **common,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "pid": edge.dst,
                "tid": TID_OPS,
                "ts": edge.t_recv * _SCALE,
                **common,
            }
        )

    out: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        out["otherData"] = dict(meta)
    return out
