"""Causal span tracing: span DAG + critical path + Perfetto export.

See DESIGN.md §8. Typical use::

    from repro.observe.tracing import SpanTracer, compute_critical_path

    cluster = DsmCluster(..., ft=True)
    tracer = SpanTracer(cluster)        # attach BEFORE run
    result = cluster.run(app)
    assert not tracer.validate()        # DAG well-formed
    path = compute_critical_path(tracer)
    json.dump(to_chrome_trace(tracer), open("trace.json", "w"))
"""

from repro.observe.tracing.critpath import (
    CritSegment,
    compute_critical_path,
    node_time_totals,
    per_cause_totals,
    reconcile_with_time_stats,
    render_critpath_report,
    worst_lock_chains,
)
from repro.observe.tracing.export import to_chrome_trace
from repro.observe.tracing.spans import (
    OP_KINDS,
    WAIT_KINDS,
    CausalEdge,
    Span,
    SpanTracer,
)

__all__ = [
    "CausalEdge",
    "CritSegment",
    "OP_KINDS",
    "Span",
    "SpanTracer",
    "WAIT_KINDS",
    "compute_critical_path",
    "node_time_totals",
    "per_cause_totals",
    "reconcile_with_time_stats",
    "render_critpath_report",
    "to_chrome_trace",
    "worst_lock_chains",
]
