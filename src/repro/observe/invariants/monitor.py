"""Online invariant monitor: the paper's theorems as runtime assertions.

An :class:`InvariantMonitor` attaches to a
:class:`~repro.cluster.DsmCluster` *before* ``run`` and continuously
checks five invariant classes derived from the paper (Sultan et al.,
SC 2000); see DESIGN.md §9 for the catalog mapping each check to its
theorem/section. Like the observer and the span tracer it is strictly
read-only: it wraps the network send/deliver entry points, chains onto
the cluster probe hook and installs the engine's event tap, but performs
no scheduling, no sends and no state mutation — a monitored run is
bit-identical to an unmonitored one (golden-determinism test).

The five invariant classes:

``cgc``
    Rule 3.1 discipline. Immediately after every CGC pass on node *i*, at
    most one retained copy per page has ``version <= Tmin`` (the older
    ones are garbage the pass must have dropped); the newest retained
    copy belongs to the latest committed checkpoint (never collected);
    and the retained window is monotone — the per-page oldest-retained
    seqno never decreases across trims. (The paper's "at most two
    checkpoints" claim is knowledge-relative — see DESIGN.md §9 for why
    the literal count can legitimately exceed 2 under stale ``T̂ckp``.)

``llt``
    Rules 1/2/3.2 exactness at every LLT pass: no retained log entry sits
    at or below its derived trim bound (so log size never exceeds the
    trim frontier, and entries below the globally stable frontier are
    trimmed as soon as the bounds converge to it); the incremental
    byte counters agree with the entries; and the trimming *knowledge*
    never runs ahead of reality (``T̂ckp_j <=`` j's actual latest
    checkpoint stamp, learned ``p0.v`` ≤ the home's actual maximal
    starting copy) — stale bounds trim less, bounds ahead of reality
    would trim entries recovery still needs.

``vclock``
    Per-node vector-time monotonicity at every observable point (the
    baseline resets on a fail-stop: replay legitimately rewinds), and
    happened-before consistency of every vector-clock stamp on every
    sent and delivered message: no stamp component may exceed the
    highest value its owner has ever been observed to reach.

``fifo``
    Per-channel FIFO: deliveries on each (src, dst) channel occur in
    exactly the order of the sends (payload identity, tracked through
    crashes — the network outlives process incarnations).

``recoverability``
    Structural recovery precondition, from metadata (not by replay):
    every page's retained-copy sequence is well formed and non-empty
    with a starting copy usable by every live peer (``p0.version <=``
    the peer's vector time — Rule 3's guarantee); the restart checkpoint
    is a committed stable-storage key and no torn keys exist outside a
    checkpoint write window; the rel/acq log replication of §4.2.1
    holds pairwise — every acquire a live node logged is present in its
    grantor's rel_log with the *actual* acquire timestamp (exactly at
    quiescence, prediction <= actual while an AcqAck is in flight), so a
    crash of either side can be replayed from the surviving copy; and,
    when the buddy-replication tier is on, the replicated-copy chains
    are sane — CGC trims never outran the buddy's acks, buddies never
    hold checkpoints the protected node did not commit, and no torn
    replica record survives quiescence.

On the first violation — and on every crash — the attached
:class:`~repro.observe.invariants.recorder.FlightRecorder` state is
snapshotted into a post-mortem flight record (JSON + ASCII, see
``recorder.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.dsm.vclock import VClock
from repro.observe.invariants.recorder import FlightRecorder

__all__ = ["INVARIANTS", "Violation", "InvariantMonitor"]

#: the five checked invariant classes
INVARIANTS = ("cgc", "llt", "vclock", "fifo", "recoverability")

#: message attributes carrying vector-clock stamps (happened-before check)
_STAMP_ATTRS = ("vt", "acq_vt", "rel_vt", "diff_vt", "global_vt")


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    invariant: str  # one of INVARIANTS
    pid: int
    time: float
    step: int
    detail: str

    def render(self) -> str:
        return (
            f"{self.time * 1e3:10.4f} ms #{self.step:<7d} "
            f"[{self.invariant}] p{self.pid}: {self.detail}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "pid": self.pid,
            "time": self.time,
            "step": self.step,
            "detail": self.detail,
        }


class InvariantMonitor:
    """Continuously checks the paper-bound invariants of one cluster.

    ``scan_every`` throttles the structural recoverability scan (the one
    check that walks every host's checkpoint store) to every Nth message
    delivery; probe-triggered scans (checkpoint commits, recoveries) and
    the final :meth:`finish` scan always run. Violations are collected,
    deduplicated on (invariant, pid, detail) and capped; the first one
    snapshots a flight record (:attr:`violation_dump`), as does every
    crash (:attr:`crash_dumps`, last four kept).
    """

    def __init__(
        self,
        cluster: Any,
        ring_size: int = 256,
        scan_every: Optional[int] = None,
        max_violations: int = 64,
    ) -> None:
        if scan_every is None:
            # default cadence: every delivery on paper-scale clusters;
            # throttled on wide ones, where the scan is O(N) and
            # deliveries are O(N^2) per barrier (probe-triggered and
            # final scans still always run)
            n_default = cluster.config.num_procs
            scan_every = (
                1 if n_default < VClock.ARRAY_WIDTH else max(1, n_default // 16)
            )
        if scan_every < 1:
            raise ValueError("scan_every must be >= 1")
        self.cluster = cluster
        self.scan_every = scan_every
        self.max_violations = max_violations
        self.recorder = FlightRecorder(ring_size)
        self.violations: List[Violation] = []
        self.dropped_violations = 0
        self.checks: Dict[str, int] = {k: 0 for k in INVARIANTS}
        self.violation_dump: Optional[Dict[str, Any]] = None
        self.crash_dumps: List[Dict[str, Any]] = []
        n = cluster.config.num_procs
        #: per-channel queue of sent-but-undelivered payload identities
        self._chan: Dict[Tuple[int, int], deque] = {}
        #: highest own vt component ever observed per process; never
        #: reset (a replay cannot legitimately overtake the pre-crash
        #: observation before re-executing the same intervals)
        self._hwm: List[int] = [0] * n
        #: last observed vt per process (monotonicity baseline; reset to
        #: None on fail-stop — replay rewinds legitimately)
        self._last_vt: List[Optional[VClock]] = [None] * n
        #: per-(pid, page) oldest retained checkpoint seqno (CGC
        #: monotonicity floor)
        self._ckpt_floor: Dict[Tuple[int, Any], int] = {}
        #: per-pid high-water mark of buddy-acked replica seqnos (the
        #: trim-never-ahead-of-ack bound; survives re-buddy resets)
        self._acked_hwm: Dict[int, int] = {}
        #: pids currently inside a ckpt_write begin/end window (torn
        #: stable-store keys are legal only there or while down)
        self._ckpt_writing: Set[int] = set()
        self._seen: Set[Tuple[str, int, str]] = set()
        self._deliveries = 0
        #: page -> home pid, built lazily (regions exist only after setup)
        self._homes: Optional[Dict[Any, int]] = None
        #: home pid -> its pages (built with _homes)
        self._pages_by_home: Dict[int, List[Any]] = {}
        self._install()

    # ==================================================================
    # attachment (read-only wrapping, tracer-style chaining)
    # ==================================================================
    def _install(self) -> None:
        cluster = self.cluster
        net = cluster.network
        mon = self

        orig_send = net.send

        def send(src: int, dst: int, payload: Any, size: int,
                 category: str, ft_bytes: int = 0) -> None:
            mon._on_send(src, dst, payload)
            orig_send(src, dst, payload, size, category, ft_bytes)

        net.send = send

        orig_deliver = net._deliver

        def deliver(src: int, dst: int, payload: Any, epoch: int,
                    size: int = 0) -> None:
            mon._on_deliver(src, dst, payload)
            orig_deliver(src, dst, payload, epoch, size)

        net._deliver = deliver

        orig_probe = cluster.probe

        def probe(pid: int, kind: str, detail: str) -> None:
            mon._on_probe(pid, kind, detail)
            if orig_probe is not None:
                orig_probe(pid, kind, detail)

        cluster.probe = probe

        cluster.engine.event_tap = self.recorder.on_engine_event

    # ==================================================================
    # event handlers
    # ==================================================================
    def _on_send(self, src: int, dst: int, payload: Any) -> None:
        self._chan.setdefault((src, dst), deque()).append(payload)
        self._refresh_vclocks((src, dst))
        self._check_stamps(src, payload)
        eng = self.cluster.engine
        self.recorder.on_message("send", eng.now, eng.steps, src, dst, payload)

    def _on_deliver(self, src: int, dst: int, payload: Any) -> None:
        q = self._chan.get((src, dst))
        if not q:
            self._violate(
                "fifo", dst,
                f"delivery of {type(payload).__name__} from p{src} that "
                "was never sent on this channel",
            )
        elif q[0] is payload:
            q.popleft()
        else:
            self._violate(
                "fifo", dst,
                f"channel p{src}->p{dst} reordered: "
                f"{type(payload).__name__} delivered ahead of "
                f"{len(q)} earlier unsent-or-undelivered message(s)",
            )
            try:  # resync so one reorder doesn't cascade
                q.remove(payload)
            except ValueError:
                pass
        self.checks["fifo"] += 1
        self._refresh_vclocks((src, dst))
        self._check_stamps(src, payload)
        self._deliveries += 1
        if self._deliveries % self.scan_every == 0:
            self._scan_structural()
        eng = self.cluster.engine
        self.recorder.on_message(
            "deliver", eng.now, eng.steps, src, dst, payload
        )

    def _on_probe(self, pid: int, kind: str, detail: str) -> None:
        eng = self.cluster.engine
        self.recorder.on_probe(eng.now, eng.steps, pid, kind, detail)
        if kind == "llt":
            self._check_llt(pid)
        elif kind == "cgc":
            self._check_cgc(pid)
        elif kind == "ckpt_write":
            if detail.startswith("begin"):
                self._ckpt_writing.add(pid)
            else:
                # the commit marker lands later in this same engine
                # event (probe fires before commit_staged), so do NOT
                # scan here — the next delivery-driven scan runs after
                # the commit and must find no torn keys
                self._ckpt_writing.discard(pid)
        elif kind == "failure":
            # emitted before the kill: snapshot the victim's last state
            self._ckpt_writing.discard(pid)
            self._last_vt[pid] = None
            self.crash_dumps.append(
                self.flight_record(f"crash of p{pid} (fail-stop)")
            )
            del self.crash_dumps[:-4]
        elif kind == "recovery" and detail == "live":
            self._last_vt[pid] = None
            self._scan_structural()

    # ==================================================================
    # violation bookkeeping
    # ==================================================================
    def _violate(self, invariant: str, pid: int, detail: str) -> None:
        key = (invariant, pid, detail)
        if key in self._seen:
            return
        self._seen.add(key)
        if len(self.violations) >= self.max_violations:
            self.dropped_violations += 1
            return
        eng = self.cluster.engine
        v = Violation(invariant, pid, eng.now, eng.steps, detail)
        self.violations.append(v)
        if self.violation_dump is None:
            self.violation_dump = self.flight_record(
                f"invariant violation: [{invariant}] p{pid}: {detail}"
            )

    # ==================================================================
    # invariant 3 — vector clocks
    # ==================================================================
    def _refresh_vclocks(self, pids: Optional[Tuple[int, int]] = None) -> None:
        hwm = self._hwm
        last = self._last_vt
        hosts = self.cluster.hosts
        # Wide clusters refresh only the endpoints of the triggering
        # message: a vt component can reach a stamp only through a send
        # by its owner, and that send refreshes the owner first, so the
        # high-water marks stay exact. (Regression detection then checks
        # each host at its own next send/delivery instead of at every
        # message — the full sweep still runs in every structural scan.)
        if pids is not None and len(hosts) >= VClock.ARRAY_WIDTH:
            hosts = [hosts[p] for p in dict.fromkeys(pids)]
        for host in hosts:
            proto = host.proto
            if proto is None:
                continue
            vt = proto.vt
            pid = host.pid
            own = vt.v[pid]
            if own > hwm[pid]:
                hwm[pid] = own
            prev = last[pid]
            if prev is not None and prev is not vt and not prev.leq(vt):
                self._violate(
                    "vclock", pid,
                    f"vector time regressed: {tuple(prev)} -> {tuple(vt)}",
                )
            last[pid] = vt
        self.checks["vclock"] += 1

    def _check_stamps(self, origin: int, msg: Any) -> None:
        for attr in _STAMP_ATTRS:
            t = getattr(msg, attr, None)
            if type(t) is VClock:
                self._check_stamp(origin, type(msg).__name__, attr, t)
        notices = getattr(msg, "notices", None)
        if notices:
            for wn in notices:
                t = getattr(wn, "vt", None)
                if type(t) is VClock:
                    self._check_stamp(origin, "WriteNotice", "vt", t)
        pb = getattr(msg, "piggyback", None)
        if pb is not None:
            for _proc, tckp, _bar in pb.tckps:
                self._check_stamp(origin, "Piggyback", "tckp", tckp)

    def _check_stamp(self, origin: int, mname: str, attr: str,
                     t: VClock) -> None:
        hwm = self._hwm
        if len(t) >= VClock.ARRAY_WIDTH and not bool(
            (t.as_array() > np.asarray(hwm)).any()
        ):
            return  # vectorized screen; the loop below only names the culprit
        for j, c in enumerate(t.v):
            if c > hwm[j]:
                self._violate(
                    "vclock", origin,
                    f"{mname}.{attr} stamps component {j} at {c}, beyond "
                    f"p{j}'s highest observed vector time {hwm[j]} "
                    "(happened-before violated: the stamp names an "
                    "interval its owner never started)",
                )
                return

    # ==================================================================
    # invariant 1 — CGC (Rule 3.1), checked at every "cgc" probe
    # ==================================================================
    def _check_cgc(self, pid: int) -> None:
        host = self.cluster.hosts[pid]
        ft, mgr = host.ft, host.ckpt_mgr
        if ft is None or mgr is None:
            return
        tmin = ft.trim.tmin()
        latest = mgr.latest
        # with buddy replication, a copy is collectible only when it is
        # ALSO buddy-held: CGC gates on the replica-ack seqno ceiling, so
        # copies <= Tmin above the ceiling legitimately survive the pass
        ceil = (
            ft.cgc_seqno_ceiling()
            if hasattr(ft, "cgc_seqno_ceiling") else None
        )
        for page, copies in mgr.page_copies.items():
            # versions are non-decreasing, so copies <= Tmin form a
            # prefix; after a correct pass only its last element remains
            # (of those the ack ceiling lets the pass consider at all)
            n_le = sum(
                1 for c in copies
                if c.version.leq(tmin)
                and (ceil is None or c.ckpt_seqno <= ceil)
            )
            if n_le > 1:
                self._violate(
                    "cgc", pid,
                    f"page {tuple(page)}: {n_le} retained copies <= Tmin "
                    f"{tuple(tmin)} (and buddy-acked) after CGC — only "
                    "the maximal starting copy may remain at or below "
                    "Tmin (Rule 3.1)",
                )
            if latest is not None and copies and (
                copies[-1].ckpt_seqno != latest.seqno
            ):
                self._violate(
                    "cgc", pid,
                    f"page {tuple(page)}: newest retained copy is from "
                    f"checkpoint {copies[-1].ckpt_seqno} but the latest "
                    f"committed checkpoint is {latest.seqno} — the "
                    "restart checkpoint's copies must never be collected",
                )
            key = (pid, page)
            floor = copies[0].ckpt_seqno if copies else -1
            prev = self._ckpt_floor.get(key, -1)
            if floor < prev:
                self._violate(
                    "cgc", pid,
                    f"page {tuple(page)}: oldest retained checkpoint "
                    f"regressed from {prev} to {floor} — the retained "
                    "window must evolve only by prefix-drop or append",
                )
            if floor > prev:
                self._ckpt_floor[key] = floor
        self.checks["cgc"] += 1

    # ==================================================================
    # invariant 2 — LLT (Rules 1/2/3.2), checked at every "llt" probe
    # ==================================================================
    def _check_llt(self, pid: int) -> None:
        host = self.cluster.hosts[pid]
        ft = host.ft
        if ft is None:
            return
        trim, logs = ft.trim, ft.logs
        # Rule 3.2 exactness: no retained diff entry at/below the bound
        for page, entries in logs.diff.per_page.items():
            bound = trim.diff_bound(page)
            if bound and any(e.t[pid] <= bound for e in entries):
                self._violate(
                    "llt", pid,
                    f"diff log for page {tuple(page)} retains entries with "
                    f"T[{pid}] <= p0.v bound {bound} after LLT (Rule 3.2 "
                    "trim missed — log exceeds its trim frontier)",
                )
        # counter/entry agreement (the "log size" the bound governs)
        actual = sum(
            e.size_bytes for es in logs.diff.per_page.values() for e in es
        )
        if actual != logs.diff.volatile_bytes:
            self._violate(
                "llt", pid,
                f"diff-log byte accounting drifted: counter reports "
                f"{logs.diff.volatile_bytes}, entries sum to {actual}",
            )
        # Rule 2: rel entries per acquirer, acq entries vs own cut
        for j in range(ft.n):
            if j == pid:
                continue
            bound = trim.rel_bound(j)
            if bound and any(
                e.acq_t[j] <= bound for e in logs.rel.entries[j]
            ):
                self._violate(
                    "llt", pid,
                    f"rel_log[{j}] retains entries with acq_t[{j}] <= "
                    f"T̂ckp_{j}[{j}]={bound} after LLT (Rule 2 trim missed)",
                )
        own_bound = trim.acq_bound()
        if own_bound and any(
            e.acq_t[pid] <= own_bound
            for es in logs.acq.entries for e in es
        ):
            self._violate(
                "llt", pid,
                f"acq_log retains entries with acq_t[{pid}] <= own "
                f"Tckp[{pid}]={own_bound} after LLT (Rule 2 trim missed)",
            )
        # barrier-log analogue
        bar_from = trim.bar_keep_from()
        if bar_from and any(b.episode < bar_from for b in logs.bar):
            self._violate(
                "llt", pid,
                f"barrier log retains episodes below {bar_from} after LLT",
            )
        # Rule 1: own write notices
        wn_from = trim.wn_keep_from()
        proto = host.proto
        if proto is not None and wn_from > 1:
            stale = [
                wn for wn in proto.notices.own_after(pid, 0)
                if wn.interval < wn_from
            ]
            if stale:
                self._violate(
                    "llt", pid,
                    f"{len(stale)} own write notices from intervals below "
                    f"{wn_from} retained after LLT (Rule 1 trim missed)",
                )
        # frontier validity: trimming knowledge must lag reality — a
        # frontier ahead of reality would have trimmed entries that
        # recovery still needs
        hosts = self.cluster.hosts
        for j in range(ft.n):
            if j == pid:
                continue
            peer_mgr = hosts[j].ckpt_mgr
            if peer_mgr is None:
                continue
            known = trim.tckp[j]
            if peer_mgr.latest is None:
                if any(known.v):
                    self._violate(
                        "llt", pid,
                        f"knows checkpoint stamp {tuple(known)} for p{j}, "
                        "which has never committed a checkpoint",
                    )
            elif not known.leq(peer_mgr.latest.tckp):
                self._violate(
                    "llt", pid,
                    f"T̂ckp_{j} knowledge {tuple(known)} exceeds p{j}'s "
                    f"actual latest checkpoint "
                    f"{tuple(peer_mgr.latest.tckp)} — trim frontier ran "
                    "ahead of reality",
                )
        for page, v in trim.p0v.items():
            home_mgr = hosts[self._home_of(page)].ckpt_mgr
            if home_mgr is None:
                continue
            copies = home_mgr.page_copies.get(page)
            if copies and v > copies[0].version[pid]:
                self._violate(
                    "llt", pid,
                    f"learned p0.v[{pid}]={v} for page {tuple(page)} "
                    f"exceeds the home's actual maximal-starting-copy "
                    f"component {copies[0].version[pid]}",
                )
        self.checks["llt"] += 1

    def _home_of(self, page: Any) -> int:
        if self._homes is None:
            self._pages_homed_at(-1)  # builds both lazy maps
        return self._homes[page]

    def _pages_homed_at(self, pid: int) -> List[Any]:
        if self._homes is None:  # build the maps lazily
            self._homes = {
                p: self.cluster.regions.home_of(p)
                for p in self.cluster.regions.all_page_ids()
            }
            self._pages_by_home = {}
            for p, h in self._homes.items():
                self._pages_by_home.setdefault(h, []).append(p)
        return self._pages_by_home.get(pid, [])

    # ==================================================================
    # invariant 5 — structural recoverability
    # ==================================================================
    def _scan_structural(self, final: bool = False) -> None:
        hosts = self.cluster.hosts
        # Wide clusters: one componentwise min over every live vector
        # time screens the per-(page, peer) Rule 3 loop — a copy version
        # below the global min is below every peer's vt, so the O(pages
        # x peers) leq loop runs only when the screen fails (and then
        # emits exactly the violations the plain loop would).
        vt_floor = None
        if len(hosts) >= VClock.ARRAY_WIDTH:
            self._refresh_vclocks()  # full monotonicity sweep (see above)
            live_vts = [
                h.proto.vt.as_array()
                for h in hosts
                if h.live and not h.recovering and h.proto is not None
            ]
            if live_vts:
                vt_floor = np.minimum.reduce(live_vts)
        for host in hosts:
            mgr = host.ckpt_mgr
            if mgr is None:
                continue
            pid = host.pid
            # iterate the pages that MUST have a copy sequence here (the
            # ones homed at this node) rather than page_copies' own keys,
            # so a vanished page is a violation, not a silent skip
            for page in self._pages_homed_at(pid):
                copies = mgr.page_copies.get(page)
                if not copies:
                    self._violate(
                        "recoverability", pid,
                        f"page {tuple(page)} has no retained checkpoint "
                        "copies — no recovery could obtain a starting copy",
                    )
                    continue
                for a, b in zip(copies, copies[1:]):
                    if not (a.version.leq(b.version)
                            and a.ckpt_seqno < b.ckpt_seqno):
                        self._violate(
                            "recoverability", pid,
                            f"page {tuple(page)} retained-copy sequence "
                            f"is not monotone at checkpoints "
                            f"{a.ckpt_seqno}/{b.ckpt_seqno}",
                        )
                        break
                # Rule 3 precondition: every live peer's replay ceiling
                # (its current vt) dominates the oldest retained copy, so
                # a usable starting copy exists for any single failure
                p0 = copies[0]
                if vt_floor is not None and bool(
                    (p0.version.as_array() <= vt_floor).all()
                ):
                    continue
                for peer in hosts:
                    if (peer.pid == pid or not peer.live
                            or peer.recovering or peer.proto is None):
                        continue
                    if not p0.version.leq(peer.proto.vt):
                        self._violate(
                            "recoverability", pid,
                            f"oldest retained copy of page {tuple(page)} "
                            f"(version {tuple(p0.version)}) is not <= "
                            f"p{peer.pid}'s vector time "
                            f"{tuple(peer.proto.vt)} — a crash of "
                            f"p{peer.pid} would find no usable starting "
                            "copy (Rule 3 precondition)",
                        )
            if mgr.latest is not None:
                key = ("ckpt", mgr.latest.seqno)
                if key not in mgr.store or mgr.store.is_pending(key):
                    self._violate(
                        "recoverability", pid,
                        f"restart checkpoint {mgr.latest.seqno} is not a "
                        "committed stable-storage key",
                    )
            if (host.live and not host.recovering
                    and pid not in self._ckpt_writing):
                torn = mgr.store.pending_keys()
                if torn:
                    self._violate(
                        "recoverability", pid,
                        f"stable store holds torn keys {torn} outside any "
                        "checkpoint write window",
                    )
        # §4.2.1 replication: every acquire a live node logged must be
        # present in its (live) grantor's rel_log — a lost entry means a
        # replay of our acquires would lose a grant. Caveats that bound
        # what is checkable from metadata alone:
        #
        # * entries at or below our own checkpoint cut are dead (a
        #   restart replays nothing before the cut) and may linger in
        #   our acq_log until our next LLT pass — skipped;
        # * grantors log the acquirer's *actual* acquire timestamp: the
        #   initial entry carries the grant-time prediction (= actual on
        #   every failure-free path) and the acquirer's AcqAck replaces
        #   it with the actual vt when the two diverge (recovery-forced
        #   resends). Entries are matched by grant identity — lock id
        #   plus the *grantor's own* vt component, which both sides
        #   compute identically. A matched pair must agree: exactly once
        #   the run has quiesced (``final``), and within prediction <=
        #   actual while an AcqAck may still be in flight. A missing
        #   match is flagged only when the grantor retains an *older*
        #   grant for us: correct trimming is a prefix drop in grant
        #   order, so old-retained + new-missing is a definite loss,
        #   while all-later/empty is just the grantor's earlier trim.
        for host in hosts:
            ft = host.ft
            if ft is None or not host.live or host.recovering:
                continue
            i = host.pid
            mgr = host.ckpt_mgr
            own_cut = (
                mgr.latest.tckp[i]
                if mgr is not None and mgr.latest is not None else 0
            )
            for g, mine in enumerate(ft.logs.acq.entries):
                # cheapest rejection first: most (i, g) pairs never
                # exchanged a lock, and the pair loop is O(N^2) per scan
                if not mine or g == i:
                    continue
                peer = hosts[g]
                if (peer.ft is None or not peer.live or peer.recovering):
                    continue
                rel = peer.ft.logs.rel.entries[i]
                theirs: Dict[Tuple[int, int], List[Any]] = {}
                for e in rel:
                    theirs.setdefault(
                        (e.lock_id, e.acq_t[g]), []
                    ).append(e.acq_t)
                oldest_rel = min((e.acq_t[g] for e in rel), default=None)
                for e in mine:
                    if e.acq_t[i] <= own_cut:
                        continue  # dead: below our own restart cut
                    logged = theirs.get((e.lock_id, e.acq_t[g]))
                    if logged is not None:
                        if final:
                            if not any(t == e.acq_t for t in logged):
                                self._violate(
                                    "recoverability", i,
                                    f"p{g}'s rel_log[{i}] entry for lock "
                                    f"{e.lock_id} does not exactly match "
                                    f"the acquirer's actual timestamp "
                                    f"{tuple(e.acq_t)} after quiescence — "
                                    "the §4.2.1 pair disagrees (AcqAck "
                                    "fix-up lost)",
                                )
                                break
                        elif not any(t.leq(e.acq_t) for t in logged):
                            self._violate(
                                "recoverability", i,
                                f"p{g}'s rel_log[{i}] entry for lock "
                                f"{e.lock_id} stamps a timestamp beyond "
                                f"the acquirer's actual {tuple(e.acq_t)} "
                                "— the grantor logged an acquire that "
                                "never happened",
                            )
                            break
                        continue
                    if oldest_rel is not None and oldest_rel < e.acq_t[g]:
                        self._violate(
                            "recoverability", i,
                            f"acq_log entry (lock {e.lock_id}, acq_t "
                            f"{tuple(e.acq_t)}) granted by p{g} is missing "
                            f"from p{g}'s rel_log[{i}], which still holds "
                            f"an older grant — the §4.2.1 replicated pair "
                            "lost an entry",
                        )
                        break
        self._scan_replicas(final)
        self.checks["recoverability"] += 1

    def _scan_replicas(self, final: bool) -> None:
        """Replication-tier recoverability: trims never outran buddy
        acks, and buddy-held replica chains are sane.

        The protected side's bound uses a high-water mark of acked
        seqnos rather than the current ``acked_seqno``: re-buddying
        resets the ack counter to "nothing held" while previously-acked
        (and therefore legitimately trimmed) state waits for the full
        re-sync to be acknowledged — the genuine exposure window the
        double-fault sweep's degraded points come from, not a trim bug.
        """
        hosts = self.cluster.hosts
        for host in hosts:
            ft = host.ft
            repl = getattr(ft, "repl", None) if ft is not None else None
            if repl is None or not host.live or host.recovering:
                continue
            pid = host.pid
            mgr = host.ckpt_mgr
            latest_committed = (
                mgr.next_seqno - 1 if mgr is not None else 0
            )
            if repl.acked_seqno > latest_committed:
                self._violate(
                    "recoverability", pid,
                    f"replica ack seqno {repl.acked_seqno} exceeds the "
                    f"latest committed checkpoint {latest_committed} — "
                    "the buddy acked state that was never replicated",
                )
            hwm = max(
                self._acked_hwm.get(pid, 0), max(0, repl.acked_seqno)
            )
            self._acked_hwm[pid] = hwm
            if mgr is not None:
                for page, copies in mgr.page_copies.items():
                    if copies and copies[0].ckpt_seqno > hwm:
                        self._violate(
                            "recoverability", pid,
                            f"page {tuple(page)}: oldest retained copy is "
                            f"from checkpoint {copies[0].ckpt_seqno}, "
                            f"beyond the highest buddy-acked seqno {hwm} "
                            "— CGC trimmed state no replica ever held",
                        )
                        break
        # the buddy's side of each chain
        for holder in hosts:
            if not holder.live:
                continue
            rstore = getattr(holder, "replica_store", None)
            if rstore is None:
                continue
            for protected in rstore.protected_pids():
                st = rstore.store_for(protected)
                p_host = hosts[protected]
                p_live = p_host.live and not p_host.recovering
                p_latest = (
                    p_host.ckpt_mgr.next_seqno - 1
                    if p_live and p_host.ckpt_mgr is not None else None
                )
                for key in st.keys():
                    if st.is_pending(key):
                        # torn records are legal mid-transfer and after
                        # a sender crash; only a quiesced run with the
                        # protected node alive must have none left (the
                        # run can end with the final commit still in
                        # flight — a drained network is what makes the
                        # record definitively torn rather than pending)
                        if (final and p_live and p_host.finished
                                and not self.cluster.network.inflight_msgs):
                            self._violate(
                                "recoverability", holder.pid,
                                f"replica record {key} of p{protected} "
                                "is still torn (begin without commit) "
                                "after the run quiesced",
                            )
                        continue
                    if p_latest is not None and key[1] > p_latest:
                        self._violate(
                            "recoverability", holder.pid,
                            f"holds a committed replica of "
                            f"p{protected}'s checkpoint {key[1]}, which "
                            f"p{protected} never committed "
                            f"(latest {p_latest})",
                        )

    # ==================================================================
    # lifecycle / reporting
    # ==================================================================
    def finish(self) -> List[Violation]:
        """Final full check after the run; returns all violations."""
        self._refresh_vclocks()
        self._scan_structural(final=True)
        return self.violations

    def flight_record(self, reason: str) -> Dict[str, Any]:
        """Assemble a post-mortem flight record at the current instant."""
        eng = self.cluster.engine
        traffic = self.cluster.network.traffic
        return {
            "reason": reason,
            "time": eng.now,
            "step": eng.steps,
            "violations": [v.to_dict() for v in self.violations],
            "dropped_violations": self.dropped_violations,
            "checks": dict(self.checks),
            "nodes": [self._node_snapshot(h) for h in self.cluster.hosts],
            "cluster": {
                "crashes": self.cluster.crashes,
                "recoveries": self.cluster.recoveries,
                "traffic_bytes": traffic.total_bytes,
                "traffic_msgs": traffic.total_msgs,
                "inflight_msgs": self.cluster.network.inflight_msgs,
            },
            "events": self.recorder.dump(),
            "events_recorded": self.recorder.recorded,
        }

    @staticmethod
    def _node_snapshot(host: Any) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "pid": host.pid,
            "live": host.live,
            "recovering": host.recovering,
            "finished": host.finished,
            "crashes": host.crashed_count,
            "recoveries": host.recovered_count,
            "queued": len(host.queued),
            "vt": None,
        }
        if host.proto is not None:
            out["vt"] = list(host.proto.vt)
        mgr = host.ckpt_mgr
        if mgr is not None:
            out["retained_seqnos"] = mgr.retained_seqnos
            out["window_size"] = mgr.window_size
            out["latest_ckpt"] = (
                mgr.latest.seqno if mgr.latest is not None else None
            )
        ft = host.ft
        if ft is not None:
            out["log_volatile_bytes"] = ft.logs.diff.volatile_bytes
            out["log_saved_bytes"] = ft.logs.diff.saved_bytes
            out["rel_entries"] = ft.logs.rel.count()
            out["acq_entries"] = ft.logs.acq.count()
            out["checkpoints_taken"] = ft.stats.checkpoints_taken
        return out

    def render_summary(self) -> str:
        """One-screen check/violation summary for the CLI."""
        lines = [f"{'invariant':<14} {'checks':>8}   {'violations':>10}"]
        for k in INVARIANTS:
            n = sum(1 for v in self.violations if v.invariant == k)
            lines.append(f"{k:<14} {self.checks[k]:>8}   {n:>10}")
        total = len(self.violations)
        verdict = "ALL INVARIANTS HELD" if not total else (
            f"{total} VIOLATION(S)"
            + (f" (+{self.dropped_violations} dropped)"
               if self.dropped_violations else "")
        )
        lines.append(f"{'total':<14} {sum(self.checks.values()):>8}   {verdict}")
        return "\n".join(lines)
