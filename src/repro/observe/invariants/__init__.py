"""Online invariant monitoring: paper-bound runtime assertions plus a
bounded crash flight recorder (see ``monitor.py`` for the catalog)."""

from repro.observe.invariants.monitor import (
    INVARIANTS,
    InvariantMonitor,
    Violation,
)
from repro.observe.invariants.recorder import (
    FlightRecorder,
    render_flight_record,
    validate_flight_record,
    write_flight_record,
)
from repro.observe.invariants.seeding import SEEDS, seed_violation

__all__ = [
    "INVARIANTS",
    "InvariantMonitor",
    "Violation",
    "FlightRecorder",
    "render_flight_record",
    "validate_flight_record",
    "write_flight_record",
    "SEEDS",
    "seed_violation",
]
