"""Bounded crash flight recorder: the last N engine events, probe
firings and message send/deliver records, dumpable as a post-mortem.

The recorder is a fixed-size ring (``collections.deque`` with
``maxlen``), so it is O(1) per event and safe to leave attached for a
whole campaign. Records are raw tuples while the run is live; they are
normalized to JSON-friendly dicts only when a dump is requested (on an
invariant violation or a crash), which keeps the hot path to one deque
append. Engine events store the callable itself and resolve a label
lazily at dump time.

Record shapes (first element is the record kind):

* ``("engine", time, step, fn)`` — one engine event about to execute
* ``("probe", time, step, pid, kind, detail)`` — a cluster probe firing
* ``("send"|"deliver", time, step, src, dst, msg_type, category)``

A flight record (assembled by the monitor) is a dict with ``reason``,
``time``/``step``, the violation list, per-invariant check counters, a
per-node state snapshot and the normalized event ring; see
:func:`validate_flight_record` for the required shape.
"""

from __future__ import annotations

import functools
import json
import os
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.render import Table

__all__ = [
    "FlightRecorder",
    "render_flight_record",
    "validate_flight_record",
    "write_flight_record",
]


def _describe(fn: Any) -> str:
    """Best-effort label for an engine event callable.

    Continuations are ``partial(engine._step, proc, value)`` — name the
    process; network deliveries and other lambdas fall back to their
    qualified name.
    """
    if isinstance(fn, functools.partial):
        name = getattr(fn.func, "__qualname__", repr(fn.func))
        for a in fn.args:
            pname = getattr(a, "name", None)
            if isinstance(pname, str):
                return f"{name}({pname})"
        return name
    return getattr(fn, "__qualname__", repr(fn))


class FlightRecorder:
    """Ring buffer of recent execution history (see module docstring)."""

    def __init__(self, ring_size: int = 256) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.ring_size = ring_size
        self.ring: deque = deque(maxlen=ring_size)
        self.recorded = 0

    # -- producers (hot path: one append each) --------------------------
    def on_engine_event(self, time: float, step: int, fn: Callable) -> None:
        self.ring.append(("engine", time, step, fn))
        self.recorded += 1

    def on_probe(self, time: float, step: int, pid: int, kind: str,
                 detail: str) -> None:
        self.ring.append(("probe", time, step, pid, kind, detail))
        self.recorded += 1

    def on_message(self, which: str, time: float, step: int, src: int,
                   dst: int, msg: Any) -> None:
        self.ring.append(
            (which, time, step, src, dst,
             type(msg).__name__, getattr(msg, "category", "?"))
        )
        self.recorded += 1

    # -- dump ------------------------------------------------------------
    def dump(self) -> List[Dict[str, Any]]:
        """Normalize the current ring contents (oldest first)."""
        out: List[Dict[str, Any]] = []
        for rec in self.ring:
            kind = rec[0]
            if kind == "engine":
                out.append(
                    {"rec": "engine", "time": rec[1], "step": rec[2],
                     "event": _describe(rec[3])}
                )
            elif kind == "probe":
                out.append(
                    {"rec": "probe", "time": rec[1], "step": rec[2],
                     "pid": rec[3], "kind": rec[4], "detail": rec[5]}
                )
            else:  # send | deliver
                out.append(
                    {"rec": kind, "time": rec[1], "step": rec[2],
                     "src": rec[3], "dst": rec[4], "msg": rec[5],
                     "category": rec[6]}
                )
        return out


# ======================================================================
# flight-record serialization / rendering / validation
# ======================================================================

def write_flight_record(path: str, record: Dict[str, Any]) -> None:
    """Write one flight record as a JSON file (dirs created as needed)."""
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_flight_record(record: Dict[str, Any], tail: int = 30) -> str:
    """ASCII post-mortem: reason, violations, node states, event tail."""
    lines = [
        f"FLIGHT RECORD — {record['reason']}",
        f"at virtual time {record['time'] * 1e3:.4f} ms, "
        f"engine step {record['step']}",
        "",
    ]
    violations = record.get("violations", [])
    if violations:
        lines.append(f"{len(violations)} invariant violation(s):")
        for v in violations:
            lines.append(
                f"  [{v['invariant']}] p{v['pid']} @ step {v['step']}: "
                f"{v['detail']}"
            )
    else:
        lines.append("no invariant violations (crash post-mortem)")
    lines.append("")

    nodes = Table(
        "node state",
        ["pid", "live", "rec", "fin", "vt", "ckpts", "retained",
         "log B", "rel/acq"],
    )
    for n in record.get("nodes", []):
        nodes.add(
            n["pid"],
            "y" if n["live"] else "n",
            "y" if n["recovering"] else "n",
            "y" if n["finished"] else "n",
            tuple(n["vt"]) if n.get("vt") is not None else "-",
            n.get("checkpoints_taken", "-"),
            n.get("retained_seqnos", "-"),
            n.get("log_volatile_bytes", "-"),
            f"{n.get('rel_entries', '-')}/{n.get('acq_entries', '-')}",
        )
    lines.append(nodes.render())
    lines.append("")

    events = record.get("events", [])
    shown = events[-tail:]
    lines.append(
        f"last {len(shown)} of {len(events)} ring events "
        f"({record.get('events_recorded', len(events))} recorded in total):"
    )
    for e in shown:
        stamp = f"{e['time'] * 1e3:10.4f} ms #{e['step']:<7d}"
        if e["rec"] == "engine":
            lines.append(f"  {stamp} engine   {e['event']}")
        elif e["rec"] == "probe":
            lines.append(
                f"  {stamp} probe    p{e['pid']} {e['kind']} {e['detail']}"
            )
        else:
            lines.append(
                f"  {stamp} {e['rec']:<8} p{e['src']}->p{e['dst']} "
                f"{e['msg']} ({e['category']})"
            )
    return "\n".join(lines)


def validate_flight_record(record: Dict[str, Any]) -> List[str]:
    """Structural checks on a flight record; empty list = valid."""
    errors: List[str] = []
    for key in ("reason", "time", "step", "violations", "checks", "nodes",
                "cluster", "events"):
        if key not in record:
            errors.append(f"missing key {key!r}")
    if errors:
        return errors
    for i, v in enumerate(record["violations"]):
        for key in ("invariant", "pid", "time", "step", "detail"):
            if key not in v:
                errors.append(f"violation {i} missing {key!r}")
    for i, e in enumerate(record["events"]):
        if e.get("rec") not in ("engine", "probe", "send", "deliver"):
            errors.append(f"event {i} has unknown rec {e.get('rec')!r}")
        elif "time" not in e or "step" not in e:
            errors.append(f"event {i} missing time/step")
    for i, n in enumerate(record["nodes"]):
        if "pid" not in n or "live" not in n:
            errors.append(f"node {i} missing pid/live")
    if not isinstance(record["checks"], dict):
        errors.append("checks is not a mapping")
    try:
        json.dumps(record)
    except (TypeError, ValueError) as exc:
        errors.append(f"not JSON-serializable: {exc}")
    return errors
