"""Seeded invariant violations: deliberate protocol sabotage for
proving the monitor catches real bugs.

Each seed installs a minimal *double* — a wrapped method that makes the
fault-tolerance layer misbehave in exactly one way the paper forbids —
and nothing else. The seeded-violation tests (and the CLI's
``--seed-violation`` flag) then assert that the
:class:`~repro.observe.invariants.monitor.InvariantMonitor` flags the
corresponding invariant class and produces a valid flight record. A
monitor that stays silent on these runs is broken.

``seed_violation(cluster, kind)`` must be called *after* the monitor is
attached: the ``fifo`` seed wraps ``network._deliver`` and relies on
sitting *outside* the monitor's own wrapper, so the reorder happens
before the monitor's observation point (an inner wrapper would reorder
invisibly). Seeds that hook the FT layer wrap ``cluster._install_ft``
because the per-host managers do not exist until setup.

Some seeds corrupt protocol state the run itself depends on (``vclock``
zeroes a vector time; ``recoverability`` deletes checkpoint copies), so
the run may legitimately die after the violation is detected — callers
catch exceptions and assert the violation was recorded first.
"""

from __future__ import annotations

from typing import Any

__all__ = ["SEEDS", "seed_violation"]


def _seed_cgc(cluster: Any) -> None:
    """Break Rule 3.1: CGC passes never collect anything, so stale
    copies at or below Tmin pile up in every page's retained window."""
    orig_install = cluster._install_ft

    def install(host: Any) -> None:
        orig_install(host)
        host.ckpt_mgr.collect = lambda tmin, seqno_ceiling=None: 0

    cluster._install_ft = install


def _seed_llt(cluster: Any) -> None:
    """Break Rules 2/3.2: LLT passes skip the diff-log and rel-log
    trims, so entries at or below the derived bounds are retained."""
    orig_install = cluster._install_ft

    def install(host: Any) -> None:
        orig_install(host)
        host.ft.logs.diff.trim_page = lambda page, creator, min_keep: 0
        host.ft.logs.rel.trim = lambda acquirer, tckp_component: 0

    cluster._install_ft = install


def _seed_vclock(cluster: Any) -> None:
    """Break vt monotonicity: after p1 completes its first barrier its
    vector time is zeroed — the next send/delivery refresh sees the
    regression. The run usually cannot survive this corruption; callers
    must tolerate a crash after detection."""
    orig_install = cluster._install_ft
    state = {"armed": True}

    def install(host: Any) -> None:
        orig_install(host)
        if host.pid != 1:
            return
        proto = host.proto
        orig_complete = proto._complete_barrier

        def complete(release: Any) -> None:
            orig_complete(release)
            if state["armed"]:
                state["armed"] = False
                proto.vt = type(proto.vt).zero(proto.n)

        proto._complete_barrier = complete

    cluster._install_ft = install


def _seed_fifo(cluster: Any) -> None:
    """Break per-channel FIFO: on channel p1->p0, the first delivery
    that has another message already in flight behind it is held back
    and delivered after that follower — a one-time adjacent swap. Only
    holding when a follower is guaranteed to arrive keeps the sabotaged
    run from deadlocking on a request that never lands. Installed
    OUTSIDE the monitor's wrapper (seed after attach), so the monitor
    observes the reordered stream."""
    net = cluster.network
    orig_send = net.send
    orig_deliver = net._deliver
    chan = (1, 0)
    state: dict = {"inflight": 0, "held": None, "done": False}

    def send(src: int, dst: int, payload: Any, size: int,
             category: str, ft_bytes: int = 0) -> None:
        if (src, dst) == chan:
            state["inflight"] += 1
        orig_send(src, dst, payload, size, category, ft_bytes)

    def deliver(src: int, dst: int, payload: Any, epoch: int,
                size: int = 0) -> None:
        if (src, dst) == chan:
            state["inflight"] -= 1
            if (state["held"] is None and not state["done"]
                    and state["inflight"] >= 1):
                state["held"] = (payload, epoch, size)
                return
            if state["held"] is not None:
                state["done"] = True
                orig_deliver(src, dst, payload, epoch, size)
                h_payload, h_epoch, h_size = state["held"]
                state["held"] = None
                orig_deliver(src, dst, h_payload, h_epoch, h_size)
                return
        orig_deliver(src, dst, payload, epoch, size)

    net.send = send
    net._deliver = deliver


def _seed_recoverability(cluster: Any) -> None:
    """Break the Rule 3 precondition: right after p0's first checkpoint
    commit, every retained copy of one of its pages is discarded — no
    recovery could obtain a starting copy for it. Corrupts state a later
    recovery would need; callers must tolerate a crash after
    detection."""
    orig_install = cluster._install_ft
    state = {"armed": True}

    def install(host: Any) -> None:
        orig_install(host)
        if host.pid != 0:
            return
        mgr = host.ckpt_mgr
        orig_commit = mgr.commit_staged

        def commit(*args: Any, **kwargs: Any) -> Any:
            out = orig_commit(*args, **kwargs)
            if state["armed"] and mgr.page_copies:
                state["armed"] = False
                # drop the key, not just the copies: an empty list would
                # trip run_cgc in the same engine event, before any
                # monitor scan could observe the breakage
                page = next(iter(mgr.page_copies))
                del mgr.page_copies[page]
            return out

        mgr.commit_staged = commit

    cluster._install_ft = install


SEEDS = {
    "cgc": _seed_cgc,
    "llt": _seed_llt,
    "vclock": _seed_vclock,
    "fifo": _seed_fifo,
    "recoverability": _seed_recoverability,
}


def seed_violation(cluster: Any, kind: str) -> None:
    """Sabotage ``cluster`` so that invariant class ``kind`` is violated.

    Call after attaching the monitor and before ``cluster.run``.
    """
    try:
        SEEDS[kind](cluster)
    except KeyError:
        raise ValueError(
            f"unknown seed {kind!r}; one of {sorted(SEEDS)}"
        ) from None
