"""Tail-latency percentile engine (DESIGN.md §12).

Log-bucketed, deterministic, mergeable virtual-time histograms feeding
the run report's p50/p90/p99/p999 tables. See :mod:`.engine`.
"""

from repro.observe.latency.engine import (
    DEFAULT_BASE,
    DEFAULT_GROWTH,
    PERCENTILE_LABELS,
    PERCENTILES,
    LatencyHistogram,
    exact_percentile,
)

__all__ = [
    "DEFAULT_BASE",
    "DEFAULT_GROWTH",
    "PERCENTILE_LABELS",
    "PERCENTILES",
    "LatencyHistogram",
    "exact_percentile",
]
