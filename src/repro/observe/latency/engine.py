"""Log-bucketed latency histograms: deterministic, mergeable, bounded error.

The percentile engine behind the run report's tail-latency tables
(DESIGN.md §12). An HDR-histogram-style structure specialised for the
simulator's *virtual-time* durations:

* **log buckets** — bucket ``i`` covers ``(base·g^(i-1), base·g^i]``
  for growth factor ``g``; a value's bucket index is a pure function of
  the value, so the histogram state is a pure function of the *multiset*
  of observations (insertion order cannot matter);
* **bounded relative error** — a percentile estimate is the upper bound
  of the bucket holding the rank-``ceil(p/100·n)`` smallest observation,
  clamped to the exact observed maximum. For any true percentile value
  ``t > base`` the estimate ``e`` satisfies ``t <= e <= t·g``, i.e.
  relative error ``<= g - 1`` (property-tested); values at or below
  ``base`` (one virtual nanosecond by default) carry absolute error
  ``<= base``, and exact zeros are reported exactly;
* **mergeable** — bucket counts add elementwise, so per-node histograms
  merge into a cluster-wide distribution without re-observing anything
  (``merge(h1, h2)`` equals the histogram of the concatenated samples,
  also property-tested).

Everything here is registry-private arithmetic: observing a value reads
nothing from the simulation and mutates only this object, preserving the
observability layer's read-only guarantee. ``sum`` is the one field
accumulated in floating point (and therefore nominally insertion-order
sensitive in its last bits); counts, min/max and every percentile
estimate are exactly order-invariant.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Tuple

__all__ = [
    "LatencyHistogram",
    "DEFAULT_GROWTH",
    "DEFAULT_BASE",
    "PERCENTILES",
    "exact_percentile",
]

#: default bucket growth factor: 2^(1/4) per bucket, so estimates carry
#: at most ~18.9 % relative error and a 9-decade range (1 ns .. 10 s of
#: virtual time) needs only ceil(log_g(1e10)) = 120 bucket slots
DEFAULT_GROWTH = 2.0 ** 0.25

#: smallest resolvable duration: one virtual nanosecond. Everything in
#: (0, base] lands in bucket 0 with absolute error <= base.
DEFAULT_BASE = 1e-9

#: the run report's standard percentile columns
PERCENTILES: Tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)

#: percentile -> report column label ("p999" for 99.9)
PERCENTILE_LABELS: Dict[float, str] = {
    50.0: "p50", 90.0: "p90", 99.0: "p99", 99.9: "p999",
}


def _rank(p: float, n: int) -> int:
    """Rank (1-based) of the p-th percentile in n sorted samples."""
    return max(1, min(n, math.ceil(p / 100.0 * n)))


def exact_percentile(values: List[float], p: float) -> float:
    """Exact percentile of a sample list under the engine's rank rule.

    The reference the property tests compare bucket estimates against:
    the rank-``ceil(p/100·n)`` smallest value.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[_rank(p, len(ordered)) - 1]


class LatencyHistogram:
    """Sparse log-bucketed distribution of non-negative durations."""

    __slots__ = ("name", "node", "base", "growth", "_log_g", "buckets",
                 "zero_count", "count", "total", "min", "max")

    def __init__(
        self,
        name: str = "",
        node: int = -1,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base must be positive: {base}")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1: {growth}")
        self.name = name
        self.node = node
        self.base = base
        self.growth = growth
        self._log_g = math.log(growth)
        #: sparse {bucket index: count}; index i covers (ub(i-1), ub(i)]
        self.buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    # bucket geometry
    # ------------------------------------------------------------------
    def upper_bound(self, index: int) -> float:
        return self.base * self.growth ** index

    def bucket_index(self, value: float) -> int:
        """Smallest ``i >= 0`` with ``upper_bound(i) >= value``.

        Computed via a log then corrected by (at most one step of)
        direct comparison, so the mapping is exact despite float
        rounding in ``log`` — the monotonicity the error bound and the
        order-invariance guarantee both rest on.
        """
        if value <= self.base:
            return 0
        i = max(0, math.ceil(math.log(value / self.base) / self._log_g))
        while self.upper_bound(i) < value:
            i += 1
        while i > 0 and self.upper_bound(i - 1) >= value:
            i -= 1
        return i

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            # virtual durations are differences of a monotone clock;
            # clamp defensive float dust rather than corrupting buckets
            value = 0.0
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zero_count += 1
            return
        i = self.bucket_index(value)
        self.buckets[i] = self.buckets.get(i, 0) + 1

    def merge_from(self, other: "LatencyHistogram") -> None:
        """Add ``other``'s counts into this histogram (elementwise)."""
        if (other.base, other.growth) != (self.base, self.growth):
            raise ValueError(
                f"cannot merge histograms with different geometry: "
                f"base {self.base} vs {other.base}, "
                f"growth {self.growth} vs {other.growth}"
            )
        for i, c in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + c
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    @classmethod
    def merged(
        cls, parts: Iterable["LatencyHistogram"], name: str = "", node: int = -1
    ) -> "LatencyHistogram":
        out = None
        for h in parts:
            if out is None:
                out = cls(name or h.name, node, base=h.base, growth=h.growth)
            out.merge_from(h)
        return out if out is not None else cls(name, node)

    # ------------------------------------------------------------------
    # percentiles
    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """Estimate of the p-th percentile (documented error bounds)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        rank = _rank(p, self.count)
        cum = self.zero_count
        if cum >= rank:
            return 0.0
        for i in sorted(self.buckets):
            cum += self.buckets[i]
            if cum >= rank:
                est = self.upper_bound(i)
                # exact observed extrema always dominate bucket bounds
                return min(max(est, self.min), self.max)
        return self.max  # unreachable unless counts were corrupted

    def count_over(self, threshold: float) -> int:
        """Observations estimated to exceed ``threshold`` (SLO bad count).

        Exact for thresholds on bucket boundaries; a threshold inside a
        bucket counts that whole bucket as over, so the estimate is
        *conservative* (never under-reports badness) with the engine's
        usual relative-error bound. Exact zeros are never "over" a
        non-negative threshold.
        """
        if threshold < 0.0:
            return self.count
        if self.count and threshold >= self.max:
            return 0
        over = 0
        for i, c in self.buckets.items():
            # bucket i covers (ub(i-1), ub(i)]; entirely at or below the
            # threshold only when its upper bound is
            if self.upper_bound(i) > threshold:
                over += c
        return over

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for p in PERCENTILES:
            out[PERCENTILE_LABELS[p]] = self.percentile(p)
        return out

    # ------------------------------------------------------------------
    # serialization (run-report "lat" records, analytics merging)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base,
            "growth": self.growth,
            "zero": self.zero_count,
            "buckets": [[i, self.buckets[i]] for i in sorted(self.buckets)],
            "sum": self.total,
            **self.summary(),
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], name: str = "", node: int = -1
    ) -> "LatencyHistogram":
        h = cls(name, node, base=data["base"], growth=data["growth"])
        h.zero_count = int(data.get("zero", 0))
        h.buckets = {int(i): int(c) for i, c in data.get("buckets", ())}
        h.count = int(data["count"])
        h.total = float(data.get("sum", 0.0))
        if h.count:
            h.min = float(data["min"])
            h.max = float(data["max"])
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram({self.name!r}, node={self.node}, "
            f"count={self.count}, p99={self.percentile(99.0):.3g})"
        )
