"""Metrics registry: counters, gauges and histograms with per-node series.

The registry is the single collection point of the observability layer
(DESIGN.md §7). Three metric kinds exist:

``Counter``
    A monotonically increasing value (bytes trimmed, checkpoints taken).
    Incremented at instrumentation sites; sampled into a time series by
    the sampler.

``Gauge``
    A value read on demand, usually through a callback closing over live
    protocol/FT state (volatile log bytes, retained checkpoints). Gauges
    make most of the instrumentation *passive*: the instrumented layers
    keep their existing counters and the registry merely reads them at
    sample time, so a disabled registry costs nothing on the hot path.

``Histogram``
    A distribution of observed values (fetch latency, lock wait) with
    fixed bucket bounds plus count/sum/min/max. Histograms are exported
    in the run-report summary rather than sampled over time.

``LatencyHistogram``
    A log-bucketed percentile distribution (DESIGN.md §12): deterministic
    bucket placement, bounded-relative-error p50/p90/p99/p999, and
    elementwise-mergeable counts so per-node distributions roll up into
    cluster-wide ones. Created through :meth:`MetricsRegistry.latency`.

Determinism guarantee
---------------------
Every registry operation only *reads* simulation state or mutates
registry-private storage. Nothing here schedules events, sends messages,
charges CPU time or touches vector clocks, so attaching a registry (and
sampling it) can never perturb a run — the golden determinism test pins
this.

Disabled path
-------------
``MetricsRegistry(enabled=False)`` hands out shared null metric objects
whose mutators are no-ops and records no series; instrumentation sites
additionally guard with ``obs is not None`` so a run without an observer
pays at most one attribute check per event.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.observe.latency import LatencyHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: histogram bounds for simulated wait/latency seconds (20us .. 100ms)
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 1e-1,
)


class Counter:
    """Monotonically increasing metric."""

    __slots__ = ("name", "node", "value")

    def __init__(self, name: str, node: int) -> None:
        self.name = name
        self.node = node
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; cannot add {amount}"
            )
        self.value += amount


class Gauge:
    """Point-in-time value, read through ``fn`` or set explicitly."""

    __slots__ = ("name", "node", "fn", "_value")

    def __init__(
        self, name: str, node: int, fn: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.node = node
        self.fn = fn
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    __slots__ = ("name", "node", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self,
        name: str,
        node: int,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.node = node
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


class _NullLatency(LatencyHistogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


#: shared no-op instances handed out by a disabled registry
NULL_COUNTER = _NullCounter("null", -1)
NULL_GAUGE = _NullGauge("null", -1)
NULL_HISTOGRAM = _NullHistogram("null", -1, bounds=())
NULL_LATENCY = _NullLatency("null", -1)

#: node id used for cluster-wide (not per-process) metrics
CLUSTER_NODE = -1


class MetricsRegistry:
    """Registry of named per-node metrics plus their sampled series.

    Metrics are keyed by ``(name, node)``; ``node`` is a process id or
    :data:`CLUSTER_NODE` for cluster-wide quantities. ``sample(x)``
    snapshots every counter and gauge into ``series[(name, node)]`` as an
    ``(x, value)`` point — ``x`` is virtual time for the cadence sampler,
    but any monotone axis works (Figure 4 records against checkpoint
    number via :meth:`record`).
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        window_s: Optional[float] = None,
    ) -> None:
        self.enabled = enabled
        self._counters: Dict[Tuple[str, int], Counter] = {}
        self._gauges: Dict[Tuple[str, int], Gauge] = {}
        self._histograms: Dict[Tuple[str, int], Histogram] = {}
        self._latencies: Dict[Tuple[str, int], LatencyHistogram] = {}
        self.series: Dict[Tuple[str, int], List[Tuple[float, float]]] = {}
        self.samples_taken = 0
        # windowed collection (DESIGN.md §13): when both a clock callback
        # and a window width are set, latency() transparently hands out
        # WindowedLatency instances so every existing instrumentation
        # site also rotates per-window — the clock only *reads* virtual
        # time, preserving the layer's read-only guarantee
        self.clock = clock
        self.window_s = window_s

    def enable_windows(
        self, clock: Callable[[], float], window_s: float
    ) -> None:
        """Turn on windowed latency collection for metrics created later.

        Must run before the first ``latency()`` call for any op class
        that should rotate (histograms are interned; already-created
        ones keep their kind).
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s}")
        self.clock = clock
        self.window_s = window_s

    # ------------------------------------------------------------------
    # metric factories (interned by (name, node))
    # ------------------------------------------------------------------
    def counter(self, name: str, node: int = CLUSTER_NODE) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        key = (name, node)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, node)
        return c

    def gauge(
        self,
        name: str,
        node: int = CLUSTER_NODE,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        key = (name, node)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, node, fn)
        elif fn is not None:
            g.fn = fn
        return g

    def histogram(
        self,
        name: str,
        node: int = CLUSTER_NODE,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        key = (name, node)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, node, bounds)
        return h

    def latency(self, name: str, node: int = CLUSTER_NODE) -> LatencyHistogram:
        """Log-bucketed percentile distribution (interned by (name, node))."""
        if not self.enabled:
            return NULL_LATENCY
        key = (name, node)
        h = self._latencies.get(key)
        if h is None:
            if self.clock is not None and self.window_s is not None:
                from repro.observe.slo.windows import WindowedLatency

                h = WindowedLatency(
                    name, node, clock=self.clock, window_s=self.window_s
                )
            else:
                h = LatencyHistogram(name, node)
            self._latencies[key] = h
        return h

    # ------------------------------------------------------------------
    # series
    # ------------------------------------------------------------------
    def record(self, name: str, node: int, x: float, value: float) -> None:
        """Append one ``(x, value)`` point to a series directly."""
        if not self.enabled:
            return
        self.series.setdefault((name, node), []).append((x, float(value)))

    def sample(self, x: float) -> None:
        """Snapshot every counter and gauge at axis position ``x``."""
        if not self.enabled:
            return
        self.samples_taken += 1
        series = self.series
        for key, c in self._counters.items():
            series.setdefault(key, []).append((x, c.value))
        for key, g in self._gauges.items():
            series.setdefault(key, []).append((x, g.read()))

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        keys = set(self.series)
        keys.update(self._counters, self._gauges, self._histograms,
                    self._latencies)
        return sorted({name for name, _ in keys})

    def series_by_name(self, name: str) -> Dict[int, List[Tuple[float, float]]]:
        """``{node: points}`` for every node with a series under ``name``."""
        return {
            node: pts
            for (n, node), pts in sorted(self.series.items())
            if n == name
        }

    def get_series(self, name: str, node: int) -> List[Tuple[float, float]]:
        return self.series.get((name, node), [])

    def histograms_by_name(self, name: str) -> Dict[int, Histogram]:
        return {
            node: h
            for (n, node), h in sorted(self._histograms.items())
            if n == name
        }

    def histogram_names(self) -> List[str]:
        return sorted({name for name, _ in self._histograms})

    def latencies_by_name(self, name: str) -> Dict[int, LatencyHistogram]:
        return {
            node: h
            for (n, node), h in sorted(self._latencies.items())
            if n == name
        }

    def latency_names(self) -> List[str]:
        return sorted({name for name, _ in self._latencies})

    def merged_latency(self, name: str) -> Optional[LatencyHistogram]:
        """All nodes' distributions under ``name`` merged into one
        cluster-wide histogram (:data:`CLUSTER_NODE`); None if absent."""
        parts = self.latencies_by_name(name).values()
        return (
            LatencyHistogram.merged(parts, name=name, node=CLUSTER_NODE)
            if parts else None
        )

    def merged_windows(self, name: str) -> Dict[int, LatencyHistogram]:
        """Cluster-merged per-window histograms under ``name``.

        Empty when windowed collection is off (or nothing was observed);
        the input to the SLO engine and the degradation timeline.
        """
        from repro.observe.slo.windows import WindowedLatency, merge_windowed

        parts = [
            h
            for h in self.latencies_by_name(name).values()
            if isinstance(h, WindowedLatency)
        ]
        return merge_windowed(parts, name=name, node=CLUSTER_NODE)
