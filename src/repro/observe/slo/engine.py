"""Declarative latency SLOs with multi-window burn-rate evaluation.

An *objective* is a declarative bound on a latency op class::

    p99(lat.request) < 5ms

meaning: at most ``100 - 99 = 1 %`` of requests may exceed 5 ms of
virtual time — the percentile defines the **error budget** (fraction of
requests allowed over the threshold), the threshold defines what "bad"
means. Objectives are evaluated over the windowed histograms collected
by :class:`~repro.observe.slo.windows.WindowedLatency`:

* a window's **bad fraction** is ``count_over(threshold) / count``
  (conservative per the engine's documented boundary bias);
* its **burn rate** is ``bad fraction / budget`` — 1.0 means the run is
  spending its error budget exactly as fast as the objective allows,
  >1 means faster;
* a **burn rule** fires when the burn rate over a *long* span of recent
  windows AND over a *short* span both exceed the rule's threshold —
  the SRE multi-window pattern: the long window proves the burn is
  sustained, the short window proves it is still happening (so a
  recovered run stops alerting).

The defaults are scaled to the simulator's short runs (a handful to a
few dozen windows, not hours of wall time): a *fast* rule catching
order-of-magnitude budget burn over 3 windows and a *slow* rule
catching sustained 2x burn over 8. Spans are clamped to the run length
so short smoke runs still evaluate.

Everything here is pure post-processing of histogram counts — no
simulation state is read, so SLO evaluation can run offline against a
loaded report artifact (the ``repro report`` dashboard does).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.observe.latency.engine import LatencyHistogram

__all__ = [
    "Objective",
    "BurnRule",
    "DEFAULT_RULES",
    "SloResult",
    "parse_slo",
    "parse_duration",
    "evaluate_slo",
    "evaluate_report_slos",
]

#: ``p<pct>(<metric>) < <duration>``
_SPEC_RE = re.compile(
    r"^\s*p(?P<pct>\d+(?:\.\d+)?)\s*\(\s*(?P<metric>[\w.\-]+)\s*\)"
    r"\s*<\s*(?P<threshold>\S+)\s*$"
)

_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}


def parse_duration(text: str) -> float:
    """``"5ms"``/``"250us"``/``"1.5s"``/``"3e-3"`` -> seconds."""
    m = re.match(r"^(?P<num>[0-9.eE+\-]+)\s*(?P<unit>[a-z]*)$", text.strip())
    if not m:
        raise ValueError(f"unparseable duration: {text!r}")
    unit = m.group("unit")
    if unit and unit not in _UNITS:
        raise ValueError(f"unknown duration unit {unit!r} in {text!r}")
    try:
        value = float(m.group("num"))
    except ValueError:
        raise ValueError(f"unparseable duration: {text!r}") from None
    return value * _UNITS.get(unit, 1.0)


@dataclass(frozen=True)
class Objective:
    """One declarative latency objective: ``p<pct>(<metric>) < threshold``."""

    metric: str
    percentile: float
    threshold_s: float

    @property
    def budget(self) -> float:
        """Allowed bad fraction (e.g. 0.01 for a p99 objective)."""
        return max(1e-9, 1.0 - self.percentile / 100.0)

    @property
    def spec(self) -> str:
        return f"p{self.percentile:g}({self.metric}) < {self.threshold_s:g}s"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "metric": self.metric,
            "percentile": self.percentile,
            "threshold_s": self.threshold_s,
            "budget": self.budget,
        }


def parse_slo(spec: str) -> Objective:
    """Parse ``"p99(lat.request)<5ms"`` into an :class:`Objective`."""
    m = _SPEC_RE.match(spec)
    if not m:
        raise ValueError(
            f"unparseable SLO {spec!r} (expected p<pct>(<metric>) < <dur>)"
        )
    pct = float(m.group("pct"))
    if not 0.0 < pct < 100.0:
        raise ValueError(f"SLO percentile out of (0, 100): {pct}")
    return Objective(
        metric=m.group("metric"),
        percentile=pct,
        threshold_s=parse_duration(m.group("threshold")),
    )


@dataclass(frozen=True)
class BurnRule:
    """Fire when burn over the long AND short recent spans exceeds max_burn."""

    name: str
    long_windows: int
    short_windows: int
    max_burn: float


#: multi-window defaults scaled to simulator runs (see module docstring)
DEFAULT_RULES: Tuple[BurnRule, ...] = (
    BurnRule("fast", long_windows=3, short_windows=1, max_burn=8.0),
    BurnRule("slow", long_windows=8, short_windows=2, max_burn=2.0),
)


def _span_burn(
    ordered: List[Tuple[int, LatencyHistogram]],
    end: int,
    span: int,
    threshold: float,
    budget: float,
) -> float:
    """Burn rate over the ``span`` windows ending at position ``end``."""
    lo = max(0, end - span + 1)
    count = bad = 0
    for _, h in ordered[lo : end + 1]:
        count += h.count
        bad += h.count_over(threshold)
    if count == 0:
        return 0.0
    return (bad / count) / budget


@dataclass
class SloResult:
    """One objective's evaluation over a run's windowed histograms."""

    objective: Objective
    window_s: float
    per_window: List[Dict[str, Any]]
    violations: List[Dict[str, Any]]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self.objective.to_dict(),
            "window_s": self.window_s,
            "ok": self.ok,
            "per_window": self.per_window,
            "violations": self.violations,
        }


def evaluate_slo(
    windows: Dict[int, LatencyHistogram],
    objective: Objective,
    window_s: float,
    rules: Sequence[BurnRule] = DEFAULT_RULES,
) -> SloResult:
    """Evaluate one objective over ``{window index: histogram}``.

    Rule spans are clamped to the number of observed windows so short
    runs still evaluate; each window is checked as the endpoint of every
    rule's spans, so a violation names the window where the sustained
    burn was detected.
    """
    ordered = sorted(windows.items())
    threshold, budget = objective.threshold_s, objective.budget
    per_window: List[Dict[str, Any]] = []
    violations: List[Dict[str, Any]] = []
    for pos, (w, h) in enumerate(ordered):
        bad = h.count_over(threshold)
        burn = (bad / h.count) / budget if h.count else 0.0
        per_window.append(
            {
                "window": w,
                "t0": w * window_s,
                "count": h.count,
                "bad": bad,
                "p50": h.percentile(50.0),
                "p99": h.percentile(99.0),
                "burn": burn,
            }
        )
        for rule in rules:
            long_span = min(rule.long_windows, len(ordered))
            short_span = min(rule.short_windows, long_span)
            long_burn = _span_burn(ordered, pos, long_span, threshold, budget)
            short_burn = _span_burn(ordered, pos, short_span, threshold, budget)
            if long_burn >= rule.max_burn and short_burn >= rule.max_burn:
                violations.append(
                    {
                        "rule": rule.name,
                        "window": w,
                        "t0": w * window_s,
                        "long_windows": long_span,
                        "short_windows": short_span,
                        "long_burn": long_burn,
                        "short_burn": short_burn,
                        "max_burn": rule.max_burn,
                    }
                )
    return SloResult(objective, window_s, per_window, violations)


def evaluate_report_slos(
    report: Dict[str, Any],
    objectives: Sequence[Objective],
    rules: Sequence[BurnRule] = DEFAULT_RULES,
) -> List[SloResult]:
    """Evaluate objectives against a (loaded) run report's ``wlat`` records.

    Offline counterpart of evaluating a live registry: reconstructs each
    cluster-merged window histogram from the report and runs the same
    rules, so the dashboard gates on exactly what the run gated on.
    """
    results: List[SloResult] = []
    for objective in objectives:
        windows: Dict[int, LatencyHistogram] = {}
        window_s = 0.0
        for rec in report.get("wlats", ()):
            # wlat records are cluster-merged (node -1); tolerate per-node
            # extensions by ignoring them rather than double-counting
            if rec["metric"] != objective.metric or rec.get("node", -1) != -1:
                continue
            windows[int(rec["window"])] = LatencyHistogram.from_dict(
                rec, name=rec["metric"], node=rec.get("node", -1)
            )
            window_s = float(rec["window_s"])
        results.append(
            evaluate_slo(windows, objective, window_s or 1e-3, rules)
        )
    return results
