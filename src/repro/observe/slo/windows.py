"""Windowed tail latency: rotating the percentile engine over virtual time.

A :class:`WindowedLatency` is a :class:`~repro.observe.latency.engine.
LatencyHistogram` that *additionally* files every observation into the
fixed virtual-time window containing the observation instant, so a run
report can carry p50/p99 **series over time** instead of only the
end-of-run aggregate (DESIGN.md §13). Window ``w`` covers
``[w·window_s, (w+1)·window_s)`` of virtual time; the window index of an
observation is a pure function of the clock reading, so:

* **rotation is insertion-order invariant** — each window histogram
  inherits the engine's order-invariance, and which window an
  observation lands in depends only on *when* it was observed;
* **window-merge equals whole-run merge** — merging every window's
  histogram reproduces the total histogram exactly (bucket counts,
  min/max, percentile estimates; the floating-point ``sum`` agrees up to
  addition reordering), property-tested;
* **observation stays read-only** — the clock callback reads the
  engine's virtual time and nothing else, so windowed collection cannot
  perturb the observed run (golden-pinned).

The total (parent) histogram keeps feeding everything that existed
before windowing — ``lat`` report records, merged cluster rows — while
``windows`` feeds the new ``wlat`` records, the SLO burn-rate engine and
the recovery degradation timeline.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from repro.observe.latency.engine import (
    DEFAULT_BASE,
    DEFAULT_GROWTH,
    LatencyHistogram,
)

__all__ = ["WindowedLatency", "merge_windowed"]


class WindowedLatency(LatencyHistogram):
    """A latency histogram that also rotates into virtual-time windows."""

    __slots__ = ("clock", "window_s", "windows")

    def __init__(
        self,
        name: str = "",
        node: int = -1,
        clock: Callable[[], float] = None,  # required; kwarg for symmetry
        window_s: float = 1e-3,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        super().__init__(name, node, base=base, growth=growth)
        if clock is None:
            raise ValueError("WindowedLatency needs a clock callback")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s}")
        self.clock = clock
        self.window_s = window_s
        #: {window index: histogram of observations made in that window}
        self.windows: Dict[int, LatencyHistogram] = {}

    def window_index(self, t: float) -> int:
        return int(t // self.window_s)

    def window_bounds(self, index: int) -> Tuple[float, float]:
        return index * self.window_s, (index + 1) * self.window_s

    def observe(self, value: float) -> None:
        super().observe(value)
        w = self.window_index(self.clock())
        h = self.windows.get(w)
        if h is None:
            h = self.windows[w] = LatencyHistogram(
                self.name, self.node, base=self.base, growth=self.growth
            )
        h.observe(value)

    def merged_windows(self) -> LatencyHistogram:
        """All windows merged back into one histogram (== the total)."""
        out = LatencyHistogram(
            self.name, self.node, base=self.base, growth=self.growth
        )
        for w in sorted(self.windows):
            out.merge_from(self.windows[w])
        return out

    def windows_to_dicts(self) -> List[Dict[str, object]]:
        """One serializable record per non-empty window, in time order."""
        out: List[Dict[str, object]] = []
        for w in sorted(self.windows):
            t0, t1 = self.window_bounds(w)
            out.append(
                {
                    "window": w,
                    "t0": t0,
                    "t1": t1,
                    "window_s": self.window_s,
                    **self.windows[w].to_dict(),
                }
            )
        return out


def merge_windowed(
    parts: Iterable[WindowedLatency], name: str = "", node: int = -1
) -> Dict[int, LatencyHistogram]:
    """Merge several nodes' windowed histograms window-by-window.

    Returns ``{window index: cluster-merged histogram}`` — the input to
    the SLO engine and the degradation timeline, which evaluate the
    *cluster's* tail per window, not each node's.
    """
    merged: Dict[int, LatencyHistogram] = {}
    for part in parts:
        for w, h in part.windows.items():
            tgt = merged.get(w)
            if tgt is None:
                tgt = merged[w] = LatencyHistogram(
                    name or h.name, node, base=h.base, growth=h.growth
                )
            tgt.merge_from(h)
    return merged
