"""Recovery degradation timeline: crash marks over windowed tail latency.

The question the serving workload exists to answer (ROADMAP item 1,
LLFT in PAPERS.md): when a node fails, *how far does the tail degrade
and how fast does it re-converge*? This module overlays the recovery
anatomy collected by PR 8 (per-incarnation detect/restore/handshake/
replay phase records) on the windowed p99 series collected by
:mod:`~repro.observe.slo.windows`, and measures the blast radius as
**windows-to-SLO-reconvergence**: the number of windows after the crash
window until the windowed p99 drops back under the objective's
threshold and stays there for the rest of the run.

Everything operates on (loaded) run-report dicts, so the timeline
renders identically from a live run (``repro observe``) and from a
committed artifact (``repro report``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.render import ascii_series, format_duration

from repro.observe.slo.engine import Objective

__all__ = ["build_timeline", "reconvergence", "render_timeline"]

#: recovery phases overlaid on the timeline, in execution order
PHASES = ("detect", "restore", "handshake", "replay")


def build_timeline(
    report: Dict[str, Any], metric: str = "lat.request"
) -> Optional[Dict[str, Any]]:
    """Fold a run report's ``wlat`` + ``recovery`` records into a timeline.

    Returns None when the report carries no cluster-merged windowed
    series for ``metric`` (pre-schema-3 artifacts, windowing disabled).
    """
    wlats = sorted(
        (
            rec
            for rec in report.get("wlats", ())
            if rec["metric"] == metric and rec.get("node", -1) == -1
        ),
        key=lambda r: r["window"],
    )
    if not wlats:
        return None
    window_s = float(wlats[0]["window_s"])
    series = [
        {
            "window": int(rec["window"]),
            "t0": float(rec["t0"]),
            "t1": float(rec["t1"]),
            "count": int(rec["count"]),
            "p50": float(rec["p50"]),
            "p99": float(rec["p99"]),
        }
        for rec in wlats
    ]
    marks: List[Dict[str, Any]] = []
    for rec in report.get("recoveries", ()):
        crash_t = float(rec["crash_time"])
        live_t = crash_t + float(rec["total"])
        marks.append(
            {
                "pid": int(rec.get("pid", -1)),
                "crash_time": crash_t,
                "live_time": live_t,
                "crash_window": int(crash_t // window_s),
                "live_window": int(live_t // window_s),
                "total": float(rec["total"]),
                "phases": {ph: float(rec.get(ph, 0.0)) for ph in PHASES},
                "replica_fetches": int(rec.get("replica_fetches", 0)),
            }
        )
    marks.sort(key=lambda m: m["crash_time"])
    return {
        "metric": metric,
        "window_s": window_s,
        "series": series,
        "marks": marks,
    }


def reconvergence(
    timeline: Dict[str, Any], objective: Objective
) -> List[Dict[str, Any]]:
    """Windows-to-SLO-reconvergence for every crash on the timeline.

    For each crash mark: the first window at or after the crash window
    from which *every* remaining window's p99 sits at or under the
    objective's threshold. ``windows`` is that distance from the crash
    window; None means the run ended still out of SLO (blast radius
    exceeded the observation horizon).
    """
    series = timeline["series"]
    out: List[Dict[str, Any]] = []
    for mark in timeline["marks"]:
        tail = [s for s in series if s["window"] >= mark["crash_window"]]
        reconverged: Optional[int] = None
        for i, s in enumerate(tail):
            if all(t["p99"] <= objective.threshold_s for t in tail[i:]):
                reconverged = s["window"]
                break
        out.append(
            {
                "pid": mark["pid"],
                "crash_window": mark["crash_window"],
                "reconverged_window": reconverged,
                "windows": (
                    reconverged - mark["crash_window"]
                    if reconverged is not None
                    else None
                ),
            }
        )
    return out


def render_timeline(
    timeline: Dict[str, Any], objective: Optional[Objective] = None
) -> str:
    """ASCII degradation timeline: p99/p50 chart + crash/recovery marks."""
    metric = timeline["metric"]
    window_s = timeline["window_s"]
    title = (
        f"degradation timeline — {metric} per "
        f"{format_duration(window_s)} window"
    )
    chart = ascii_series(
        title,
        {
            "p99": [(s["t0"], s["p99"]) for s in timeline["series"]],
            "p50": [(s["t0"], s["p50"]) for s in timeline["series"]],
        },
        xlabel="s",
        ylabel="s",
        window_s=window_s,
    )
    lines = [chart]
    for mark in timeline["marks"]:
        phases = ", ".join(
            f"{ph} {format_duration(mark['phases'][ph])}"
            for ph in PHASES
            if mark["phases"].get(ph)
        )
        extra = (
            f"; {mark['replica_fetches']} replica fetch(es)"
            if mark["replica_fetches"]
            else ""
        )
        lines.append(
            f"crash: p{mark['pid']} down at {format_duration(mark['crash_time'])}"
            f" (window {mark['crash_window']}), live again at "
            f"{format_duration(mark['live_time'])} (window "
            f"{mark['live_window']}) — {phases}{extra}"
        )
    if objective is not None and timeline["marks"]:
        for rec in reconvergence(timeline, objective):
            if rec["windows"] is None:
                lines.append(
                    f"SLO {objective.spec}: p{rec['pid']}'s blast radius did "
                    "NOT reconverge within the run"
                )
            else:
                lines.append(
                    f"SLO {objective.spec}: reconverged {rec['windows']} "
                    f"window(s) after p{rec['pid']}'s crash "
                    f"(window {rec['reconverged_window']})"
                )
    if not timeline["marks"]:
        lines.append("(failure-free run: no crash marks)")
    return "\n".join(lines)
