"""Serving-oriented observability: windowed tails, SLOs, degradation.

Three pieces built for the open-loop session workload (DESIGN.md §13):

* :mod:`.windows` — rotate the latency percentile engine into fixed
  virtual-time windows so reports carry p50/p99 *series over time*;
* :mod:`.engine` — declarative latency objectives with multi-window
  burn-rate evaluation (the exit-nonzero SLO gate);
* :mod:`.timeline` — overlay crash/recovery-phase marks on the windowed
  p99 series and measure windows-to-SLO-reconvergence.
"""

from repro.observe.slo.engine import (
    DEFAULT_RULES,
    BurnRule,
    Objective,
    SloResult,
    evaluate_report_slos,
    evaluate_slo,
    parse_duration,
    parse_slo,
)
from repro.observe.slo.timeline import (
    build_timeline,
    reconvergence,
    render_timeline,
)
from repro.observe.slo.windows import WindowedLatency, merge_windowed

__all__ = [
    "BurnRule",
    "DEFAULT_RULES",
    "Objective",
    "SloResult",
    "WindowedLatency",
    "build_timeline",
    "evaluate_report_slos",
    "evaluate_slo",
    "merge_windowed",
    "parse_duration",
    "parse_slo",
    "reconvergence",
    "render_timeline",
]
