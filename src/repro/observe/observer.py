"""Virtual-time sampler wiring a :class:`MetricsRegistry` into a cluster.

:class:`ClusterObserver` attaches to a :class:`~repro.cluster.DsmCluster`
before the run and produces per-node time series on two cadences:

* **barrier episodes** — the first process to complete each barrier
  episode triggers a sample, giving one point per synchronization epoch
  (the natural x-axis of the paper's log-dynamics discussion);
* **virtual time** — an optional self-rescheduling engine event samples
  every ``interval`` seconds of virtual time.

Both cadences only *read* state. The time ticker does schedule engine
events, but those events send no messages, charge no CPU time and touch
no protocol state, so virtual timestamps and traffic counters of the
observed run are bit-identical to an unobserved run (pinned by the
golden determinism test). The ticker also refuses to reschedule itself
when it is the only remaining event, so a deadlocked run still drains
its queue and reaches the cluster's deadlock diagnostics instead of
spinning on samples.

Per-node gauges close over the :class:`~repro.cluster.ProcHost` (not the
protocol object) so they survive crash/recovery incarnations; hosts
re-attach probes to fresh ``DsmProcess``/``FtManager`` instances via
``cluster.observer``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.observe.registry import CLUSTER_NODE, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster import DsmCluster, ProcHost

__all__ = ["ClusterObserver", "NodeProbe"]


class NodeProbe:
    """Per-process handle the protocol layer calls into.

    Pre-resolved histogram references keep the instrumented hot paths to
    one attribute load + method call; the protocol guards every use with
    ``self.obs is not None`` so unobserved runs pay a single attribute
    check.
    """

    __slots__ = ("pid", "observer", "fetch_wait", "lock_wait", "barrier_wait",
                 "fetch_lat", "lock_lat", "barrier_lat")

    def __init__(self, observer: "ClusterObserver", pid: int) -> None:
        self.pid = pid
        self.observer = observer
        reg = observer.registry
        self.fetch_wait = reg.histogram("dsm.fetch_wait_s", pid)
        self.lock_wait = reg.histogram("dsm.lock_wait_s", pid)
        self.barrier_wait = reg.histogram("dsm.barrier_wait_s", pid)
        # log-bucketed percentile distributions (DESIGN.md §12) fed from
        # the same protocol sites as the fixed-bucket wait histograms
        self.fetch_lat = reg.latency("lat.fetch", pid)
        self.lock_lat = reg.latency("lat.acquire", pid)
        self.barrier_lat = reg.latency("lat.barrier", pid)

    def on_barrier(self, episode: int) -> None:
        self.observer.on_barrier(episode)

    def app_latency(self, name: str):
        """Application-level latency op class for this node.

        How workloads (the session serving app) observe their own
        request/queueing latencies through the same registry as the
        protocol sites — interned, so per-request calls are one dict
        lookup; windowed automatically when the run collects windows.
        """
        return self.observer.registry.latency(name, self.pid)


class ClusterObserver:
    """Samples a cluster's protocol/FT/simulator state into a registry."""

    def __init__(
        self,
        cluster: "DsmCluster",
        registry: Optional[MetricsRegistry] = None,
        interval: Optional[float] = None,
        sample_on_barrier: bool = True,
        max_samples: int = 100_000,
        window_s: Optional[float] = None,
    ) -> None:
        self.cluster = cluster
        self.registry = registry if registry is not None else MetricsRegistry()
        if window_s is not None:
            # windowed tail-latency collection (DESIGN.md §13): the clock
            # callback reads the engine's virtual time and nothing else
            self.registry.enable_windows(
                clock=lambda: cluster.engine.now, window_s=window_s
            )
        self.interval = interval
        self.sample_on_barrier = sample_on_barrier
        self.max_samples = max_samples
        #: completed recoveries' phase records (tagged with pid), the
        #: run report's ``recovery`` records and the degradation
        #: timeline's crash marks
        self.recovery_records: list = []
        self._probes: Dict[int, NodeProbe] = {}
        self._next_episode = 0
        #: (steps, now) at the previous sample, for the events/sec series
        self._last_rate_point = (0, 0.0)
        cluster.observer = self
        self._install_cluster_gauges()
        for host in cluster.hosts:
            self._install_host_gauges(host)
            # protos/FT managers exist only after cluster.setup(); attach
            # now if they are already there (direct-driven unit tests)
            if host.proto is not None:
                host.proto.obs = self.node_probe(host.pid)
            if host.ft is not None:
                host.ft.obs = self
        if interval is not None:
            if interval <= 0:
                raise ValueError(f"sample interval must be positive: {interval}")
            cluster.engine.schedule(interval, self._tick)

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def node_probe(self, pid: int) -> NodeProbe:
        probe = self._probes.get(pid)
        if probe is None:
            probe = self._probes[pid] = NodeProbe(self, pid)
        return probe

    def _install_cluster_gauges(self) -> None:
        reg = self.registry
        cluster = self.cluster
        engine = cluster.engine
        net = cluster.network
        traffic = net.traffic
        reg.gauge("sim.events", fn=lambda: engine.steps)
        reg.gauge("sim.channel_bytes_inflight", fn=lambda: net.inflight_bytes)
        reg.gauge("sim.channel_msgs_inflight", fn=lambda: net.inflight_msgs)
        reg.gauge("net.total_bytes", fn=lambda: traffic.total_bytes)
        reg.gauge("net.total_msgs", fn=lambda: traffic.total_msgs)
        reg.gauge("net.ft_bytes", fn=lambda: traffic.ft_bytes)

    def _install_host_gauges(self, host: "ProcHost") -> None:
        reg = self.registry
        pid = host.pid

        def proto_stat(attr: str):
            def read(h=host, a=attr) -> float:
                p = h.proto
                return getattr(p.stats, a) if p is not None else 0.0

            return read

        reg.gauge("dsm.page_fetches", pid, proto_stat("page_fetches"))
        reg.gauge("dsm.page_fetch_bytes", pid, proto_stat("page_fetch_bytes"))
        reg.gauge("dsm.diff_bytes_sent", pid, proto_stat("diff_bytes_sent"))
        reg.gauge("dsm.diff_bytes_created", pid, proto_stat("diff_bytes_created"))
        reg.gauge("dsm.lock_acquires", pid, proto_stat("lock_acquires"))
        reg.gauge("dsm.barriers", pid, proto_stat("barriers"))
        if not self.cluster.ft_enabled:
            return

        def ft_read(fn):
            def read(h=host) -> float:
                return fn(h) if h.ft is not None else 0.0

            return read

        reg.gauge(
            "ft.log_volatile_bytes", pid,
            ft_read(lambda h: h.ft.logs.diff.volatile_bytes),
        )
        reg.gauge(
            "ft.log_saved_bytes", pid,
            ft_read(lambda h: h.ft.logs.diff.saved_bytes),
        )
        reg.gauge(
            "ft.log_unsaved_bytes", pid,
            ft_read(lambda h: h.ft.logs.diff.unsaved_bytes),
        )
        reg.gauge(
            "ft.rel_log_entries", pid,
            ft_read(lambda h: h.ft.logs.rel.count() + h.ft.logs.acq.count()),
        )
        reg.gauge(
            "ft.wn_entries", pid,
            ft_read(lambda h: h.ft.proc.notices.count()),
        )
        reg.gauge(
            "ft.checkpoints_taken", pid,
            ft_read(lambda h: h.ft.stats.checkpoints_taken),
        )
        reg.gauge(
            "ft.ckpts_retained", pid,
            lambda h=host: (
                len(h.ckpt_mgr.retained_seqnos) if h.ckpt_mgr is not None else 0.0
            ),
        )
        if self.cluster.replication:
            # bytes of *peers'* FT state this node holds (volatile
            # replica tier) and how far its own replication trails its
            # checkpoints (0 = buddy holds everything committed)
            reg.gauge(
                "ft.replica_bytes", pid,
                lambda h=host: h.replica_store.used_bytes,
            )
            reg.gauge(
                "ft.replica_lag", pid,
                ft_read(
                    lambda h: h.ft.repl.lag if h.ft.repl is not None else 0.0
                ),
            )

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Snapshot every gauge/counter at the current virtual time."""
        engine = self.cluster.engine
        now = engine.now
        self.registry.sample(now)
        last_steps, last_now = self._last_rate_point
        dt = now - last_now
        if dt > 0:
            self.registry.record(
                "sim.events_per_vsec",
                CLUSTER_NODE,
                now,
                (engine.steps - last_steps) / dt,
            )
        self._last_rate_point = (engine.steps, now)

    def on_barrier(self, episode: int) -> None:
        """Barrier-episode cadence: sample once per completed episode."""
        if not self.sample_on_barrier:
            return
        if episode < self._next_episode:
            return
        self._next_episode = episode + 1
        if self.registry.samples_taken < self.max_samples:
            self.sample()

    def _tick(self) -> None:
        engine = self.cluster.engine
        self.sample()
        if self.registry.samples_taken >= self.max_samples:
            return
        # do not keep the event queue alive on our own: if nothing else
        # is pending the run is over (or deadlocked) and rescheduling
        # would turn queue-drain detection into a sampling livelock
        if engine._ready or engine._queue:
            engine.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    # FT-layer hooks (called by FtManager behind an `obs is None` guard)
    # ------------------------------------------------------------------
    def on_checkpoint(self, pid: int, ckpt_no: int, disk_log_bytes: int) -> None:
        """Record the Figure 4 point: stable log size at checkpoint N."""
        self.registry.record("ft.log_disk_bytes", pid, ckpt_no, disk_log_bytes)
        self.registry.record(
            "ft.ckpt_times", pid, self.cluster.engine.now, ckpt_no
        )

    def on_ckpt_write(self, pid: int, duration_s: float) -> None:
        """One checkpoint's write+commit duration (stage → commit marker)."""
        self.registry.latency("lat.ckpt", pid).observe(duration_s)

    def on_replica_ack(self, pid: int, lag_s: float) -> None:
        """Replica transfer/ack lag: checkpoint commit send → buddy ack."""
        self.registry.latency("lat.replica_ack", pid).observe(lag_s)

    def on_recovery_phases(self, pid: int, rec: Dict[str, float]) -> None:
        """One completed recovery's phase anatomy (DESIGN.md §12).

        ``rec`` is the per-incarnation record appended to
        ``host.recovery_phases`` by the recovery manager: end-to-end
        duration plus detection/restore/handshake/replay phases.
        """
        reg = self.registry
        reg.latency("lat.recovery", pid).observe(rec["total"])
        for phase in ("detect", "restore", "handshake", "replay"):
            reg.latency(f"lat.recovery.{phase}", pid).observe(rec[phase])
        reg.record(
            "ft.recovery_total_s", pid, self.cluster.engine.now, rec["total"]
        )
        self.recovery_records.append(dict(rec, pid=pid))

    def on_llt(self, pid: int, trimmed: Dict[str, int]) -> None:
        """Account one LLT pass (bytes/entries trimmed per rule)."""
        reg = self.registry
        reg.counter("ft.trim_diff_bytes", pid).inc(trimmed.get("diff_bytes", 0))
        reg.counter("ft.trim_rel_entries", pid).inc(
            trimmed.get("rel", 0) + trimmed.get("acq", 0) + trimmed.get("self", 0)
        )
        reg.counter("ft.trim_wn_entries", pid).inc(trimmed.get("wn", 0))
        reg.counter("ft.trim_bar_entries", pid).inc(trimmed.get("bar", 0))

    def on_cgc(self, pid: int, freed: int) -> None:
        """Account one CGC pass (checkpoint bytes collected)."""
        self.registry.counter("ft.cgc_freed_bytes", pid).inc(freed)
