"""Run reports: JSONL export and plain-text rendering of observed runs.

A *run report* is the structured outcome of one observed cluster run:
the registry's per-node time series, histogram summaries and end-of-run
totals. It round-trips through JSONL — one self-describing record per
line — so CI can parse it with nothing but ``json.loads``:

* ``{"record": "header", ...}``   — run metadata (first line)
* ``{"record": "series", ...}``   — one per (metric, node) series
* ``{"record": "hist", ...}``     — one per (metric, node) histogram
* ``{"record": "lat", ...}``      — one per (op class, node) percentile
  distribution, plus one cluster-merged record per op class
  (``node = -1``); carries both summary percentiles and the raw log
  buckets so readers can re-merge across runs (schema 2)
* ``{"record": "wlat", ...}``     — one per (op class, window) fixed
  virtual-time window of the cluster-merged distribution, carrying the
  window index/bounds plus the same log-bucket payload as ``lat``
  (schema 3; only when the run collected windows)
* ``{"record": "recovery", ...}`` — one per completed recovery: the pid
  plus the phase anatomy (detect/restore/handshake/replay/total), the
  degradation timeline's crash marks (schema 3)
* ``{"record": "slo", ...}``      — one per evaluated objective: the
  spec, per-window burn rates and any burn-rule violations (schema 3)
* ``{"record": "summary", ...}``  — end-of-run totals (last line)

Schema history: 1 = header/series/hist/summary; 2 adds ``lat`` records
(DESIGN.md §12); 3 adds ``wlat``/``recovery``/``slo`` records
(DESIGN.md §13). Readers accept all three.

Rendering reuses the repo's ASCII reporting layer
(:mod:`repro.metrics.report`), so Figure 4-style curves and overview
tables come out of the same pipeline the paper harness uses.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.render import (
    Table,
    ascii_histogram,
    ascii_series,
    format_bytes,
    format_duration,
)
from repro.observe.registry import CLUSTER_NODE, MetricsRegistry

__all__ = [
    "build_report",
    "write_jsonl",
    "load_jsonl",
    "validate_report",
    "render_report",
    "latency_table",
    "slo_sections",
    "KEY_SERIES",
    "KEY_LATENCIES",
]

#: series a healthy FT run report must contain (CI smoke asserts these):
#: per-node stable+volatile log size, diff traffic and the retained
#: checkpoint count (the paper's bounded-window claim) over virtual
#: time; the ``ft.replica_*`` pair (buddy-held replica bytes, own
#: replication lag in checkpoints) is required only of replication-
#: enabled runs (``header["replicate"]``)
KEY_SERIES = (
    "ft.log_volatile_bytes",
    "ft.log_saved_bytes",
    "dsm.diff_bytes_sent",
    "ft.ckpts_retained",
    "ft.replica_bytes",
    "ft.replica_lag",
)

#: latency op classes a schema-2 report must carry records for (the
#: NodeProbe pre-creates these three, so they exist — possibly with
#: count 0 — in every observed run; ckpt/replica/recovery classes appear
#: only when the corresponding events happened)
KEY_LATENCIES = ("lat.fetch", "lat.acquire", "lat.barrier")

#: fields every ``lat`` record must carry to be renderable/mergeable
_LAT_FIELDS = ("metric", "node", "count", "p50", "p90", "p99", "p999",
               "max", "base", "growth", "buckets")

#: fields every ``wlat`` record additionally carries (window geometry)
_WLAT_FIELDS = ("metric", "node", "window", "t0", "t1", "window_s",
                "count", "buckets")

#: fields every ``recovery`` record must carry to anchor a crash mark
_RECOVERY_FIELDS = ("pid", "crash_time", "total")


def build_report(
    registry: MetricsRegistry,
    meta: Dict[str, Any],
    result: Any = None,
    recoveries: Any = None,
    slos: Any = None,
) -> Dict[str, Any]:
    """Assemble the structured run report from a sampled registry.

    ``meta`` carries run identity (app, procs, ft, cadence); ``result``
    is the cluster's :class:`~repro.cluster.RunResult` (optional — unit
    tests build reports from bare registries). ``recoveries`` is the
    observer's ``recovery_records`` list (crash runs); ``slos`` a list
    of :class:`~repro.observe.slo.SloResult` (or pre-dumped dicts) when
    the run evaluated objectives. Windowed (``wlat``) records appear
    automatically whenever the registry collected windows — cluster-
    merged only (``node = -1``), which bounds report size at
    ``windows x op classes`` regardless of cluster size.
    """
    series = [
        {
            "record": "series",
            "metric": name,
            "node": node,
            "points": [[float(x), float(v)] for x, v in pts],
        }
        for (name, node), pts in sorted(registry.series.items())
    ]
    hists = []
    for name in registry.histogram_names():
        for node, h in registry.histograms_by_name(name).items():
            hists.append(
                {
                    "record": "hist",
                    "metric": name,
                    "node": node,
                    **h.summary(),
                }
            )
    lats = []
    for name in registry.latency_names():
        per_node = registry.latencies_by_name(name)
        for node, h in per_node.items():
            lats.append(
                {"record": "lat", "metric": name, "node": node, **h.to_dict()}
            )
        if CLUSTER_NODE not in per_node:
            merged = registry.merged_latency(name)
            if merged is not None:
                lats.append(
                    {
                        "record": "lat",
                        "metric": name,
                        "node": CLUSTER_NODE,
                        **merged.to_dict(),
                    }
                )
    wlats = []
    window_s = registry.window_s
    if window_s is not None:
        for name in registry.latency_names():
            for w, h in sorted(registry.merged_windows(name).items()):
                wlats.append(
                    {
                        "record": "wlat",
                        "metric": name,
                        "node": CLUSTER_NODE,
                        "window": w,
                        "t0": w * window_s,
                        "t1": (w + 1) * window_s,
                        "window_s": window_s,
                        **h.to_dict(),
                    }
                )
    recovery_recs = [
        {"record": "recovery", **rec} for rec in (recoveries or ())
    ]
    slo_recs = [
        {
            "record": "slo",
            **(s.to_dict() if hasattr(s, "to_dict") else dict(s)),
        }
        for s in (slos or ())
    ]
    summary: Dict[str, Any] = {"record": "summary", "samples": registry.samples_taken}
    if result is not None:
        summary.update(
            virtual_time=result.wall_time,
            total_msgs=result.traffic.total_msgs,
            total_bytes=result.traffic.total_bytes,
            ft_bytes=result.traffic.ft_bytes,
            crashes=result.crashes,
            recoveries=result.recoveries,
            checkpoints=sum(
                s.checkpoints_taken for s in result.ft_stats if s is not None
            ),
        )
    header = {"record": "header", "schema": 3, **meta}
    if wlats and "window_s" not in header:
        header["window_s"] = window_s
    return {
        "header": header,
        "series": series,
        "hists": hists,
        "lats": lats,
        "wlats": wlats,
        "recoveries": recovery_recs,
        "slos": slo_recs,
        "summary": summary,
    }


def write_jsonl(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(report["header"], sort_keys=True) + "\n")
        for rec in report["series"]:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        for rec in report["hists"]:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        for rec in report.get("lats", ()):
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        for key in ("wlats", "recoveries", "slos"):
            for rec in report.get(key, ()):
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        fh.write(json.dumps(report["summary"], sort_keys=True) + "\n")


def load_jsonl(path: str) -> Dict[str, Any]:
    """Parse a JSONL run report (schema 1-3) into the structured form."""
    out: Dict[str, Any] = {
        "header": None, "series": [], "hists": [], "lats": [], "wlats": [],
        "recoveries": [], "slos": [], "summary": None,
    }
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("record")
            if kind == "header":
                out["header"] = rec
            elif kind == "series":
                out["series"].append(rec)
            elif kind == "hist":
                out["hists"].append(rec)
            elif kind == "lat":
                out["lats"].append(rec)
            elif kind == "wlat":
                out["wlats"].append(rec)
            elif kind == "recovery":
                out["recoveries"].append(rec)
            elif kind == "slo":
                out["slos"].append(rec)
            elif kind == "summary":
                out["summary"] = rec
            else:
                raise ValueError(f"unknown run-report record: {rec!r}")
    return out


def validate_report(report: Dict[str, Any], require_ft: bool = True) -> List[str]:
    """Sanity-check a (loaded) run report; returns human-readable errors."""
    errors: List[str] = []
    if not report.get("header"):
        errors.append("missing header record")
    if report.get("summary") is None:
        errors.append("missing summary record")
    by_metric: Dict[str, List[Dict[str, Any]]] = {}
    for rec in report.get("series", ()):
        by_metric.setdefault(rec["metric"], []).append(rec)
    required = (
        KEY_SERIES if require_ft
        else tuple(n for n in KEY_SERIES if not n.startswith("ft."))
    )
    if not (report.get("header") or {}).get("replicate"):
        required = tuple(
            n for n in required if not n.startswith("ft.replica")
        )
    for name in required:
        recs = by_metric.get(name)
        if not recs:
            errors.append(f"missing key series {name!r}")
            continue
        if all(not rec["points"] for rec in recs):
            errors.append(f"key series {name!r} is empty on every node")
    schema = (report.get("header") or {}).get("schema", 1)
    if schema >= 2:
        lat_metrics = set()
        for i, rec in enumerate(report.get("lats", ())):
            missing = [f for f in _LAT_FIELDS if f not in rec]
            if missing:
                errors.append(f"lat record {i} missing fields {missing}")
                continue
            lat_metrics.add(rec["metric"])
        for name in KEY_LATENCIES:
            if name not in lat_metrics:
                errors.append(f"missing latency op class {name!r}")
    if schema >= 3:
        for i, rec in enumerate(report.get("wlats", ())):
            missing = [f for f in _WLAT_FIELDS if f not in rec]
            if missing:
                errors.append(f"wlat record {i} missing fields {missing}")
        if (report.get("header") or {}).get("window_s") and not report.get(
            "wlats"
        ):
            errors.append(
                "header declares windowed collection but no wlat records"
            )
        for i, rec in enumerate(report.get("recoveries", ())):
            missing = [f for f in _RECOVERY_FIELDS if f not in rec]
            if missing:
                errors.append(f"recovery record {i} missing fields {missing}")
    return errors


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def latency_table(
    lats: List[Dict[str, Any]], title: str = "latency percentiles (virtual time)"
) -> Table:
    """The run report's tail-latency table from ``lat`` records.

    One row per (op class, node) with observations, ordered cluster-
    merged row first per class; shared with the analytics dashboard.
    """
    table = Table(
        title,
        ["op class", "node", "count", "p50", "p90", "p99", "p999", "max"],
        note="cluster rows merge every node's log-bucket histogram; "
        "estimates carry the engine's documented relative-error bound",
    )
    ordered = sorted(
        (rec for rec in lats if rec.get("count")),
        key=lambda r: (r["metric"], r["node"] != CLUSTER_NODE, r["node"]),
    )
    for rec in ordered:
        node = "cluster" if rec["node"] == CLUSTER_NODE else f"p{rec['node']}"
        table.add(
            rec["metric"],
            node,
            rec["count"],
            *(format_duration(rec[k]) for k in ("p50", "p90", "p99", "p999",
                                                "max")),
        )
    return table


def _latency_sections(report: Dict[str, Any]) -> List[str]:
    lats = report.get("lats") or []
    if not any(rec.get("count") for rec in lats):
        return []
    parts = [latency_table(lats).render()]
    # one distribution chart for the busiest op class (cluster-merged)
    merged = [r for r in lats if r["node"] == CLUSTER_NODE and r.get("count")]
    if merged:
        busiest = max(merged, key=lambda r: r["count"])
        buckets = [
            (format_duration(busiest["base"] * busiest["growth"] ** i), c)
            for i, c in busiest.get("buckets", ())
        ]
        if busiest.get("zero"):
            buckets.insert(0, ("0", busiest["zero"]))
        parts.append(
            ascii_histogram(
                f"{busiest['metric']} distribution (cluster, "
                f"{busiest['count']} ops)",
                buckets,
            )
        )
    return parts


def _timeline_metric(report: Dict[str, Any]) -> str:
    """Op class for the degradation timeline: the serving app's request
    latency when present, else the busiest windowed class."""
    counts: Dict[str, int] = {}
    for rec in report.get("wlats", ()):
        if rec.get("node", -1) == CLUSTER_NODE:
            counts[rec["metric"]] = counts.get(rec["metric"], 0) + int(
                rec.get("count", 0)
            )
    if "lat.request" in counts:
        return "lat.request"
    return max(counts, key=counts.get) if counts else ""


def slo_sections(report: Dict[str, Any]) -> List[str]:
    """Degradation timeline + SLO burn-rate sections (schema 3)."""
    # lazy: repro.observe.slo is an optional consumer of this module's
    # report dicts, not a load-time dependency
    from repro.observe.slo import Objective, build_timeline, render_timeline

    parts: List[str] = []
    slos = report.get("slos") or []
    metric = _timeline_metric(report)
    if metric:
        timeline = build_timeline(report, metric=metric)
        objective = None
        for rec in slos:
            if rec.get("metric") == metric:
                objective = Objective(
                    rec["metric"],
                    float(rec["percentile"]),
                    float(rec["threshold_s"]),
                )
                break
        if timeline is not None:
            parts.append(render_timeline(timeline, objective))
    if slos:
        table = Table(
            "SLO burn-rate evaluation",
            ["objective", "windows", "worst burn", "violations", "status"],
            note="burn = (fraction over threshold) / error budget; a rule "
            "fires when long- and short-span burns both exceed its limit",
        )
        lines: List[str] = []
        for rec in slos:
            burns = [float(w.get("burn", 0.0)) for w in rec.get("per_window", ())]
            table.add(
                rec.get("spec", "?"),
                len(rec.get("per_window", ())),
                f"{max(burns, default=0.0):.2f}",
                len(rec.get("violations", ())),
                "OK" if rec.get("ok") else "VIOLATED",
            )
            for v in rec.get("violations", ()):
                lines.append(
                    f"SLO VIOLATION {rec.get('spec', '?')}: {v['rule']} rule "
                    f"at window {v['window']} (burn {v['long_burn']:.1f} over "
                    f"{v['long_windows']}w and {v['short_burn']:.1f} over "
                    f"{v['short_windows']}w, limit {v['max_burn']:g})"
                )
        parts.append(table.render())
        if lines:
            parts.append("\n".join(lines))
    return parts


def _node_series(
    report: Dict[str, Any], metric: str
) -> Dict[str, List[Tuple[float, float]]]:
    out: Dict[str, List[Tuple[float, float]]] = {}
    for rec in report["series"]:
        if rec["metric"] != metric or not rec["points"]:
            continue
        label = "cluster" if rec["node"] == CLUSTER_NODE else f"p{rec['node']}"
        out[label] = [(x, v) for x, v in rec["points"]]
    return out


def _last(points: List[Any]) -> float:
    return float(points[-1][1]) if points else 0.0


def render_report(report: Dict[str, Any]) -> str:
    """Plain-text run report: overview table + key series charts."""
    header = report.get("header") or {}
    summary = report.get("summary") or {}
    title = (
        f"repro observe — {header.get('app', '?')} on "
        f"{header.get('procs', '?')} simulated nodes"
    )
    parts: List[str] = []

    per_node: Dict[int, Dict[str, float]] = {}
    for rec in report["series"]:
        node = rec["node"]
        if node == CLUSTER_NODE:
            continue
        per_node.setdefault(node, {})[rec["metric"]] = _last(rec["points"])
    overview = Table(
        title,
        ["node", "fetches", "diff sent", "log volatile", "log stable",
         "ckpts", "trimmed"],
        note=(
            f"virtual time {summary.get('virtual_time', 0.0) * 1e3:.3f} ms, "
            f"{summary.get('total_msgs', 0)} msgs, "
            f"{summary.get('samples', 0)} samples"
        ),
    )
    for node in sorted(per_node):
        m = per_node[node]
        overview.add(
            f"p{node}",
            int(m.get("dsm.page_fetches", 0)),
            format_bytes(m.get("dsm.diff_bytes_sent", 0)),
            format_bytes(m.get("ft.log_volatile_bytes", 0)),
            format_bytes(m.get("ft.log_saved_bytes", 0)),
            int(m.get("ft.checkpoints_taken", 0)),
            format_bytes(m.get("ft.trim_diff_bytes", 0)),
        )
    parts.append(overview.render())

    charts = [
        ("ft.log_volatile_bytes", "log size (volatile) vs virtual time", "s", "bytes"),
        ("ft.replica_bytes", "buddy-held replica bytes vs virtual time", "s", "bytes"),
        ("ft.replica_lag", "replication lag vs virtual time", "s", "ckpts"),
        ("dsm.diff_bytes_sent", "diff traffic vs virtual time", "s", "bytes"),
        ("ft.log_disk_bytes", "stable log vs checkpoint number", "ckpt", "bytes"),
        ("sim.events_per_vsec", "simulator events per virtual second", "s", "ev/s"),
    ]
    for metric, chart_title, xlabel, ylabel in charts:
        series = _node_series(report, metric)
        if series:
            parts.append(
                ascii_series(chart_title, series, xlabel=xlabel, ylabel=ylabel)
            )

    parts.extend(_latency_sections(report))
    parts.extend(slo_sections(report))

    if report["hists"]:
        waits = Table(
            "synchronization waits",
            ["metric", "node", "count", "mean", "max"],
        )
        for rec in report["hists"]:
            if not rec["count"]:
                continue
            waits.add(
                rec["metric"],
                f"p{rec['node']}",
                rec["count"],
                f"{rec['mean'] * 1e6:.1f} us",
                f"{rec['max'] * 1e6:.1f} us",
            )
        if waits.rows:
            parts.append(waits.render())
    return "\n\n".join(parts)
