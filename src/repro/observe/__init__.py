"""Unified observability layer: metrics registry, sampler and run reports.

See DESIGN.md §7. Typical use::

    from repro.observe import ClusterObserver

    cluster = DsmCluster(..., ft=True)
    obs = ClusterObserver(cluster, interval=1e-3)   # virtual-time cadence
    result = cluster.run(app)
    obs.sample()                                    # final snapshot
    report = build_report(obs.registry, {"app": "counter"}, result)
    write_jsonl("run.jsonl", report)
"""

from repro.observe.invariants import (
    INVARIANTS,
    FlightRecorder,
    InvariantMonitor,
    Violation,
    render_flight_record,
    seed_violation,
    validate_flight_record,
    write_flight_record,
)
from repro.observe.latency import LatencyHistogram, exact_percentile
from repro.observe.observer import ClusterObserver, NodeProbe
from repro.observe.registry import (
    CLUSTER_NODE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.report import (
    KEY_LATENCIES,
    KEY_SERIES,
    build_report,
    latency_table,
    load_jsonl,
    render_report,
    validate_report,
    write_jsonl,
)
from repro.observe.slo import (
    DEFAULT_RULES,
    BurnRule,
    Objective,
    SloResult,
    WindowedLatency,
    build_timeline,
    evaluate_report_slos,
    evaluate_slo,
    parse_slo,
    reconvergence,
    render_timeline,
)
from repro.observe.tracing import (
    CausalEdge,
    CritSegment,
    Span,
    SpanTracer,
    compute_critical_path,
    node_time_totals,
    per_cause_totals,
    reconcile_with_time_stats,
    render_critpath_report,
    to_chrome_trace,
    worst_lock_chains,
)

__all__ = [
    "BurnRule",
    "CLUSTER_NODE",
    "CausalEdge",
    "ClusterObserver",
    "Counter",
    "CritSegment",
    "DEFAULT_RULES",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "INVARIANTS",
    "InvariantMonitor",
    "KEY_LATENCIES",
    "KEY_SERIES",
    "LatencyHistogram",
    "MetricsRegistry",
    "NodeProbe",
    "Objective",
    "SloResult",
    "Span",
    "SpanTracer",
    "Violation",
    "WindowedLatency",
    "build_report",
    "build_timeline",
    "compute_critical_path",
    "evaluate_report_slos",
    "evaluate_slo",
    "exact_percentile",
    "parse_slo",
    "reconvergence",
    "render_timeline",
    "latency_table",
    "load_jsonl",
    "node_time_totals",
    "per_cause_totals",
    "reconcile_with_time_stats",
    "render_critpath_report",
    "render_flight_record",
    "render_report",
    "seed_violation",
    "to_chrome_trace",
    "validate_flight_record",
    "validate_report",
    "worst_lock_chains",
    "write_flight_record",
    "write_jsonl",
]
