"""Cross-artifact aggregation for the ``repro report`` dashboard.

The repo's pipelines each leave one kind of artifact in ``benchmarks/``:

* ``OBSERVE_<app>.jsonl`` — run reports (series/hists/latency records)
* ``TRACE_<app>.json``    — Chrome trace-event span DAGs
* ``SWEEP_<app>*.json``   — crash-sweep campaign summaries (schema 1/2)
* ``BENCH_*.json``        — benchmark baselines with before/after pairs
* ``FLIGHT_<app>.json``   — invariant-monitor crash flight records

This module finds them, loads them through each pipeline's own reader/
validator, and normalizes the result into :class:`Artifact` records the
dashboard renders. Sniffing is by filename prefix first, then by
content shape, so renamed files still classify. Loading is read-only
and never raises for a bad artifact: malformed files come back as
``Artifact`` records with ``errors`` set (the CLI turns those into a
nonzero exit).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ARTIFACT_KINDS",
    "Artifact",
    "bench_delta",
    "discover_artifacts",
    "load_artifact",
    "sniff_kind",
]

ARTIFACT_KINDS = ("observe", "trace", "sweep", "bench", "flight")

#: filename prefix -> kind (first match on the basename wins)
_PREFIXES = (
    ("OBSERVE_", "observe"),
    ("TRACE_", "trace"),
    ("SWEEP_", "sweep"),
    ("BENCH", "bench"),
    ("FLIGHT_", "flight"),
)

#: glob-free discovery: a file is a candidate artifact iff its basename
#: carries a known prefix and a JSON-ish suffix
_SUFFIXES = (".json", ".jsonl")


@dataclass
class Artifact:
    """One loaded (or failed-to-load) artifact."""

    kind: str  # one of ARTIFACT_KINDS, or "unknown"
    path: str
    data: Optional[Dict[str, Any]] = None
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def name(self) -> str:
        return os.path.basename(self.path)


def sniff_kind(path: str, data: Any = None) -> str:
    """Classify an artifact by filename prefix, else by content shape."""
    base = os.path.basename(path)
    for prefix, kind in _PREFIXES:
        if base.startswith(prefix):
            return kind
    if isinstance(data, dict):
        if data.get("record") == "header":
            return "observe"  # first line of a run-report JSONL
        if "traceEvents" in data:
            return "trace"
        if "points" in data and "outcomes" in data:
            return "sweep"
        if "before" in data and "after" in data:
            return "bench"
        if "violations" in data and "checks" in data:
            return "flight"
        if "header" in data and "series" in data:
            return "observe"
    return "unknown"


def discover_artifacts(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into the artifact files under them.

    Directories are walked recursively (``benchmarks/results`` holds
    the trace JSONs); only basenames with a known prefix and suffix are
    picked up, so paper-table ``.txt`` outputs and pytest files are
    ignored. Explicit file paths are always taken, even unrecognized
    ones — naming a file is an assertion it should parse, and the
    dashboard reports it malformed if it doesn't.
    """
    found: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, files in sorted(os.walk(p)):
                for f in sorted(files):
                    if not f.endswith(_SUFFIXES):
                        continue
                    if any(f.startswith(pre) for pre, _ in _PREFIXES):
                        found.append(os.path.join(root, f))
        else:
            found.append(p)
    # stable order: kind-major (ARTIFACT_KINDS order), then path
    order = {kind: i for i, kind in enumerate(ARTIFACT_KINDS)}
    found.sort(key=lambda p: (order.get(sniff_kind(p), len(order)), p))
    return found


# ---------------------------------------------------------------------------
# per-kind loading, through each pipeline's own reader/validator
# ---------------------------------------------------------------------------
def _load_observe(path: str) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    from repro.observe.report import load_jsonl, validate_report

    report = load_jsonl(path)
    require_ft = bool(report["header"].get("ft", False))
    return report, validate_report(report, require_ft=require_ft)


def _load_trace(path: str) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    with open(path) as fh:
        data = json.load(fh)
    errors: List[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        errors.append("traceEvents missing or not a list")
    else:
        for i, ev in enumerate(events):
            if not isinstance(ev, dict) or "ph" not in ev:
                errors.append(f"trace event {i} has no phase ('ph')")
                break
    return data, errors


def _load_sweep(path: str) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    from repro.faultinject.campaign import load_sweep

    data = load_sweep(path)
    errors: List[str] = []
    for key in ("outcomes", "ok", "classes"):
        if key not in data:
            errors.append(f"sweep missing key {key!r}")
    return data, errors


def _load_bench(path: str) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    with open(path) as fh:
        data = json.load(fh)
    errors: List[str] = []
    for side in ("before", "after"):
        block = data.get(side)
        if not isinstance(block, dict):
            errors.append(f"bench missing {side!r} block")
        elif "events_per_sec" not in block:
            errors.append(f"bench {side!r} block has no events_per_sec")
    return data, errors


def _load_flight(path: str) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    from repro.observe.invariants import validate_flight_record

    with open(path) as fh:
        data = json.load(fh)
    return data, validate_flight_record(data)


_LOADERS = {
    "observe": _load_observe,
    "trace": _load_trace,
    "sweep": _load_sweep,
    "bench": _load_bench,
    "flight": _load_flight,
}


def load_artifact(path: str) -> Artifact:
    """Load one artifact file; parse/validation failures land in
    ``errors`` instead of raising."""
    kind = sniff_kind(path)
    try:
        if kind == "unknown":
            # explicit file with an unrecognized name: sniff the content
            with open(path) as fh:
                first = fh.read(1 << 20)
            data = json.loads(first.splitlines()[0] if path.endswith(".jsonl")
                              else first)
            kind = sniff_kind(path, data)
            if kind == "unknown":
                return Artifact("unknown", path,
                                errors=["unrecognized artifact shape"])
        data, errors = _LOADERS[kind](path)
        return Artifact(kind, path, data, errors)
    except FileNotFoundError:
        return Artifact(kind, path, errors=["file not found"])
    except (json.JSONDecodeError, ValueError, IndexError) as exc:
        return Artifact(kind, path, errors=[f"unparseable: {exc}"])


# ---------------------------------------------------------------------------
# bench trend deltas
# ---------------------------------------------------------------------------
def bench_delta(
    data: Dict[str, Any], threshold: float
) -> Dict[str, Any]:
    """Before/after throughput trend of one bench baseline.

    ``delta`` is the fractional change of aggregate events/s (positive =
    faster); a drop beyond ``threshold`` flags ``regressed``. Per-bench
    rows carry the same delta for every named microbench present on
    both sides.
    """
    before, after = data["before"], data["after"]
    b, a = before["events_per_sec"], after["events_per_sec"]
    delta = (a - b) / b if b else 0.0
    rows = []
    before_by = {x["name"]: x for x in before.get("benches", ())}
    for bench in after.get("benches", ()):
        old = before_by.get(bench["name"])
        if old is None:
            continue
        metric = "events_per_sec" if bench.get("events_per_sec") else "ops_per_sec"
        b0, a0 = old.get(metric, 0), bench.get(metric, 0)
        rows.append(
            {
                "name": bench["name"],
                "before": b0,
                "after": a0,
                "delta": (a0 - b0) / b0 if b0 else 0.0,
            }
        )
    return {
        "suite": after.get("suite", "?"),
        "before": b,
        "after": a,
        "delta": delta,
        "regressed": a < b * (1.0 - threshold),
        "recorded": data.get("recorded", ""),
        "benches": rows,
    }
