"""Cross-artifact analytics: aggregate every pipeline's output into one
dashboard (DESIGN.md §12, the ``repro report`` command).

    from repro.observe.analytics import (
        discover_artifacts, load_artifact, build_dashboard, render_dashboard,
    )

    paths = discover_artifacts(["benchmarks"])
    dash = build_dashboard([load_artifact(p) for p in paths])
    print(render_dashboard(dash))
"""

from repro.observe.analytics.aggregate import (
    ARTIFACT_KINDS,
    Artifact,
    bench_delta,
    discover_artifacts,
    load_artifact,
    sniff_kind,
)
from repro.observe.analytics.dashboard import (
    DEFAULT_THRESHOLD,
    build_dashboard,
    render_dashboard,
    render_html,
)

__all__ = [
    "ARTIFACT_KINDS",
    "Artifact",
    "DEFAULT_THRESHOLD",
    "bench_delta",
    "build_dashboard",
    "discover_artifacts",
    "load_artifact",
    "render_dashboard",
    "render_html",
    "sniff_kind",
]
