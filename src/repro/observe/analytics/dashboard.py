"""The unified ``repro report`` dashboard: ASCII and HTML renderings.

:func:`build_dashboard` folds loaded :class:`Artifact` records into one
summary structure; :func:`render_dashboard` renders it as plain text and
:func:`render_html` as a standalone dependency-free HTML page (the same
tables inside ``<pre>`` blocks, with a status banner). Both are pure
functions of the artifact set — the dashboard never touches a cluster,
so it can run against committed artifacts in CI.

Status discipline: the dashboard is *green* only when every artifact
parsed and validated clean, no sweep reported failure, no flight record
is present (a flight record only exists because an invariant tripped),
and no bench trend regressed beyond the threshold.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List

from repro.faultinject.campaign import render_recovery_by_class
from repro.observe.registry import CLUSTER_NODE
from repro.observe.report import latency_table, slo_sections
from repro.render import Table, format_pct

from repro.observe.analytics.aggregate import Artifact, bench_delta

__all__ = ["build_dashboard", "render_dashboard", "render_html"]

DEFAULT_THRESHOLD = 0.10  # fractional throughput drop that fails the report


def build_dashboard(
    artifacts: List[Artifact], threshold: float = DEFAULT_THRESHOLD
) -> Dict[str, Any]:
    """Fold artifacts into the dashboard summary structure."""
    malformed = [a for a in artifacts if not a.ok]
    benches = [
        {"artifact": a, **bench_delta(a.data, threshold)}
        for a in artifacts
        if a.kind == "bench" and a.ok
    ]
    regressions = [b for b in benches if b["regressed"]]
    sweep_failures = [
        a for a in artifacts
        if a.kind == "sweep" and a.ok and not a.data.get("ok", False)
    ]
    flights = [a for a in artifacts if a.kind == "flight" and a.ok]
    return {
        "artifacts": artifacts,
        "benches": benches,
        "threshold": threshold,
        "malformed": malformed,
        "regressions": regressions,
        "sweep_failures": sweep_failures,
        "flights": flights,
        "ok": not (malformed or regressions or sweep_failures or flights),
    }


# ---------------------------------------------------------------------------
# section renderers (each returns a block of text, or "" to skip)
# ---------------------------------------------------------------------------
def _inventory(dash: Dict[str, Any]) -> str:
    table = Table("artifact inventory", ["kind", "file", "status"])
    for a in dash["artifacts"]:
        status = "ok" if a.ok else f"MALFORMED: {a.errors[0]}"
        table.add(a.kind, a.path, status)
    return table.render()


def _observe_sections(dash: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    for a in dash["artifacts"]:
        if a.kind != "observe" or not a.ok:
            continue
        lats = [
            rec for rec in a.data.get("lats", ())
            if rec["node"] == CLUSTER_NODE and rec.get("count")
        ]
        if lats:
            app = a.data["header"].get("app", a.name)
            out.append(
                latency_table(
                    lats, title=f"{app}: tail latency by op class (cluster)"
                ).render()
            )
        # schema-3 artifacts: the degradation timeline (windowed p50/p99
        # with crash/recovery marks) and SLO burn-rate verdicts render
        # exactly as `repro observe` printed them at collection time
        out.extend(slo_sections(a.data))
    return out


def _sweep_sections(dash: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    for a in dash["artifacts"]:
        if a.kind != "sweep" or not a.ok:
            continue
        d = a.data
        outcomes = ", ".join(
            f"{k}={v}" for k, v in sorted(d.get("outcomes", {}).items())
        )
        verdict = "OK" if d.get("ok") else "FAILED"
        lines = [
            f"{a.name}: {d.get('app', '?')} sweep, faults={d.get('faults')}, "
            f"schema v{d.get('schema')} — {verdict} ({outcomes})"
        ]
        by_class = d.get("recovery_by_class") or {}
        if by_class:
            lines.append(render_recovery_by_class(by_class))
        elif d.get("schema") == 1:
            lines.append(
                "  (schema v1 artifact: no recovery-phase records; re-run "
                "the sweep to collect recovery anatomy)"
            )
        out.append("\n".join(lines))
    return out


def _trace_section(dash: Dict[str, Any]) -> str:
    rows = []
    for a in dash["artifacts"]:
        if a.kind != "trace" or not a.ok:
            continue
        events = a.data.get("traceEvents", ())
        spans = sum(1 for e in events if e.get("ph") == "X")
        flows = sum(1 for e in events if e.get("ph") == "s")
        nodes = len({e.get("pid") for e in events if e.get("ph") == "X"})
        rows.append((a.name, nodes, spans, flows))
    if not rows:
        return ""
    table = Table(
        "span traces", ["file", "nodes", "spans", "message flows"]
    )
    for row in rows:
        table.add(*row)
    return table.render()


def _flight_section(dash: Dict[str, Any]) -> str:
    if not dash["flights"]:
        return ""
    table = Table(
        "crash flight records (invariant violations!)",
        ["file", "reason", "virtual time", "violations"],
    )
    for a in dash["flights"]:
        d = a.data
        table.add(
            a.name, d.get("reason", "?"), f"{d.get('time', 0):.6f} s",
            len(d.get("violations", ())),
        )
    return table.render()


def _bench_section(dash: Dict[str, Any]) -> str:
    if not dash["benches"]:
        return ""
    table = Table(
        "benchmark trends (events/s, after vs before)",
        ["suite", "before", "after", "delta", "status"],
        note=f"regression threshold: {format_pct(dash['threshold'] * 100)} drop"
        " in aggregate throughput",
    )
    for b in dash["benches"]:
        table.add(
            b["suite"],
            f"{b['before']:,.0f}",
            f"{b['after']:,.0f}",
            format_pct(b["delta"] * 100),
            "REGRESSED" if b["regressed"] else "ok",
        )
    worst = [
        (b["suite"], r)
        for b in dash["benches"]
        for r in b["benches"]
        if r["delta"] < 0
    ]
    parts = [table.render()]
    if worst:
        worst.sort(key=lambda x: x[1]["delta"])
        movers = Table(
            "slowest-moving microbenches",
            ["suite", "bench", "before", "after", "delta"],
        )
        for suite, r in worst[:5]:
            movers.add(
                suite, r["name"], f"{r['before']:,.0f}", f"{r['after']:,.0f}",
                format_pct(r["delta"] * 100),
            )
        parts.append(movers.render())
    return "\n\n".join(parts)


def _verdict(dash: Dict[str, Any]) -> str:
    if dash["ok"]:
        return "REPORT OK: all artifacts valid, no regressions"
    problems: List[str] = []
    for a in dash["malformed"]:
        problems.append(f"malformed {a.kind} artifact {a.path}: {a.errors[0]}")
    for b in dash["regressions"]:
        problems.append(
            f"bench regression in suite {b['suite']!r}: "
            f"{format_pct(b['delta'] * 100)} aggregate throughput"
        )
    for a in dash["sweep_failures"]:
        problems.append(f"crash sweep {a.name} reported failure")
    for a in dash["flights"]:
        problems.append(
            f"flight record {a.name} present ({a.data.get('reason', '?')})"
        )
    return "REPORT FAILED:\n" + "\n".join(f"  - {p}" for p in problems)


def render_dashboard(dash: Dict[str, Any]) -> str:
    """The unified analytics dashboard as plain text."""
    title = "repro analytics dashboard"
    sections: List[str] = [f"{title}\n{'#' * len(title)}", _inventory(dash)]
    sections.extend(_observe_sections(dash))
    sections.extend(_sweep_sections(dash))
    for block in (_trace_section(dash), _flight_section(dash),
                  _bench_section(dash)):
        if block:
            sections.append(block)
    sections.append(_verdict(dash))
    return "\n\n".join(sections)


def render_html(dash: Dict[str, Any]) -> str:
    """The same dashboard as one self-contained HTML page."""
    banner = "ok" if dash["ok"] else "failed"
    blocks: List[str] = [_inventory(dash)]
    blocks.extend(_observe_sections(dash))
    blocks.extend(_sweep_sections(dash))
    for block in (_trace_section(dash), _flight_section(dash),
                  _bench_section(dash)):
        if block:
            blocks.append(block)
    blocks.append(_verdict(dash))
    body = "\n".join(
        f"<pre>{_html.escape(b)}</pre>" for b in blocks
    )
    color = "#2a7" if dash["ok"] else "#c33"
    return (
        "<!DOCTYPE html>\n"
        "<html><head><meta charset='utf-8'>"
        "<title>repro analytics dashboard</title>"
        "<style>"
        "body{font-family:monospace;margin:2em;background:#fafafa}"
        "pre{background:#fff;border:1px solid #ddd;padding:1em;"
        "overflow-x:auto}"
        f".banner{{color:#fff;background:{color};padding:.5em 1em;"
        "font-weight:bold}"
        "</style></head><body>"
        f"<div class='banner'>repro analytics dashboard — {banner}</div>\n"
        f"{body}\n"
        "</body></html>\n"
    )
