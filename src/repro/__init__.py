"""repro — reproduction of "Scalable Fault-Tolerant Distributed Shared
Memory" (Sultan, Nguyen, Iftode; SC 2000).

A home-based lazy release consistency (HLRC) software DSM extended with
independent checkpointing, sender-based volatile logging, Lazy Log
Trimming (LLT) and Checkpoint Garbage Collection (CGC), plus full
log-based single-fault recovery — all running on a deterministic
discrete-event cluster simulator.

Public entry points::

    from repro import DsmCluster, DsmConfig
    from repro.core import LogOverflowPolicy
    from repro.apps import BarnesApp, WaterNsqApp, WaterSpatialApp
"""

from repro.cluster import DsmCluster, RunResult
from repro.dsm.config import DsmConfig

__version__ = "1.0.0"

__all__ = ["DsmCluster", "RunResult", "DsmConfig", "__version__"]
