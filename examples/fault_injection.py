#!/usr/bin/env python3
"""Fault-injection tour: crash every process of a Barnes-Hut run, one at
a time, at several points, and report the recovery behaviour.

Shows that any single process — ordinary worker, lock manager, barrier
manager (process 0), or page home — can fail at any time and the
computation still produces the exact golden result.

    python examples/fault_injection.py
"""

import time

from repro import DsmCluster, DsmConfig
from repro.apps.barnes import BarnesApp, BarnesConfig
from repro.core import LogOverflowPolicy
from repro.metrics.report import Table


def make_cluster():
    return DsmCluster(
        DsmConfig(num_procs=8),
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.25, fp),
    )


def main() -> None:
    cfg = BarnesConfig(n_bodies=96, steps=3)
    golden = make_cluster().run(BarnesApp(cfg))
    T = golden.wall_time
    print(f"golden run: {T*1e3:.1f} ms virtual, no failures\n")

    t = Table(
        "Single-fault injection sweep (Barnes-Hut, 8 nodes)",
        ["Victim", "Role", "Crash at", "Recovered", "Stretch", "Result"],
    )
    roles = {0: "barrier manager", 1: "lock mgr (1,9)", 3: "worker/home"}
    host0 = time.time()
    for victim in (0, 1, 3, 5, 7):
        for frac in (0.25, 0.6):
            cluster = make_cluster()
            cluster.schedule_crash(victim, at_time=T * frac)
            try:
                res = cluster.run(BarnesApp(cfg))
                stretch = res.wall_time - T
                t.add(
                    f"p{victim}",
                    roles.get(victim, "worker/home"),
                    f"{frac:.0%} of run",
                    "yes" if res.recoveries else "n/a (finished)",
                    f"+{stretch*1e3:.1f} ms",
                    "exact",
                )
            except AssertionError:
                t.add(f"p{victim}", roles.get(victim, "worker"), f"{frac:.0%}",
                      "yes", "-", "WRONG")
    print(t.render())
    print(f"\n({time.time()-host0:.1f}s of host time; every recovery "
          "validated bit-for-bit against the sequential Barnes-Hut model)")


if __name__ == "__main__":
    main()
