#!/usr/bin/env python3
"""Quickstart: a shared counter on a fault-tolerant DSM cluster.

Runs the bundled CounterApp three ways — base protocol, fault-tolerant,
and fault-tolerant with a mid-run crash of process 3 — and prints what
happened. Start here to see the public API end to end.

    python examples/quickstart.py
"""

from repro import DsmCluster, DsmConfig
from repro.apps.counter import CounterApp, CounterConfig
from repro.core import LogOverflowPolicy


def main() -> None:
    cfg = CounterConfig(steps=4, n_elements=512)

    # -- 1. base HLRC protocol, no fault tolerance -----------------------
    cluster = DsmCluster(DsmConfig(num_procs=8))
    result = cluster.run(CounterApp(cfg))
    print("base protocol:")
    print(f"  virtual time      {result.wall_time * 1e3:8.2f} ms")
    print(f"  messages          {result.traffic.total_msgs:8d}")
    print(f"  bytes on the wire {result.traffic.total_bytes:8d}")

    # -- 2. fault tolerance on (log-overflow checkpointing at L = 0.2) ----
    cluster = DsmCluster(
        DsmConfig(num_procs=8),
        ft=True,
        policy_factory=lambda pid, footprint: LogOverflowPolicy(0.2, footprint),
    )
    result = cluster.run(CounterApp(cfg))
    ckpts = sum(s.checkpoints_taken for s in result.ft_stats)
    print("\nfault-tolerant (no failure):")
    print(f"  virtual time      {result.wall_time * 1e3:8.2f} ms")
    print(f"  checkpoints taken {ckpts:8d}")
    print(f"  piggyback traffic {result.traffic.ft_bytes:8d} bytes "
          f"({result.traffic.ft_overhead_percent():.2f} % of base)")

    # -- 3. crash process 3 mid-run and recover ---------------------------
    cluster = DsmCluster(
        DsmConfig(num_procs=8),
        ft=True,
        policy_factory=lambda pid, footprint: LogOverflowPolicy(0.2, footprint),
    )
    cluster.schedule_crash(3, at_time=result.wall_time * 0.4)
    result = cluster.run(CounterApp(cfg))  # validates the final result
    print("\nfault-tolerant with a crash of process 3:")
    print(f"  virtual time      {result.wall_time * 1e3:8.2f} ms")
    print(f"  crashes/recoveries {result.crashes}/{result.recoveries}")
    print(f"  recovery traffic  "
          f"{result.traffic.bytes_by_category['recovery']} bytes")
    print("\nfinal shared state verified against the golden model — "
          "no increments were lost.")


if __name__ == "__main__":
    main()
