#!/usr/bin/env python3
"""Compare checkpointing policies on the same workload (§5.1, §5.4).

The paper evaluates the log-overflow (OF) policy and suggests a
barrier-coordinated alternative for barrier-heavy applications. This
example runs Water-Spatial under four policies and contrasts checkpoint
counts, window sizes, stable-log pressure and execution time.

    python examples/policy_comparison.py
"""

from repro import DsmCluster, DsmConfig
from repro.apps.water_spatial import WaterSpatialApp, WaterSpatialConfig
from repro.core import (
    BarrierCoordinatedPolicy,
    IntervalPolicy,
    LogOverflowPolicy,
    NeverPolicy,
)
from repro.metrics.report import Table, format_bytes


def run(policy_factory):
    cluster = DsmCluster(
        DsmConfig(num_procs=8), ft=True, policy_factory=policy_factory
    )
    app = WaterSpatialApp(
        WaterSpatialConfig(n_molecules=216, steps=5, pair_cost=20e-6)
    )
    res = cluster.run(app)
    return cluster, res


def main() -> None:
    policies = [
        ("OF L=0.05", lambda pid, fp: LogOverflowPolicy(0.05, fp)),
        ("OF L=0.3", lambda pid, fp: LogOverflowPolicy(0.3, fp)),
        ("barrier-coordinated (every 5)", lambda pid, fp: BarrierCoordinatedPolicy(5)),
        ("interval (every 20)", lambda pid, fp: IntervalPolicy(20)),
        ("never (logging only)", lambda pid, fp: NeverPolicy()),
    ]
    t = Table(
        "Checkpoint policy comparison (Water-Spatial, 8 nodes)",
        ["Policy", "Ckpts/node", "Wmax", "Max stable log", "Logs discarded",
         "Exec time (ms)"],
        note="'never' shows the cost of unbounded logs: nothing is ever "
        "saved or trimmed, so a crash would lose everything since start.",
    )
    for name, factory in policies:
        cluster, res = run(factory)
        cks = [s.checkpoints_taken for s in res.ft_stats]
        t.add(
            name,
            f"{min(cks)}-{max(cks)}",
            max(h.ckpt_mgr.max_window for h in cluster.hosts),
            format_bytes(max(s.max_log_disk for s in res.ft_stats)),
            format_bytes(sum(h.ft.logs.diff.bytes_discarded for h in cluster.hosts)),
            f"{res.wall_time*1e3:.1f}",
        )
    print(t.render())


if __name__ == "__main__":
    main()
