#!/usr/bin/env python3
"""Writing your own DSM application: 1-D heat diffusion with halos.

Demonstrates the application contract from scratch: allocate shared
regions, keep private state in the checkpointable dict, structure the
run as resumable phases, and validate against a sequential model. The
stencil reads one halo element from each neighbour's partition — a
classic nearest-neighbour sharing pattern none of the bundled SPLASH
analogs has.

    python examples/heat_diffusion.py
"""

import numpy as np

from repro import DsmCluster, DsmConfig
from repro.apps.base import DsmApp, block_partition, phase_loop
from repro.core import LogOverflowPolicy


class HeatApp(DsmApp):
    name = "heat-1d"

    def __init__(self, n_cells=256, steps=20, alpha=0.2):
        self.n = n_cells
        self.steps = steps
        self.alpha = alpha

    # -- setup -------------------------------------------------------------
    def configure(self, cluster):
        # double buffering: read from `cur`, write to `nxt`, swap by step
        self.r_a = cluster.allocate("temp_a", self.n)
        self.r_b = cluster.allocate("temp_b", self.n)

    def init_shared(self, cluster):
        x = np.linspace(0, 1, self.n)
        cluster.write_initial(self.r_a, np.exp(-((x - 0.5) ** 2) / 0.01))

    def init_state(self, pid):
        return {"step": 0, "phase": 0}

    # -- the process body ----------------------------------------------------
    def run(self, proc, state):
        part = block_partition(self.n, proc.n, proc.pid)
        lo, hi = part.start, part.stop

        def phase_stencil(proc, state, step):
            cur = self.r_a if step % 2 == 0 else self.r_b
            nxt = self.r_b if step % 2 == 0 else self.r_a
            # read own partition plus one halo cell on each side
            rlo, rhi = max(0, lo - 1), min(self.n, hi + 1)
            src = yield from proc.read_range(cur, rlo, rhi)
            src = np.asarray(src)
            out = yield from proc.write_range(nxt, lo, hi)
            for k in range(lo, hi):
                left = src[k - 1 - rlo] if k > 0 else src[k - rlo]
                right = src[k + 1 - rlo] if k < self.n - 1 else src[k - rlo]
                mid = src[k - rlo]
                out[k - lo] = mid + self.alpha * (left + right - 2 * mid)
            yield from proc.compute(1e-6 * (hi - lo))
            yield from proc.barrier()

        yield from phase_loop(proc, state, self.steps, [phase_stencil])

    # -- validation -----------------------------------------------------------
    def reference(self):
        x = np.linspace(0, 1, self.n)
        t = np.exp(-((x - 0.5) ** 2) / 0.01)
        for _ in range(self.steps):
            left = np.concatenate(([t[0]], t[:-1]))
            right = np.concatenate((t[1:], [t[-1]]))
            t = t + self.alpha * (left + right - 2 * t)
        return t

    def check_result(self, cluster):
        final = self.r_a if self.steps % 2 == 0 else self.r_b
        got = np.asarray(cluster.shared_snapshot(final))[: self.n]
        np.testing.assert_allclose(got, self.reference(), rtol=1e-10)

    def final_field(self, cluster):
        final = self.r_a if self.steps % 2 == 0 else self.r_b
        return np.asarray(cluster.shared_snapshot(final))[: self.n]


def main():
    app = HeatApp(n_cells=256, steps=20)
    cluster = DsmCluster(
        DsmConfig(num_procs=8),
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.1, fp),
    )
    # crash the middle process halfway through, just to show off
    cluster.schedule_crash(4, at_time=5e-3)
    result = cluster.run(app)

    field = app.final_field(cluster)
    peak = field.max()
    print(f"ran {app.steps} stencil steps on 8 simulated nodes "
          f"(crashes={result.crashes}, recoveries={result.recoveries})")
    print(f"virtual time {result.wall_time*1e3:.2f} ms, "
          f"{result.traffic.total_msgs} messages")
    print(f"peak temperature {peak:.4f} (diffused from 1.0)")
    print("result matches the sequential model exactly.")
    # crude profile
    bins = field.reshape(16, -1).mean(axis=1)
    scale = 40 / bins.max()
    for i, b in enumerate(bins):
        print(f"  x={i/16:4.2f} " + "#" * int(b * scale))


if __name__ == "__main__":
    main()
