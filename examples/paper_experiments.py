#!/usr/bin/env python3
"""Regenerate every table and figure from the paper's evaluation (§5).

    python examples/paper_experiments.py [smoke|default]

``smoke`` (~5 s) runs tiny problems; ``default`` (~1 min) is the
calibrated scale recorded in EXPERIMENTS.md.
"""

import sys
import time

from repro.harness.figures import figure3_table, figure4_render
from repro.harness.tables import (
    run_all_experiments,
    table1,
    table2,
    table3,
    table4,
)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "default"
    t0 = time.time()
    print(f"running the three paper workloads (scale={scale}, "
          f"base + fault-tolerant each) ...")
    experiments = run_all_experiments(scale=scale)
    print(f"done in {time.time() - t0:.1f}s of host time\n")

    for fn in (table1, table2, table3, table4):
        print(fn(experiments).render())
        print()
    print(figure3_table(experiments).render())
    print()
    print(figure4_render(experiments))


if __name__ == "__main__":
    main()
