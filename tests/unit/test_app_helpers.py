"""Unit + property tests for application helpers and numerics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.barnes import (
    NODE_W,
    Allocator,
    BarnesConfig,
    _Tree,
    plummer_bodies,
)
from repro.apps.base import block_partition
from repro.apps.lu import LuConfig, _factor_diag, _initial_matrix, reference_lu
from repro.apps.water_spatial import WaterSpatialConfig, _cell_of, _neighbors


# -- block_partition ------------------------------------------------------


@given(st.integers(0, 200), st.integers(1, 16))
def test_block_partition_covers_exactly(n_items, n_procs):
    parts = [block_partition(n_items, n_procs, p) for p in range(n_procs)]
    flat = [i for part in parts for i in part]
    assert flat == list(range(n_items))


@given(st.integers(0, 200), st.integers(1, 16))
def test_block_partition_balanced(n_items, n_procs):
    sizes = [len(block_partition(n_items, n_procs, p)) for p in range(n_procs)]
    assert max(sizes) - min(sizes) <= 1


# -- water-spatial cells -----------------------------------------------------


def test_cell_of_in_range():
    rng = np.random.default_rng(0)
    pos = rng.uniform(0, 1, (100, 3))
    cells = _cell_of(pos, 4)
    assert ((cells >= 0) & (cells < 64)).all()


def test_neighbors_contains_self_and_wraps():
    nb = _neighbors(0, 4)
    assert 0 in nb
    assert len(nb) == 27  # distinct with wrap-around at c=4
    # wrap: cell 0's neighbourhood includes the far corner
    assert (3 * 16 + 3 * 4 + 3) in nb


def test_neighbors_small_grid_dedupes():
    nb = _neighbors(0, 2)
    assert len(nb) == 8  # 2^3 cells total, all are neighbours


# -- Barnes octree properties ------------------------------------------------


def build_tree(cfg, pos, order):
    nodes = np.zeros(cfg.nodes_cap() * NODE_W)
    tree = _Tree(nodes, cfg)
    lo, hi = pos.min(axis=0), pos.max(axis=0)
    center = (lo + hi) / 2
    half = float((hi - lo).max() / 2 * 1.01 + 1e-9)
    counter = [0]

    def take():
        counter[0] += 1
        return counter[0]

    alloc = Allocator(pos)
    alloc.take = take
    root = take()
    tree.init_internal(root, center[0], center[1], center[2], half)
    for b in order:
        tree.insert(root, b, pos[b], alloc)
    tree.compute_com(root, pos)
    return tree, root


def leaf_depths(tree, root):
    from repro.apps.barnes import F_BODY, F_CHILD0, F_TYPE

    out = {}
    stack = [(root, 1)]
    while stack:
        nd, d = stack.pop()
        rec = tree.nodes[nd]
        if rec[F_TYPE] == 1.0:
            out[int(rec[F_BODY])] = d
        elif rec[F_TYPE] == 2.0:
            for o in range(8):
                c = int(rec[F_CHILD0 + o])
                if c >= 0:
                    stack.append((c, d + 1))
    return out


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_octree_shape_is_insertion_order_independent(seed):
    """The canonical-octree property the distributed build relies on."""
    cfg = BarnesConfig(n_bodies=24, seed=seed % 7 + 1)
    pos, _ = plummer_bodies(cfg)
    rng = np.random.default_rng(seed)
    order1 = list(range(cfg.n_bodies))
    order2 = list(rng.permutation(cfg.n_bodies))
    t1, r1 = build_tree(cfg, pos, order1)
    t2, r2 = build_tree(cfg, pos, order2)
    assert leaf_depths(t1, r1) == leaf_depths(t2, r2)


def test_octree_mass_conserved():
    cfg = BarnesConfig(n_bodies=32)
    pos, _ = plummer_bodies(cfg)
    tree, root = build_tree(cfg, pos, range(cfg.n_bodies))
    from repro.apps.barnes import F_MASS

    assert tree.nodes[root][F_MASS] == pytest.approx(cfg.n_bodies)


def test_octree_force_far_field_matches_direct():
    """With theta=0 the BH force equals the direct sum."""
    cfg = BarnesConfig(n_bodies=16, theta=0.0)
    pos, _ = plummer_bodies(cfg)
    tree, root = build_tree(cfg, pos, range(cfg.n_bodies))
    eps2 = cfg.softening**2
    for b in (0, 7, 15):
        acc, _ = tree.force_on(root, b, pos[b])
        direct = np.zeros(3)
        for j in range(cfg.n_bodies):
            if j == b:
                continue
            d = pos[j] - pos[b]
            r2 = d @ d + eps2
            direct += d / (r2 * np.sqrt(r2))
        np.testing.assert_allclose(acc, direct, rtol=1e-9)


# -- LU helpers ---------------------------------------------------------------


def test_factor_diag_is_lu():
    rng = np.random.default_rng(1)
    a = rng.uniform(-1, 1, (8, 8)) + 8 * np.eye(8)
    orig = a.copy()
    _factor_diag(a)
    l = np.tril(a, -1) + np.eye(8)
    u = np.triu(a)
    np.testing.assert_allclose(l @ u, orig, rtol=1e-10)


def test_lu_config_validation():
    with pytest.raises(ValueError):
        LuConfig(matrix_size=10, block_size=4).n_blocks


def test_plummer_sorted_by_radius():
    pos, vel = plummer_bodies(BarnesConfig(n_bodies=64))
    r = np.einsum("ij,ij->i", pos, pos)
    assert (np.diff(r) >= 0).all()
    assert vel.shape == (64, 3)
