"""Unit tests for checkpointing policies and message size models."""

import pytest

from repro.core.policies import (
    BarrierCoordinatedPolicy,
    IntervalPolicy,
    LogOverflowPolicy,
    ManualPolicy,
    NeverPolicy,
)
from repro.dsm.config import DsmConfig
from repro.dsm.diff import Diff
from repro.dsm.messages import (
    BarrierArrive,
    DiffMsg,
    GrantInfo,
    LockAcquireReq,
    LockGrant,
    PageFetchReply,
    PageFetchReq,
    Piggyback,
    WriteNotice,
)
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock


class FakeFt:
    """Just enough of FtManager for policy unit tests."""

    class _Diff:
        volatile_bytes = 0
        unsaved_bytes = 0

    class _Logs:
        def __init__(self):
            self.diff = FakeFt._Diff()

    class _Proc:
        pid = 0
        vt = VClock((0, 0))
        barrier_episode = 0

    def __init__(self):
        self.logs = self._Logs()
        self.proc = self._Proc()


def test_log_overflow_threshold():
    ft = FakeFt()
    pol = LogOverflowPolicy(0.1, footprint_bytes=1000)
    ft.logs.diff.unsaved_bytes = 99
    assert not pol.should_checkpoint(ft, False)
    ft.logs.diff.unsaved_bytes = 100
    assert pol.should_checkpoint(ft, False)
    assert pol.describe() == "OF L = 0.1"


def test_log_overflow_validation():
    with pytest.raises(ValueError):
        LogOverflowPolicy(0, 100)
    with pytest.raises(ValueError):
        LogOverflowPolicy(0.1, 0)


def test_interval_policy():
    ft = FakeFt()
    pol = IntervalPolicy(3)
    ft.proc.vt = VClock((2, 0))
    assert not pol.should_checkpoint(ft, False)
    ft.proc.vt = VClock((3, 0))
    assert pol.should_checkpoint(ft, False)
    # resets its base
    ft.proc.vt = VClock((4, 0))
    assert not pol.should_checkpoint(ft, False)


def test_barrier_coordinated_policy():
    ft = FakeFt()
    pol = BarrierCoordinatedPolicy(every_barriers=2)
    ft.proc.barrier_episode = 2
    assert not pol.should_checkpoint(ft, at_barrier=False)
    assert pol.should_checkpoint(ft, at_barrier=True)
    ft.proc.barrier_episode = 3
    assert not pol.should_checkpoint(ft, at_barrier=True)
    ft.proc.barrier_episode = 0
    assert not pol.should_checkpoint(ft, at_barrier=True)


def test_manual_and_never():
    ft = FakeFt()
    assert not ManualPolicy().should_checkpoint(ft, True)
    assert not NeverPolicy().should_checkpoint(ft, True)


# -- message sizes --------------------------------------------------------


CFG = DsmConfig(num_procs=4)
VT = VClock((1, 2, 3, 4))
P = PageId(0, 0)


def test_piggyback_size():
    assert Piggyback().size_bytes(CFG) == 0
    assert Piggyback(tckps=((0, VT, 1),)).size_bytes(CFG) == CFG.vt_bytes() + 6
    pb = Piggyback(
        tckps=((0, VT, 1), (2, VT, 0)),
        page_versions=((P, 3), (PageId(0, 1), 5)),
    )
    assert pb.size_bytes(CFG) == 2 * (CFG.vt_bytes() + 6) + 24


def test_message_sizes_include_header_and_piggyback():
    req = LockAcquireReq(lock_id=1, acquirer=2, acq_vt=VT, seq=1)
    base = req.size_bytes(CFG)
    assert base == CFG.msg_header + 12 + CFG.vt_bytes()
    req.piggyback = Piggyback(tckps=((0, VT, 1),))
    assert req.size_bytes(CFG) == base + CFG.vt_bytes() + 6
    assert req.ft_bytes(CFG) == CFG.vt_bytes() + 6


def test_grant_size_scales_with_notices():
    wn = WriteNotice(0, 1, P, VT)
    g0 = LockGrant(lock_id=0, grantor=0, rel_vt=VT, notices=[])
    g2 = LockGrant(lock_id=0, grantor=0, rel_vt=VT, notices=[wn, wn])
    assert g2.size_bytes(CFG) > g0.size_bytes(CFG)


def test_diff_msg_size_includes_diff():
    d = Diff(((0, b"\x01" * 10),))
    m = DiffMsg(page=P, writer=0, diff=d, diff_vt=VT)
    assert m.size_bytes(CFG) == CFG.msg_header + 8 + CFG.vt_bytes() + d.size_bytes


def test_fetch_reply_size_includes_page():
    m = PageFetchReply(page=P, data=b"\x00" * 1024, version=VT)
    assert m.size_bytes(CFG) >= 1024


def test_grant_info_self_variant_bigger():
    plain = GrantInfo(lock_id=0, grantor=0, grantee=1)
    selfg = GrantInfo(lock_id=0, grantor=0, grantee=0, acq_t=VT)
    assert selfg.size_bytes(CFG) == plain.size_bytes(CFG) + CFG.vt_bytes()
