"""Unit tests for lock state tables and manager chains."""

import pytest

from repro.dsm.locks import ChainEntry, LockManagerState, LockTable
from repro.dsm.vclock import VClock

N = 4


def test_manager_initially_holds_token():
    t = LockTable(pid=2, num_procs=N)
    st = t.token(2)  # lock 2 managed by pid 2
    assert st.has_token
    assert st.rel_vt == VClock.zero(N)
    st2 = t.token(1)  # managed by pid 1
    assert not st2.has_token


def test_manager_access_control():
    t = LockTable(pid=0, num_procs=N)
    assert t.manages(0) and t.manages(4)
    assert not t.manages(1)
    with pytest.raises(RuntimeError):
        t.manager(1)


def test_chain_append_and_forward_target():
    m = LockManagerState(manager=0)
    assert m.last_requester == 0
    prev = m.append(2, 1)
    assert prev == 0
    prev = m.append(3, 1)
    assert prev == 2
    assert m.last_requester == 3


def test_duplicate_detection():
    m = LockManagerState(manager=0)
    m.append(2, 1)
    assert m.is_duplicate(2, 1)
    assert m.is_duplicate(2, 0)
    assert not m.is_duplicate(2, 2)
    assert not m.is_duplicate(3, 1)


def test_grant_observed_advances_owner():
    m = LockManagerState(manager=0)
    m.append(2, 1)
    m.append(3, 1)
    assert m.owner() == 0
    m.grant_observed(2)
    assert m.owner() == 2
    m.grant_observed(3)
    assert m.owner() == 3
    # stale/self grants are ignored
    m.grant_observed(2)
    assert m.owner() == 3


def test_waiter_after():
    m = LockManagerState(manager=0)
    m.append(2, 1)
    m.append(3, 1)
    assert m.waiter_after(0).acquirer == 2
    assert m.waiter_after(2).acquirer == 3
    assert m.waiter_after(3) is None
    assert m.waiter_after(9) is None


def test_in_chain_at_or_after_owner():
    m = LockManagerState(manager=0)
    m.append(2, 1)
    m.append(3, 1)
    m.grant_observed(2)
    assert not m.in_chain_at_or_after_owner(0)
    assert m.in_chain_at_or_after_owner(2)
    assert m.in_chain_at_or_after_owner(3)


def test_chain_pruning_bounds_memory():
    m = LockManagerState(manager=0)
    for k in range(50):
        m.append(k % 3 + 1, k + 1)
        m.grant_observed(k % 3 + 1)
    assert len(m.chain) < 20


def test_self_grant_log_and_trim():
    m = LockManagerState(manager=0)
    for i in (1, 3, 5):
        m.log_self_grant(2, VClock((0, 0, i, 0)))
    dropped = m.trim_self_grants(2, 3)
    assert dropped == 2
    assert [t[2] for t in m.self_grants[2]] == [5]
    assert m.trim_self_grants(1, 10) == 0


def test_chain_snapshot():
    t = LockTable(pid=1, num_procs=N)
    st = t.token(1)
    st.held = True
    st.successor = (3, VClock.zero(N), 7)
    snap = t.chain_snapshot()
    assert snap[1] == (True, True, 3, 7)


def test_restore_chain_simple_walk():
    t = LockTable(pid=0, num_procs=N)
    t.manager(0)
    t.restore_chain(0, holder=2, edges={2: (3, 1), 3: (1, 1)})
    m = t.manager(0)
    assert [e.acquirer for e in m.chain] == [2, 3, 1]
    assert m.owner() == 2


def test_restore_chain_headless_segment_reattached():
    """A crashed holder loses its successor pointer; the orphan path is
    re-attached after the holder."""
    t = LockTable(pid=0, num_procs=N)
    t.manager(0)
    # holder 0 (us), lost edge 0->2; live edges 2->3->1
    t.restore_chain(0, holder=0, edges={2: (3, 1), 3: (1, 1)})
    m = t.manager(0)
    assert [e.acquirer for e in m.chain] == [0, 2, 3, 1]


def test_restore_chain_headless_head_gets_sentinel_seq():
    """A re-attached head's pending seq died with the old manager.

    Its handshake ``completed_seq`` (mirrored into ``last_seq``) is the
    seq of an acquire it already *finished* — seeding the chain entry
    with it makes the repair grant look like a duplicate, the waiter
    drops it, and the token is lost (deadlock). The entry must carry the
    sentinel seq 0, which grantees always accept.
    """
    t = LockTable(pid=0, num_procs=N)
    m = t.manager(0)
    # handshake: waiter 2's last COMPLETED acquire had seq 11
    m.last_seq[2] = 11
    # holder 0 (us, recovered), lost edge 0->2; live edge 2->3 (seq 14)
    t.restore_chain(0, holder=0, edges={2: (3, 14)})
    assert [(e.acquirer, e.seq) for e in m.chain] == [(0, 0), (2, 0), (3, 14)]
    # dedupe state for future re-sent requests is untouched
    assert m.last_seq[2] == 11


def test_restore_chain_cycle_guard():
    t = LockTable(pid=0, num_procs=N)
    t.manager(0)
    t.restore_chain(0, holder=1, edges={1: (2, 1), 2: (1, 2)})
    m = t.manager(0)
    assert [e.acquirer for e in m.chain] == [1, 2]


def test_granted_seq_tracking():
    t = LockTable(pid=0, num_procs=N)
    st = t.token(0)
    st.granted[3] = 2
    assert st.granted.get(3) == 2
