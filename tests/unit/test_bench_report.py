"""Unit tests for bench-result precision and the perf regression gate."""

import json

from repro.metrics.bench import BenchResult, check_report


def test_rates_keep_float_precision():
    # 0.4 events/sec used to round to 0 and poison the recorded baseline
    r = BenchResult("slow", wall_s=10.0, events=4, ops=7)
    d = r.as_dict()
    assert d["events_per_sec"] == 0.4
    assert d["ops_per_sec"] == 0.7
    assert isinstance(d["events_per_sec"], float)


def test_rates_zero_wall_time():
    d = BenchResult("instant", wall_s=0.0, events=100).as_dict()
    assert d["events_per_sec"] == 0.0


def _write_baseline(path, events_per_sec):
    payload = {"after": {"events_per_sec": events_per_sec}}
    path.write_text(json.dumps(payload))


def test_check_report_within_budget(tmp_path):
    path = tmp_path / "bench.json"
    _write_baseline(path, 1000.0)
    ok, msg = check_report(str(path), {"events_per_sec": 800.0}, budget=0.30)
    assert ok and "current=800.00" in msg
    ok, _ = check_report(str(path), {"events_per_sec": 600.0}, budget=0.30)
    assert not ok


def test_check_report_tolerates_integer_baseline(tmp_path):
    # BENCH_core.json files recorded before rates became floats store ints
    path = tmp_path / "bench.json"
    _write_baseline(path, 1000)
    ok, msg = check_report(str(path), {"events_per_sec": 950.5}, budget=0.30)
    assert ok
    assert "baseline=1,000.00" in msg


def test_check_report_rejects_bad_baseline(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"after": {"events_per_sec": "n/a"}}))
    ok, msg = check_report(str(path), {"events_per_sec": 100.0})
    assert not ok and "no events_per_sec" in msg
    ok, msg = check_report(str(tmp_path / "missing.json"), {"events_per_sec": 1.0})
    assert not ok and "no baseline" in msg
