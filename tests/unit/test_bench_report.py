"""Unit tests for bench-result precision and the perf regression gate."""

import json

from repro.metrics.bench import BenchResult, check_report


def test_rates_keep_float_precision():
    # 0.4 events/sec used to round to 0 and poison the recorded baseline
    r = BenchResult("slow", wall_s=10.0, events=4, ops=7)
    d = r.as_dict()
    assert d["events_per_sec"] == 0.4
    assert d["ops_per_sec"] == 0.7
    assert isinstance(d["events_per_sec"], float)


def test_rates_zero_wall_time():
    d = BenchResult("instant", wall_s=0.0, events=100).as_dict()
    assert d["events_per_sec"] == 0.0


def _write_baseline(path, events_per_sec):
    payload = {"after": {"events_per_sec": events_per_sec}}
    path.write_text(json.dumps(payload))


def test_check_report_within_budget(tmp_path):
    path = tmp_path / "bench.json"
    _write_baseline(path, 1000.0)
    ok, msg = check_report(str(path), {"events_per_sec": 800.0}, budget=0.30)
    assert ok and "current=800.00" in msg
    ok, _ = check_report(str(path), {"events_per_sec": 600.0}, budget=0.30)
    assert not ok


def test_check_report_tolerates_integer_baseline(tmp_path):
    # BENCH_core.json files recorded before rates became floats store ints
    path = tmp_path / "bench.json"
    _write_baseline(path, 1000)
    ok, msg = check_report(str(path), {"events_per_sec": 950.5}, budget=0.30)
    assert ok
    assert "baseline=1,000.00" in msg


def test_check_report_rejects_bad_baseline(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"after": {"events_per_sec": "n/a"}}))
    ok, msg = check_report(str(path), {"events_per_sec": 100.0})
    assert not ok and "no events_per_sec" in msg
    ok, msg = check_report(str(tmp_path / "missing.json"), {"events_per_sec": 1.0})
    assert not ok and "no baseline" in msg


# -- scaling-curve gate --------------------------------------------------

from repro.metrics.bench import _scale_cfg, check_scale_report


def _curve_point(app, procs, eps):
    return {"app": app, "procs": procs, "events_per_sec": eps}


def _write_scale_baseline(path, points):
    path.write_text(json.dumps({"after": {"curve": points}}))


def test_check_scale_report_gates_largest_common_point(tmp_path):
    path = tmp_path / "scale.json"
    _write_scale_baseline(
        path,
        [_curve_point("counter", 64, 40000.0), _curve_point("counter", 256, 20000.0)],
    )
    report = {
        "curve": [
            _curve_point("counter", 64, 10.0),  # ignored: not the largest N
            _curve_point("counter", 256, 15000.0),
        ]
    }
    ok, msg = check_scale_report(str(path), report, budget=0.30)
    assert ok and "counter@256" in msg
    report["curve"][1]["events_per_sec"] = 13000.0  # below the 30% floor
    ok, _ = check_scale_report(str(path), report, budget=0.30)
    assert not ok


def test_check_scale_report_smoke_subset_compares_common_points(tmp_path):
    # a smoke run (node counts 8/64) must gate against the full baseline
    path = tmp_path / "scale.json"
    _write_scale_baseline(
        path,
        [_curve_point("kvstore", 64, 30000.0), _curve_point("kvstore", 256, 10000.0)],
    )
    report = {"curve": [_curve_point("kvstore", 64, 29000.0)]}
    ok, msg = check_scale_report(str(path), report)
    assert ok and "kvstore@64" in msg


def test_check_scale_report_requires_comparable_points(tmp_path):
    path = tmp_path / "scale.json"
    _write_scale_baseline(path, [_curve_point("counter", 64, 1.0)])
    ok, msg = check_scale_report(
        str(path), {"curve": [_curve_point("kvstore", 64, 1.0)]}
    )
    assert not ok and "no comparable baseline point" in msg
    ok, _ = check_scale_report(str(path), {"curve": []})
    assert not ok


def test_scale_cfgs_weak_scale_with_node_count():
    for app in ("counter", "kvstore"):
        small, large = _scale_cfg(app, 8), _scale_cfg(app, 256)
        key = "n_elements" if app == "counter" else "n_keys"
        assert large[key] == 32 * small[key]  # footprint grows with N
