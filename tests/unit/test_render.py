"""Unit tests for the shared ASCII rendering helpers (repro.render)."""

import pytest

from repro.render import (
    Table,
    ascii_histogram,
    ascii_series,
    format_bytes,
    format_duration,
    format_pct,
)


def test_format_bytes():
    assert format_bytes(5) == "5 B"
    assert format_bytes(2048) == "2.0 KB"
    assert format_bytes(3_500_000) == "3.50 MB"


def test_format_bytes_negative():
    # thresholds apply to the magnitude so deltas format symmetrically
    assert format_bytes(-5_000_000) == "-5.00 MB"
    assert format_bytes(-2048) == "-2.0 KB"
    assert format_bytes(-5) == "-5 B"
    assert format_bytes(0) == "0 B"


def test_format_pct():
    assert format_pct(42.3) == "42 %"
    assert format_pct(3.14) == "3.1 %"
    assert format_pct(0.123) == "0.12 %"


def test_format_pct_negative():
    assert format_pct(-12.5) == "-12 %"
    assert format_pct(-3.14) == "-3.1 %"
    assert format_pct(-0.123) == "-0.12 %"


def test_table_render_and_access():
    t = Table("T", ["a", "bb"], note="n")
    t.add(1, "x")
    t.add(22, "yyyy")
    out = t.render()
    assert out.splitlines()[0] == "T"
    assert "a " in out and "bb" in out
    assert "yyyy" in out and out.endswith("n")
    assert t.cell(0, "a") == 1
    assert t.column("bb") == ["x", "yyyy"]


def test_table_wrong_arity_rejected():
    t = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_table_empty_renders():
    t = Table("Empty", ["col"])
    assert "Empty" in t.render()


def test_ascii_series_renders_marks():
    out = ascii_series(
        "S",
        {"one": [(0, 0.0), (1, 1.0)], "two": [(0, 1.0), (1, 0.0)]},
        width=20,
        height=5,
    )
    assert "o = one" in out and "x = two" in out
    assert "o" in out.splitlines()[3]


def test_ascii_series_empty():
    assert "(no data)" in ascii_series("S", {})


def test_ascii_series_constant_series():
    height = 12
    out = ascii_series("S", {"flat": [(0, 5.0), (1, 5.0)]}, height=height)
    assert "flat" in out
    # a flat series still draws its marks, centered vertically instead of
    # collapsed onto the bottom axis row
    grid = [l[1:] for l in out.splitlines() if l.startswith("|")]
    assert len(grid) == height
    rows_with_marks = [i for i, r in enumerate(grid) if "o" in r]
    assert rows_with_marks == [height // 2]
    assert grid[height // 2].count("o") == 2


def test_ascii_series_window_labelled_x_axis():
    """With ``window_s`` the x-axis names the window-index bounds, so a
    point on a windowed tail-latency chart maps back to its window."""
    out = ascii_series(
        "S",
        {"p99": [(0.0, 1.0), (5.5e-3, 2.0)]},
        xlabel="s",
        window_s=1e-3,
    )
    xline = next(l for l in out.splitlines() if l.startswith("x:"))
    assert "(windows 0..5, 1.000 ms each)" in xline
    # and without window_s the axis is unchanged
    plain = ascii_series("S", {"p99": [(0.0, 1.0), (5.5e-3, 2.0)]}, xlabel="s")
    assert "windows" not in plain


def test_ascii_series_single_point():
    out = ascii_series("S", {"pt": [(3.0, 7.0)]}, width=20, height=5)
    grid = [l[1:] for l in out.splitlines() if l.startswith("|")]
    # both ranges degenerate: the single mark is centered, not cornered
    assert grid[5 // 2][20 // 2] == "o"
    assert sum(r.count("o") for r in grid) == 1


def test_format_duration_tiers():
    assert format_duration(2.5) == "2.500 s"
    assert format_duration(3.2e-3) == "3.200 ms"
    assert format_duration(55.1e-6) == "55.1 us"
    assert format_duration(4e-9) == "4 ns"
    assert format_duration(0.0) == "0"


def test_ascii_histogram_multi_bucket():
    out = ascii_histogram(
        "H", [("10 us", 40), ("20 us", 0), ("40 us", 4)], width=20
    )
    lines = out.splitlines()
    assert lines[0] == "H"
    # proportional bars, at least one mark for any nonzero count
    assert "#" * 20 in out
    assert any(l.rstrip().endswith("4") and l.count("#") == 2 for l in lines)
    # zero-count rows draw an empty bar and no trailing spaces
    assert all(l == l.rstrip() for l in lines)


def test_ascii_histogram_empty_is_centered_placeholder():
    out = ascii_histogram("H", [], width=40)
    assert "(no samples)" in out
    # centered in the bar area, not flush-left
    assert out.splitlines()[-1].startswith(" ")
    # all-zero buckets degrade identically to no buckets at all
    zeros = ascii_histogram("H", [("a", 0), ("b", 0)], width=40)
    assert "(no samples)" in zeros
    assert "#" not in zeros


def test_ascii_histogram_single_bucket_centered():
    out = ascii_histogram("H", [("55 us", 43)], width=40)
    lines = out.splitlines()
    assert "(single-bucket distribution)" in out
    bar_line = next(l for l in lines if "#" in l)
    # the one bar is centered against the bar area, not pinned to the
    # axis at full width
    bar = bar_line.split("|")[1]
    assert bar.startswith(" ") and "43" in bar_line
    assert bar_line.count("#") < 40


def test_metrics_report_compat_reexport():
    # repro.metrics.report remains as a compatibility alias; the objects
    # must be the same, not parallel copies
    from repro.metrics import report as compat

    assert compat.Table is Table
    assert compat.ascii_series is ascii_series
    assert compat.format_bytes is format_bytes
    assert compat.format_pct is format_pct
