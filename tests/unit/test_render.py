"""Unit tests for the shared ASCII rendering helpers (repro.render)."""

import pytest

from repro.render import Table, ascii_series, format_bytes, format_pct


def test_format_bytes():
    assert format_bytes(5) == "5 B"
    assert format_bytes(2048) == "2.0 KB"
    assert format_bytes(3_500_000) == "3.50 MB"


def test_format_bytes_negative():
    # thresholds apply to the magnitude so deltas format symmetrically
    assert format_bytes(-5_000_000) == "-5.00 MB"
    assert format_bytes(-2048) == "-2.0 KB"
    assert format_bytes(-5) == "-5 B"
    assert format_bytes(0) == "0 B"


def test_format_pct():
    assert format_pct(42.3) == "42 %"
    assert format_pct(3.14) == "3.1 %"
    assert format_pct(0.123) == "0.12 %"


def test_format_pct_negative():
    assert format_pct(-12.5) == "-12 %"
    assert format_pct(-3.14) == "-3.1 %"
    assert format_pct(-0.123) == "-0.12 %"


def test_table_render_and_access():
    t = Table("T", ["a", "bb"], note="n")
    t.add(1, "x")
    t.add(22, "yyyy")
    out = t.render()
    assert out.splitlines()[0] == "T"
    assert "a " in out and "bb" in out
    assert "yyyy" in out and out.endswith("n")
    assert t.cell(0, "a") == 1
    assert t.column("bb") == ["x", "yyyy"]


def test_table_wrong_arity_rejected():
    t = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_table_empty_renders():
    t = Table("Empty", ["col"])
    assert "Empty" in t.render()


def test_ascii_series_renders_marks():
    out = ascii_series(
        "S",
        {"one": [(0, 0.0), (1, 1.0)], "two": [(0, 1.0), (1, 0.0)]},
        width=20,
        height=5,
    )
    assert "o = one" in out and "x = two" in out
    assert "o" in out.splitlines()[3]


def test_ascii_series_empty():
    assert "(no data)" in ascii_series("S", {})


def test_ascii_series_constant_series():
    height = 12
    out = ascii_series("S", {"flat": [(0, 5.0), (1, 5.0)]}, height=height)
    assert "flat" in out
    # a flat series still draws its marks, centered vertically instead of
    # collapsed onto the bottom axis row
    grid = [l[1:] for l in out.splitlines() if l.startswith("|")]
    assert len(grid) == height
    rows_with_marks = [i for i, r in enumerate(grid) if "o" in r]
    assert rows_with_marks == [height // 2]
    assert grid[height // 2].count("o") == 2


def test_ascii_series_single_point():
    out = ascii_series("S", {"pt": [(3.0, 7.0)]}, width=20, height=5)
    grid = [l[1:] for l in out.splitlines() if l.startswith("|")]
    # both ranges degenerate: the single mark is centered, not cornered
    assert grid[5 // 2][20 // 2] == "o"
    assert sum(r.count("o") for r in grid) == 1


def test_metrics_report_compat_reexport():
    # repro.metrics.report remains as a compatibility alias; the objects
    # must be the same, not parallel copies
    from repro.metrics import report as compat

    assert compat.Table is Table
    assert compat.ascii_series is ascii_series
    assert compat.format_bytes is format_bytes
    assert compat.format_pct is format_pct
