"""Direct unit tests of the protocol engine (no cluster/app layers).

A minimal harness wires ``DsmProcess`` instances to an engine+network and
drives hand-written coroutines, pinning down handler-level behaviour that
the integration tests only exercise indirectly.
"""

import numpy as np
import pytest

from repro.dsm.config import DsmConfig
from repro.dsm.diff import Diff
from repro.dsm.messages import DiffMsg, PageFetchReply
from repro.dsm.pages import PageId, PageState, RegionSet
from repro.dsm.protocol import DsmProcess
from repro.dsm.vclock import VClock
from repro.sim.engine import Engine
from repro.sim.network import Network


class Harness:
    def __init__(self, n=2, elements=64, page_size=64):
        self.config = DsmConfig(num_procs=n, page_size=page_size)
        self.engine = Engine()
        self.network = Network(self.engine, n)
        self.regions = RegionSet(self.config)
        self.region = self.regions.allocate("r", elements)
        self.regions.seal()
        self.procs = [
            DsmProcess(
                pid=i,
                config=self.config,
                regions=self.regions,
                engine=self.engine,
                send_fn=lambda s, d, m: self.network.send(
                    s, d, m, m.size_bytes(self.config), m.category,
                    m.ft_bytes(self.config),
                ),
            )
            for i in range(n)
        ]
        for p in self.procs:
            self.network.register(p.pid, p.handle_message)

    def run(self, *gens):
        handles = [self.engine.spawn(g) for g in gens]
        self.engine.run_until_done(handles)
        self.engine.run()  # drain in-flight deliveries
        return handles


def test_write_flush_propagates_to_home():
    h = Harness(n=2, elements=64, page_size=64)  # 8 pages, homes alternate
    p0, p1 = h.procs
    # page 1 is homed at p1; p0 writes it and flushes via a release
    def writer():
        yield from p0.acquire(0)
        v = yield from p0.write_range(h.region, 8, 10)  # elements 8,9 -> page 1
        v[:] = [3.0, 4.0]
        yield from p0.release(0)

    h.run(writer())
    home_view = p1.typed_view(h.region)
    assert home_view[8] == 3.0 and home_view[9] == 4.0
    # the flush interval (acquire bump + flush bump = 2) is recorded
    assert p1.home[PageId(0, 1)].version[0] == 2


def test_fetch_waits_for_required_version():
    """A fetch demanding a version the home lacks must block until the
    diff arrives, then return fresh content."""
    h = Harness(n=2, elements=8, page_size=64)  # single page, home p0
    p0, p1 = h.procs
    page = PageId(0, 0)
    seen = []

    def reader():
        entry = p1.entries[page]
        entry.state = PageState.INVALID
        entry.needed_v = VClock((5, 0))  # p0's interval 5
        v = yield from p1.read_range(h.region, 0, 1)
        seen.append(float(v[0]))

    def late_writer():
        yield from p0.compute(1e-3)  # let the fetch arrive and block
        yield from p0.acquire(0)
        v = yield from p0.write_range(h.region, 0, 1)
        v[0] = 42.0
        yield from p0.release(0)
        # interval is far below 5; bump the version artificially to
        # release the pending fetch
        hp = p0.home[page]
        hp.advance(0, 5)
        hp.service_pending()

    h.run(reader(), late_writer())
    assert seen == [42.0]


def test_home_dedupes_replayed_diffs():
    h = Harness(n=2, elements=8, page_size=64)
    p0, _p1 = h.procs
    page = PageId(0, 0)
    d = Diff(((0, np.float64(7.0).tobytes()),))
    msg = DiffMsg(page=page, writer=1, diff=d, diff_vt=VClock((0, 3)))
    p0._handle_diff(1, msg)
    assert p0.typed_view(h.region)[0] == 7.0
    assert p0.home[page].version[1] == 3
    # overwrite locally, then replay the same-interval diff: ignored
    p0.typed_view(h.region)[0] = 9.0
    p0._handle_diff(1, msg)
    assert p0.typed_view(h.region)[0] == 9.0


def test_stale_fetch_reply_dropped():
    h = Harness(n=2)
    p1 = h.procs[1]
    reply = PageFetchReply(
        page=PageId(0, 0), data=b"\x00" * 64, version=VClock((0, 0))
    )
    # no pending fetch: must not crash nor corrupt anything
    p1._handle_fetch_reply(reply)


def test_grant_carries_only_window_notices():
    """The grantor sends exactly the notices in (acq_vt, rel_vt]."""
    h = Harness(n=2, elements=64, page_size=64)
    p0, p1 = h.procs
    grants = []

    orig = p1._complete_acquire

    def spy(lock_id, grant, local):
        grants.append(grant)
        orig(lock_id, grant, local)

    p1._complete_acquire = spy

    def writer():
        for k in range(3):
            yield from p0.acquire(0)
            v = yield from p0.write_range(h.region, k, k + 1)
            v[0] = k + 1.0
            yield from p0.release(0)

    def acquirer():
        yield from p1.compute(5e-3)  # after all three writer intervals
        yield from p1.acquire(0)
        yield from p1.release(0)
        yield from p1.compute(1e-3)
        yield from p1.acquire(0)  # nothing new happened: no new notices
        yield from p1.release(0)

    h.run(writer(), acquirer())
    first, second = grants[0], grants[1]
    assert len(first.notices) >= 1  # all of p0's notices, unseen so far
    assert len(second.notices) == 0  # window is empty the second time


def test_self_grant_logged_at_manager():
    h = Harness(n=2)
    p0 = h.procs[0]  # manager of lock 0

    def body():
        yield from p0.acquire(0)
        v = yield from p0.write_range(h.region, 0, 1)
        v[0] = 1.0
        yield from p0.release(0)
        yield from p0.acquire(0)  # fast path: self grant
        yield from p0.release(0)

    h.run(body())
    mgr = p0.locks.manager(0)
    assert len(mgr.self_grants.get(0, [])) == 2  # both local acquires


def test_acquire_bumps_own_component():
    h = Harness(n=2)
    p1 = h.procs[1]
    before = []

    def body():
        before.append(p1.vt[1])
        yield from p1.acquire(0)
        before.append(p1.vt[1])
        yield from p1.release(0)

    h.run(body())
    assert before[1] == before[0] + 1


def test_notice_skipped_when_copy_fresh():
    h = Harness(n=2, elements=8, page_size=64)
    p1 = h.procs[1]
    page = PageId(0, 0)
    p1.entries[page].state = PageState.RO
    p1.have_v[page] = VClock((4, 0))
    from repro.dsm.messages import WriteNotice

    wn = WriteNotice(0, 3, page, VClock((3, 0)))
    p1._apply_notices([wn])
    # the local copy already includes interval 3: stays valid
    assert p1.entries[page].state is PageState.RO
    wn2 = WriteNotice(0, 5, page, VClock((5, 0)))
    p1._apply_notices([wn2])
    assert p1.entries[page].state is PageState.INVALID
    assert p1.entries[page].needed_v[0] == 5


def test_dirty_page_invalidation_is_protocol_error():
    h = Harness(n=2, elements=8, page_size=64)
    p1 = h.procs[1]
    page = PageId(0, 0)
    entry = p1.entries[page]
    entry.state = PageState.RW
    entry.dirty = True
    from repro.dsm.messages import WriteNotice

    with pytest.raises(RuntimeError, match="dirty"):
        p1._note_invalidation(WriteNotice(0, 9, page, VClock((9, 0))))
