"""Unit tests for regions, page tables and home assignment."""

import pytest

from repro.dsm.config import DsmConfig
from repro.dsm.pages import PageId, RegionSet, SharedRegion


def cfg(**kw):
    return DsmConfig(**{"num_procs": 4, "page_size": 64, **kw})


def test_region_geometry():
    r = SharedRegion(0, "r", num_elements=20, dtype="float64", config=cfg())
    # 20 * 8 = 160 bytes -> 3 pages of 64
    assert r.num_pages == 3
    assert r.nbytes == 192
    assert r.elems_per_page == 8


def test_page_of_element_and_ranges():
    r = SharedRegion(0, "r", 24, "float64", cfg())
    assert r.page_of_element(0) == 0
    assert r.page_of_element(7) == 0
    assert r.page_of_element(8) == 1
    assert list(r.pages_for_range(0, 8)) == [0]
    assert list(r.pages_for_range(7, 9)) == [0, 1]
    assert list(r.pages_for_range(5, 5)) == []
    with pytest.raises(IndexError):
        r.page_of_element(24)


def test_page_slice():
    r = SharedRegion(0, "r", 24, "float64", cfg())
    assert r.page_slice(1) == (64, 128)


def test_round_robin_homes():
    r = SharedRegion(0, "r", 64, "float64", cfg())  # 8 pages
    assert [r.home_of(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert r.pages_homed_at(1) == [1, 5]


def test_blocked_homes():
    r = SharedRegion(0, "r", 64, "float64", cfg(home_policy="blocked"))
    homes = [r.home_of(i) for i in range(8)]
    assert homes == [0, 0, 1, 1, 2, 2, 3, 3]


def test_explicit_home_assignment():
    r = SharedRegion(0, "r", 64, "float64", cfg(home_policy="explicit"))
    r.set_home(3, 2)
    assert r.home_of(3) == 2
    with pytest.raises(ValueError):
        r.set_home(0, 99)


def test_region_set_allocation_and_seal():
    rs = RegionSet(cfg())
    a = rs.allocate("a", 16)
    b = rs.allocate("b", 8, dtype="int64")
    assert a.region_id == 0 and b.region_id == 1
    assert len(rs) == 2
    assert rs.total_bytes == a.nbytes + b.nbytes
    rs.seal()
    with pytest.raises(RuntimeError):
        rs.allocate("c", 4)


def test_region_set_page_ids_and_homes():
    rs = RegionSet(cfg())
    a = rs.allocate("a", 16)  # 2 pages
    ids = rs.all_page_ids()
    assert PageId(0, 0) in ids and PageId(0, 1) in ids
    assert rs.home_of(PageId(0, 1)) == 1
    assert PageId(0, 0) in rs.pages_homed_at(0)


def test_small_region_still_one_page():
    r = SharedRegion(0, "tiny", 1, "float64", cfg())
    assert r.num_pages == 1


def test_bad_page_size_rejected():
    with pytest.raises(ValueError):
        DsmConfig(page_size=100)  # not multiple of 8
    with pytest.raises(ValueError):
        DsmConfig(page_size=4)


def test_config_validation():
    with pytest.raises(ValueError):
        DsmConfig(num_procs=0)
    with pytest.raises(ValueError):
        DsmConfig(home_policy="nope")
    with pytest.raises(ValueError):
        DsmConfig(num_procs=4, barrier_manager=7)
    c = DsmConfig(num_procs=4)
    assert c.lock_manager(6) == 2
    assert c.vt_bytes() == 16


def test_set_home_rejected_after_seal():
    rs = RegionSet(cfg(home_policy="explicit"))
    r = rs.allocate("a", 64)
    r.set_home(0, 3)  # legal: sharing has not started
    rs.seal()
    with pytest.raises(RuntimeError, match="sealed"):
        r.set_home(0, 1)
    assert r.home_of(0) == 3  # placement unchanged by the rejected call


def test_set_home_unowned_region_is_unrestricted():
    # a bare SharedRegion (no RegionSet) has no seal to enforce
    r = SharedRegion(0, "r", 64, "float64", cfg(home_policy="explicit"))
    r.set_home(1, 2)
    assert r.home_of(1) == 2
