"""Unit + property tests for the trimming bounds (LLT/CGC inputs)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.trimming import TrimmingInfo
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

N = 4


def vt(*c):
    return VClock(c)


def test_initial_bounds_are_conservative():
    t = TrimmingInfo(0, N)
    assert t.tmin() == VClock.zero(N)
    assert t.wn_keep_from() == 1
    assert t.rel_bound(1) == 0
    assert t.acq_bound() == 0
    assert t.diff_bound(PageId(0, 0)) == 0
    assert t.bar_keep_from() == 0


def test_learn_tckp_monotone():
    t = TrimmingInfo(0, N)
    t.learn_tckp(1, vt(1, 5, 0, 0), bar_ep=2)
    t.learn_tckp(1, vt(0, 3, 1, 0), bar_ep=1)  # stale: join, not replace
    assert t.tckp[1] == vt(1, 5, 1, 0)
    assert t.bar_ep[1] == 2


def test_tmin_excludes_self():
    t = TrimmingInfo(0, N)
    t.learn_tckp(0, vt(99, 99, 99, 99))
    t.learn_tckp(1, vt(1, 2, 3, 4))
    t.learn_tckp(2, vt(4, 3, 2, 1))
    t.learn_tckp(3, vt(2, 2, 2, 2))
    assert t.tmin() == vt(1, 2, 2, 1)


def test_wn_keep_from_uses_min_peer_component():
    t = TrimmingInfo(2, N)
    t.learn_tckp(0, vt(0, 0, 5, 0))
    t.learn_tckp(1, vt(0, 0, 3, 0))
    t.learn_tckp(3, vt(0, 0, 7, 0))
    assert t.wn_keep_from() == 4  # min(5,3,7) + 1


def test_learn_p0v_monotone():
    t = TrimmingInfo(0, N)
    p = PageId(1, 2)
    t.learn_p0v(p, 5)
    t.learn_p0v(p, 3)
    assert t.diff_bound(p) == 5
    t.learn_p0v(p, 9)
    assert t.diff_bound(p) == 9


def test_single_process_cluster():
    t = TrimmingInfo(0, 1)
    t.tckp = [VClock((7,))]
    assert t.tmin() == VClock((7,))
    assert t.wn_keep_from() == 1
    assert t.bar_keep_from() == 0


@given(
    st.lists(
        st.tuples(
            st.integers(0, N - 1),
            st.lists(st.integers(0, 20), min_size=N, max_size=N),
        ),
        max_size=20,
    )
)
def test_tmin_never_exceeds_any_peer_knowledge(updates):
    """Staleness safety: Tmin is always a lower bound of every peer's
    last known checkpoint — so CGC never discards a copy a peer-recovery
    could still need."""
    t = TrimmingInfo(0, N)
    for proc, c in updates:
        t.learn_tckp(proc, VClock(c))
    tm = t.tmin()
    for j in range(1, N):
        assert tm.leq(t.tckp[j])


@given(st.lists(st.integers(0, 30), max_size=15))
def test_p0v_bound_is_max_of_learned(values):
    t = TrimmingInfo(0, N)
    p = PageId(0, 0)
    for v in values:
        t.learn_p0v(p, v)
    assert t.diff_bound(p) == (max(values) if values else 0)


def test_llt_trim_after_recovery_mixed_saved_and_fresh_entries():
    """LLT trim right after a recovery.

    Recovery restores the checkpointed diff log with every entry marked
    ``saved=True`` (the snapshot had reached disk with the checkpoint);
    replay then appends fresh *unsaved* entries on top. The first LLT
    after going live may drop a mix of both, and the byte accounting
    must split correctly: restored entries count toward
    ``bytes_discarded_saved``, fresh ones drain ``unsaved_bytes``, and
    the stable-footprint view (``saved_bytes``) only loses the restored
    share.
    """
    from repro.core.logs import DiffLog
    from repro.dsm.diff import Diff

    page = PageId(0, 0)
    dl = DiffLog()
    # restored-from-checkpoint entries (recovery appends with saved=True)
    r1 = dl.append(page, Diff(((0, b"x" * 8),)), vt(1, 0, 0, 0), saved=True)
    r2 = dl.append(page, Diff(((0, b"x" * 8),)), vt(2, 0, 0, 0), saved=True)
    # fresh post-recovery entries, not yet flushed
    f1 = dl.append(page, Diff(((0, b"y" * 8),)), vt(3, 0, 0, 0))
    f2 = dl.append(page, Diff(((0, b"y" * 8),)), vt(5, 0, 0, 0))
    assert dl.saved_bytes == r1.size_bytes + r2.size_bytes
    assert dl.unsaved_bytes == f1.size_bytes + f2.size_bytes

    # peers' checkpoints have advanced past interval 3: Rule 3.2 drops
    # both restored entries and the first fresh one
    dropped = dl.trim_page(page, creator=0, min_keep_interval=3)
    assert dropped == r1.size_bytes + r2.size_bytes + f1.size_bytes
    assert [e.t[0] for e in dl.entries_for(page)] == [5]
    assert dl.bytes_discarded_saved == r1.size_bytes + r2.size_bytes
    assert dl.unsaved_bytes == f2.size_bytes
    assert dl.saved_bytes == 0
    assert dl.volatile_bytes == f2.size_bytes


# -- incremental bounds vs full-rescan oracles --------------------------

_learn_seq = st.lists(
    st.tuples(
        st.integers(0, N - 1),  # proc whose row advances
        st.lists(st.integers(0, 20), min_size=N, max_size=N),
        st.integers(0, 5),  # bar_ep
    ),
    max_size=30,
)


@given(_learn_seq)
def test_incremental_bounds_match_rescan(seq):
    t = TrimmingInfo(0, N)
    for proc, vec, bar in seq:
        t.learn_tckp(proc, VClock(vec), bar)
        assert t.tmin() == t._rescan_tmin()
        assert t.wn_keep_from() == t._rescan_wn_keep_from()
        assert t.bar_keep_from() == t._rescan_bar_keep_from()


def test_incremental_bounds_match_rescan_wide():
    """Long randomized learn sequence at a scale-out width (array path)."""
    import numpy as np

    n = 48
    rng = np.random.default_rng(20260808)
    t = TrimmingInfo(3, n)
    for step in range(400):
        proc = int(rng.integers(n))
        vec = VClock(tuple(int(x) for x in rng.integers(0, 60, n)))
        t.learn_tckp(proc, vec, int(rng.integers(0, 9)))
        if step % 7 == 0:
            assert t.tmin() == t._rescan_tmin()
            assert t.wn_keep_from() == t._rescan_wn_keep_from()
            assert t.bar_keep_from() == t._rescan_bar_keep_from()
    assert t.tmin() == t._rescan_tmin()
    assert t.wn_keep_from() == t._rescan_wn_keep_from()
    assert t.bar_keep_from() == t._rescan_bar_keep_from()


def test_row_gen_tracks_changes_for_gossip_delta():
    """row_gen stamps exactly the rows that changed, in gen order."""
    t = TrimmingInfo(0, N)
    assert t.gen == 0 and list(t.row_gen) == [0] * N
    t.learn_tckp(1, vt(0, 5, 0, 0))
    g1 = t.gen
    assert g1 > 0 and t.row_gen[1] == g1
    t.learn_tckp(1, vt(0, 3, 0, 0))  # dominated: no change
    assert t.gen == g1
    t.learn_tckp(2, vt(0, 0, 7, 0))
    assert t.gen > g1 and t.row_gen[2] == t.gen and t.row_gen[1] == g1
