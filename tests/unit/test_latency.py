"""Property tests for the log-bucket latency percentile engine.

The engine's contract (``repro.observe.latency.engine``):

* percentile estimates are within the documented relative-error bound
  (``growth - 1``) of the exact sorted-list percentile at the same rank;
* ``merge(h1, h2)`` is indistinguishable from a histogram built from
  the concatenated samples;
* counts, min/max and every percentile are exactly insertion-order
  invariant (``sum`` is the one float-accumulation field that is not).

Verified with hypothesis where available, plus seeded wide cases.
"""

import math
import random

import pytest

from repro.observe.latency import (
    DEFAULT_GROWTH,
    PERCENTILES,
    LatencyHistogram,
    exact_percentile,
)
from repro.observe.registry import CLUSTER_NODE, NULL_LATENCY, MetricsRegistry

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: spans ns to ks — the full range of plausible virtual-time durations
durations = st.floats(
    min_value=1e-9, max_value=1e3, allow_nan=False, allow_infinity=False
)
samples = st.lists(durations, min_size=1, max_size=300)

#: the documented relative-error bound of the bucket geometry
REL_ERR = DEFAULT_GROWTH - 1.0


def fill(values, name="h", node=0):
    h = LatencyHistogram(name, node)
    for v in values:
        h.observe(v)
    return h


# ---------------------------------------------------------------------------
# error bound vs exact percentiles
# ---------------------------------------------------------------------------
@given(samples)
@settings(max_examples=200, deadline=None)
def test_percentile_within_documented_error_of_exact(values):
    h = fill(values)
    for p in PERCENTILES:
        exact = exact_percentile(values, p)
        est = h.percentile(p)
        assert est <= max(values)
        assert est >= min(values)
        # the estimate is the clamped upper bound of the exact value's
        # bucket: never more than one bucket ratio above the exact
        assert est >= exact * (1.0 - 1e-12)
        assert est <= exact * (1.0 + REL_ERR) * (1.0 + 1e-9)


def test_percentile_error_bound_seeded_wide():
    rng = random.Random(20260808)
    for scale in (1e-7, 1e-4, 1e-1, 10.0):
        values = [rng.expovariate(1.0) * scale for _ in range(5000)]
        h = fill(values)
        for p in PERCENTILES:
            exact = exact_percentile(values, p)
            est = h.percentile(p)
            assert exact * (1.0 - 1e-12) <= est
            assert est <= exact * (1.0 + REL_ERR) * (1.0 + 1e-9)


def test_exact_percentile_rank_rule():
    values = [1.0, 2.0, 3.0, 4.0]
    # rank = ceil(p/100 * n), 1-indexed
    assert exact_percentile(values, 50.0) == 2.0
    assert exact_percentile(values, 75.0) == 3.0
    assert exact_percentile(values, 76.0) == 4.0
    assert exact_percentile(values, 99.9) == 4.0
    assert exact_percentile([7.0], 50.0) == 7.0


# ---------------------------------------------------------------------------
# merge == concat
# ---------------------------------------------------------------------------
@given(samples, samples)
@settings(max_examples=150, deadline=None)
def test_merge_equals_concatenation(a, b):
    merged = LatencyHistogram.merged([fill(a), fill(b)], name="m")
    concat = fill(a + b, name="m")
    assert merged.buckets == concat.buckets
    assert merged.zero_count == concat.zero_count
    assert merged.count == concat.count
    assert merged.min == concat.min
    assert merged.max == concat.max
    for p in PERCENTILES:
        assert merged.percentile(p) == concat.percentile(p)
    assert merged.total == pytest.approx(concat.total)


def test_merge_rejects_mismatched_geometry():
    a = LatencyHistogram("a", 0)
    b = LatencyHistogram("b", 0, growth=2.0)
    with pytest.raises(ValueError, match="geometry"):
        a.merge_from(b)


# ---------------------------------------------------------------------------
# insertion-order determinism
# ---------------------------------------------------------------------------
@given(samples, st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_insertion_order_invariance(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    h1, h2 = fill(values), fill(shuffled)
    # everything except the float-accumulated sum is exactly invariant
    assert h1.buckets == h2.buckets
    assert h1.count == h2.count
    assert (h1.min, h1.max) == (h2.min, h2.max)
    for p in PERCENTILES:
        assert h1.percentile(p) == h2.percentile(p)
    assert h1.total == pytest.approx(h2.total)


def test_insertion_order_seeded_wide():
    rng = random.Random(7)
    values = [rng.lognormvariate(-8.0, 3.0) for _ in range(20000)]
    h1 = fill(values)
    backwards = fill(list(reversed(values)))
    assert h1.buckets == backwards.buckets
    assert [h1.percentile(p) for p in PERCENTILES] == [
        backwards.percentile(p) for p in PERCENTILES
    ]


# ---------------------------------------------------------------------------
# geometry and edge cases
# ---------------------------------------------------------------------------
@given(durations)
@settings(max_examples=300, deadline=None)
def test_bucket_bounds_contain_value(v):
    h = LatencyHistogram("h", 0)
    i = h.bucket_index(v)
    assert h.upper_bound(i) >= v
    if i > 0:
        assert h.upper_bound(i - 1) < v


def test_zero_and_negative_samples():
    h = LatencyHistogram("h", 0)
    h.observe(0.0)
    h.observe(-1.0)  # clamped: durations cannot be negative
    h.observe(1e-4)
    assert h.zero_count == 2
    assert h.count == 3
    assert h.min == 0.0
    assert h.percentile(50.0) == 0.0
    assert h.percentile(99.9) >= 1e-4 * (1.0 - 1e-12)


def test_empty_histogram_summary():
    h = LatencyHistogram("h", 0)
    assert h.count == 0
    assert h.percentile(50.0) == 0.0
    d = h.to_dict()
    assert d["count"] == 0 and d["buckets"] == []


def test_serialization_roundtrip():
    h = fill([1e-6, 5e-5, 5e-5, 2e-3, 0.0], name="lat.fetch", node=3)
    again = LatencyHistogram.from_dict(h.to_dict(), name=h.name, node=h.node)
    assert again.buckets == h.buckets
    assert again.zero_count == h.zero_count
    assert again.count == h.count
    assert (again.min, again.max) == (h.min, h.max)
    for p in PERCENTILES:
        assert again.percentile(p) == h.percentile(p)


# ---------------------------------------------------------------------------
# registry integration
# ---------------------------------------------------------------------------
def test_registry_latency_interning_and_merge():
    reg = MetricsRegistry()
    a = reg.latency("lat.fetch", 0)
    assert reg.latency("lat.fetch", 0) is a
    b = reg.latency("lat.fetch", 1)
    assert b is not a
    a.observe(1e-4)
    b.observe(2e-4)
    merged = reg.merged_latency("lat.fetch")
    assert merged.node == CLUSTER_NODE
    assert merged.count == 2
    assert "lat.fetch" in reg.latency_names()
    assert reg.merged_latency("lat.nothing") is None


def test_disabled_registry_returns_null_latency():
    reg = MetricsRegistry(enabled=False)
    h = reg.latency("lat.fetch", 0)
    assert h is NULL_LATENCY
    h.observe(1.0)  # no-op
    assert h.count == 0
    assert reg.latency_names() == []
