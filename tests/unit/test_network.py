"""Unit tests for the network model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import Network, NetworkConfig


def make_net(n=3, **cfg):
    eng = Engine()
    net = Network(eng, n, NetworkConfig(**cfg))
    inbox = {i: [] for i in range(n)}
    for i in range(n):
        net.register(i, lambda src, msg, i=i: inbox[i].append((src, msg)))
    return eng, net, inbox


def test_delivery_and_latency():
    eng, net, inbox = make_net(latency=10e-6, bandwidth=100e6)
    net.send(0, 1, "hello", size=1000, category="x")
    eng.run()
    assert inbox[1] == [(0, "hello")]
    assert eng.now == pytest.approx(10e-6 + 1000 / 100e6)


def test_fifo_per_channel_even_when_sizes_differ():
    eng, net, inbox = make_net(latency=10e-6, bandwidth=1e6)
    # big message first: takes 1ms; small one would overtake without FIFO
    net.send(0, 1, "big", size=1000, category="x")
    net.send(0, 1, "small", size=1, category="x")
    eng.run()
    assert [m for _, m in inbox[1]] == ["big", "small"]


def test_channels_are_independent():
    eng, net, inbox = make_net(latency=10e-6, bandwidth=1e6)
    net.send(0, 1, "big", size=100000, category="x")
    net.send(0, 2, "small", size=1, category="x")
    eng.run(until=1e-3)
    assert inbox[2] and not inbox[1]


def test_loopback_rejected():
    eng, net, _ = make_net()
    with pytest.raises(ValueError):
        net.send(1, 1, "x", size=10, category="x")


def test_bad_sizes_rejected():
    eng, net, _ = make_net()
    with pytest.raises(ValueError):
        net.send(0, 1, "x", size=-1, category="x")
    with pytest.raises(ValueError):
        net.send(0, 1, "x", size=10, category="x", ft_bytes=11)


def test_traffic_accounting_by_category():
    eng, net, _ = make_net()
    net.send(0, 1, "a", size=100, category="lock")
    net.send(0, 2, "b", size=200, category="page", ft_bytes=20)
    net.send(1, 2, "c", size=50, category="lock", ft_bytes=5)
    eng.run()
    t = net.traffic
    assert t.total_bytes == 350
    assert t.total_msgs == 3
    assert t.bytes_by_category["lock"] == 150
    assert t.bytes_by_category["page"] == 200
    assert t.msgs_by_category["lock"] == 2
    assert t.ft_bytes == 25
    assert t.base_bytes == 325
    assert t.ft_overhead_percent() == pytest.approx(100 * 25 / 325)


def test_ft_overhead_zero_when_no_traffic():
    eng, net, _ = make_net()
    assert net.traffic.ft_overhead_percent() == 0.0


def test_register_out_of_range():
    eng = Engine()
    net = Network(eng, 2)
    with pytest.raises(ValueError):
        net.register(5, lambda s, m: None)


def test_unregistered_destination_raises():
    eng = Engine()
    net = Network(eng, 2)
    net.send(0, 1, "x", size=1, category="x")
    with pytest.raises(RuntimeError, match="no handler"):
        eng.run()
