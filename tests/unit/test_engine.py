"""Unit tests for the discrete-event engine and coroutine trampoline."""

import pytest

from repro.sim.engine import (
    Delay,
    Engine,
    Future,
    SimProcessKilled,
    SimulationError,
    gather,
    sleep,
)


def test_schedule_runs_in_time_order():
    eng = Engine()
    out = []
    eng.schedule(2.0, lambda: out.append("b"))
    eng.schedule(1.0, lambda: out.append("a"))
    eng.schedule(3.0, lambda: out.append("c"))
    eng.run()
    assert out == ["a", "b", "c"]
    assert eng.now == 3.0


def test_equal_times_fire_in_scheduling_order():
    eng = Engine()
    out = []
    for i in range(5):
        eng.schedule(1.0, lambda i=i: out.append(i))
    eng.run()
    assert out == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        Delay(-0.5)


def test_run_until_stops_at_deadline():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append(1))
    eng.schedule(5.0, lambda: fired.append(2))
    eng.run(until=2.0)
    assert fired == [1]
    assert eng.now == 2.0


def test_coroutine_delay_advances_clock():
    eng = Engine()
    times = []

    def proc():
        times.append(eng.now)
        yield Delay(1.5)
        times.append(eng.now)
        yield Delay(0.5)
        times.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert times == [0.0, 1.5, 2.0]


def test_future_resolution_resumes_with_value():
    eng = Engine()
    fut = Future("t")
    got = []

    def waiter():
        v = yield fut
        got.append(v)

    eng.spawn(waiter())
    eng.schedule(2.0, lambda: fut.resolve(42))
    eng.run()
    assert got == [42]
    assert eng.now == 2.0


def test_future_multiple_waiters_all_resume():
    eng = Engine()
    fut = Future()
    got = []

    def waiter(i):
        v = yield fut
        got.append((i, v))

    for i in range(3):
        eng.spawn(waiter(i))
    eng.schedule(1.0, lambda: fut.resolve("x"))
    eng.run()
    assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]


def test_future_double_resolve_raises():
    fut = Future()
    fut.resolve(1)
    with pytest.raises(SimulationError):
        fut.resolve(2)


def test_future_value_before_resolution_raises():
    fut = Future()
    with pytest.raises(SimulationError):
        _ = fut.value


def test_resolved_future_yields_immediately():
    eng = Engine()
    fut = Future()
    fut.resolve(7)
    got = []

    def proc():
        v = yield fut
        got.append((eng.now, v))

    eng.spawn(proc())
    eng.run()
    assert got == [(0.0, 7)]


def test_yield_from_composition():
    eng = Engine()
    order = []

    def inner():
        yield Delay(1.0)
        order.append("inner")
        return 99

    def outer():
        v = yield from inner()
        order.append(("outer", v, eng.now))

    eng.spawn(outer())
    eng.run()
    assert order == ["inner", ("outer", 99, 1.0)]


def test_kill_stops_process():
    eng = Engine()
    progressed = []

    def proc():
        try:
            while True:
                yield Delay(1.0)
                progressed.append(eng.now)
        except SimProcessKilled:
            raise

    handle = eng.spawn(proc())
    eng.schedule(2.5, handle.kill)
    eng.run()
    assert progressed == [1.0, 2.0]
    assert not handle.alive
    assert not handle.done


def test_killed_process_never_resumes_from_pending_future():
    eng = Engine()
    fut = Future()
    resumed = []

    def proc():
        v = yield fut
        resumed.append(v)

    handle = eng.spawn(proc())
    eng.schedule(1.0, handle.kill)
    eng.schedule(2.0, lambda: fut.resolve("late"))
    eng.run()
    assert resumed == []


def test_process_result_captured():
    eng = Engine()

    def proc():
        yield Delay(1.0)
        return "done"

    handle = eng.spawn(proc())
    eng.run()
    assert handle.done
    assert handle.result == "done"


def test_unsupported_effect_raises():
    eng = Engine()

    def proc():
        yield "not-an-effect"

    eng.spawn(proc())
    with pytest.raises(SimulationError, match="unsupported effect"):
        eng.run()


def test_run_until_done_detects_deadlock():
    eng = Engine()

    def proc():
        yield Future("never")

    handle = eng.spawn(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        eng.run_until_done([handle])


def test_sleep_helper():
    eng = Engine()
    t = []

    def proc():
        yield from sleep(3.0)
        t.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert t == [3.0]


def test_gather_resolves_when_all_do():
    futs = [Future(str(i)) for i in range(3)]
    out = gather(futs)
    futs[1].resolve("b")
    assert not out.resolved
    futs[0].resolve("a")
    futs[2].resolve("c")
    assert out.resolved
    assert out.value == ["a", "b", "c"]


def test_gather_empty_resolves_immediately():
    out = gather([])
    assert out.resolved and out.value == []


def test_determinism_same_schedule_same_trace():
    def build():
        eng = Engine()
        trace = []

        def proc(name, delay):
            for _ in range(3):
                yield Delay(delay)
                trace.append((name, eng.now))

        eng.spawn(proc("a", 1.0))
        eng.spawn(proc("b", 0.7))
        eng.run()
        return trace

    assert build() == build()


# ---------------------------------------------------------------------------
# ready-queue fast path (the heap/FIFO merge must reproduce the exact
# total order of a single priority queue)
# ---------------------------------------------------------------------------


def test_ready_queue_and_heap_interleave_by_seq_at_equal_time():
    """A heap event and a ready event at the same timestamp fire in
    scheduling (seq) order, not source order."""
    eng = Engine()
    order = []

    def a():
        order.append("a")
        # lands in the ready FIFO at t=1.0 with a seq AFTER b's
        eng.call_soon(lambda: order.append("c"))

    eng.schedule(1.0, a)  # heap, seq 0
    eng.schedule(1.0, lambda: order.append("b"))  # heap, seq 1
    eng.run()
    # a ready-first (or heap-first) drain would produce a,c,b / wrong
    assert order == ["a", "b", "c"]


def test_zero_delay_events_fire_before_later_heap_events():
    eng = Engine()
    order = []
    eng.schedule(0.5, lambda: order.append("later"))
    eng.schedule(0.0, lambda: order.append("now1"))
    eng.call_soon(lambda: order.append("now2"))
    eng.run()
    assert order == ["now1", "now2", "later"]
    assert eng.now == 0.5


def test_already_resolved_future_resumes_after_pending_ready_events():
    """The resolved-before-wait fast path queues the continuation rather
    than resuming inline, so earlier zero-delay work still runs first."""
    eng = Engine()
    order = []
    fut = Future("pre")
    fut.resolve(42)

    def proc():
        order.append("start")
        got = yield fut
        order.append(("resumed", got, eng.now))

    eng.spawn(proc())
    eng.call_soon(lambda: order.append("queued"))
    eng.run()
    assert order == ["start", "queued", ("resumed", 42, 0.0)]


def test_kill_process_sitting_in_ready_queue():
    """kill() of a process whose continuation is already in the ready
    FIFO must prevent it from ever running."""
    eng = Engine()
    ran = []

    def victim():
        ran.append("victim")
        yield Delay(1.0)

    proc = eng.spawn(victim())  # first step queued via call_soon
    proc.kill()
    eng.run()
    assert ran == []
    assert not proc.alive and not proc.done


def test_kill_process_with_queued_future_continuation():
    eng = Engine()
    ran = []
    fut = Future()

    def victim():
        yield fut
        ran.append("resumed")

    proc = eng.spawn(victim())
    # at t=1.0 the resolve queues victim's continuation with a seq later
    # than the kill callback's, so the kill fires first and the queued
    # continuation must be a no-op
    eng.schedule(1.0, lambda: fut.resolve("v"))
    eng.schedule(1.0, lambda: proc.kill())
    eng.run()
    assert ran == []


# ----------------------------------------------------------------------
# step-indexed breakpoints (crash-sweep injection primitive)
# ----------------------------------------------------------------------


def test_breakpoint_fires_after_named_step():
    eng = Engine()
    fired = []

    def ticker():
        for _ in range(5):
            yield Delay(1.0)

    eng.spawn(ticker())
    eng.break_at_step(3, lambda: fired.append(eng.steps))
    eng.run()
    assert fired == [3]


def test_breakpoint_in_past_rejected():
    eng = Engine()

    def ticker():
        for _ in range(5):
            yield Delay(1.0)

    eng.spawn(ticker())
    eng.run()
    with pytest.raises(ValueError, match="already executed"):
        eng.break_at_step(2, lambda: None)


def test_multiple_breakpoints_fire_in_order():
    eng = Engine()
    fired = []

    def ticker():
        for _ in range(10):
            yield Delay(1.0)

    eng.spawn(ticker())
    eng.break_at_step(5, lambda: fired.append("b"))
    eng.break_at_step(2, lambda: fired.append("a"))
    eng.run()
    assert fired == ["a", "b"]


def test_unreached_breakpoint_is_harmless():
    eng = Engine()
    fired = []

    def ticker():
        yield Delay(1.0)

    eng.spawn(ticker())
    eng.break_at_step(10**9, lambda: fired.append("x"))
    eng.run()
    assert fired == []
