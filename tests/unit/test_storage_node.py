"""Unit tests for the disk/stable-storage and CPU-accounting models."""

import pytest

from repro.sim.engine import Delay, Engine
from repro.sim.node import CpuCosts, CpuModel, TimeBucket, TimeStats
from repro.sim.storage import CheckpointStore, Disk, DiskConfig


# -- disk ----------------------------------------------------------------


def test_write_cost_model():
    d = Disk(DiskConfig(seek_time=10e-3, write_bandwidth=10e6))
    assert d.write_cost(0) == 0.0
    assert d.write_cost(10_000_000) == pytest.approx(10e-3 + 1.0)


def test_disk_write_coroutine_accounts():
    eng = Engine()
    d = Disk(DiskConfig(seek_time=1e-3, write_bandwidth=1e6))

    def proc():
        yield from d.write(1000)

    eng.spawn(proc())
    eng.run()
    assert eng.now == pytest.approx(1e-3 + 1e-3)
    assert d.bytes_written == 1000
    assert d.write_time == pytest.approx(2e-3)


def test_disk_read():
    eng = Engine()
    d = Disk(DiskConfig(seek_time=1e-3, read_bandwidth=1e6))

    def proc():
        yield from d.read(2000)

    eng.spawn(proc())
    eng.run()
    assert d.bytes_read == 2000
    assert eng.now == pytest.approx(3e-3)


# -- checkpoint store ------------------------------------------------------


def test_store_put_get_delete():
    s = CheckpointStore(0)
    s.put(("ckpt", 1), {"x": 1}, size=100)
    s.put(("log", 2), "data", size=50)
    assert ("ckpt", 1) in s
    assert s.get(("ckpt", 1)) == {"x": 1}
    assert s.used_bytes == 150
    assert s.size_of(("log", 2)) == 50
    assert s.delete(("log", 2)) == 50
    assert s.used_bytes == 100
    assert ("log", 2) not in s


def test_store_negative_size_rejected():
    s = CheckpointStore(0)
    with pytest.raises(ValueError):
        s.put("k", "v", size=-1)


# -- time accounting ---------------------------------------------------------


def test_time_stats_buckets():
    ts = TimeStats()
    ts.add(TimeBucket.COMPUTE, 2.0)
    ts.add(TimeBucket.LOCK_WAIT, 1.0)
    assert ts.total == 3.0
    assert ts.fraction(TimeBucket.COMPUTE) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        ts.add(TimeBucket.COMPUTE, -1.0)


def test_time_stats_merge_and_dict():
    a, b = TimeStats(), TimeStats()
    a.add(TimeBucket.COMPUTE, 1.0)
    b.add(TimeBucket.COMPUTE, 2.0)
    b.add(TimeBucket.OVERHEAD, 1.0)
    m = a.merged(b)
    assert m.seconds[TimeBucket.COMPUTE] == 3.0
    assert m.as_dict()["overhead"] == 1.0


def test_cpu_handler_debt_drains_to_overhead():
    eng = Engine()
    cpu = CpuModel()
    cpu.accrue_handler(5e-6)
    cpu.accrue_handler(3e-6)

    def proc():
        yield from cpu.drain_debt()

    eng.spawn(proc())
    eng.run()
    assert eng.now == pytest.approx(8e-6)
    assert cpu.stats.seconds[TimeBucket.OVERHEAD] == pytest.approx(8e-6)
    assert cpu.handler_debt == 0.0


def test_cpu_charge_advances_time():
    eng = Engine()
    cpu = CpuModel()

    def proc():
        yield from cpu.charge(TimeBucket.COMPUTE, 1e-3)
        yield from cpu.charge(TimeBucket.LOG_CKPT, 0.0)  # zero charge ok

    eng.spawn(proc())
    eng.run()
    assert eng.now == pytest.approx(1e-3)
    assert cpu.stats.seconds[TimeBucket.COMPUTE] == pytest.approx(1e-3)


def test_negative_costs_rejected():
    cpu = CpuModel()
    with pytest.raises(ValueError):
        cpu.accrue_handler(-1.0)


# ----------------------------------------------------------------------
# commit markers (two-phase stable-storage writes)
# ----------------------------------------------------------------------


def test_begin_put_leaves_key_pending_until_commit():
    store = CheckpointStore(0)
    store.begin_put("k", "v", 10)
    assert "k" in store and store.is_pending("k")
    assert store.pending_keys() == ["k"]
    store.commit_put("k")
    assert not store.is_pending("k")
    assert store.pending_keys() == []


def test_plain_put_and_delete_clear_pending():
    store = CheckpointStore(0)
    store.begin_put("a", 1, 4)
    store.put("a", 2, 4)  # atomic overwrite commits implicitly
    assert not store.is_pending("a")
    store.begin_put("b", 1, 4)
    assert store.delete("b") == 4
    assert store.pending_keys() == []


def test_commit_put_unknown_key_raises():
    store = CheckpointStore(0)
    with pytest.raises(KeyError):
        store.commit_put("missing")
