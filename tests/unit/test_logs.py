"""Unit tests for the volatile logs (rel/acq/diff/barrier/self-grant)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.logs import DiffLog, RelLog, AcqLog, VolatileLogs
from repro.dsm.diff import compute_diff
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

N = 4
P = PageId(0, 0)


def vt(*c):
    return VClock(c)


def some_diff(nbytes=16):
    twin = np.zeros(64, dtype=np.uint8)
    cur = twin.copy()
    cur[:nbytes] = 1
    return compute_diff(twin, cur)


# -- rel / acq -------------------------------------------------------------


def test_rel_log_append_and_trim_rule2():
    rl = RelLog(N)
    rl.append(1, 0, vt(0, 3, 0, 0))
    rl.append(1, 0, vt(0, 7, 0, 0))
    rl.append(2, 5, vt(0, 0, 2, 0))
    assert rl.count() == 3
    # Rule 2: keep entries with acq_t[acquirer] > Tckp_acquirer[acquirer]
    dropped = rl.trim(1, 3)
    assert dropped == 1
    assert [e.acq_t[1] for e in rl.for_acquirer(1)] == [7]
    assert rl.count() == 2


def test_rel_log_restore():
    rl = RelLog(N)
    rl.append(1, 0, vt(0, 3, 0, 0))
    entries = rl.for_acquirer(1)
    rl2 = RelLog(N)
    rl2.restore_for(1, entries)
    assert rl2.count() == 1


def test_acq_log_trim_by_own_component():
    al = AcqLog(N)  # owned by process 0
    al.append(2, 0, vt(3, 0, 5, 0))
    al.append(2, 0, vt(8, 0, 9, 0))
    al.append(3, 1, vt(2, 0, 0, 4))
    dropped = al.trim(own_pid=0, own_tckp_component=3)
    assert dropped == 2
    assert al.count() == 1
    assert al.for_grantor(2)[0].acq_t[0] == 8


# -- diff log -----------------------------------------------------------------


def test_diff_log_accounting():
    dl = DiffLog()
    e1 = dl.append(P, some_diff(8), vt(1, 0, 0, 0))
    e2 = dl.append(P, some_diff(16), vt(3, 0, 0, 0))
    assert dl.bytes_created == e1.size_bytes + e2.size_bytes
    assert dl.volatile_bytes == dl.bytes_created
    assert dl.unsaved_bytes == dl.bytes_created
    assert dl.saved_bytes == 0


def test_diff_log_save_flush():
    dl = DiffLog()
    e1 = dl.append(P, some_diff(8), vt(1, 0, 0, 0))
    written = dl.mark_all_saved()
    assert written == e1.size_bytes
    assert dl.saved_bytes == e1.size_bytes
    assert dl.unsaved_bytes == 0
    e2 = dl.append(P, some_diff(8), vt(2, 0, 0, 0))
    assert dl.mark_all_saved() == e2.size_bytes


def test_diff_log_trim_rule32():
    dl = DiffLog()
    sizes = {}
    for i in (1, 2, 5):
        e = dl.append(P, some_diff(8), vt(i, 0, 0, 0))
        sizes[i] = e.size_bytes
    dl.mark_all_saved()
    # Rule 3.2: keep entries with diff.T[creator] > p0.v[creator] = 2
    dropped = dl.trim_page(P, creator=0, min_keep_interval=2)
    assert dropped == sizes[1] + sizes[2]
    assert [e.t[0] for e in dl.entries_for(P)] == [5]
    assert dl.bytes_discarded == dropped
    assert dl.bytes_discarded_saved == dropped  # they had reached disk


def test_diff_log_trim_unknown_page_noop():
    dl = DiffLog()
    assert dl.trim_page(PageId(9, 9), 0, 100) == 0


def test_diff_log_snapshot_marks_saved_and_is_independent():
    dl = DiffLog()
    dl.append(P, some_diff(8), vt(1, 0, 0, 0))
    snap = dl.snapshot()
    assert all(e.saved for es in snap.values() for e in es)
    dl.trim_page(P, 0, 10)
    assert len(snap[P]) == 1  # snapshot unaffected by later trims


# -- barrier & self-grant logs --------------------------------------------


def test_barrier_log_trim():
    logs = VolatileLogs(0, N)
    for ep in range(5):
        logs.log_barrier(ep, vt(ep, ep, ep, ep))
    assert logs.trim_barriers(3) == 3
    assert [b.episode for b in logs.bar] == [3, 4]


def test_self_grant_log_trim():
    logs = VolatileLogs(2, N)
    for i in (1, 4, 6):
        logs.log_self_grant(7, vt(0, 0, i, 0))
    assert logs.trim_self_grants(4) == 2
    assert [t[2] for t in logs.selfgrants[7]] == [6]


@given(
    st.lists(st.integers(1, 30), min_size=0, max_size=25),
    st.integers(0, 35),
)
def test_rule32_invariant_nothing_needed_is_dropped(intervals, bound):
    """After LLT, every retained entry is strictly above the bound and
    every dropped entry was at or below it."""
    dl = DiffLog()
    for i in intervals:
        dl.append(P, some_diff(8), vt(i, 0, 0, 0))
    dl.trim_page(P, 0, bound)
    kept = [e.t[0] for e in dl.entries_for(P)]
    assert all(i > bound for i in kept)
    assert sorted(kept) == sorted(i for i in intervals if i > bound)
