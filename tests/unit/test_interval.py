"""Unit + property tests for the write-notice table."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dsm.interval import NoticeTable
from repro.dsm.messages import WriteNotice
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

N = 4


def wn(creator, interval, page=0):
    vt = VClock.zero(N).with_component(creator, interval)
    return WriteNotice(creator, interval, PageId(0, page), vt)


def test_add_and_dedupe():
    t = NoticeTable(N)
    assert t.add(wn(0, 1))
    assert not t.add(wn(0, 1))  # same creator/interval/page
    assert t.add(wn(0, 1, page=2))  # different page
    assert t.count() == 2


def test_between_window():
    t = NoticeTable(N)
    for i in (1, 2, 5, 9):
        t.add(wn(1, i, page=i))
    low = VClock((0, 2, 0, 0))
    high = VClock((0, 5, 0, 0))
    got = sorted(n.interval for n in t.between(low, high))
    assert got == [5]
    # inclusive upper, exclusive lower
    got = sorted(n.interval for n in t.between(VClock.zero(N), high))
    assert got == [1, 2, 5]


def test_between_multi_creator():
    t = NoticeTable(N)
    t.add(wn(0, 3))
    t.add(wn(2, 4, page=1))
    got = t.between(VClock.zero(N), VClock((3, 0, 4, 0)))
    assert {(n.creator, n.interval) for n in got} == {(0, 3), (2, 4)}


def test_between_empty_window():
    t = NoticeTable(N)
    t.add(wn(0, 3))
    assert t.between(VClock((3, 0, 0, 0)), VClock((3, 0, 0, 0))) == []


def test_own_after():
    t = NoticeTable(N)
    for i in (1, 3, 7):
        t.add(wn(2, i, page=i))
    got = sorted(n.interval for n in t.own_after(2, 2))
    assert got == [3, 7]
    assert t.own_after(2, 7) == []


def test_trim_creator_before():
    t = NoticeTable(N)
    for i in (1, 2, 3, 4):
        t.add(wn(0, i, page=i))
    dropped = t.trim_creator_before(0, 3)
    assert dropped == 2
    remaining = sorted(n.interval for n in t.all_notices())
    assert remaining == [3, 4]
    # idempotent
    assert t.trim_creator_before(0, 3) == 0


@given(
    st.lists(
        st.tuples(st.integers(0, N - 1), st.integers(1, 20), st.integers(0, 5)),
        max_size=40,
    ),
    st.lists(st.integers(0, 20), min_size=N, max_size=N),
    st.lists(st.integers(0, 20), min_size=N, max_size=N),
)
def test_between_matches_bruteforce(entries, lo, hi):
    t = NoticeTable(N)
    inserted = []
    for c, i, p in entries:
        n = wn(c, i, page=p)
        if t.add(n):
            inserted.append(n)
    low, high = VClock(lo), VClock(hi)
    got = {(n.creator, n.interval, n.page) for n in t.between(low, high)}
    want = {
        (n.creator, n.interval, n.page)
        for n in inserted
        if low[n.creator] < n.interval <= high[n.creator]
    }
    assert got == want


@given(
    st.lists(st.tuples(st.integers(1, 20), st.integers(0, 5)), max_size=30),
    st.integers(0, 25),
)
def test_trim_rule1_keeps_everything_at_or_after(entries, keep_from):
    """Rule 1: after trimming, exactly the notices with interval >=
    keep_from survive."""
    t = NoticeTable(N)
    for i, p in entries:
        t.add(wn(1, i, page=p))
    before = {(n.interval, n.page) for n in t.all_notices()}
    t.trim_creator_before(1, keep_from)
    after = {(n.interval, n.page) for n in t.all_notices()}
    assert after == {(i, p) for i, p in before if i >= keep_from}
