"""Unit tests for the buddy-replication tier (core/replica.py).

Torn-record discipline on the buddy's side, ack bookkeeping across
re-buddying epochs on the protected side, and the central safety
property — CGC never trims ahead of the replica ack — exercised over
randomized ack delivery orders.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core.checkpoint import CheckpointManager, PageCopy
from repro.core.replica import (
    NO_REPLICA,
    ReplicaRecord,
    Replicator,
    best_record,
    replica_apply,
    serve_replica_query,
)
from repro.dsm.messages import ReplicaAck, ReplicaUpdate
from repro.dsm.vclock import VClock
from repro.sim.storage import CheckpointStore, ReplicaStore

N = 4


# ---------------------------------------------------------------------------
# fakes: just enough host/ft surface for the pure-logic paths under test
# ---------------------------------------------------------------------------
class FakeProto:
    def __init__(self):
        self.sent = []
        self.cpu = SimpleNamespace(accrue_handler=lambda s: None)

    def _send(self, dst, msg):
        self.sent.append((dst, msg))


class FakeHost:
    def __init__(self, pid=1):
        self.pid = pid
        self.replica_store = ReplicaStore(pid)
        self.proto = FakeProto()
        self.recovering = False
        self.cluster = SimpleNamespace(hosts=[])


def make_replicator(pid=0, n=N):
    ft = SimpleNamespace(
        pid=pid,
        n=n,
        ckpt_mgr=SimpleNamespace(next_seqno=1),
        probes=[],
    )
    ft._probe = lambda kind, detail: ft.probes.append((kind, detail))
    host = FakeHost(pid)
    return Replicator(ft, host), ft


def update(kind, seqno=0, gen=0, body=None, size=0, protected=0):
    return ReplicaUpdate(
        kind=kind, protected=protected, seqno=seqno, gen=gen,
        body=body, body_size=size,
    )


def minimal_base():
    """The smallest base build_base could produce (empty logs)."""
    return {
        "rel": [], "acq": [], "wn": [], "mirror_self": {},
        "bar_history": {}, "bar_mirror": [], "diff": {},
        "page_copies": {}, "tckp": VClock.zero(N), "bar_ep": 0,
        "tokens": {}, "managed_owners": {}, "completed_seq": {},
    }


# ---------------------------------------------------------------------------
# buddy's side: commit-marker discipline
# ---------------------------------------------------------------------------
def test_torn_record_is_invisible_until_commit():
    """A begin without its commit is torn: no usable record exists."""
    host = FakeHost()
    replica_apply(host, 0, update("begin", seqno=1, body=minimal_base(), size=64))
    assert best_record(host, 0) is None
    payload, _ = serve_replica_query(host, 0, 2, "handshake", None)
    assert payload == NO_REPLICA
    # no ack may be sent for a torn record (it would move the trim ceiling
    # past state the buddy cannot actually serve)
    assert host.proto.sent == []

    replica_apply(host, 0, update("commit", seqno=1))
    rec = best_record(host, 0)
    assert rec is not None and rec.seqno == 1
    assert [m.seqno for _, m in host.proto.sent] == [1]


def test_torn_record_falls_back_to_previous_committed_base():
    """Mid-transfer crash of the protected node: the previous committed
    base (plus the op tail appended since) stays servable."""
    host = FakeHost()
    replica_apply(host, 0, update("sync", seqno=1, body=minimal_base(), size=64))
    replica_apply(host, 0, update("begin", seqno=2, body=minimal_base(), size=64))
    # ops stream on; the protected node dies before sending commit(2)
    op = ("bar", 3, VClock.zero(N))
    replica_apply(host, 0, update("op", body=op, size=40))

    rec = best_record(host, 0)
    assert rec is not None and rec.seqno == 1
    # the tail was appended to the committed base too, so the fallback
    # view is not missing the events since begin(2)
    assert op in rec.ops
    store = host.replica_store.store_for(0)
    assert store.is_pending(("replica", 2))


def test_commit_prunes_superseded_records():
    host = FakeHost()
    replica_apply(host, 0, update("sync", seqno=1, body=minimal_base(), size=64))
    replica_apply(host, 0, update("begin", seqno=2, body=minimal_base(), size=64))
    replica_apply(host, 0, update("commit", seqno=2))
    store = host.replica_store.store_for(0)
    assert store.keys() == [("replica", 2)]
    assert [m.seqno for _, m in host.proto.sent] == [1, 2]


def test_commit_without_record_is_noop():
    """A commit whose begin was superseded (sync raced past it) acks
    nothing and creates nothing."""
    host = FakeHost()
    replica_apply(host, 0, update("commit", seqno=3))
    assert not host.replica_store.store_for(0).keys()
    assert host.proto.sent == []


def test_drop_forgets_protected_peer():
    host = FakeHost()
    replica_apply(host, 0, update("sync", seqno=1, body=minimal_base(), size=64))
    assert host.replica_store.has(0)
    replica_apply(host, 0, update("drop"))
    assert not host.replica_store.has(0)


# ---------------------------------------------------------------------------
# protected side: ack bookkeeping across re-buddy epochs
# ---------------------------------------------------------------------------
def test_stale_gen_ack_never_moves_the_ceiling():
    repl, ft = make_replicator()
    repl.gen = 2
    repl.on_ack(ReplicaAck(protected=0, seqno=5, gen=1))
    assert repl.acked_seqno == -1  # old buddy's records are gone
    repl.on_ack(ReplicaAck(protected=0, seqno=3, gen=2))
    assert repl.acked_seqno == 3
    repl.on_ack(ReplicaAck(protected=0, seqno=2, gen=2))
    assert repl.acked_seqno == 3  # acks are monotone


def test_lag_counts_unacked_committed_checkpoints():
    repl, ft = make_replicator()
    ft.ckpt_mgr.next_seqno = 4  # checkpoints 1..3 committed
    assert repl.lag == 4  # nothing acked: virtual ckpt 0 is exposed too
    repl.acked_seqno = 2
    assert repl.lag == 1
    repl.acked_seqno = 3
    assert repl.lag == 0


# ---------------------------------------------------------------------------
# the safety property: trim never ahead of the replica ack
# ---------------------------------------------------------------------------
def make_ckpt_mgr(seqnos, page="P"):
    """A CheckpointManager holding one page with copies at ``seqnos``."""
    mgr = CheckpointManager(0, N, CheckpointStore(0))
    mgr.seed_initial_pages({page: b"\x00" * 64})
    for s in seqnos:
        mgr.page_copies[page].append(
            PageCopy(s, VClock.zero(N).bump(0, s), b"\x01" * 64)
        )
        mgr.pages_retained_bytes += 64
        mgr.next_seqno = s + 1
    return mgr


@pytest.mark.parametrize("seed", range(20))
def test_trim_never_ahead_of_replica_ack(seed):
    """CGC with the ack ceiling never drops a copy unless a newer copy
    that the buddy has acked supersedes it — under arbitrary ack
    delivery orders interleaved with re-buddying retargets.

    Acks are FIFO per channel in the real system, but a retarget switches
    channels mid-stream, so the protected node can observe near-arbitrary
    (gen, seqno) sequences; the ceiling must stay safe through all of
    them.
    """
    rng = random.Random(seed)
    repl, ft = make_replicator()
    seqnos = list(range(1, 9))
    mgr = make_ckpt_mgr(seqnos)
    tmin = VClock([1000] * N)  # Tmin far ahead: only the ceiling gates CGC

    # every checkpoint's ack, possibly duplicated, in random order, with
    # random retargets (gen bumps + ceiling reset) mixed in
    events = [("ack", s) for s in seqnos] + [("ack", rng.choice(seqnos))]
    events += [("retarget", None)] * rng.randint(0, 3)
    rng.shuffle(events)

    acked_in_gen = set()
    hwm = -1  # highest seqno ever acked in any epoch (monitor's _acked_hwm)
    for kind, s in events:
        if kind == "retarget":
            repl.gen += 1
            repl.acked_seqno = -1  # what Replicator.recompute does
            acked_in_gen = set()
        else:
            # acks race: some arrive stamped with a stale gen
            gen = repl.gen if rng.random() < 0.8 else repl.gen - 1
            repl.on_ack(ReplicaAck(protected=0, seqno=s, gen=gen))
            if gen == repl.gen:
                acked_in_gen.add(s)
                hwm = max(hwm, s)

        ceiling = repl.acked_seqno
        assert ceiling <= max(acked_in_gen, default=-1)

        mgr.collect(tmin, seqno_ceiling=ceiling)
        copies = mgr.page_copies["P"]
        # every surviving window starts at a copy some buddy epoch acked
        # (after a retarget the ceiling resets to -1 while the already-
        # trimmed window awaits the re-sync, so the bound is the ack
        # high-water mark across epochs, not the current ceiling)
        assert copies[0].ckpt_seqno <= max(hwm, 0)
        # and nothing newer than the oldest retained copy was dropped:
        # the window end (latest copy) is always intact
        assert copies[-1].ckpt_seqno == seqnos[-1]

    # once every ack of the current epoch is in, CGC converges to a
    # single-copy window at the newest checkpoint
    repl.on_ack(ReplicaAck(protected=0, seqno=seqnos[-1], gen=repl.gen))
    mgr.collect(tmin, seqno_ceiling=repl.acked_seqno)
    assert [c.ckpt_seqno for c in mgr.page_copies["P"]] == [seqnos[-1]]


def test_ceiling_minus_one_collects_nothing():
    """Right after a retarget nothing is buddy-held: CGC must freeze."""
    mgr = make_ckpt_mgr([1, 2, 3])
    mgr.collect(VClock([1000] * N), seqno_ceiling=-1)
    assert [c.ckpt_seqno for c in mgr.page_copies["P"]] == [0, 1, 2, 3]


def test_no_ceiling_means_unreplicated_semantics():
    mgr = make_ckpt_mgr([1, 2, 3])
    mgr.collect(VClock([1000] * N), seqno_ceiling=None)
    assert [c.ckpt_seqno for c in mgr.page_copies["P"]] == [3]
