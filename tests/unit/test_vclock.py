"""Unit + property tests for vector timestamps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm.vclock import VClock, vmax, vmin

clocks = st.lists(st.integers(0, 50), min_size=4, max_size=4).map(VClock)


def test_zero_and_basics():
    z = VClock.zero(3)
    assert len(z) == 3
    assert z[0] == 0
    assert z == VClock((0, 0, 0))
    assert hash(z) == hash(VClock((0, 0, 0)))


def test_negative_component_rejected():
    with pytest.raises(ValueError):
        VClock((1, -1))


def test_leq_and_lt():
    a = VClock((1, 2, 3))
    b = VClock((1, 3, 3))
    assert a.leq(b) and not b.leq(a)
    assert a.lt(b) and not a.lt(a)
    assert a.leq(a)


def test_concurrent():
    a = VClock((1, 0))
    b = VClock((0, 1))
    assert a.concurrent(b) and b.concurrent(a)
    assert not a.concurrent(a)


def test_join_meet():
    a = VClock((1, 5, 2))
    b = VClock((3, 0, 2))
    assert a.join(b) == VClock((3, 5, 2))
    assert a.meet(b) == VClock((1, 0, 2))


def test_bump_and_with_component():
    a = VClock((1, 1))
    assert a.bump(0) == VClock((2, 1))
    assert a.bump(1, by=3) == VClock((1, 4))
    assert a.with_component(0, 9) == VClock((9, 1))
    with pytest.raises(IndexError):
        a.bump(5)
    with pytest.raises(ValueError):
        a.bump(0, by=-1)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        VClock((1,)).leq(VClock((1, 2)))


def test_vmin_vmax():
    cs = [VClock((1, 5)), VClock((3, 2)), VClock((2, 2))]
    assert vmin(cs) == VClock((1, 2))
    assert vmax(cs) == VClock((3, 5))
    with pytest.raises(ValueError):
        vmin([])


def test_immutability():
    a = VClock((1, 2))
    b = a.bump(0)
    assert a == VClock((1, 2))
    assert b == VClock((2, 2))


# -- properties ---------------------------------------------------------


@given(clocks, clocks)
def test_join_is_lub(a, b):
    j = a.join(b)
    assert a.leq(j) and b.leq(j)


@given(clocks, clocks)
def test_meet_is_glb(a, b):
    m = a.meet(b)
    assert m.leq(a) and m.leq(b)


@given(clocks, clocks, clocks)
def test_join_associative_commutative(a, b, c):
    assert a.join(b) == b.join(a)
    assert a.join(b).join(c) == a.join(b.join(c))


@given(clocks, clocks)
def test_partial_order_antisymmetry(a, b):
    if a.leq(b) and b.leq(a):
        assert a == b


@given(clocks, clocks, clocks)
def test_leq_transitive(a, b, c):
    if a.leq(b) and b.leq(c):
        assert a.leq(c)


@given(clocks, clocks)
def test_exactly_one_relation(a, b):
    relations = [a.lt(b), b.lt(a), a == b, a.concurrent(b)]
    assert sum(relations) == 1


@given(clocks, st.integers(0, 3))
def test_bump_strictly_increases(a, i):
    assert a.lt(a.bump(i))


@given(clocks, clocks)
def test_sum_is_linear_extension(a, b):
    # componentwise-sum ordering respects the partial order strictly:
    # the replay driver sorts diffs by it
    if a.lt(b):
        assert sum(a.v) < sum(b.v)


# -- lattice laws across representation widths --------------------------
#
# Widths straddle VClock.ARRAY_WIDTH so both the tuple path and the
# vectorized array path (and their interaction through lazy conversion)
# are exercised by the same laws.

LAW_WIDTHS = [2, 8, 64, 256]

_wide_pair = st.sampled_from(LAW_WIDTHS).flatmap(
    lambda w: st.tuples(
        st.just(w),
        st.lists(st.integers(0, 50), min_size=w, max_size=w),
        st.lists(st.integers(0, 50), min_size=w, max_size=w),
    )
)


@given(_wide_pair)
def test_lattice_laws_at_all_widths(wab):
    w, va, vb = wab
    a, b = VClock(va), VClock(vb)
    j, m = a.join(b), a.meet(b)
    # join/meet match the componentwise reference at every width
    assert j.v == tuple(map(max, va, vb))
    assert m.v == tuple(map(min, va, vb))
    # lub / glb laws
    assert a.leq(j) and b.leq(j)
    assert m.leq(a) and m.leq(b)
    # commutativity and absorption
    assert j == b.join(a) and m == b.meet(a)
    assert a.join(m) == a and a.meet(j) == a
    # leq agrees with the tuple reference
    assert a.leq(b) == all(x <= y for x, y in zip(va, vb))
    # zero is the bottom element
    assert VClock.zero(w).leq(a)
    assert VClock.zero(w).join(a) == a


@given(_wide_pair)
def test_array_and_tuple_representations_agree(wab):
    import numpy as np

    w, va, vb = wab
    a_t = VClock(va)  # tuple-backed
    a_a = VClock.from_array(np.array(va, dtype=np.int64))  # array-backed
    b = VClock(vb)
    assert a_t == a_a and hash(a_t) == hash(a_a)
    assert a_a.v == tuple(va)
    assert a_t.leq(b) == a_a.leq(b)
    assert a_t.join(b) == a_a.join(b)
    assert a_t.meet(b) == a_a.meet(b)
    assert a_a.bump(w - 1) == a_t.bump(w - 1)
    assert a_a.with_component(0, 7) == a_t.with_component(0, 7)
    assert list(a_a.as_array()) == list(va)


@given(_wide_pair)
def test_vmin_vmax_match_folds_at_all_widths(wab):
    w, va, vb = wab
    a, b, z = VClock(va), VClock(vb), VClock.zero(w)
    assert vmax([a, b, z]) == a.join(b)
    assert vmin([a, b, a]) == a.meet(b)


def test_wide_operand_interning():
    """Dominated join/meet return an operand (no allocation) on both paths."""
    for w in LAW_WIDTHS:
        lo = VClock((1,) * w)
        hi = VClock((2,) * w)
        assert hi.join(lo) is hi
        assert lo.join(hi) is hi
        assert lo.meet(hi) is lo
        assert hi.meet(lo) is lo
