"""Unit + property tests for vector timestamps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsm.vclock import VClock, vmax, vmin

clocks = st.lists(st.integers(0, 50), min_size=4, max_size=4).map(VClock)


def test_zero_and_basics():
    z = VClock.zero(3)
    assert len(z) == 3
    assert z[0] == 0
    assert z == VClock((0, 0, 0))
    assert hash(z) == hash(VClock((0, 0, 0)))


def test_negative_component_rejected():
    with pytest.raises(ValueError):
        VClock((1, -1))


def test_leq_and_lt():
    a = VClock((1, 2, 3))
    b = VClock((1, 3, 3))
    assert a.leq(b) and not b.leq(a)
    assert a.lt(b) and not a.lt(a)
    assert a.leq(a)


def test_concurrent():
    a = VClock((1, 0))
    b = VClock((0, 1))
    assert a.concurrent(b) and b.concurrent(a)
    assert not a.concurrent(a)


def test_join_meet():
    a = VClock((1, 5, 2))
    b = VClock((3, 0, 2))
    assert a.join(b) == VClock((3, 5, 2))
    assert a.meet(b) == VClock((1, 0, 2))


def test_bump_and_with_component():
    a = VClock((1, 1))
    assert a.bump(0) == VClock((2, 1))
    assert a.bump(1, by=3) == VClock((1, 4))
    assert a.with_component(0, 9) == VClock((9, 1))
    with pytest.raises(IndexError):
        a.bump(5)
    with pytest.raises(ValueError):
        a.bump(0, by=-1)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        VClock((1,)).leq(VClock((1, 2)))


def test_vmin_vmax():
    cs = [VClock((1, 5)), VClock((3, 2)), VClock((2, 2))]
    assert vmin(cs) == VClock((1, 2))
    assert vmax(cs) == VClock((3, 5))
    with pytest.raises(ValueError):
        vmin([])


def test_immutability():
    a = VClock((1, 2))
    b = a.bump(0)
    assert a == VClock((1, 2))
    assert b == VClock((2, 2))


# -- properties ---------------------------------------------------------


@given(clocks, clocks)
def test_join_is_lub(a, b):
    j = a.join(b)
    assert a.leq(j) and b.leq(j)


@given(clocks, clocks)
def test_meet_is_glb(a, b):
    m = a.meet(b)
    assert m.leq(a) and m.leq(b)


@given(clocks, clocks, clocks)
def test_join_associative_commutative(a, b, c):
    assert a.join(b) == b.join(a)
    assert a.join(b).join(c) == a.join(b.join(c))


@given(clocks, clocks)
def test_partial_order_antisymmetry(a, b):
    if a.leq(b) and b.leq(a):
        assert a == b


@given(clocks, clocks, clocks)
def test_leq_transitive(a, b, c):
    if a.leq(b) and b.leq(c):
        assert a.leq(c)


@given(clocks, clocks)
def test_exactly_one_relation(a, b):
    relations = [a.lt(b), b.lt(a), a == b, a.concurrent(b)]
    assert sum(relations) == 1


@given(clocks, st.integers(0, 3))
def test_bump_strictly_increases(a, i):
    assert a.lt(a.bump(i))


@given(clocks, clocks)
def test_sum_is_linear_extension(a, b):
    # componentwise-sum ordering respects the partial order strictly:
    # the replay driver sorts diffs by it
    if a.lt(b):
        assert sum(a.v) < sum(b.v)
