"""Unit tests for the cross-artifact analytics aggregator and the
``repro report`` dashboard (sniffing, validation, bench trends,
regression/malformed exit discipline, HTML output, sweep back-compat).
"""

import json

import pytest

from repro.__main__ import main
from repro.faultinject import SWEEP_SCHEMA, load_sweep, recovery_distributions
from repro.observe import (
    ClusterObserver,
    MetricsRegistry,
    build_report,
    write_jsonl,
)
from repro.observe.analytics import (
    build_dashboard,
    discover_artifacts,
    load_artifact,
    render_dashboard,
    render_html,
    sniff_kind,
)

from tests.conftest import make_app, make_cluster

BENCH = {
    "before": {"suite": "core", "events_per_sec": 100_000,
               "benches": [{"name": "a", "events_per_sec": 1000,
                            "ops_per_sec": 0}]},
    "after": {"suite": "core", "events_per_sec": 104_000,
              "benches": [{"name": "a", "events_per_sec": 900,
                           "ops_per_sec": 0}]},
    "speedup_events_per_sec": 1.04,
    "recorded": "2026-08-08",
}


def observe_artifact(tmp_path, name="OBSERVE_counter.jsonl"):
    cluster = make_cluster(num_procs=4, ft=True)
    obs = ClusterObserver(cluster, interval=1e-3)
    result = cluster.run(make_app("counter"))
    obs.sample()
    report = build_report(
        obs.registry, {"app": "counter", "ft": True}, result=result
    )
    path = tmp_path / name
    write_jsonl(str(path), report)
    return path


# ---------------------------------------------------------------------------
# sniffing and discovery
# ---------------------------------------------------------------------------
def test_sniff_kind_by_prefix_and_content():
    assert sniff_kind("benchmarks/OBSERVE_lu.jsonl") == "observe"
    assert sniff_kind("x/TRACE_counter.json") == "trace"
    assert sniff_kind("SWEEP_counter_k2.json") == "sweep"
    assert sniff_kind("BENCH_core.json") == "bench"
    assert sniff_kind("FLIGHT_counter.json") == "flight"
    # renamed files fall back to content shape
    assert sniff_kind("weird.json", {"traceEvents": []}) == "trace"
    assert sniff_kind("weird.json", {"points": [], "outcomes": {}}) == "sweep"
    assert sniff_kind("weird.json", {"before": {}, "after": {}}) == "bench"
    assert sniff_kind("weird.json", {"violations": [], "checks": {}}) == "flight"
    assert sniff_kind("weird.json", {"other": 1}) == "unknown"


def test_discover_walks_directories_and_keeps_explicit_files(tmp_path):
    (tmp_path / "BENCH_x.json").write_text(json.dumps(BENCH))
    sub = tmp_path / "results"
    sub.mkdir()
    (sub / "TRACE_app.json").write_text('{"traceEvents": []}')
    (tmp_path / "notes.txt").write_text("ignored")
    (tmp_path / "test_foo.py").write_text("ignored")
    found = discover_artifacts([str(tmp_path)])
    names = [p.rsplit("/", 1)[-1] for p in found]
    assert names == ["TRACE_app.json", "BENCH_x.json"]  # kind-major order
    # naming a file explicitly always includes it
    extra = tmp_path / "mystery.json"
    extra.write_text("{}")
    assert str(extra) in discover_artifacts([str(extra)])


# ---------------------------------------------------------------------------
# committed fixtures load clean (back-compat guarantee)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "path", ["benchmarks/SWEEP_counter.json", "benchmarks/SWEEP_counter_k2.json"]
)
def test_committed_v1_sweeps_load_unchanged(path):
    raw = json.load(open(path))
    assert "schema" not in raw  # they ARE v1 — keep them that way
    data = load_sweep(path)
    assert data["schema"] == 1
    assert data["recovery_by_class"] == {}
    assert all(p["recovery_phases"] == [] for p in data["points"])
    assert data["ok"] is True
    art = load_artifact(path)
    assert art.kind == "sweep" and art.ok


def test_load_sweep_v2_roundtrip_and_unknown_schema(tmp_path):
    data = load_sweep("benchmarks/SWEEP_counter.json")
    data["schema"] = SWEEP_SCHEMA
    p = tmp_path / "SWEEP_v2.json"
    p.write_text(json.dumps(data))
    again = load_sweep(str(p))
    assert again["schema"] == SWEEP_SCHEMA
    data["schema"] = 99
    p.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="schema"):
        load_sweep(str(p))


def test_committed_bench_and_trace_artifacts_load():
    for path, kind in (
        ("benchmarks/BENCH_core.json", "bench"),
        ("benchmarks/BENCH_scale.json", "bench"),
        ("benchmarks/results/TRACE_counter.json", "trace"),
    ):
        art = load_artifact(path)
        assert art.kind == kind and art.ok, (path, art.errors)


# ---------------------------------------------------------------------------
# recovery distributions
# ---------------------------------------------------------------------------
def test_recovery_distributions_exact_percentiles():
    recs = [
        ("lock", {"total": t, "detect": 0.05, "restore": 0.01,
                  "handshake": 0.001, "replay": t - 0.061, "resume": 0.0})
        for t in (0.1, 0.2, 0.3, 0.4)
    ]
    out = recovery_distributions(recs)
    d = out["lock"]
    assert d["count"] == 4
    assert d["p50_total_s"] == 0.2  # rank ceil(0.5*4)=2
    assert d["p90_total_s"] == 0.4
    assert d["max_total_s"] == 0.4
    assert d["phase_means_s"]["detect"] == pytest.approx(0.05)
    assert d["mean_total_s"] == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# dashboard + exit discipline
# ---------------------------------------------------------------------------
def test_dashboard_green_path(tmp_path):
    observe_artifact(tmp_path)
    (tmp_path / "BENCH_core.json").write_text(json.dumps(BENCH))
    arts = [load_artifact(p) for p in discover_artifacts([str(tmp_path)])]
    dash = build_dashboard(arts)
    assert dash["ok"]
    text = render_dashboard(dash)
    assert "REPORT OK" in text
    assert "tail latency by op class" in text
    assert "lat.fetch" in text


def test_dashboard_flags_bench_regression(tmp_path):
    doctored = json.loads(json.dumps(BENCH))
    doctored["before"]["events_per_sec"] = 200_000  # after drops 48%
    (tmp_path / "BENCH_core.json").write_text(json.dumps(doctored))
    arts = [load_artifact(str(tmp_path / "BENCH_core.json"))]
    dash = build_dashboard(arts, threshold=0.10)
    assert not dash["ok"]
    assert dash["regressions"]
    text = render_dashboard(dash)
    assert "REGRESSED" in text and "REPORT FAILED" in text
    # a looser threshold lets the same artifact pass
    assert build_dashboard(arts, threshold=0.60)["ok"]


def test_dashboard_flags_malformed_artifact(tmp_path):
    bad = tmp_path / "SWEEP_bad.json"
    bad.write_text('{"not": "a sweep"}')
    dash = build_dashboard([load_artifact(str(bad))])
    assert not dash["ok"]
    assert "MALFORMED" in render_dashboard(dash)


def test_dashboard_flags_flight_record(tmp_path):
    flight = {
        "reason": "violations", "time": 0.01, "step": 7, "violations": [],
        "checks": {}, "nodes": [], "cluster": {}, "events": [],
    }
    p = tmp_path / "FLIGHT_counter.json"
    p.write_text(json.dumps(flight))
    dash = build_dashboard([load_artifact(str(p))])
    # a flight record only exists because an invariant tripped
    assert not dash["ok"]
    assert "flight record" in render_dashboard(dash)


def test_html_rendering_escapes_and_banners(tmp_path):
    (tmp_path / "BENCH_core.json").write_text(json.dumps(BENCH))
    arts = [load_artifact(p) for p in discover_artifacts([str(tmp_path)])]
    html = render_html(build_dashboard(arts))
    assert html.startswith("<!DOCTYPE html>")
    assert "dashboard — ok" in html
    assert "<pre>" in html


def test_report_cli_exit_codes(tmp_path, capsys):
    observe_artifact(tmp_path)
    (tmp_path / "BENCH_core.json").write_text(json.dumps(BENCH))
    html = tmp_path / "dash.html"
    assert main(["report", str(tmp_path), "--html", str(html)]) == 0
    assert html.read_text().startswith("<!DOCTYPE html>")
    out = capsys.readouterr().out
    assert "REPORT OK" in out and "artifact inventory" in out

    doctored = json.loads(json.dumps(BENCH))
    doctored["before"]["events_per_sec"] = 500_000
    (tmp_path / "BENCH_core.json").write_text(json.dumps(doctored))
    assert main(["report", str(tmp_path)]) == 1
    # empty scan is an error, not silent success
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["report", str(empty)]) == 1
