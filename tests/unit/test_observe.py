"""Unit tests for the observability layer (metrics registry + sampler)."""

import pytest

from repro.observe import (
    CLUSTER_NODE,
    ClusterObserver,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_report,
    load_jsonl,
    validate_report,
    write_jsonl,
)
from repro.observe.registry import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from tests.conftest import make_app, make_cluster


# ---------------------------------------------------------------------------
# metric primitives
# ---------------------------------------------------------------------------
def test_counter_monotonic():
    c = Counter("c", 0)
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError, match="monotonic"):
        c.inc(-1)
    assert c.value == 3.5


def test_gauge_set_and_callback():
    g = Gauge("g", 0)
    assert g.read() == 0.0
    g.set(7)
    assert g.read() == 7.0
    state = {"v": 1}
    g2 = Gauge("g2", 0, fn=lambda: state["v"])
    assert g2.read() == 1.0
    state["v"] = 9
    assert g2.read() == 9.0


def test_histogram_buckets_and_summary():
    h = Histogram("h", 0, bounds=(1.0, 2.0))
    for v in (0.5, 1.5, 1.5, 5.0):
        h.observe(v)
    assert h.bucket_counts == [1, 2, 1]
    s = h.summary()
    assert s["count"] == 4
    assert s["min"] == 0.5 and s["max"] == 5.0
    assert s["mean"] == pytest.approx(8.5 / 4)
    assert Histogram("empty", 0).summary() == {
        "count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
    }


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_registry_interns_metrics():
    reg = MetricsRegistry()
    assert reg.counter("a", 1) is reg.counter("a", 1)
    assert reg.counter("a", 1) is not reg.counter("a", 2)
    assert reg.gauge("b", 1) is reg.gauge("b", 1)
    assert reg.histogram("c", 1) is reg.histogram("c", 1)


def test_registry_sample_snapshots_counters_and_gauges():
    reg = MetricsRegistry()
    c = reg.counter("hits", 3)
    reg.gauge("depth", 3, fn=lambda: c.value * 10)
    c.inc(2)
    reg.sample(0.5)
    c.inc()
    reg.sample(1.5)
    assert reg.get_series("hits", 3) == [(0.5, 2.0), (1.5, 3.0)]
    assert reg.get_series("depth", 3) == [(0.5, 20.0), (1.5, 30.0)]
    assert reg.samples_taken == 2
    assert reg.series_by_name("hits") == {3: [(0.5, 2.0), (1.5, 3.0)]}
    assert "hits" in reg.names() and "depth" in reg.names()


def test_disabled_registry_is_inert():
    reg = MetricsRegistry(enabled=False)
    # factories hand out shared null singletons: no allocation, no state
    assert reg.counter("a", 1) is NULL_COUNTER
    assert reg.gauge("b", 1) is NULL_GAUGE
    assert reg.histogram("c", 1) is NULL_HISTOGRAM
    reg.counter("a", 1).inc(5)
    reg.gauge("b", 1).set(5)
    reg.histogram("c", 1).observe(5)
    assert NULL_COUNTER.value == 0.0
    assert NULL_GAUGE.read() == 0.0
    assert NULL_HISTOGRAM.count == 0
    reg.record("a", 1, 0.0, 1.0)
    reg.sample(0.0)
    assert reg.series == {}
    assert reg.samples_taken == 0


# ---------------------------------------------------------------------------
# sampler cadence
# ---------------------------------------------------------------------------
def test_ticker_samples_at_interval():
    cluster = make_cluster(num_procs=4, ft=True)
    interval = 1e-3
    obs = ClusterObserver(cluster, interval=interval, sample_on_barrier=False)
    cluster.run(make_app("counter"))
    xs = [x for x, _ in obs.registry.get_series("sim.events", CLUSTER_NODE)]
    assert len(xs) >= 3
    for a, b in zip(xs, xs[1:]):
        assert b - a == pytest.approx(interval)


def test_ticker_rejects_bad_interval():
    cluster = make_cluster(num_procs=2, ft=False)
    with pytest.raises(ValueError, match="interval"):
        ClusterObserver(cluster, interval=0.0)


def test_barrier_cadence_one_sample_per_episode():
    cluster = make_cluster(num_procs=4, ft=True)
    obs = ClusterObserver(cluster, interval=None, sample_on_barrier=True)
    cluster.run(make_app("counter"))
    barriers = obs.registry.series_by_name("dsm.barriers")
    # every process crosses every barrier, but each episode samples once
    episodes = max(v for _, v in barriers[0])
    assert obs.registry.samples_taken == episodes
    xs = [x for x, _ in barriers[0]]
    assert xs == sorted(xs)


def test_ckpts_retained_series_sampled_per_node():
    """The ``ft.ckpts_retained`` gauge (the paper's bounded-window claim
    made observable) must produce a per-node series: positive from the
    first sample (the virtual checkpoint 0 is always retained), never
    absurdly large, and present for every node."""
    cluster = make_cluster(num_procs=4, ft=True)
    obs = ClusterObserver(cluster, interval=1e-3, sample_on_barrier=True)
    cluster.run(make_app("counter"))
    obs.sample()
    series = obs.registry.series_by_name("ft.ckpts_retained")
    assert sorted(series) == [0, 1, 2, 3]
    for points in series.values():
        assert points, "node sampled no ft.ckpts_retained points"
        assert all(1 <= v <= 8 for _, v in points)
    # at least one node must have held >1 checkpoint at some sample
    # (the uncoordinated window opens between commit and peer learning)
    assert any(v > 1 for pts in series.values() for _, v in pts)


def test_replica_series_sampled_per_node():
    """The ``ft.replica_bytes``/``ft.replica_lag`` pair (KEY_SERIES for
    replication-enabled runs) must produce per-node series: every node
    both holds its buddy's replica bytes and reports its own replication
    lag, and lag returns to zero once the buddy acks."""
    from repro.core import FtConfig

    cluster = make_cluster(
        num_procs=4, ft=True, ft_config=FtConfig(replicate=True)
    )
    obs = ClusterObserver(cluster, interval=1e-3, sample_on_barrier=True)
    cluster.run(make_app("counter"))
    obs.sample()
    for metric in ("ft.replica_bytes", "ft.replica_lag"):
        series = obs.registry.series_by_name(metric)
        assert sorted(series) == [0, 1, 2, 3], metric
        for pid, points in series.items():
            assert points, f"p{pid} sampled no {metric} points"
    bytes_series = obs.registry.series_by_name("ft.replica_bytes")
    # replication happened: some node held a nonempty replica
    assert any(v > 0 for pts in bytes_series.values() for _, v in pts)
    lag_series = obs.registry.series_by_name("ft.replica_lag")
    for pid, pts in lag_series.items():
        values = [v for _, v in pts]
        # lag is a small non-negative checkpoint count that both opens
        # (a commit starts a transfer) and drains (the buddy acks) —
        # never monotone growth, which would mean acks are lost
        assert all(0 <= v <= 4 for v in values), f"p{pid} lag {values}"
        assert any(v > 0 for v in values), f"p{pid} never lagged"
        opened = values.index(next(v for v in values if v > 0))
        assert any(v == 0 for v in values[opened:]), f"p{pid} never drained"


def test_disabled_registry_observer_records_nothing():
    cluster = make_cluster(num_procs=4, ft=True)
    obs = ClusterObserver(
        cluster,
        registry=MetricsRegistry(enabled=False),
        interval=1e-3,
        sample_on_barrier=True,
    )
    cluster.run(make_app("counter"))
    obs.sample()
    assert obs.registry.series == {}
    assert obs.registry.samples_taken == 0


# ---------------------------------------------------------------------------
# run reports
# ---------------------------------------------------------------------------
def test_report_roundtrip_and_validation(tmp_path):
    reg = MetricsRegistry()
    reg.counter("ft.log_volatile_bytes", 0).inc(10)
    reg.counter("ft.log_saved_bytes", 0).inc(4)
    reg.counter("dsm.diff_bytes_sent", 0).inc(2)
    reg.gauge("ft.ckpts_retained", 0, lambda: 2.0)
    reg.histogram("dsm.fetch_wait_s", 0).observe(1e-4)
    reg.latency("lat.fetch", 0).observe(5e-5)
    reg.latency("lat.acquire", 0).observe(2e-4)
    reg.latency("lat.barrier", 1).observe(1e-3)
    reg.sample(0.25)
    report = build_report(reg, {"app": "unit"})
    assert report["header"]["schema"] == 3
    assert validate_report(report) == []
    # no windowed collection -> no wlat records, and that's valid
    assert report["wlats"] == [] and "window_s" not in report["header"]
    # every op class grows a cluster-merged record alongside the
    # per-node ones
    merged = {r["metric"] for r in report["lats"] if r["node"] == CLUSTER_NODE}
    assert {"lat.fetch", "lat.acquire", "lat.barrier"} <= merged
    path = tmp_path / "report.jsonl"
    write_jsonl(str(path), report)
    again = load_jsonl(str(path))
    assert again["header"]["app"] == "unit"
    assert again["series"] == report["series"]
    assert again["hists"] == report["hists"]
    assert again["lats"] == report["lats"]
    assert validate_report(again) == []


def test_schema1_report_without_lat_records_still_validates(tmp_path):
    """Old JSONL artifacts (schema 1, no ``lat`` lines) stay loadable."""
    reg = MetricsRegistry()
    reg.counter("ft.log_volatile_bytes", 0).inc(10)
    reg.counter("ft.log_saved_bytes", 0).inc(4)
    reg.counter("dsm.diff_bytes_sent", 0).inc(2)
    reg.gauge("ft.ckpts_retained", 0, lambda: 2.0)
    reg.sample(0.25)
    report = build_report(reg, {"app": "unit"})
    report["header"]["schema"] = 1
    report["lats"] = []
    path = tmp_path / "old.jsonl"
    write_jsonl(str(path), report)
    again = load_jsonl(str(path))
    assert again["lats"] == []
    assert validate_report(again) == []


def test_validate_report_flags_missing_series():
    report = build_report(MetricsRegistry(), {"app": "unit"})
    errors = validate_report(report)
    assert any("ft.log_volatile_bytes" in e for e in errors)
    # a base-protocol report only requires the DSM series
    errors = validate_report(report, require_ft=False)
    assert all("ft." not in e for e in errors)


def test_load_jsonl_rejects_unknown_record(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"record": "mystery"}\n')
    with pytest.raises(ValueError, match="mystery"):
        load_jsonl(str(path))


# ---------------------------------------------------------------------------
# schema 3: windowed latency, recovery and SLO records
# ---------------------------------------------------------------------------
def _windowed_registry():
    """A registry collecting windows off a fake virtual clock."""
    now = {"t": 0.0}
    reg = MetricsRegistry()
    reg.enable_windows(lambda: now["t"], 1e-3)
    reg.counter("ft.log_volatile_bytes", 0).inc(10)
    reg.counter("ft.log_saved_bytes", 0).inc(4)
    reg.counter("dsm.diff_bytes_sent", 0).inc(2)
    reg.gauge("ft.ckpts_retained", 0, lambda: 2.0)
    for t, v in [(0.1e-3, 5e-5), (0.2e-3, 2e-4), (2.5e-3, 8e-4)]:
        now["t"] = t
        reg.latency("lat.request", 0).observe(v)
    reg.latency("lat.fetch", 0).observe(5e-5)
    reg.latency("lat.acquire", 0).observe(2e-4)
    reg.latency("lat.barrier", 1).observe(1e-3)
    reg.sample(0.25)
    return reg


def test_schema3_roundtrip_with_windows_recoveries_and_slos(tmp_path):
    from repro.observe import evaluate_report_slos, parse_slo

    reg = _windowed_registry()
    recovery = {
        "pid": 1, "crash_time": 1.2e-3, "total": 0.9e-3,
        "detect": 0.5e-3, "restore": 0.1e-3, "handshake": 0.2e-3,
        "replay": 0.1e-3,
    }
    base = build_report(reg, {"app": "unit"}, recoveries=[recovery])
    slos = evaluate_report_slos(base, [parse_slo("p99(lat.request)<50ms")])
    report = build_report(
        reg, {"app": "unit"}, recoveries=[recovery], slos=slos
    )
    assert report["header"]["schema"] == 3
    assert report["header"]["window_s"] == pytest.approx(1e-3)
    assert validate_report(report) == []
    # wlat records are cluster-merged only, one per non-empty window
    req = [r for r in report["wlats"] if r["metric"] == "lat.request"]
    assert [r["window"] for r in req] == [0, 2]
    assert all(r["node"] == CLUSTER_NODE for r in report["wlats"])
    assert req[0]["count"] == 2 and req[1]["count"] == 1

    path = tmp_path / "schema3.jsonl"
    write_jsonl(str(path), report)
    again = load_jsonl(str(path))
    assert validate_report(again) == []
    assert again["wlats"] == report["wlats"]
    assert again["recoveries"] == report["recoveries"]
    assert [s["ok"] for s in again["slos"]] == [True]


def test_validate_flags_windowed_header_without_wlats():
    reg = _windowed_registry()
    report = build_report(reg, {"app": "unit"})
    report["wlats"] = []
    errors = validate_report(report)
    assert any("no wlat records" in e for e in errors)


def test_validate_flags_incomplete_wlat_and_recovery_records():
    reg = _windowed_registry()
    report = build_report(reg, {"app": "unit"}, recoveries=[{"pid": 0}])
    del report["wlats"][0]["window_s"]
    errors = validate_report(report)
    assert any("wlat record 0 missing" in e for e in errors)
    assert any("recovery record 0 missing" in e for e in errors)
