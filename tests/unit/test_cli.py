"""Smoke tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import build_parser, main


def test_base_run(capsys):
    assert main(["counter", "--procs", "4", "--steps", "2"]) == 0
    out = capsys.readouterr().out
    assert "virtual time" in out
    assert "counter on 4 simulated nodes" in out


def test_ft_run_with_crash(capsys):
    assert main(["counter", "--ft", "--crash", "3@0.4", "--procs", "8"]) == 0
    out = capsys.readouterr().out
    assert "checkpoints" in out
    assert "1 crash(es), 1 recover(ies)" in out


def test_crash_requires_ft(capsys):
    assert main(["counter", "--crash", "3@0.4"]) == 2


def test_coordinated_flag(capsys):
    assert main(["counter", "--ft", "--coordinated", "--l", "0.05"]) == 0
    assert "checkpoints" in capsys.readouterr().out


def test_wan_flag(capsys):
    assert main(["counter", "--wan", "0.001", "--steps", "2"]) == 0


def test_trace_flag(capsys):
    assert main(["counter", "--ft", "--trace", "lock", "--trace-limit", "4"]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out
    assert "acquired L0" in out


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["not-an-app"])


def test_trace_help_is_derived_from_tracer_kinds():
    """The --trace help text must list exactly Tracer.KINDS — it is
    generated from it, so it can never omit kinds again (it used to
    hand-maintain a stale list without ckpt_write/recovery)."""
    from repro.sim.trace import Tracer

    help_text = build_parser().format_help()
    assert ",".join(sorted(Tracer.KINDS)) in help_text.replace("\n", "").replace(
        " ", ""
    )


def test_trace_flag_rejects_unknown_kind(capsys):
    assert main(["counter", "--ft", "--trace", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown trace kinds: bogus" in err
    assert "ckpt_write" in err  # the choices are listed from Tracer.KINDS


def test_crashsweep_subcommand(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    rc = main([
        "crashsweep", "counter",
        "--procs", "4", "--steps", "1", "--size", "128",
        "--every", "100", "--classes", "every,ckpt_write",
        "--out", str(out_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SWEEP OK" in out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["app"] == "counter"
    assert payload["ok"] is True
    assert payload["outcomes"].get("failed", 0) == 0
    assert payload["points"]


def test_observe_subcommand(tmp_path, capsys):
    out_path = tmp_path / "observe.jsonl"
    rc = main([
        "observe", "counter",
        "--procs", "4", "--steps", "4",
        "--out", str(out_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "repro observe — counter on 4 simulated nodes" in out
    assert f"written to {out_path}" in out

    from repro.observe import load_jsonl, validate_report

    report = load_jsonl(str(out_path))
    assert validate_report(report) == []
    assert report["header"]["ft"] is True


def test_observe_subcommand_no_ft(tmp_path, capsys):
    out_path = tmp_path / "observe_base.jsonl"
    rc = main([
        "observe", "counter",
        "--procs", "4", "--steps", "2", "--no-ft",
        "--out", str(out_path),
    ])
    assert rc == 0
    from repro.observe import load_jsonl, validate_report

    report = load_jsonl(str(out_path))
    assert validate_report(report, require_ft=False) == []
    # base runs carry no FT series at all
    assert all(not r["metric"].startswith("ft.") for r in report["series"])


def test_trace_subcommand(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    report_path = tmp_path / "critpath.txt"
    rc = main([
        "trace", "counter",
        "--procs", "4", "--steps", "2",
        "--out", str(out_path), "--report", str(report_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    assert "per-cause totals" in out
    assert f"trace written to {out_path}" in out

    import json

    trace = json.loads(out_path.read_text())
    events = trace["traceEvents"]
    assert events
    assert any(ev["ph"] == "s" for ev in events)  # flow edges present
    assert all(ev["args"]["status"] != "open"
               for ev in events if ev["ph"] == "X")
    assert report_path.read_text().startswith("critical path:")


def test_trace_subcommand_with_crash(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    rc = main([
        "trace", "counter",
        "--procs", "4", "--crash", "2@0.5",
        "--out", str(out_path),
        "--report", str(tmp_path / "critpath.txt"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 crash(es), 1 recover(ies)" in out
    assert "down (detection)" in out
    assert "recovery" in out

    import json

    events = json.loads(out_path.read_text())["traceEvents"]
    abandoned = [ev for ev in events
                 if ev["ph"] == "X" and ev["args"]["status"] == "abandoned"]
    assert abandoned and all(ev["pid"] == 2 for ev in abandoned)


def test_trace_subcommand_crash_requires_ft(capsys):
    assert main(["trace", "counter", "--no-ft", "--crash", "2@0.5"]) == 2


def test_monitor_subcommand(capsys):
    rc = main(["monitor", "counter", "--procs", "4", "--steps", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "counter on 4 simulated nodes" in out
    assert "ALL INVARIANTS HELD" in out
    for kind in ("cgc", "llt", "vclock", "fifo", "recoverability"):
        assert kind in out


def test_monitor_subcommand_with_crash(capsys):
    rc = main([
        "monitor", "counter",
        "--procs", "4", "--steps", "4", "--crash", "1@0.5",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 crash(es)" in out


def test_monitor_subcommand_seeded_violation(tmp_path, capsys):
    flight = tmp_path / "flight.json"
    rc = main([
        "monitor", "counter",
        "--procs", "4", "--steps", "4",
        "--seed-violation", "cgc", "--flight", str(flight),
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "FLIGHT RECORD" in out
    assert f"flight record written to {flight}" in out

    import json

    from repro.observe import validate_flight_record

    dump = json.loads(flight.read_text())
    assert validate_flight_record(dump) == []
    assert dump["violations"]
    assert all(v["invariant"] == "cgc" for v in dump["violations"])


def test_crashsweep_rejects_bad_class():
    with pytest.raises(SystemExit):
        # argparse exits on unknown app; unknown class raises ValueError
        main(["crashsweep", "not-an-app"])
    with pytest.raises(ValueError, match="unknown crash-point classes"):
        main(["crashsweep", "counter", "--classes", "bogus"])


# ---------------------------------------------------------------------------
# open-loop serving workload + SLO gate
# ---------------------------------------------------------------------------
def test_session_app_run(capsys):
    assert main(["session", "--procs", "4", "--steps", "2",
                 "--rate", "5000"]) == 0
    out = capsys.readouterr().out
    assert "session on 4 simulated nodes" in out


def test_observe_session_windowed_slo_pass(tmp_path, capsys):
    """The serving run emits windowed series (request + queueing delay),
    renders the timeline and the burn-rate table, and a met SLO exits 0."""
    out_path = tmp_path / "session.jsonl"
    rc = main([
        "observe", "session", "--procs", "4", "--steps", "2",
        "--rate", "5000", "--slo", "p99(lat.request)<50ms",
        "--out", str(out_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "degradation timeline" in out
    assert "SLO burn-rate evaluation" in out

    from repro.observe import load_jsonl, validate_report

    report = load_jsonl(str(out_path))
    assert validate_report(report) == []
    assert report["header"]["window_s"] == pytest.approx(1e-3)
    wmetrics = {r["metric"] for r in report["wlats"]}
    assert {"lat.request", "lat.queue"} <= wmetrics
    assert report["slos"] and report["slos"][0]["ok"] is True


def test_observe_session_slo_violation_gates_nonzero(tmp_path, capsys):
    rc = main([
        "observe", "session", "--procs", "4", "--steps", "2",
        "--rate", "5000", "--slo", "p99(lat.request)<1us",
        "--out", str(tmp_path / "bad.jsonl"),
    ])
    assert rc == 1
    assert "SLO GATE" in capsys.readouterr().err


def test_observe_slo_requires_windowing(capsys):
    rc = main(["observe", "session", "--window", "0",
               "--slo", "p99(lat.request)<5ms"])
    assert rc == 2
    assert "--slo requires windowed collection" in capsys.readouterr().err


def test_observe_rejects_bad_slo_spec(capsys):
    rc = main(["observe", "session", "--slo", "p99[lat]<5ms"])
    assert rc == 2
    assert "bad --slo" in capsys.readouterr().err


def test_observe_session_crash_carries_recovery_records(tmp_path, capsys):
    out_path = tmp_path / "crash.jsonl"
    rc = main([
        "observe", "session", "--procs", "4", "--steps", "6",
        "--rate", "2500", "--crash", "1@0.2",
        "--out", str(out_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "crash: p1 down" in out

    from repro.observe import load_jsonl

    report = load_jsonl(str(out_path))
    assert report["recoveries"] and report["recoveries"][0]["pid"] == 1


def test_crashsweep_session_subcommand(tmp_path, capsys):
    out_path = tmp_path / "sweep_session.json"
    rc = main([
        "crashsweep", "session",
        "--procs", "4", "--rate", "5000",
        "--every", "200", "--classes", "lock,recovery",
        "--out", str(out_path),
    ])
    assert rc == 0
    assert "SWEEP OK" in capsys.readouterr().out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["app"] == "session"
    assert payload["ok"] is True


def test_observe_overlapping_failures_exit_with_clean_error(tmp_path, capsys):
    """A crash schedule beyond the single-fault model (second fail-stop
    inside the first's recovery window, no replication) must exit
    nonzero with a diagnosis, not a traceback."""
    rc = main([
        "observe", "session", "--procs", "4", "--steps", "6",
        "--rate", "2500", "--crash", "1@0.2", "--crash2", "2@0.6",
        "--out", str(tmp_path / "overlap.jsonl"),
    ])
    assert rc == 1
    err = capsys.readouterr().err
    assert "overlapping failures" in err
    assert "pair --crash2 with --replicate" in err
