"""Smoke tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import build_parser, main


def test_base_run(capsys):
    assert main(["counter", "--procs", "4", "--steps", "2"]) == 0
    out = capsys.readouterr().out
    assert "virtual time" in out
    assert "counter on 4 simulated nodes" in out


def test_ft_run_with_crash(capsys):
    assert main(["counter", "--ft", "--crash", "3@0.4", "--procs", "8"]) == 0
    out = capsys.readouterr().out
    assert "checkpoints" in out
    assert "1 crash(es), 1 recover(ies)" in out


def test_crash_requires_ft(capsys):
    assert main(["counter", "--crash", "3@0.4"]) == 2


def test_coordinated_flag(capsys):
    assert main(["counter", "--ft", "--coordinated", "--l", "0.05"]) == 0
    assert "checkpoints" in capsys.readouterr().out


def test_wan_flag(capsys):
    assert main(["counter", "--wan", "0.001", "--steps", "2"]) == 0


def test_trace_flag(capsys):
    assert main(["counter", "--ft", "--trace", "lock", "--trace-limit", "4"]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out
    assert "acquired L0" in out


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["not-an-app"])


def test_crashsweep_subcommand(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    rc = main([
        "crashsweep", "counter",
        "--procs", "4", "--steps", "1", "--size", "128",
        "--every", "100", "--classes", "every,ckpt_write",
        "--out", str(out_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SWEEP OK" in out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["app"] == "counter"
    assert payload["ok"] is True
    assert payload["outcomes"].get("failed", 0) == 0
    assert payload["points"]


def test_observe_subcommand(tmp_path, capsys):
    out_path = tmp_path / "observe.jsonl"
    rc = main([
        "observe", "counter",
        "--procs", "4", "--steps", "4",
        "--out", str(out_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "repro observe — counter on 4 simulated nodes" in out
    assert f"written to {out_path}" in out

    from repro.observe import load_jsonl, validate_report

    report = load_jsonl(str(out_path))
    assert validate_report(report) == []
    assert report["header"]["ft"] is True


def test_observe_subcommand_no_ft(tmp_path, capsys):
    out_path = tmp_path / "observe_base.jsonl"
    rc = main([
        "observe", "counter",
        "--procs", "4", "--steps", "2", "--no-ft",
        "--out", str(out_path),
    ])
    assert rc == 0
    from repro.observe import load_jsonl, validate_report

    report = load_jsonl(str(out_path))
    assert validate_report(report, require_ft=False) == []
    # base runs carry no FT series at all
    assert all(not r["metric"].startswith("ft.") for r in report["series"])


def test_crashsweep_rejects_bad_class():
    with pytest.raises(SystemExit):
        # argparse exits on unknown app; unknown class raises ValueError
        main(["crashsweep", "not-an-app"])
    with pytest.raises(ValueError, match="unknown crash-point classes"):
        main(["crashsweep", "counter", "--classes", "bogus"])
