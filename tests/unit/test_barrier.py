"""Unit tests for the barrier manager."""

import pytest

from repro.dsm.barrier import BarrierManagerState
from repro.dsm.messages import WriteNotice
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

N = 3


def wn(creator, interval):
    vt = VClock.zero(N).with_component(creator, interval)
    return WriteNotice(creator, interval, PageId(0, 0), vt)


def test_episode_completes_when_all_arrive():
    m = BarrierManagerState(N)
    assert m.arrive(0, 0, VClock((1, 0, 0)), []) is None
    assert m.arrive(1, 0, VClock((0, 2, 0)), [wn(1, 2)]) is None
    done = m.arrive(2, 0, VClock((0, 0, 3)), [])
    assert done is not None
    assert done.global_vt() == VClock((1, 2, 3))
    assert len(done.notices) == 1
    assert m.next_episode == 1
    assert m.history[0] == VClock((1, 2, 3))
    assert m.last_global == VClock((1, 2, 3))


def test_double_arrival_rejected():
    m = BarrierManagerState(N)
    m.arrive(0, 0, VClock.zero(N), [])
    with pytest.raises(RuntimeError, match="twice"):
        m.arrive(0, 0, VClock.zero(N), [])


def test_wrong_episode_rejected():
    m = BarrierManagerState(N)
    with pytest.raises(RuntimeError, match="mismatch"):
        m.arrive(0, 5, VClock.zero(N), [])


def test_sequential_episodes():
    m = BarrierManagerState(N)
    for ep in range(3):
        for p in range(N):
            done = m.arrive(p, ep, VClock.zero(N).with_component(p, ep + 1), [])
        assert done.episode == ep
    assert m.next_episode == 3
    assert sorted(m.history) == [0, 1, 2]


def test_trim_history():
    m = BarrierManagerState(N)
    for ep in range(4):
        for p in range(N):
            m.arrive(p, ep, VClock.zero(N), [])
    assert m.trim_history(2) == 2
    assert sorted(m.history) == [2, 3]
    assert m.trim_history(2) == 0
