"""Unit tests for checkpointing and CGC (Rule 3.1)."""

import pickle

import pytest

from repro.core.checkpoint import Checkpoint, CheckpointManager, PageCopy
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock
from repro.sim.storage import CheckpointStore

N = 4
P0, P1 = PageId(0, 0), PageId(0, 1)


def vt(*c):
    return VClock(c)


def mk_ckpt(pid, seqno, tckp):
    return Checkpoint(
        pid=pid,
        seqno=seqno,
        tckp=tckp,
        app_state_blob=pickle.dumps({"step": seqno}),
        own_notices=[],
        diff_log={},
        lock_tokens={},
        acq_seq={},
        barrier_episode=0,
        last_barrier_global=VClock.zero(N),
    )


def mk_mgr():
    mgr = CheckpointManager(0, N, CheckpointStore(0))
    mgr.seed_initial_pages({P0: b"\x00" * 64, P1: b"\x00" * 64})
    return mgr


def test_seed_and_reseed_idempotent():
    mgr = mk_mgr()
    assert mgr.page_copies[P0][0].ckpt_seqno == 0
    before = mgr.pages_retained_bytes
    mgr.seed_initial_pages({P0: b"\xff" * 64})  # must not overwrite
    assert mgr.pages_retained_bytes == before
    assert mgr.page_copies[P0][0].data == b"\x00" * 64


def test_commit_sequencing():
    mgr = mk_mgr()
    c1 = mk_ckpt(0, 1, vt(2, 0, 0, 0))
    written = mgr.commit(c1, {P0: (b"\x01" * 64, vt(2, 0, 0, 0))})
    assert written == 64
    assert mgr.latest is c1
    assert c1.homed_versions[P0] == vt(2, 0, 0, 0)
    with pytest.raises(ValueError):
        mgr.commit(mk_ckpt(0, 5, vt(3, 0, 0, 0)), {})


def test_restore_app_state():
    c = mk_ckpt(0, 1, vt(1, 0, 0, 0))
    assert c.restore_app_state() == {"step": 1}


def test_cgc_keeps_maximal_starting_copy():
    mgr = mk_mgr()
    for s, v in ((1, 2), (2, 5), (3, 9)):
        mgr.commit(
            mk_ckpt(0, s, vt(v, 0, 0, 0)),
            {P0: (bytes([s]) * 64, vt(v, 0, 0, 0))},
        )
    # Tmin allows versions <= 5: copies 0 (v0) and seq1 (v2) below seq2
    # (v5, the maximal starting copy) are dropped; seq2 and seq3 retained
    freed = mgr.collect(vt(5, 9, 9, 9))
    copies = mgr.page_copies[P0]
    assert [c.ckpt_seqno for c in copies] == [2, 3]
    assert freed == 128
    # P1 was never checkpointed: its seed (checkpoint 0) must survive
    assert mgr.retained_seqnos == [0, 2, 3]
    assert [c.ckpt_seqno for c in mgr.page_copies[P1]] == [0]


def test_cgc_never_collects_latest():
    mgr = mk_mgr()
    mgr.commit(mk_ckpt(0, 1, vt(1, 0, 0, 0)), {P0: (b"a" * 64, vt(1, 0, 0, 0))})
    mgr.collect(vt(99, 99, 99, 99))
    assert mgr.latest.seqno == 1
    assert mgr.page_copies[P0][-1].ckpt_seqno == 1
    assert 1 in mgr.checkpoints


def test_cgc_with_zero_tmin_keeps_everything():
    mgr = mk_mgr()
    mgr.commit(mk_ckpt(0, 1, vt(3, 0, 0, 0)), {P0: (b"a" * 64, vt(3, 0, 0, 0))})
    freed = mgr.collect(VClock.zero(N))
    assert freed == 0
    assert [c.ckpt_seqno for c in mgr.page_copies[P0]] == [0, 1]


def test_window_tracking():
    mgr = mk_mgr()
    for s in range(1, 4):
        mgr.commit(
            mk_ckpt(0, s, vt(s, 0, 0, 0)),
            {
                P0: (b"x" * 64, vt(s, 0, 0, 0)),
                P1: (b"y" * 64, vt(s, 0, 0, 0)),
            },
        )
        mgr.collect(VClock.zero(N))  # no progress known: window grows
    assert mgr.window_size == 4  # virtual 0 + 3 checkpoints
    assert mgr.max_window == 4
    mgr.collect(vt(3, 9, 9, 9))
    assert mgr.window_size == 1
    assert mgr.max_window == 4


def test_maximal_starting_copy_respects_ceiling():
    mgr = mk_mgr()
    for s, v in ((1, 2), (2, 5)):
        mgr.commit(
            mk_ckpt(0, s, vt(v, 0, 0, 0)),
            {P0: (bytes([s]) * 64, vt(v, 0, 0, 0))},
        )
    # a recovery whose replay ceiling is (3,...) must get the v2 copy,
    # not the newer v5 copy
    copy = mgr.maximal_starting_copy(P0, vt(3, 9, 9, 9))
    assert copy.version == vt(2, 0, 0, 0)
    copy = mgr.maximal_starting_copy(P0, vt(9, 9, 9, 9))
    assert copy.version == vt(5, 0, 0, 0)


def test_maximal_starting_copy_errors():
    mgr = mk_mgr()
    with pytest.raises(KeyError):
        mgr.maximal_starting_copy(PageId(5, 5), vt(0, 0, 0, 0))


def test_old_checkpoint_records_pruned_with_their_copies():
    mgr = mk_mgr()
    store = mgr.store
    for s, v in ((1, 1), (2, 2), (3, 3)):
        mgr.commit(
            mk_ckpt(0, s, vt(v, 0, 0, 0)), {P0: (b"x" * 64, vt(v, 0, 0, 0))}
        )
    assert ("ckpt", 1) in store
    mgr.collect(vt(3, 9, 9, 9))
    assert ("ckpt", 1) not in store
    assert ("ckpt", 3) in store
    assert 1 not in mgr.checkpoints


def test_staged_checkpoint_is_invisible_until_committed():
    mgr = mk_mgr()
    c1 = mk_ckpt(0, 1, vt(2, 0, 0, 0))
    homed = {P0: (b"\x01" * 64, vt(2, 0, 0, 0))}
    mgr.stage(c1, homed)
    # staged but torn: not the restart point, pages not retained
    assert mgr.latest is None
    assert 1 not in mgr.checkpoints
    assert mgr.store.is_pending(("ckpt", 1))
    mgr.commit_staged(c1, homed)
    assert mgr.latest is c1
    assert not mgr.store.is_pending(("ckpt", 1))


def test_commit_staged_requires_stage():
    mgr = mk_mgr()
    c1 = mk_ckpt(0, 1, vt(2, 0, 0, 0))
    with pytest.raises(RuntimeError, match="unstaged"):
        mgr.commit_staged(c1, {})


def test_discard_torn_falls_back_to_previous_checkpoint():
    mgr = mk_mgr()
    c1 = mk_ckpt(0, 1, vt(2, 0, 0, 0))
    mgr.commit(c1, {P0: (b"\x01" * 64, vt(2, 0, 0, 0))})
    c2 = mk_ckpt(0, 2, vt(4, 0, 0, 0))
    mgr.stage(c2, {P0: (b"\x02" * 64, vt(4, 0, 0, 0))})
    # crash here: c2 has no commit marker; recovery discards it
    assert mgr.discard_torn() == 1
    assert mgr.torn_discarded == 1
    assert ("ckpt", 2) not in mgr.store
    assert mgr.restart_checkpoint() is c1
    # the torn seqno is burned, not reused
    c3 = mk_ckpt(0, 3, vt(6, 0, 0, 0))
    mgr.commit(c3, {P0: (b"\x03" * 64, vt(6, 0, 0, 0))})
    assert mgr.restart_checkpoint() is c3


def test_discard_torn_noop_when_clean():
    mgr = mk_mgr()
    assert mgr.discard_torn() == 0
    assert mgr.torn_discarded == 0


def test_cgc_racing_staged_checkpoint_leaves_stage_intact():
    """CGC pass racing the stage→commit window.

    ``take_checkpoint`` stages the new checkpoint, then spends virtual
    time on the disk write before committing; a piggybacked Tckp can
    trigger a CGC-relevant state change in between. A collect in that
    window must treat the staged checkpoint as nonexistent: it is not
    the restart point, its pages are not retained copies, and the
    commit that follows must land exactly as if no collect had run.
    """
    mgr = mk_mgr()
    c1 = mk_ckpt(0, 1, vt(2, 0, 0, 0))
    mgr.commit(c1, {P0: (b"\x01" * 64, vt(2, 0, 0, 0))})

    c2 = mk_ckpt(0, 2, vt(6, 0, 0, 0))
    homed = {P0: (b"\x02" * 64, vt(6, 0, 0, 0))}
    mgr.stage(c2, homed)

    # collect with an aggressive Tmin while c2 is staged-but-uncommitted
    mgr.collect(vt(99, 99, 99, 99))
    # the committed c1 is the latest and survives (never collect latest);
    # the staged c2 contributed nothing collectible and stays pending
    assert mgr.latest is c1
    assert [c.ckpt_seqno for c in mgr.page_copies[P0]] == [1]
    assert mgr.store.is_pending(("ckpt", 2))
    assert 2 not in mgr.checkpoints

    # commit still lands cleanly after the racing collect
    mgr.commit_staged(c2, homed)
    assert mgr.latest is c2
    assert [c.ckpt_seqno for c in mgr.page_copies[P0]] == [1, 2]
    # retained floor stayed monotone throughout: versions only grow
    versions = [c.version[0] for c in mgr.page_copies[P0]]
    assert versions == sorted(versions)
