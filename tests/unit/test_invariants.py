"""Unit tests for the online invariant monitor and flight recorder.

The two halves of the monitor's contract:

* **No false positives** — a healthy run (failure-free or with a clean
  crash/recovery) reports zero violations while every invariant class
  actually gets exercised.
* **No false negatives** — for each of the five invariant classes, a
  seeded protocol sabotage (`repro.observe.invariants.seeding`) must be
  detected as exactly that class, and the resulting flight record must
  be structurally valid and renderable.
"""

import json

import pytest

from repro.observe import (
    INVARIANTS,
    FlightRecorder,
    InvariantMonitor,
    render_flight_record,
    seed_violation,
    validate_flight_record,
    write_flight_record,
)
from tests.conftest import make_app, make_cluster


def run_monitored(kind=None, crash=None, num_procs=4, scan_every=1):
    """One counter run with the monitor attached; optionally seeded
    with a violation or a scheduled crash. Returns the monitor."""
    cluster = make_cluster(num_procs=num_procs, ft=True)
    monitor = InvariantMonitor(cluster, scan_every=scan_every)
    if kind is not None:
        seed_violation(cluster, kind)
    if crash is not None:
        cluster.schedule_crash_at_step(*crash)
    try:
        cluster.run(make_app("counter"))
    except Exception:
        # seeded sabotage may corrupt the run past the detection point;
        # that is acceptable only if the violation was recorded first
        if not monitor.violations:
            raise
    monitor.finish()
    return monitor


# ---------------------------------------------------------------------------
# clean runs: every class checked, nothing flagged
# ---------------------------------------------------------------------------
def test_clean_run_all_classes_checked_zero_violations():
    monitor = run_monitored()
    assert monitor.violations == []
    for kind in INVARIANTS:
        assert monitor.checks[kind] > 0, f"{kind} never checked"


def test_clean_crash_recovery_run_zero_violations():
    monitor = run_monitored(crash=(1, 250))
    assert monitor.violations == []
    # the crash must have produced a post-mortem dump even with no
    # violation — that is the flight recorder's whole point
    assert len(monitor.crash_dumps) == 1
    dump = monitor.crash_dumps[0]
    assert validate_flight_record(dump) == []
    assert "crash of p1" in dump["reason"]
    # the failure probe fires *before* the kill, so the dump captures
    # the victim's last pre-crash state (vt still populated)
    assert dump["nodes"][1]["vt"] is not None


def test_scan_every_throttles_structural_scan():
    every = run_monitored(scan_every=1)
    throttled = run_monitored(scan_every=25)
    assert 0 < throttled.checks["recoverability"] < every.checks["recoverability"]
    assert throttled.violations == []


# ---------------------------------------------------------------------------
# seeded violations: each class detected as itself
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kind", INVARIANTS)
def test_seeded_violation_detected(kind, tmp_path):
    monitor = run_monitored(kind=kind)
    assert monitor.violations, f"seeded {kind} violation went undetected"
    flagged = {v.invariant for v in monitor.violations}
    assert flagged == {kind}, (
        f"seeded {kind} flagged as {sorted(flagged)}"
    )
    # first violation snapshots a flight record; it must round-trip
    dump = monitor.violation_dump
    assert dump is not None
    assert validate_flight_record(dump) == []
    assert dump["violations"][0]["invariant"] == kind
    path = tmp_path / "flight.json"
    write_flight_record(str(path), dump)
    again = json.loads(path.read_text())
    assert validate_flight_record(again) == []
    text = render_flight_record(again)
    assert "FLIGHT RECORD" in text
    assert f"[{kind}]" in text


def test_unknown_seed_rejected():
    cluster = make_cluster(num_procs=2, ft=True)
    with pytest.raises(ValueError, match="unknown seed"):
        seed_violation(cluster, "nonsense")


def test_violations_deduplicated_and_capped():
    cluster = make_cluster(num_procs=4, ft=True)
    monitor = InvariantMonitor(cluster, max_violations=3)
    for _ in range(10):
        monitor._violate("cgc", 0, "same detail")
    assert len(monitor.violations) == 1  # deduplicated
    for i in range(10):
        monitor._violate("llt", 0, f"detail {i}")
    assert len(monitor.violations) == 3  # capped (1 cgc + 2 llt)
    assert monitor.dropped_violations == 8


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------
def test_flight_recorder_ring_is_bounded():
    rec = FlightRecorder(ring_size=8)
    for i in range(50):
        rec.on_probe(float(i), i, 0, "kind", f"detail {i}")
    assert rec.recorded == 50
    events = rec.dump()
    assert len(events) == 8
    assert events[0]["detail"] == "detail 42"  # oldest kept
    assert events[-1]["detail"] == "detail 49"


def test_flight_recorder_rejects_bad_ring():
    with pytest.raises(ValueError, match="ring_size"):
        FlightRecorder(ring_size=0)
    cluster = make_cluster(num_procs=2, ft=True)
    with pytest.raises(ValueError, match="scan_every"):
        InvariantMonitor(cluster, scan_every=0)


def test_flight_record_mixes_engine_probe_and_message_events():
    monitor = run_monitored()
    dump = monitor.flight_record("end of run")
    assert validate_flight_record(dump) == []
    kinds = {e["rec"] for e in dump["events"]}
    assert {"engine", "probe", "send", "deliver"} <= kinds
    # engine events carry a human-readable label, not a repr of a partial
    engine = [e for e in dump["events"] if e["rec"] == "engine"]
    assert any("(" in e["event"] for e in engine)


def test_validate_flight_record_flags_malformed():
    monitor = run_monitored()
    dump = monitor.flight_record("ok")
    assert validate_flight_record(dump) == []
    bad = dict(dump)
    del bad["nodes"]
    assert any("nodes" in e for e in validate_flight_record(bad))
    bad = dict(dump, events=[{"rec": "martian", "time": 0.0, "step": 1}])
    assert any("martian" in e for e in validate_flight_record(bad))
    bad = dict(dump, violations=[{"invariant": "cgc"}])
    assert validate_flight_record(bad)
