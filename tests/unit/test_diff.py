"""Unit + property tests for the diff engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm.diff import RUN_HEADER_BYTES, Diff, apply_diff, compute_diff, merge_runs

PAGE = 256


def page(vals=0):
    return np.full(PAGE, vals, dtype=np.uint8)


def test_identical_pages_empty_diff():
    d = compute_diff(page(3), page(3))
    assert d.empty
    assert d.size_bytes == 0
    assert d.payload_bytes == 0


def test_single_byte_change():
    twin, cur = page(), page()
    cur[10] = 7
    d = compute_diff(twin, cur)
    assert d.runs == ((10, b"\x07"),)
    assert d.payload_bytes == 1
    assert d.size_bytes == 1 + RUN_HEADER_BYTES


def test_runs_are_maximal_and_sorted():
    twin, cur = page(), page()
    cur[5:8] = 1
    cur[20:22] = 2
    cur[0] = 3
    d = compute_diff(twin, cur)
    offsets = [o for o, _ in d.runs]
    assert offsets == sorted(offsets) == [0, 5, 20]
    assert [len(b) for _, b in d.runs] == [1, 3, 2]


def test_edge_runs():
    twin, cur = page(), page()
    cur[0] = 1
    cur[-1] = 2
    d = compute_diff(twin, cur)
    assert d.runs[0][0] == 0
    assert d.runs[-1][0] == PAGE - 1


def test_whole_page_changed():
    d = compute_diff(page(0), page(255))
    assert len(d.runs) == 1
    assert d.payload_bytes == PAGE


def test_apply_roundtrip_simple():
    twin, cur = page(), page()
    cur[33:40] = 9
    d = compute_diff(twin, cur)
    target = twin.copy()
    apply_diff(target, d)
    assert np.array_equal(target, cur)


def test_apply_out_of_bounds_rejected():
    d = Diff(((250, b"\x01" * 10),))
    with pytest.raises(ValueError):
        apply_diff(page(), d)


def test_shape_and_dtype_validation():
    with pytest.raises(ValueError):
        compute_diff(np.zeros(10, np.uint8), np.zeros(11, np.uint8))
    with pytest.raises(TypeError):
        compute_diff(np.zeros(8, np.float64), np.zeros(8, np.float64))


def test_merge_runs():
    d1 = Diff(((0, b"ab"), (10, b"c")))
    d2 = Diff(((1, b"xy"), (20, b"z")))
    assert merge_runs([d1, d2]) == [(0, 3), (10, 11), (20, 21)]


# -- properties ---------------------------------------------------------

bytes_pages = st.binary(min_size=PAGE, max_size=PAGE).map(
    lambda b: np.frombuffer(b, dtype=np.uint8).copy()
)


@given(bytes_pages, bytes_pages)
@settings(max_examples=200)
def test_diff_apply_roundtrip(twin, cur):
    d = compute_diff(twin, cur)
    out = twin.copy()
    apply_diff(out, d)
    assert np.array_equal(out, cur)


@given(bytes_pages, bytes_pages)
def test_diff_minimality(twin, cur):
    """Every byte in the diff actually differs at run boundaries."""
    d = compute_diff(twin, cur)
    for off, data in d.runs:
        assert twin[off] != data[0]
        assert twin[off + len(data) - 1] != data[-1]
    # bytes between runs are equal
    covered = np.zeros(PAGE, dtype=bool)
    for off, data in d.runs:
        covered[off : off + len(data)] = True
    assert np.array_equal(twin[~covered], cur[~covered])


@given(bytes_pages, bytes_pages, bytes_pages)
@settings(max_examples=100)
def test_concurrent_disjoint_diffs_commute(base, a, b):
    """Diffs writing disjoint byte ranges apply in any order to the same
    result — the property multi-writer HLRC relies on."""
    # construct disjoint writes from a and b onto base
    cur_a = base.copy()
    cur_a[: PAGE // 2] = a[: PAGE // 2]
    cur_b = base.copy()
    cur_b[PAGE // 2 :] = b[PAGE // 2 :]
    da = compute_diff(base, cur_a)
    db = compute_diff(base, cur_b)
    out1 = base.copy()
    apply_diff(out1, da)
    apply_diff(out1, db)
    out2 = base.copy()
    apply_diff(out2, db)
    apply_diff(out2, da)
    assert np.array_equal(out1, out2)


@given(bytes_pages, bytes_pages)
def test_size_model_consistent(twin, cur):
    d = compute_diff(twin, cur)
    assert d.size_bytes == d.payload_bytes + RUN_HEADER_BYTES * len(d.runs)
    assert d.payload_bytes == sum(len(b) for _, b in d.runs)


# -- coalescing, coverage union, batch concatenation --------------------

from repro.dsm.diff import COALESCE_GAP, concat_diffs


def test_coalescing_merges_adjacent_runs():
    twin = page(0)
    cur = page(0)
    cur[10] = 1
    cur[13] = 2  # gap of 2 equal bytes between the two changed ones
    d0 = compute_diff(twin, cur)
    assert len(d0.runs) == 2
    d = compute_diff(twin, cur, gap=2)
    assert len(d.runs) == 1
    off, data = d.runs[0]
    assert off == 10 and len(data) == 4
    out = twin.copy()
    apply_diff(out, d)
    assert np.array_equal(out, cur)


def test_coalescing_never_grows_encoded_size():
    """With gap <= COALESCE_GAP the gap payload absorbed never exceeds
    the run header saved, so the encoded size is monotone non-increasing."""
    rng = np.random.default_rng(4242)
    twin = rng.integers(0, 255, size=PAGE, dtype=np.uint8)
    for _ in range(20):
        cur = twin.copy()
        idx = rng.choice(PAGE, size=int(rng.integers(1, 64)), replace=False)
        cur[idx] ^= 0xFF
        d0 = compute_diff(twin, cur)
        dg = compute_diff(twin, cur, gap=COALESCE_GAP)
        assert dg.size_bytes <= d0.size_bytes
        assert len(dg.runs) <= len(d0.runs)
        out = twin.copy()
        apply_diff(out, dg)
        assert np.array_equal(out, cur)


@given(bytes_pages, bytes_pages, st.integers(0, 16))
@settings(max_examples=100)
def test_roundtrip_exact_at_any_gap(twin, cur, gap):
    d = compute_diff(twin, cur, gap=gap)
    out = twin.copy()
    apply_diff(out, d)
    assert np.array_equal(out, cur)


def test_coalescing_empty_and_full_page():
    twin = page(0)
    assert compute_diff(twin, twin, gap=COALESCE_GAP).empty
    cur = page(7)
    d = compute_diff(twin, cur, gap=COALESCE_GAP)
    assert len(d.runs) == 1 and d.payload_bytes == PAGE
    out = twin.copy()
    apply_diff(out, d)
    assert np.array_equal(out, cur)


@given(st.lists(st.tuples(bytes_pages, bytes_pages), min_size=1, max_size=4))
@settings(max_examples=100)
def test_merge_runs_is_interval_union(pairs):
    diffs = [compute_diff(t, c) for t, c in pairs]
    covered = np.zeros(PAGE, dtype=bool)
    for d in diffs:
        for lo, hi in d.covered():
            covered[lo:hi] = True
    merged = merge_runs(diffs)
    # maximal, sorted, disjoint intervals equal to the coverage mask
    rebuilt = np.zeros(PAGE, dtype=bool)
    prev_hi = -1
    for lo, hi in merged:
        assert lo < hi and lo > prev_hi  # sorted, disjoint, non-adjacent
        rebuilt[lo:hi] = True
        prev_hi = hi
    assert np.array_equal(rebuilt, covered)


def test_concat_diffs_of_disjoint_batch_applies_like_sequence():
    base = page(0)
    a = base.copy()
    a[0:8] = 1
    b = base.copy()
    b[100:130] = 2
    da, db = compute_diff(base, a), compute_diff(base, b)
    batch = concat_diffs([da, db])
    out1 = base.copy()
    apply_diff(out1, batch)
    out2 = base.copy()
    apply_diff(out2, da)
    apply_diff(out2, db)
    assert np.array_equal(out1, out2)
    assert batch.payload_bytes == da.payload_bytes + db.payload_bytes


def test_out_of_bounds_runs_rejected_from_array_repr():
    d = Diff(((PAGE - 2, b"abcd"),))  # run extends past the page end
    with pytest.raises(ValueError):
        apply_diff(page(0), d)
