"""Unit + property tests for the diff engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm.diff import RUN_HEADER_BYTES, Diff, apply_diff, compute_diff, merge_runs

PAGE = 256


def page(vals=0):
    return np.full(PAGE, vals, dtype=np.uint8)


def test_identical_pages_empty_diff():
    d = compute_diff(page(3), page(3))
    assert d.empty
    assert d.size_bytes == 0
    assert d.payload_bytes == 0


def test_single_byte_change():
    twin, cur = page(), page()
    cur[10] = 7
    d = compute_diff(twin, cur)
    assert d.runs == ((10, b"\x07"),)
    assert d.payload_bytes == 1
    assert d.size_bytes == 1 + RUN_HEADER_BYTES


def test_runs_are_maximal_and_sorted():
    twin, cur = page(), page()
    cur[5:8] = 1
    cur[20:22] = 2
    cur[0] = 3
    d = compute_diff(twin, cur)
    offsets = [o for o, _ in d.runs]
    assert offsets == sorted(offsets) == [0, 5, 20]
    assert [len(b) for _, b in d.runs] == [1, 3, 2]


def test_edge_runs():
    twin, cur = page(), page()
    cur[0] = 1
    cur[-1] = 2
    d = compute_diff(twin, cur)
    assert d.runs[0][0] == 0
    assert d.runs[-1][0] == PAGE - 1


def test_whole_page_changed():
    d = compute_diff(page(0), page(255))
    assert len(d.runs) == 1
    assert d.payload_bytes == PAGE


def test_apply_roundtrip_simple():
    twin, cur = page(), page()
    cur[33:40] = 9
    d = compute_diff(twin, cur)
    target = twin.copy()
    apply_diff(target, d)
    assert np.array_equal(target, cur)


def test_apply_out_of_bounds_rejected():
    d = Diff(((250, b"\x01" * 10),))
    with pytest.raises(ValueError):
        apply_diff(page(), d)


def test_shape_and_dtype_validation():
    with pytest.raises(ValueError):
        compute_diff(np.zeros(10, np.uint8), np.zeros(11, np.uint8))
    with pytest.raises(TypeError):
        compute_diff(np.zeros(8, np.float64), np.zeros(8, np.float64))


def test_merge_runs():
    d1 = Diff(((0, b"ab"), (10, b"c")))
    d2 = Diff(((1, b"xy"), (20, b"z")))
    assert merge_runs([d1, d2]) == [(0, 3), (10, 11), (20, 21)]


# -- properties ---------------------------------------------------------

bytes_pages = st.binary(min_size=PAGE, max_size=PAGE).map(
    lambda b: np.frombuffer(b, dtype=np.uint8).copy()
)


@given(bytes_pages, bytes_pages)
@settings(max_examples=200)
def test_diff_apply_roundtrip(twin, cur):
    d = compute_diff(twin, cur)
    out = twin.copy()
    apply_diff(out, d)
    assert np.array_equal(out, cur)


@given(bytes_pages, bytes_pages)
def test_diff_minimality(twin, cur):
    """Every byte in the diff actually differs at run boundaries."""
    d = compute_diff(twin, cur)
    for off, data in d.runs:
        assert twin[off] != data[0]
        assert twin[off + len(data) - 1] != data[-1]
    # bytes between runs are equal
    covered = np.zeros(PAGE, dtype=bool)
    for off, data in d.runs:
        covered[off : off + len(data)] = True
    assert np.array_equal(twin[~covered], cur[~covered])


@given(bytes_pages, bytes_pages, bytes_pages)
@settings(max_examples=100)
def test_concurrent_disjoint_diffs_commute(base, a, b):
    """Diffs writing disjoint byte ranges apply in any order to the same
    result — the property multi-writer HLRC relies on."""
    # construct disjoint writes from a and b onto base
    cur_a = base.copy()
    cur_a[: PAGE // 2] = a[: PAGE // 2]
    cur_b = base.copy()
    cur_b[PAGE // 2 :] = b[PAGE // 2 :]
    da = compute_diff(base, cur_a)
    db = compute_diff(base, cur_b)
    out1 = base.copy()
    apply_diff(out1, da)
    apply_diff(out1, db)
    out2 = base.copy()
    apply_diff(out2, db)
    apply_diff(out2, da)
    assert np.array_equal(out1, out2)


@given(bytes_pages, bytes_pages)
def test_size_model_consistent(twin, cur):
    d = compute_diff(twin, cur)
    assert d.size_bytes == d.payload_bytes + RUN_HEADER_BYTES * len(d.runs)
    assert d.payload_bytes == sum(len(b) for _, b in d.runs)
