"""Unit tests for home-side page state."""

from repro.dsm.home import HomeDirectory, HomePage
from repro.dsm.pages import PageId
from repro.dsm.vclock import VClock

N = 4
P = PageId(0, 0)


def test_advance_and_duplicate_detection():
    hp = HomePage(P, N)
    assert hp.version == VClock.zero(N)
    hp.advance(1, 3)
    assert hp.version == VClock((0, 3, 0, 0))
    assert hp.is_duplicate(1, 3)
    assert hp.is_duplicate(1, 2)
    assert not hp.is_duplicate(1, 4)
    hp.advance(1, 2)  # stale advance ignored
    assert hp.version[1] == 3


def test_ready_for():
    hp = HomePage(P, N)
    hp.advance(0, 2)
    assert hp.ready_for(None)
    assert hp.ready_for(VClock((2, 0, 0, 0)))
    assert not hp.ready_for(VClock((3, 0, 0, 0)))


def test_pending_fetches_served_in_version_order():
    hp = HomePage(P, N)
    served = []
    hp.wait_fetch(1, VClock((2, 0, 0, 0)), lambda: served.append("a"))
    hp.wait_fetch(2, VClock((5, 0, 0, 0)), lambda: served.append("b"))
    hp.advance(0, 2)
    hp.service_pending()
    assert served == ["a"]
    hp.advance(0, 5)
    hp.service_pending()
    assert served == ["a", "b"]
    assert hp.pending == []


def test_directory():
    d = HomeDirectory(N)
    hp = d.add_page(P)
    assert P in d
    assert d[P] is hp
    assert d.pages() == [P]
    assert d.values() == [hp]
    assert PageId(0, 1) not in d
