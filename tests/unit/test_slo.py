"""Unit tests for the SLO layer: windowed rotation, burn-rate engine,
and the recovery degradation timeline (DESIGN.md §13).

The windowing contract mirrors the percentile engine's: which window an
observation lands in is a pure function of the observation instant, so
rotation is insertion-order invariant and merging every window's
histogram reproduces the whole-run histogram exactly (counts, buckets,
min/max, percentiles; the float ``sum`` up to addition reordering).
"""

import random

import pytest

from repro.observe.latency import LatencyHistogram
from repro.observe.slo import (
    DEFAULT_RULES,
    BurnRule,
    Objective,
    WindowedLatency,
    build_timeline,
    evaluate_report_slos,
    evaluate_slo,
    parse_slo,
    reconvergence,
    render_timeline,
)
from repro.observe.slo.engine import parse_duration
from repro.observe.slo.windows import merge_windowed

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


# ---------------------------------------------------------------------------
# spec parsing
# ---------------------------------------------------------------------------
def test_parse_duration_units():
    assert parse_duration("5ms") == pytest.approx(5e-3)
    assert parse_duration("250us") == pytest.approx(250e-6)
    assert parse_duration("3ns") == pytest.approx(3e-9)
    assert parse_duration("1.5s") == pytest.approx(1.5)
    assert parse_duration("3e-3") == pytest.approx(3e-3)  # bare seconds


@pytest.mark.parametrize("bad", ["", "fast", "5 parsecs", "..ms"])
def test_parse_duration_rejects(bad):
    with pytest.raises(ValueError):
        parse_duration(bad)


def test_parse_slo_spec():
    obj = parse_slo("p99(lat.request) < 5ms")
    assert obj.metric == "lat.request"
    assert obj.percentile == 99.0
    assert obj.threshold_s == pytest.approx(5e-3)
    assert obj.budget == pytest.approx(0.01)
    # spec round-trips through the parser
    assert parse_slo(obj.spec) == obj


@pytest.mark.parametrize(
    "bad",
    ["p99 lat < 5ms", "p0(lat.x) < 5ms", "p100(lat.x) < 5ms",
     "p99(lat.x) > 5ms", "p99(lat.x) < soon"],
)
def test_parse_slo_rejects(bad):
    with pytest.raises(ValueError):
        parse_slo(bad)


# ---------------------------------------------------------------------------
# windowed rotation
# ---------------------------------------------------------------------------
def _windowed(events, window_s=1e-3):
    """Build a WindowedLatency from [(t, value), ...] events."""
    now = {"t": 0.0}
    wl = WindowedLatency("lat.x", 0, clock=lambda: now["t"], window_s=window_s)
    for t, v in events:
        now["t"] = t
        wl.observe(v)
    return wl


#: virtual observation instants and durations, both spanning wide ranges
events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.05,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=1e-9, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=200,
)


def _assert_same_distribution(a, b):
    assert a.count == b.count
    assert a.zero_count == b.zero_count
    assert a.buckets == b.buckets
    assert a.min == b.min and a.max == b.max
    for p in (50.0, 90.0, 99.0, 99.9):
        assert a.percentile(p) == b.percentile(p)
    assert a.total == pytest.approx(b.total)  # float addition reordering


@given(events)
@settings(max_examples=100, deadline=None)
def test_window_merge_equals_whole_run_merge(evs):
    wl = _windowed(evs)
    _assert_same_distribution(wl.merged_windows(), wl)
    # every observation landed in the window containing its instant
    assert sum(h.count for h in wl.windows.values()) == wl.count


@given(events, st.randoms())
@settings(max_examples=100, deadline=None)
def test_rotation_insertion_order_invariance(evs, rng):
    a = _windowed(evs)
    shuffled = list(evs)
    rng.shuffle(shuffled)
    b = _windowed(shuffled)
    assert sorted(a.windows) == sorted(b.windows)
    for w in a.windows:
        _assert_same_distribution(a.windows[w], b.windows[w])
    _assert_same_distribution(a, b)


def test_window_index_is_pure_function_of_instant():
    wl = _windowed([(0.0, 1e-6)], window_s=1e-3)
    assert wl.window_index(0.0) == 0
    assert wl.window_index(0.9999e-3) == 0
    assert wl.window_index(1e-3) == 1
    assert wl.window_bounds(3) == (3e-3, 4e-3)


def test_windowed_requires_clock_and_positive_window():
    with pytest.raises(ValueError, match="clock"):
        WindowedLatency("x", 0, clock=None)
    with pytest.raises(ValueError, match="window_s"):
        WindowedLatency("x", 0, clock=lambda: 0.0, window_s=0.0)


def test_windows_to_dicts_time_ordered_with_bounds():
    wl = _windowed([(2.5e-3, 1e-6), (0.2e-3, 2e-6), (2.6e-3, 3e-6)])
    recs = wl.windows_to_dicts()
    assert [r["window"] for r in recs] == [0, 2]
    assert recs[1]["t0"] == pytest.approx(2e-3)
    assert recs[1]["t1"] == pytest.approx(3e-3)
    assert recs[1]["count"] == 2


def test_merge_windowed_across_nodes():
    a = _windowed([(0.1e-3, 1e-6), (1.1e-3, 2e-6)])
    b = _windowed([(1.2e-3, 3e-6), (2.2e-3, 4e-6)])
    merged = merge_windowed([a, b], name="lat.x")
    assert sorted(merged) == [0, 1, 2]
    assert merged[1].count == 2  # one observation from each node


# ---------------------------------------------------------------------------
# burn-rate evaluation
# ---------------------------------------------------------------------------
def _hist(values):
    h = LatencyHistogram("lat.x", -1)
    for v in values:
        h.observe(v)
    return h


def test_count_over_boundary_and_conservatism():
    h = _hist([0.0, 1e-6, 1e-3])
    # exact zeros are never over a non-negative threshold
    assert h.count_over(0.0) == 2
    # threshold at/above the observed max: nothing is over
    assert h.count_over(1e-3) == 0
    assert h.count_over(2e-3) == 0
    # threshold inside a bucket counts the whole bucket (conservative)
    assert h.count_over(0.99e-3) >= 1


def test_evaluate_slo_healthy_run_has_no_violations():
    obj = parse_slo("p99(lat.x) < 1ms")
    windows = {w: _hist([1e-5] * 50) for w in range(6)}
    res = evaluate_slo(windows, obj, 1e-3)
    assert res.ok
    assert [pw["window"] for pw in res.per_window] == list(range(6))
    assert all(pw["burn"] == 0.0 for pw in res.per_window)


def test_evaluate_slo_sustained_burn_fires_rules():
    obj = parse_slo("p99(lat.x) < 1ms")
    # every observation busts the threshold: burn = (1.0)/0.01 = 100x
    windows = {w: _hist([5e-3] * 20) for w in range(6)}
    res = evaluate_slo(windows, obj, 1e-3)
    assert not res.ok
    fired = {v["rule"] for v in res.violations}
    assert fired == {"fast", "slow"}
    burns = [v["long_burn"] for v in res.violations]
    assert all(b == pytest.approx(100.0) for b in burns)


def test_evaluate_slo_recovered_run_stops_alerting():
    """The short span proves the burn is still happening: once the tail
    drops back under the threshold, later windows stop violating even
    though the long span still remembers the bad stretch."""
    obj = parse_slo("p99(lat.x) < 1ms")
    rules = (BurnRule("fast", long_windows=3, short_windows=1, max_burn=8.0),)
    windows = {0: _hist([5e-3] * 20), 1: _hist([5e-3] * 20)}
    windows.update({w: _hist([1e-5] * 20) for w in range(2, 8)})
    res = evaluate_slo(windows, obj, 1e-3, rules=rules)
    assert not res.ok
    assert max(v["window"] for v in res.violations) <= 2


def test_evaluate_slo_spans_clamped_to_run_length():
    obj = parse_slo("p99(lat.x) < 1ms")
    res = evaluate_slo({0: _hist([5e-3] * 10)}, obj, 1e-3)
    assert not res.ok  # one bad window still evaluates (spans clamp to 1)
    assert all(v["long_windows"] == 1 for v in res.violations)


def test_default_rules_shape():
    assert [r.name for r in DEFAULT_RULES] == ["fast", "slow"]
    for r in DEFAULT_RULES:
        assert r.short_windows <= r.long_windows


def test_slo_result_to_dict_carries_spec_and_verdict():
    obj = parse_slo("p99(lat.x) < 1ms")
    res = evaluate_slo({0: _hist([1e-5] * 10)}, obj, 1e-3)
    d = res.to_dict()
    assert d["spec"] == obj.spec and d["ok"] is True
    assert d["window_s"] == 1e-3 and d["violations"] == []


# ---------------------------------------------------------------------------
# degradation timeline
# ---------------------------------------------------------------------------
def _wlat_record(window, values, window_s=1e-3, metric="lat.request"):
    h = _hist(values)
    return {
        "record": "wlat",
        "metric": metric,
        "node": -1,
        "window": window,
        "t0": window * window_s,
        "t1": (window + 1) * window_s,
        "window_s": window_s,
        **h.to_dict(),
    }


def _report(p99s, recoveries=()):
    """Synthetic loaded report: one wlat record per window."""
    return {
        "wlats": [_wlat_record(w, [v] * 20) for w, v in enumerate(p99s)],
        "recoveries": list(recoveries),
    }


CRASH = {
    "pid": 1,
    "crash_time": 2.4e-3,
    "total": 1.2e-3,
    "detect": 1.0e-3,
    "handshake": 1.5e-4,
    "replay": 5e-5,
}


def test_build_timeline_folds_wlats_and_crash_marks():
    report = _report([1e-5, 1e-5, 5e-3, 5e-3, 1e-5], recoveries=[CRASH])
    tl = build_timeline(report)
    assert tl["window_s"] == 1e-3
    assert [s["window"] for s in tl["series"]] == list(range(5))
    (mark,) = tl["marks"]
    assert mark["crash_window"] == 2
    assert mark["live_window"] == 3  # crash_time + total = 3.6ms
    assert mark["phases"]["detect"] == pytest.approx(1e-3)


def test_build_timeline_none_without_windowed_series():
    assert build_timeline({"wlats": [], "recoveries": [CRASH]}) is None
    # per-node extensions alone don't make a cluster timeline
    rec = _wlat_record(0, [1e-5])
    rec["node"] = 2
    assert build_timeline({"wlats": [rec]}) is None


def test_reconvergence_counts_windows_back_under_slo():
    obj = parse_slo("p99(lat.request) < 1ms")
    report = _report([1e-5, 1e-5, 5e-3, 5e-3, 1e-5, 1e-5], recoveries=[CRASH])
    (rec,) = reconvergence(build_timeline(report), obj)
    assert rec["crash_window"] == 2
    assert rec["reconverged_window"] == 4
    assert rec["windows"] == 2


def test_reconvergence_none_when_run_ends_degraded():
    obj = parse_slo("p99(lat.request) < 1ms")
    report = _report([1e-5, 1e-5, 5e-3, 5e-3], recoveries=[CRASH])
    (rec,) = reconvergence(build_timeline(report), obj)
    assert rec["reconverged_window"] is None and rec["windows"] is None


def test_render_timeline_marks_and_verdict():
    obj = parse_slo("p99(lat.request) < 1ms")
    report = _report([1e-5, 1e-5, 5e-3, 5e-3, 1e-5, 1e-5], recoveries=[CRASH])
    text = render_timeline(build_timeline(report), obj)
    assert "degradation timeline" in text
    assert "(windows 0..5" in text  # window-labelled x axis
    assert "crash: p1 down" in text and "(window 2)" in text
    assert "reconverged 2 window(s)" in text


def test_render_timeline_failure_free():
    text = render_timeline(build_timeline(_report([1e-5, 1e-5])))
    assert "failure-free" in text


# ---------------------------------------------------------------------------
# offline evaluation against a report artifact
# ---------------------------------------------------------------------------
def test_evaluate_report_slos_matches_live_windows():
    obj = parse_slo("p99(lat.request) < 1ms")
    values = {0: [1e-5] * 20, 1: [5e-3] * 20, 2: [5e-3] * 20}
    report = {
        "wlats": [_wlat_record(w, vs) for w, vs in values.items()],
    }
    (offline,) = evaluate_report_slos(report, [obj])
    live = evaluate_slo(
        {w: _hist(vs) for w, vs in values.items()}, obj, 1e-3
    )
    assert offline.per_window == live.per_window
    assert offline.violations == live.violations
