"""Unit tests for report formatting."""

import pytest

from repro.metrics.report import Table, ascii_series, format_bytes, format_pct


def test_format_bytes():
    assert format_bytes(5) == "5 B"
    assert format_bytes(2048) == "2.0 KB"
    assert format_bytes(3_500_000) == "3.50 MB"


def test_format_pct():
    assert format_pct(42.3) == "42 %"
    assert format_pct(3.14) == "3.1 %"
    assert format_pct(0.123) == "0.12 %"


def test_table_render_and_access():
    t = Table("T", ["a", "bb"], note="n")
    t.add(1, "x")
    t.add(22, "yyyy")
    out = t.render()
    assert out.splitlines()[0] == "T"
    assert "a " in out and "bb" in out
    assert "yyyy" in out and out.endswith("n")
    assert t.cell(0, "a") == 1
    assert t.column("bb") == ["x", "yyyy"]


def test_table_wrong_arity_rejected():
    t = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_table_empty_renders():
    t = Table("Empty", ["col"])
    assert "Empty" in t.render()


def test_ascii_series_renders_marks():
    out = ascii_series(
        "S",
        {"one": [(0, 0.0), (1, 1.0)], "two": [(0, 1.0), (1, 0.0)]},
        width=20,
        height=5,
    )
    assert "o = one" in out and "x = two" in out
    assert "o" in out.splitlines()[3]


def test_ascii_series_empty():
    assert "(no data)" in ascii_series("S", {})


def test_ascii_series_constant_series():
    out = ascii_series("S", {"flat": [(0, 5.0), (1, 5.0)]})
    assert "flat" in out
