"""Integration tests for the comparison baselines (paper §1, §2).

* whole-page logging (Richard & Singhal style),
* coordinated checkpointing with Chandy-Lamport-style marker rounds and
  global-rollback recovery,
* the WAN meta-cluster topology that motivates the paper's scheme.
"""

import numpy as np
import pytest

from repro import DsmCluster, DsmConfig
from repro.baselines import coordinated_cluster, page_logging_cluster
from repro.core import LogOverflowPolicy
from repro.sim.network import MetaClusterConfig

from tests.conftest import make_app, make_cluster


# ---------------------------------------------------------------------------
# page logging
# ---------------------------------------------------------------------------


def test_page_logging_correct_and_bigger():
    diff_cluster = make_cluster(num_procs=8, ft=True, l_fraction=0.1)
    diff_cluster.run(make_app("water-nsq"))
    page_c = page_logging_cluster(DsmConfig(num_procs=8), l_fraction=0.1)
    page_c.run(make_app("water-nsq"))  # validates result
    d = sum(h.ft.logs.diff.bytes_created for h in diff_cluster.hosts)
    p = sum(h.ft.logs.diff.bytes_created for h in page_c.hosts)
    assert p > 2 * d


def test_page_logging_recovery_works():
    c = page_logging_cluster(DsmConfig(num_procs=8), l_fraction=0.1)
    T = c.run(make_app("water-nsq")).wall_time
    c2 = page_logging_cluster(DsmConfig(num_procs=8), l_fraction=0.1)
    c2.schedule_crash(3, at_time=T * 0.4)
    res = c2.run(make_app("water-nsq"))
    assert res.recoveries == 1


# ---------------------------------------------------------------------------
# coordinated checkpointing
# ---------------------------------------------------------------------------


def test_coordinated_round_commits_and_discards():
    c = coordinated_cluster(DsmConfig(num_procs=8), l_fraction=0.05)
    c.run(make_app("water-spatial"))
    ft0 = c.hosts[0].ft
    assert ft0.coord.rounds_committed >= 1
    assert ft0.coord.round_latencies
    # after a commit, nothing older than the round survives anywhere
    for h in c.hosts:
        assert h.ft.committed_round == ft0.committed_round
        coord_keys = [
            k for k in h.store.keys() if isinstance(k, tuple) and k[0] == "coord"
        ]
        assert all(k[1] >= h.ft.committed_round for k in coord_keys)
        for copies in h.ckpt_mgr.page_copies.values():
            assert len(copies) <= 2  # seed may linger until first commit


def test_coordinated_checkpoints_are_aligned():
    c = coordinated_cluster(DsmConfig(num_procs=8), l_fraction=0.05)
    c.run(make_app("water-spatial"))
    rounds = {h.ft.round_id for h in c.hosts}
    assert len(rounds) == 1


@pytest.mark.parametrize("app_name2", ["counter", "water-spatial", "barnes"])
@pytest.mark.parametrize("frac", [0.3, 0.6])
def test_coordinated_global_rollback(app_name2, frac):
    c = coordinated_cluster(DsmConfig(num_procs=8), l_fraction=0.1)
    T = c.run(make_app(app_name2)).wall_time
    c2 = coordinated_cluster(DsmConfig(num_procs=8), l_fraction=0.1)
    c2.schedule_crash(3, at_time=T * frac)
    res = c2.run(make_app(app_name2))  # validates result
    assert res.recoveries == 1
    # everyone rolled back (not just the victim)
    assert all(h.recovered_count == 1 for h in c2.hosts)


def test_rollback_loses_everyones_work():
    """The cost the paper avoids: rollback re-executes on all nodes, so
    the stretch exceeds the single-victim replay of the independent
    scheme for the same crash point."""
    ind = make_cluster(num_procs=8, ft=True, l_fraction=0.1)
    T = ind.run(make_app("water-spatial")).wall_time

    ind2 = make_cluster(num_procs=8, ft=True, l_fraction=0.1)
    ind2.schedule_crash(3, at_time=T * 0.6)
    t_ind = ind2.run(make_app("water-spatial")).wall_time

    co = coordinated_cluster(DsmConfig(num_procs=8), l_fraction=0.1)
    Tc = co.run(make_app("water-spatial")).wall_time
    co2 = coordinated_cluster(DsmConfig(num_procs=8), l_fraction=0.1)
    co2.schedule_crash(3, at_time=Tc * 0.6)
    t_co = co2.run(make_app("water-spatial")).wall_time

    # both recover correctly; the comparison itself is reported by the
    # benchmark harness — here we only require both to terminate and the
    # rollback to have restarted every node
    assert all(h.recovered_count == 1 for h in co2.hosts)
    assert t_ind > T and t_co > Tc


def test_coordinated_round_latency_grows_with_wan():
    """The paper's motivating claim (§1): global coordination gets
    expensive on meta-clusters. The commit latency of a coordinated
    round must grow roughly with the WAN latency; the independent
    scheme has no such round at all."""
    lat = {}
    for wan in (0.5e-3, 5e-3):
        c = coordinated_cluster(
            DsmConfig(num_procs=8),
            l_fraction=0.05,
            net_config=MetaClusterConfig(
                cluster_size=4, wan_latency=wan, wan_bandwidth=50e6
            ),
        )
        c.run(make_app("water-spatial"))
        ls = c.hosts[0].ft.coord.round_latencies
        assert ls, f"no committed round at wan={wan}"
        lat[wan] = min(ls)
    assert lat[5e-3] > lat[0.5e-3] + 2 * (5e-3 - 0.5e-3), lat


# ---------------------------------------------------------------------------
# meta-cluster topology
# ---------------------------------------------------------------------------


def test_meta_cluster_link_selection():
    cfg = MetaClusterConfig(cluster_size=4, wan_latency=10e-3)
    assert cfg.cluster_of(3) == 0 and cfg.cluster_of(4) == 1
    assert cfg.link(0, 3) == (cfg.latency, cfg.byte_time)
    lat, bt = cfg.link(0, 4)
    assert lat == 10e-3


def test_meta_cluster_runs_correctly_just_slower():
    lan = DsmCluster(DsmConfig(num_procs=8))
    t_lan = lan.run(make_app("counter")).wall_time
    wan = DsmCluster(
        DsmConfig(num_procs=8),
        net_config=MetaClusterConfig(cluster_size=4, wan_latency=5e-3),
    )
    t_wan = wan.run(make_app("counter")).wall_time  # result validated
    assert t_wan > 3 * t_lan


def test_independent_recovery_works_on_meta_cluster():
    net = MetaClusterConfig(cluster_size=4, wan_latency=2e-3)
    c = DsmCluster(
        DsmConfig(num_procs=8),
        net_config=net,
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.1, fp),
    )
    T = c.run(make_app("counter")).wall_time
    c2 = DsmCluster(
        DsmConfig(num_procs=8),
        net_config=net,
        ft=True,
        policy_factory=lambda pid, fp: LogOverflowPolicy(0.1, fp),
    )
    c2.schedule_crash(5, at_time=T * 0.4)  # victim in the remote cluster
    res = c2.run(make_app("counter"))
    assert res.recoveries == 1
