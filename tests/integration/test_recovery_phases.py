"""Recovery-phase anatomy: every completed recovery decomposes into
first-class phase durations (detect / restore / handshake / replay /
resume) recorded per incarnation on the host, fed to the metrics
registry and nested as child spans under the recovery span.

The instrumentation must also be invisible: phase recording runs
whether or not an observer is attached, and attaching one must not
change the virtual-time outcome (the golden determinism suite pins
that globally; here we check the records themselves are identical).
"""

import pytest

from repro.core import FtConfig
from repro.observe import ClusterObserver, SpanTracer

from tests.conftest import make_app, make_cluster


def crash_run(victim=2, frac=0.4, n=4, observer=False, tracer=False, **kw):
    golden = make_cluster(num_procs=n, ft=True, **kw)
    T = golden.run(make_app("counter")).wall_time
    cluster = make_cluster(num_procs=n, ft=True, **kw)
    obs = ClusterObserver(cluster, interval=1e-3) if observer else None
    spans = SpanTracer(cluster) if tracer else None
    cluster.schedule_crash(victim, at_time=T * frac)
    res = cluster.run(make_app("counter"))
    return cluster, res, obs, spans


def test_phases_recorded_and_sum_to_total():
    cluster, res, _, _ = crash_run()
    assert res.crashes == 1 and res.recoveries == 1
    recs = [r for h in cluster.hosts for r in h.recovery_phases]
    assert len(recs) == 1
    rec = recs[0]
    assert rec["incarnation"] == 1
    # the detection phase is exactly the configured fail-stop detection
    # delay: recovery begins one delay after the crash
    assert rec["detect"] == pytest.approx(
        cluster.config.failure_detection_delay
    )
    for phase in ("restore", "handshake", "replay"):
        assert rec[phase] >= 0.0
    # the live switch (RecoveryDone fan-out, lock repair, queue drain)
    # runs in zero virtual time
    assert rec["resume"] == 0.0
    assert rec["total"] == pytest.approx(
        rec["detect"] + rec["restore"] + rec["handshake"] + rec["replay"]
        + rec["resume"]
    )
    assert rec["restore"] > 0.0  # the stable-storage read charges time


def test_phases_survive_on_host_across_incarnations():
    cluster, res, _, _ = crash_run()
    victim_host = next(h for h in cluster.hosts if h.recovery_phases)
    assert victim_host.crashed_count == 1
    # crash the same node again mid-flight in a longer run? covered by
    # the sweep tests; here: the record is host-level, not proc-level,
    # so it survived the crash-kill of the old proc generation
    assert victim_host.recovery_phases[0]["crash_time"] < res.wall_time


def test_recovery_latencies_reach_registry():
    cluster, _, obs, _ = crash_run(observer=True)
    reg = obs.registry
    lat = reg.merged_latency("lat.recovery")
    assert lat is not None and lat.count == 1
    rec = [r for h in cluster.hosts for r in h.recovery_phases][0]
    # the end-to-end estimate brackets the recorded total within the
    # engine's relative error (clamped to true min/max, so exact here)
    assert lat.percentile(50.0) == pytest.approx(rec["total"])
    for phase in ("detect", "restore", "handshake", "replay"):
        h = reg.merged_latency(f"lat.recovery.{phase}")
        assert h is not None and h.count == 1
    # and the summary series records the total at the live-switch time
    series = reg.series_by_name("ft.recovery_total_s")
    assert any(pts for pts in series.values())


def test_rphase_spans_nest_under_recovery_span():
    _, _, _, spans = crash_run(tracer=True)
    recovery = [s for s in spans.spans if s.kind == "recovery"]
    assert len(recovery) == 1
    rspan = recovery[0]
    children = [
        s for s in spans.spans
        if s.kind == "rphase" and s.parent == rspan.sid
    ]
    assert {s.detail for s in children} == {"restore", "handshake", "replay"}
    for child in children:
        assert child.status == "closed"
        assert child.t0 >= rspan.t0 - 1e-12
        assert child.t1 <= rspan.t1 + 1e-12
    # phases are disjoint and ordered
    ordered = sorted(children, key=lambda s: s.t0)
    names = [s.detail for s in ordered]
    assert names == ["restore", "handshake", "replay"]
    for a, b in zip(ordered, ordered[1:]):
        assert a.t1 <= b.t0 + 1e-12


def test_phase_records_identical_with_and_without_observer():
    c1, _, _, _ = crash_run(observer=False)
    c2, _, _, _ = crash_run(observer=True)
    r1 = [r for h in c1.hosts for r in h.recovery_phases]
    r2 = [r for h in c2.hosts for r in h.recovery_phases]
    assert r1 == r2  # observation is read-only: bit-identical anatomy


def test_replica_fetch_counters_with_replication():
    cluster, res, _, _ = crash_run(ft_config=FtConfig(replicate=True))
    assert res.recoveries == 1
    rec = [r for h in cluster.hosts for r in h.recovery_phases][0]
    # with the buddy tier on, restore may pull from the replica instead
    # of stable storage; either way the counters are consistent
    assert rec["replica_fetches"] >= 0
    if rec["replica_fetches"]:
        assert rec["replica_fetch_s"] > 0.0
    else:
        assert rec["replica_fetch_s"] == 0.0
