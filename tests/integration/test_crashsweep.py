"""Fault-injection campaign tests: the crash sweep and its hardening.

These exercise the robustness surface the sweep depends on — torn
checkpoints discarded at recovery, restartable recovery, the
overlapping-failure hold/detect path, and the deadlock diagnostics —
plus a bounded end-to-end sweep with the recovery-equivalence oracle.
"""

from __future__ import annotations

import json

import pytest

from repro.core.recovery import OverlappingFailureError
from repro.faultinject import CrashSweep, OracleViolation, check_oracle
from repro.sim.engine import Future
from repro.sim.trace import Tracer
from tests.conftest import make_app, make_cluster

FAST_DETECT = {"failure_detection_delay": 2e-3}


def _factories(**app_overrides):
    defaults = {"steps": 2, "n_elements": 256}

    def cluster_factory():
        return make_cluster(num_procs=4, ft=True, l_fraction=0.2, **FAST_DETECT)

    def app_factory():
        return make_app("counter", **{**defaults, **app_overrides})

    return cluster_factory, app_factory


# ======================================================================
# end-to-end sweep
# ======================================================================


def test_sweep_counter_bounded():
    """A bounded sweep over every class: 100% recovered or explicitly
    degraded, and degradation only where a second failure overlapped."""
    cluster_factory, app_factory = _factories()
    sweep = CrashSweep(cluster_factory, app_factory, every=60)
    summary = sweep.run()
    assert summary.results, "sweep enumerated no crash points"
    outcomes = summary.outcomes()
    assert outcomes.get("failed", 0) == 0, [
        r.error for r in summary.results if r.outcome == "failed"
    ]
    assert outcomes.get("recovered", 0) > 0
    assert summary.ok
    # targeted classes must actually enumerate points on this app
    classes_hit = {r.point.cls for r in summary.results}
    assert {"lock", "barrier", "ckpt_write", "recovery"} <= classes_hit
    # summary serializes deterministically
    payload = json.loads(summary.to_json(app="counter", procs=4))
    assert payload["ok"] is True
    assert payload["outcomes"] == outcomes


def test_sweep_rejects_unknown_class_and_nonft_cluster():
    cluster_factory, app_factory = _factories()
    with pytest.raises(ValueError, match="unknown crash-point classes"):
        CrashSweep(cluster_factory, app_factory, classes=("bogus",))
    sweep = CrashSweep(
        lambda: make_cluster(num_procs=4, ft=False), app_factory
    )
    with pytest.raises(RuntimeError, match="FT-enabled"):
        sweep.run_reference()


def test_sweep_session_lock_class():
    """The open-loop serving workload sweeps clean over lock crash
    points. Its zipfian hot keys build deep wait chains, which the
    uniform workloads rarely do — this is the coverage that exposed the
    restore_chain stale-seq token loss."""

    def cluster_factory():
        return make_cluster(num_procs=4, ft=True, l_fraction=0.1, **FAST_DETECT)

    def app_factory():
        return make_app("session", rate=5000.0)

    sweep = CrashSweep(cluster_factory, app_factory, every=90, classes=("lock",))
    summary = sweep.run()
    assert summary.results, "sweep enumerated no lock crash points"
    assert summary.ok, [
        r.error for r in summary.results if r.outcome == "failed"
    ]


def test_crash_manager_before_inflight_grant_completes():
    """Regression: crash a lock manager one step before its own remote
    acquire completes — the token is in flight to it and (with a hot
    enough lock) other waiters are queued behind it. ``restore_chain``
    used to seed the re-attached head waiter with its last *completed*
    seq from the handshake; the repair grant then matched the waiter's
    completed-seq dedup, was dropped, and the token was lost — the run
    deadlocked. Every such window must now recover to the failure-free
    result."""

    def cluster_factory():
        return make_cluster(num_procs=4, ft=True, l_fraction=0.1, **FAST_DETECT)

    def app_factory():
        return make_app("session", rate=5000.0)

    ref = cluster_factory()
    tracer = Tracer(ref, kinds={"lock"})
    ref.run(app_factory())
    reference = {
        region.name: ref.shared_snapshot(region).tobytes()
        for region in ref.regions
    }
    # p0 manages L0 (lock_id % n): its remote acquires of L0 are exactly
    # the windows where the token is in flight to a (crashable) manager
    points = [
        ev.step - 1
        for ev in tracer.events
        if ev.pid == 0
        and ev.detail.startswith("acquired L0 from")
        and ev.step > 1
    ]
    assert points, "no remote acquires of a self-managed lock in reference"
    for step in points:
        cluster = cluster_factory()
        cluster.schedule_crash_at_step(0, step)
        cluster.run(app_factory())
        check_oracle(cluster, reference)


# ======================================================================
# torn checkpoints (commit-marker protocol)
# ======================================================================


def test_crash_during_checkpoint_write_recovers_from_previous():
    """A fail-stop mid checkpoint-disk-write leaves a torn record;
    recovery must discard it and restart from the previous checkpoint,
    and the final result must match the failure-free run."""
    cluster_factory, app_factory = _factories()

    ref = cluster_factory()
    tracer = Tracer(ref, kinds={"ckpt_write"})
    ref.run(app_factory())
    reference = {
        region.name: ref.shared_snapshot(region).tobytes()
        for region in ref.regions
    }
    begins = {}
    window = None
    for ev in tracer.events:
        tag = ev.detail.split()[1]
        if ev.detail.startswith("begin"):
            begins[(ev.pid, tag)] = ev.step
        elif (ev.pid, tag) in begins:
            window = (ev.pid, int(tag.split("=")[1]), begins[(ev.pid, tag)], ev.step)
            break
    assert window is not None, "no checkpoint disk write in reference run"
    victim, seqno, begin, end = window
    assert end > begin + 1, "disk write spans no events; cannot interrupt"

    cluster = cluster_factory()
    cluster.schedule_crash_at_step(victim, (begin + end) // 2)
    res = cluster.run(app_factory())
    assert res.crashes == 1 and res.recoveries == 1

    mgr = cluster.hosts[victim].ckpt_mgr
    assert mgr.torn_discarded == 1
    assert seqno not in mgr.checkpoints
    assert ("ckpt", seqno) not in cluster.hosts[victim].store
    check_oracle(cluster, reference)


def test_oracle_detects_divergence():
    cluster_factory, app_factory = _factories()
    cluster = cluster_factory()
    cluster.run(app_factory())
    reference = {
        region.name: cluster.shared_snapshot(region).tobytes()
        for region in cluster.regions
    }
    check_oracle(cluster, reference)  # identical run passes
    bad = {name: b"\x00" * len(data) for name, data in reference.items()}
    with pytest.raises(OracleViolation, match="diverged"):
        check_oracle(cluster, bad)


# ======================================================================
# overlapping failures (hold path + explicit degradation)
# ======================================================================


def _recovery_window(cluster_factory, app_factory, victim, step):
    """Run with one crash; return the victim's recovery (begin, live)."""
    cluster = cluster_factory()
    tracer = Tracer(cluster, kinds={"recovery"})
    cluster.schedule_crash_at_step(victim, step)
    cluster.run(app_factory())
    begin = live = None
    for ev in tracer.events:
        if ev.pid != victim:
            continue
        if ev.detail.startswith("begin") and begin is None:
            begin = ev.step
        elif ev.detail == "live" and begin is not None:
            live = ev.step
            break
    assert begin is not None and live is not None
    return begin, live


def _mid_run_point(cluster_factory, app_factory):
    cluster = cluster_factory()
    tracer = Tracer(cluster)
    cluster.run(app_factory())
    ev = tracer.events[len(tracer.events) // 2]
    return ev.pid, ev.step


def test_overlapping_failure_holds_messages_then_degrades():
    """Crash a *responder* inside another node's recovery: queries to it
    are held (not lost) while it is down, drained after it recovers, and
    the recovering requester then degrades with a clean diagnostic
    instead of silently diverging or hanging."""
    cluster_factory, app_factory = _factories()
    victim, step = _mid_run_point(cluster_factory, app_factory)
    begin, live = _recovery_window(cluster_factory, app_factory, victim, step)

    cluster = cluster_factory()
    other = (victim + 1) % 4
    cluster.schedule_crash_at_step(victim, step)
    cluster.schedule_crash_at_step(other, begin + max(1, (live - begin) // 4))
    with pytest.raises(OverlappingFailureError, match="single-fault"):
        cluster.run(app_factory())
    # the requester's query to the down responder took the hold path
    assert cluster.held_recovery_msgs >= 1


def test_recrash_of_recovering_host_restarts_recovery():
    """Crashing the same victim inside its own recovery window restarts
    recovery from the same stable state and still reaches the
    failure-free result (peers' logs are intact: not an overlap)."""
    cluster_factory, app_factory = _factories()
    victim, step = _mid_run_point(cluster_factory, app_factory)
    begin, live = _recovery_window(cluster_factory, app_factory, victim, step)

    ref = cluster_factory()
    ref.run(app_factory())
    reference = {
        region.name: ref.shared_snapshot(region).tobytes()
        for region in ref.regions
    }

    cluster = cluster_factory()
    cluster.schedule_crash_at_step(victim, step)
    cluster.schedule_crash_at_step(victim, begin + (live - begin) // 2)
    res = cluster.run(app_factory())
    assert res.crashes == 2
    assert res.recoveries == 1  # the first incarnation was killed
    assert cluster.hosts[victim].crashed_count == 2
    check_oracle(cluster, reference)


# ======================================================================
# deadlock diagnostics
# ======================================================================


class _StuckApp:
    """Minimal app: p0 blocks forever on a future nobody resolves."""

    name = "stuck"

    def configure(self, cluster):
        pass

    def init_shared(self, cluster):
        pass

    def init_state(self, pid):
        return {}

    def run(self, proc, state):
        if proc.pid == 0:
            yield Future("never resolved")

    def check_result(self, cluster):
        pass


def test_deadlock_error_includes_per_host_diagnostics():
    cluster = make_cluster(num_procs=2)
    with pytest.raises(RuntimeError) as exc_info:
        cluster.run(_StuckApp())
    msg = str(exc_info.value)
    assert "deadlock" in msg
    # one diagnostic line per host, with liveness and queue state
    assert "p0: live=True recovering=False finished=False" in msg
    assert "p1: live=True recovering=False finished=True" in msg
    assert "queued=" in msg
