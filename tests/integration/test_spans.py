"""Tests for causal span tracing: DAG structure, critical path,
TimeStats reconciliation, and the Chrome trace export."""

import json

import pytest

from repro.observe.tracing import (
    SpanTracer,
    WAIT_KINDS,
    compute_critical_path,
    node_time_totals,
    per_cause_totals,
    reconcile_with_time_stats,
    render_critpath_report,
    to_chrome_trace,
    worst_lock_chains,
)
from repro.sim.node import TimeBucket

from tests.conftest import make_app, make_cluster


def traced_run(num_procs=4, ft=True, app="counter", **overrides):
    cluster = make_cluster(num_procs=num_procs, ft=ft, l_fraction=0.1)
    tracer = SpanTracer(cluster)
    result = cluster.run(make_app(app, **overrides))
    return cluster, tracer, result


# ----------------------------------------------------------------------
# span DAG structure
# ----------------------------------------------------------------------
def test_span_dag_basics():
    cluster, tracer, result = traced_run()
    assert tracer.validate() == []
    assert not tracer.open_spans()
    kinds = {s.kind for s in tracer.spans}
    assert {"app", "compute", "fetch", "acquire", "barrier", "flush",
            "ckpt", "ckpt_write"} <= kinds
    # one app span per node, closed at the end of the run
    apps = tracer.spans_by_kind("app")
    assert len(apps) == 4
    assert all(s.status == "closed" for s in apps)
    assert max(s.t1 for s in apps) == pytest.approx(result.wall_time)
    # spans are stamped with engine steps, nondecreasing per span
    assert all(0 <= s.step0 <= s.step1 for s in tracer.spans)
    # parents resolve and are on the same node
    by_sid = {s.sid: s for s in tracer.spans}
    for s in tracer.spans:
        if s.parent is not None:
            assert by_sid[s.parent].pid == s.pid


def test_every_message_becomes_an_edge():
    cluster, tracer, result = traced_run()
    assert len(tracer.edges) == result.traffic.total_msgs
    delivered = tracer.delivered_edges()
    # a failure-free LAN run delivers everything that is not still in
    # flight when the last app finishes (e.g. trailing GrantInfo)
    assert len(delivered) >= len(tracer.edges) - cluster.config.num_procs
    for e in delivered:
        assert e.t_recv >= e.t_send
        assert e.src != e.dst


def test_wait_spans_carry_causes():
    cluster, tracer, _ = traced_run()
    waits = [s for s in tracer.spans if s.kind in WAIT_KINDS]
    assert waits, "counter app must produce wait spans"
    caused = [s for s in waits if s.cause_edge is not None]
    assert caused, "some waits must be ended by a message"
    for s in caused:
        e = tracer.edges[s.cause_edge]
        assert e.dst == s.pid
        # the cause arrives while the wait is in progress
        assert s.t0 - 1e-12 <= e.t_recv <= s.t1 + 1e-12


def test_fetch_wait_cause_is_page_reply():
    cluster, tracer, _ = traced_run()
    page_waits = [
        s for s in tracer.spans
        if s.kind == "page_wait" and s.cause_edge is not None
    ]
    assert page_waits
    for s in page_waits:
        e = tracer.edges[s.cause_edge]
        assert e.msg_type in ("PageFetchReply", "DiffMsg")
        assert e.key == s.key


# ----------------------------------------------------------------------
# reconciliation with TimeStats (the tentpole invariant)
# ----------------------------------------------------------------------
def test_wait_spans_reconcile_exactly_with_time_stats():
    cluster, tracer, _ = traced_run()
    assert reconcile_with_time_stats(tracer) == []
    totals = node_time_totals(tracer)
    for host in cluster.hosts:
        stats = host.proto.cpu.stats
        for bucket in (TimeBucket.COMPUTE, TimeBucket.PAGE_WAIT,
                       TimeBucket.LOCK_WAIT, TimeBucket.BARRIER_WAIT):
            assert totals[host.pid][bucket.value] == pytest.approx(
                stats.seconds[bucket], rel=1e-9, abs=1e-12
            )


def test_reconciliation_detects_divergence():
    cluster, tracer, _ = traced_run()
    # poison one node's stats: the cross-check must notice
    cluster.hosts[1].proto.cpu.stats.seconds[TimeBucket.LOCK_WAIT] += 1.0
    errors = reconcile_with_time_stats(tracer)
    assert errors and any("p1 lock_wait" in e for e in errors)


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def test_critical_path_covers_the_run():
    cluster, tracer, result = traced_run()
    segments = compute_critical_path(tracer)
    assert segments
    # chronological, contiguous in time, ending at the wall time
    assert segments[0].t0 == pytest.approx(0.0, abs=1e-12)
    assert segments[-1].t1 == pytest.approx(result.wall_time)
    for a, b in zip(segments, segments[1:]):
        assert b.t0 == pytest.approx(a.t1, abs=1e-9)
    total = sum(s.duration for s in segments)
    assert total == pytest.approx(result.wall_time, rel=1e-6)


def test_critical_path_attributes_checkpoint_disk():
    cluster, tracer, _ = traced_run()
    totals = per_cause_totals(compute_critical_path(tracer))
    # the counter app at L=0.1 checkpoints repeatedly; disk seeks
    # dominate its FT run, and the path must say so
    assert totals.get("ckpt-disk", 0.0) > 0.0
    assert totals.get("compute", 0.0) > 0.0


def test_worst_lock_chains_and_report():
    cluster, tracer, _ = traced_run()
    chains = worst_lock_chains(tracer)
    assert chains
    lock_id, total, n, worst = chains[0]
    assert n >= len(worst) >= 1
    assert total >= sum(s.duration for s in worst)
    report = render_critpath_report(tracer, compute_critical_path(tracer))
    assert "critical path:" in report
    assert "per-cause totals" in report
    assert f"L{lock_id}" in report
    assert "reconciliation: span self-times match" in report


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def test_chrome_trace_structure():
    cluster, tracer, result = traced_run()
    trace = to_chrome_trace(tracer, meta={"app": "counter"})
    # round-trips through JSON (what Perfetto loads)
    trace = json.loads(json.dumps(trace))
    events = trace["traceEvents"]
    assert trace["otherData"]["app"] == "counter"
    phases = {}
    for ev in events:
        phases.setdefault(ev["ph"], []).append(ev)
    # process/thread metadata for every node
    names = {
        (m["pid"], m["args"]["name"])
        for m in phases["M"] if m["name"] == "process_name"
    }
    assert names == {(pid, f"node {pid}") for pid in range(4)}
    # complete events in microseconds of virtual time
    assert phases["X"]
    assert all(ev["dur"] >= 0 for ev in phases["X"])
    assert max(
        ev["ts"] + ev["dur"] for ev in phases["X"]
    ) == pytest.approx(result.wall_time * 1e6)
    # flow events pair up by id: one s and one f per delivered edge
    starts = {ev["id"] for ev in phases["s"]}
    finishes = {ev["id"] for ev in phases["f"]}
    assert starts == finishes
    assert len(starts) == len(tracer.delivered_edges())
    assert all(ev["bp"] == "e" for ev in phases["f"])


def test_chrome_trace_tracks_nest_properly():
    """Per (pid, tid) track, "X" events must nest like a call stack —
    Perfetto renders overlap-without-containment wrong."""
    cluster, tracer, _ = traced_run()
    events = to_chrome_trace(tracer)["traceEvents"]
    eps = 1e-6  # sub-microsecond jitter tolerance (ts is in us)
    tracks = {}
    for ev in events:
        if ev["ph"] == "X":
            tracks.setdefault((ev["pid"], ev["tid"]), []).append(
                (ev["ts"], ev["ts"] + ev["dur"])
            )
    for intervals in tracks.values():
        # equal starts: enclosing (longer) span first, like a call stack
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        stack = []
        for t0, t1 in intervals:
            while stack and stack[-1] <= t0 + eps:
                stack.pop()
            if stack:
                assert t1 <= stack[-1] + eps, "overlap without containment"
            stack.append(t1)


# ----------------------------------------------------------------------
# validation catches malformed DAGs
# ----------------------------------------------------------------------
def test_validate_flags_unclosed_spans():
    cluster, tracer, _ = traced_run()
    tracer._open_span(0, "fetch", "synthetic")
    errors = tracer.validate()
    assert any("unclosed span" in e for e in errors)


def test_validate_flags_capacity_overflow():
    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.1)
    tracer = SpanTracer(cluster, max_spans=10)
    cluster.run(make_app("counter"))
    assert tracer.dropped_spans > 0
    assert any("capacity exceeded" in e for e in tracer.validate())


def test_tracing_composes_with_flat_tracer_and_observer():
    """All three observation layers ride the same probe chain."""
    from repro.observe import ClusterObserver
    from repro.sim.trace import Tracer

    cluster = make_cluster(num_procs=4, ft=True, l_fraction=0.1)
    flat = Tracer(cluster)
    spans = SpanTracer(cluster)
    obs = ClusterObserver(cluster, interval=1e-3)
    cluster.run(make_app("counter"))
    assert flat.counts().get("ckpt_write", 0) > 0
    assert spans.spans_by_kind("ckpt_write")
    assert obs.registry.samples_taken > 0
    assert spans.validate() == []
